"""Quickstart: submit one deadline-carrying workflow to a WOHA cluster.

Builds a small ETL workflow, lets the WOHA client generate its scheduling
plan, runs it on a simulated 8-node Hadoop cluster and prints the outcome.

Run:  python examples/quickstart.py
"""

from repro import (
    ClusterConfig,
    ClusterSimulation,
    WohaScheduler,
    WorkflowBuilder,
    make_planner,
)


def main() -> None:
    workflow = (
        WorkflowBuilder("etl-pipeline")
        .job("extract", maps=24, reduces=4, map_s=30, reduce_s=120)
        .job("clean", maps=12, reduces=2, map_s=20, reduce_s=60, after=["extract"])
        .job("aggregate", maps=8, reduces=2, map_s=25, reduce_s=90, after=["clean"])
        .job("report", maps=2, reduces=1, map_s=15, reduce_s=45, after=["aggregate"])
        .deadline(relative=1800)  # 30 minutes
        .build()
    )

    cluster = ClusterConfig(num_nodes=8, map_slots_per_node=2, reduce_slots_per_node=1)
    sim = ClusterSimulation(
        cluster,
        WohaScheduler(),          # progress-based scheduling on the DSL
        submission="woha",        # client-side plan + submitter job
        planner=make_planner("lpf"),
    )
    sim.add_workflow(workflow)
    result = sim.run()

    stats = result.stats["etl-pipeline"]
    print(f"workflow      : {workflow.name} ({len(workflow)} jobs, {workflow.total_tasks} tasks)")
    print(f"cluster       : {cluster.total_map_slots} map + {cluster.total_reduce_slots} reduce slots")
    print(f"completed at  : {stats.completion_time:.0f} s (deadline {stats.deadline:.0f} s)")
    print(f"met deadline  : {stats.met_deadline}")
    print(f"utilization   : {result.utilization:.2f}")


if __name__ == "__main__":
    main()
