"""The paper's motivating scenario: ad-placement log analytics.

A workflow of interdependent Map-Reduce jobs digests user logs into
statistics for advertisement placement (§I).  The workflow must finish
within a business deadline while a best-effort batch workload shares the
cluster.  We run the same scenario under Oozie+FIFO and under WOHA and show
how WOHA protects the revenue-critical deadline.

Run:  python examples/ad_pipeline.py
"""

from repro import (
    ClusterConfig,
    ClusterSimulation,
    FifoScheduler,
    WohaScheduler,
    WorkflowBuilder,
    make_planner,
)


def ad_workflow():
    """Log digestion -> per-campaign stats -> placement model refresh."""
    return (
        WorkflowBuilder("ad-analytics")
        .job("ingest-logs", maps=48, reduces=8, map_s=40, reduce_s=150)
        .job("sessionize", maps=24, reduces=6, map_s=30, reduce_s=120, after=["ingest-logs"])
        .job("campaign-stats", maps=16, reduces=4, map_s=25, reduce_s=90, after=["sessionize"])
        .job("click-model", maps=20, reduces=4, map_s=35, reduce_s=110, after=["sessionize"])
        .job("placement-update", maps=4, reduces=2, map_s=20, reduce_s=60,
             after=["campaign-stats", "click-model"])
        .deadline(relative=900)  # placement refresh is due in 15 minutes
        .build()
    )


def batch_workload(index: int, submit: float):
    """Best-effort backfill jobs that compete for the same slots."""
    return (
        WorkflowBuilder(f"backfill-{index}")
        .job("scan", maps=60, reduces=6, map_s=35, reduce_s=100)
        .job("compact", maps=20, reduces=4, map_s=25, reduce_s=80, after=["scan"])
        .submit_at(submit)
        .build()
    )


def run(stack: str):
    cluster = ClusterConfig(num_nodes=10, map_slots_per_node=2, reduce_slots_per_node=1)
    if stack == "woha":
        sim = ClusterSimulation(cluster, WohaScheduler(), submission="woha", planner=make_planner("lpf"))
    else:
        sim = ClusterSimulation(cluster, FifoScheduler(), submission="oozie")
    # Backfill arrives first and hogs the queue; the ad workflow follows.
    sim.add_workflows([batch_workload(i, submit=i * 30.0) for i in range(3)])
    ad = ad_workflow().with_timing(submit_time=120.0, deadline=120.0 + 900.0)
    sim.add_workflow(ad)
    return sim.run()


def main() -> None:
    for stack in ("fifo", "woha"):
        result = run(stack)
        ad = result.stats["ad-analytics"]
        label = "Oozie+FIFO" if stack == "fifo" else "WOHA      "
        verdict = "MET" if ad.met_deadline else f"MISSED by {ad.tardiness:.0f}s"
        print(
            f"{label}: ad-analytics finished at {ad.completion_time:.0f}s "
            f"(deadline {ad.deadline:.0f}s) -> {verdict}; "
            f"cluster utilization {result.utilization:.2f}"
        )


if __name__ == "__main__":
    main()
