"""Reproduce the paper's Fig 11 experiment interactively.

Three workflows sharing the 33-job demonstration topology are submitted
five minutes apart with relative deadlines of 80, 70 and 60 minutes onto a
32-slave cluster.  Six schedulers compete: the Oozie-era baselines (FIFO,
Fair, EDF) and WOHA with each intra-workflow prioritizer (HLF, LPF, MPF).

Run:  python examples/scheduler_comparison.py
"""

from repro import (
    ClusterConfig,
    ClusterSimulation,
    EdfScheduler,
    FairScheduler,
    FifoScheduler,
    WohaScheduler,
    make_planner,
)
from repro.metrics.report import format_table
from repro.workloads.topologies import fig11_workflows


def main() -> None:
    stacks = [
        ("FIFO", lambda: (FifoScheduler(), "oozie", None)),
        ("Fair", lambda: (FairScheduler(), "oozie", None)),
        ("EDF", lambda: (EdfScheduler(), "oozie", None)),
        ("WOHA-HLF", lambda: (WohaScheduler(), "woha", make_planner("hlf"))),
        ("WOHA-LPF", lambda: (WohaScheduler(), "woha", make_planner("lpf"))),
        ("WOHA-MPF", lambda: (WohaScheduler(), "woha", make_planner("mpf"))),
    ]
    rows = []
    for name, factory in stacks:
        scheduler, mode, planner = factory()
        cluster = ClusterConfig(num_nodes=32, map_slots_per_node=2, reduce_slots_per_node=1)
        sim = ClusterSimulation(cluster, scheduler, submission=mode, planner=planner)
        sim.add_workflows(fig11_workflows())
        result = sim.run()
        rows.append(
            [
                name,
                result.stats["W-1"].workspan,
                result.stats["W-2"].workspan,
                result.stats["W-3"].workspan,
                sum(1 for s in result.stats.values() if not s.met_deadline),
                result.utilization,
            ]
        )
    print(
        format_table(
            ["scheduler", "W-1 span (s)", "W-2 span (s)", "W-3 span (s)", "misses", "util"],
            rows,
            title="Fig 11 reproduction: workspans under six schedulers (deadlines 4800/4200/3600 s)",
            float_fmt="{:.1f}",
        )
    )


if __name__ == "__main__":
    main()
