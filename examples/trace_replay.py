"""Replay the Yahoo!-like workflow trace under every scheduler.

Generates the 61-workflow / 180-job synthetic trace (the stand-in for the
paper's WebScope data, see DESIGN.md), drops single-job workflows as the
paper does, and reports deadline satisfaction and tardiness per scheduler
on a 200m-200r cluster.

Run:  python examples/trace_replay.py
"""

from repro import (
    ClusterConfig,
    ClusterSimulation,
    EdfScheduler,
    FairScheduler,
    FifoScheduler,
    WohaScheduler,
    make_planner,
)
from repro.metrics.report import format_table
from repro.workloads.yahoo import YahooTraceConfig, generate_yahoo_workflows


def main() -> None:
    workflows = generate_yahoo_workflows(YahooTraceConfig(drop_single_job=True))
    print(
        f"trace: {len(workflows)} workflows, {sum(len(w) for w in workflows)} jobs, "
        f"{sum(w.total_tasks for w in workflows)} tasks\n"
    )
    stacks = [
        ("FIFO", lambda: (FifoScheduler(), "oozie", None)),
        ("Fair", lambda: (FairScheduler(), "oozie", None)),
        ("EDF", lambda: (EdfScheduler(), "oozie", None)),
        ("WOHA-HLF", lambda: (WohaScheduler(), "woha", make_planner("hlf"))),
        ("WOHA-LPF", lambda: (WohaScheduler(), "woha", make_planner("lpf"))),
        ("WOHA-MPF", lambda: (WohaScheduler(), "woha", make_planner("mpf"))),
    ]
    rows = []
    for name, factory in stacks:
        scheduler, mode, planner = factory()
        cluster = ClusterConfig.from_total_slots(200, 200, nodes=40)
        sim = ClusterSimulation(cluster, scheduler, submission=mode, planner=planner)
        sim.add_workflows(workflows)
        result = sim.run()
        rows.append(
            [
                name,
                result.miss_ratio,
                result.max_tardiness,
                result.total_tardiness,
                result.makespan,
                result.utilization,
            ]
        )
    print(
        format_table(
            ["scheduler", "miss ratio", "max tardiness (s)", "total tardiness (s)", "makespan (s)", "util"],
            rows,
            title="Yahoo!-like trace on a 200m-200r cluster",
        )
    )


if __name__ == "__main__":
    main()
