"""Render the reproduced figures as SVG images (no plotting library needed).

Re-runs the key experiments and writes SVG counterparts of the paper's
plots into ``figures/``:

* fig08_miss_ratio.svg  — grouped bars, miss ratio vs cluster size
* fig11_workspan.svg    — grouped bars, workspans under six schedulers
* fig13a_throughput.svg — log-log lines, AssignTask throughput
* fig02_progress.svg    — step curves, capped vs uncapped plan requirements
* fig17_allocation.svg  — WOHA-LPF map-slot allocation time series

Run:  python examples/render_figures.py          (~1 minute)
"""

import os

from repro import (
    ClusterConfig,
    ClusterSimulation,
    EdfScheduler,
    FairScheduler,
    FifoScheduler,
    WohaScheduler,
    WorkflowBuilder,
    make_planner,
)
from repro.cluster.tasks import TaskKind
from repro.core.plangen import generate_requirements
from repro.metrics.svgplot import GroupedBarChart, SvgChart
from repro.workloads.topologies import fig11_workflows
from repro.workloads.yahoo import YahooTraceConfig, generate_yahoo_workflows

OUT_DIR = "figures"

STACKS = [
    ("EDF", lambda: (EdfScheduler(), "oozie", None)),
    ("FIFO", lambda: (FifoScheduler(), "oozie", None)),
    ("Fair", lambda: (FairScheduler(), "oozie", None)),
    ("WOHA-HLF", lambda: (WohaScheduler(), "woha", make_planner("hlf"))),
    ("WOHA-LPF", lambda: (WohaScheduler(), "woha", make_planner("lpf"))),
    ("WOHA-MPF", lambda: (WohaScheduler(), "woha", make_planner("mpf"))),
]


def run(name, workflows, config):
    for stack_name, factory in STACKS:
        if stack_name == name:
            scheduler, mode, planner = factory()
            sim = ClusterSimulation(config, scheduler, submission=mode, planner=planner)
            sim.add_workflows(workflows)
            return sim.run()
    raise KeyError(name)


def fig08():
    trace = generate_yahoo_workflows(YahooTraceConfig(drop_single_job=True))
    sizes = [(200, 200), (240, 240), (280, 280)]
    chart = GroupedBarChart(
        title="Fig 8: deadline miss ratio vs cluster size",
        xlabel="cluster size",
        ylabel="miss ratio",
    )
    chart.set_groups([f"{m}m-{r}r" for m, r in sizes])
    for name, _f in STACKS:
        values = []
        for m, r in sizes:
            config = ClusterConfig.from_total_slots(m, r, nodes=40, heartbeat_interval=float("inf"))
            values.append(run(name, trace, config).miss_ratio)
        chart.add_series(name, values)
    chart.save(os.path.join(OUT_DIR, "fig08_miss_ratio.svg"))


def fig11_and_17():
    config = ClusterConfig(
        num_nodes=32, map_slots_per_node=2, reduce_slots_per_node=1, heartbeat_interval=float("inf")
    )
    bars = GroupedBarChart(
        title="Fig 11: workspans (deadlines 4800/4200/3600 s)",
        xlabel="workflow",
        ylabel="workspan (s)",
    )
    bars.set_groups(["W-1", "W-2", "W-3"])
    woha_result = None
    for name, _f in STACKS:
        result = run(name, fig11_workflows(), config)
        bars.add_series(name, [result.stats[w].workspan for w in ("W-1", "W-2", "W-3")])
        if name == "WOHA-LPF":
            woha_result = result
    bars.save(os.path.join(OUT_DIR, "fig11_workspan.svg"))

    timeline = SvgChart(
        title="Fig 17: WOHA-LPF map-slot allocation",
        xlabel="time (s)",
        ylabel="map slots in use",
    )
    times, counts = woha_result.metrics.allocation_matrix(TaskKind.MAP, ["W-1", "W-2", "W-3"], step=60.0)
    for wf in ("W-1", "W-2", "W-3"):
        timeline.add_step(times, counts[wf], label=wf)
    timeline.save(os.path.join(OUT_DIR, "fig17_allocation.svg"))


def fig13a():
    import sys

    repo_root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    sys.path.insert(0, repo_root)
    from benchmarks.bench_fig13a_throughput import (
        NAIVE_MAX,
        QUEUE_LENGTHS,
        backend_factory,
        build_queue,
        measure,
    )

    chart = SvgChart(
        title="Fig 13a: AssignTask throughput vs queue length",
        xlabel="workflow queue length",
        ylabel="calls per second",
        xlog=True,
        ylog=True,
    )
    for backend, label in (("dsl", "WOHA-DSL"), ("bst", "WOHA-BST"), ("naive", "WOHA-Naive")):
        xs, ys = [], []
        for n in QUEUE_LENGTHS:
            if backend == "naive" and n > NAIVE_MAX:
                continue
            scheduler = backend_factory(backend)
            wips = build_queue(scheduler, n)
            calls = 200 if backend != "naive" else max(10, 2000 // max(1, n // 10))
            measure(scheduler, wips, 20)
            xs.append(n)
            ys.append(measure(scheduler, wips, calls, start_now=1.0))
        chart.add_line(xs, ys, label=label)
    chart.save(os.path.join(OUT_DIR, "fig13a_throughput.svg"))


def fig02():
    w = (
        WorkflowBuilder("probe")
        .job("j1", maps=3, reduces=3, map_s=1.0, reduce_s=1.0)
        .job("j2", maps=3, reduces=3, map_s=1.0, reduce_s=1.0, after=["j1"])
        .deadline(relative=9.0)
        .build()
    )
    chart = SvgChart(
        title="Fig 2: progress requirements, capped vs uncapped (D=9)",
        xlabel="time",
        ylabel="tasks required scheduled",
    )
    for cap, label in ((6, "cap = 6 (full cluster)"), (2, "cap = 2 (searched)")):
        plan = generate_requirements(w, cap)
        times = [t / 2.0 for t in range(0, 19)]
        chart.add_step(times, [plan.requirement_at_time(9.0, t) for t in times], label=label)
    chart.save(os.path.join(OUT_DIR, "fig02_progress.svg"))


def main() -> None:
    os.makedirs(OUT_DIR, exist_ok=True)
    for fn in (fig02, fig08, fig11_and_17, fig13a):
        fn()
        print(f"rendered {fn.__name__}")
    print(f"\nSVGs written to {OUT_DIR}/")


if __name__ == "__main__":
    main()
