"""Watch a workflow follow its scheduling plan.

The paper's core intuition is that the master can keep every workflow on a
client-computed progress trajectory.  This example runs the Fig 11
contention experiment under WOHA-LPF, then prints, for each workflow, its
plan's requirement curve F_i against the *realized* progress rho_i(t), a
post-mortem of where its time went, and the realized critical path.

Run:  python examples/plan_following.py
"""

from repro import ClusterConfig, ClusterSimulation, WohaScheduler, make_planner
from repro.metrics.postmortem import PostMortem
from repro.workloads.topologies import fig11_workflows


def main() -> None:
    config = ClusterConfig(num_nodes=32, map_slots_per_node=2, reduce_slots_per_node=1)
    sim = ClusterSimulation(config, WohaScheduler(), submission="woha", planner=make_planner("lpf"))
    postmortem = PostMortem()
    sim.jobtracker.add_listener(postmortem)
    sim.add_workflows(fig11_workflows())
    result = sim.run()

    for name in ("W-1", "W-2", "W-3"):
        wip = sim.jobtracker.workflows[name]
        plan = wip.plan
        stats = result.stats[name]
        print(f"\n=== {name}: deadline {stats.deadline:.0f}s, finished {stats.completion_time:.0f}s "
              f"({'MET' if stats.met_deadline else 'MISSED'})")
        print("plan-following (absolute time -> required vs actual tasks scheduled):")
        curve = result.metrics.progress_curve(name)
        for frac in (0.25, 0.5, 0.75, 1.0):
            t = stats.submit_time + frac * (stats.completion_time - stats.submit_time)
            required = plan.requirement_at_time(wip.deadline, t)
            actual = sum(1 for ts, _ in curve if ts <= t)
            print(f"    t={t:7.0f}s  required={required:4d}  actual={actual:4d}  lag={required - actual:+4d}")
        path = postmortem.realized_critical_path(name)
        print(f"realized critical path ({len(path)} jobs): {' > '.join(path)}")
        print(f"total queue delay across jobs: {postmortem.total_queue_delay(name):.0f}s")


if __name__ == "__main__":
    main()
