"""The full WOHA user path: XML configuration -> validation -> plan -> run.

Mirrors what ``hadoop dag /path/to/W_i.xml`` does on a WOHA client
(paper §III-B): parse the configuration, validate jars and datasets against
HDFS, infer job dependencies from dataset paths, generate the capped
scheduling plan locally and submit — then run the cluster to completion.

Run:  python examples/xml_workflow.py
"""

from repro import ClusterConfig, HdfsNamespace, WohaClient, WohaScheduler
from repro.cluster.jobtracker import JobTracker
from repro.events import Simulator

WORKFLOW_XML = """
<workflow name="user-graph" deadline="2400">
  <job name="parse-events" maps="30" reduces="6" map-duration="25" reduce-duration="100"
       jar="/apps/graph/parse.jar" main-class="com.example.ParseEvents">
    <input>/logs/events/2014-03-07</input>
    <output>/stage/parsed</output>
  </job>
  <job name="build-edges" maps="18" reduces="4" map-duration="30" reduce-duration="120"
       jar="/apps/graph/edges.jar" main-class="com.example.BuildEdges">
    <input>/stage/parsed</input>
    <output>/stage/edges</output>
  </job>
  <job name="rank-nodes" maps="12" reduces="3" map-duration="20" reduce-duration="90"
       jar="/apps/graph/rank.jar" main-class="com.example.RankNodes">
    <input>/stage/edges</input>
    <output>/stage/ranks</output>
  </job>
  <job name="partition" maps="6" reduces="2" map-duration="15" reduce-duration="60"
       jar="/apps/graph/partition.jar" main-class="com.example.Partition">
    <input>/stage/ranks</input>
    <input>/stage/parsed</input>
    <output>/serving/partitions</output>
  </job>
</workflow>
"""


def main() -> None:
    # The cluster: engine, master, scheduler, and an HDFS namespace holding
    # the input dataset and the user's jar files.
    sim = Simulator()
    # Out-of-band (eager) heartbeats drive task assignment; the periodic
    # loop is disabled so `sim.run()` drains once the workflow finishes.
    config = ClusterConfig(
        num_nodes=6,
        map_slots_per_node=2,
        reduce_slots_per_node=1,
        heartbeat_interval=float("inf"),
    )
    jobtracker = JobTracker(sim, config, WohaScheduler())
    hdfs = HdfsNamespace()
    hdfs.preload(
        [
            "/logs/events/2014-03-07",
            "/apps/graph/parse.jar",
            "/apps/graph/edges.jar",
            "/apps/graph/rank.jar",
            "/apps/graph/partition.jar",
        ]
    )

    client = WohaClient(jobtracker, hdfs=hdfs, prioritizer="lpf")
    wip = client.submit_xml(WORKFLOW_XML)

    plan = wip.plan
    print(f"workflow     : {wip.name} ({len(wip.definition)} jobs)")
    print("dependencies : inferred from dataset paths:")
    for name in wip.definition.topological_order():
        pres = sorted(wip.definition.prerequisites(name)) or ["-"]
        print(f"    {name:13s} <- {', '.join(pres)}")
    print(f"plan         : cap={plan.resource_cap} slots, {len(plan)} progress steps, "
          f"{plan.size_bytes} bytes on the wire")

    jobtracker.start_heartbeats()  # no-op with the infinite interval
    sim.run()
    print(f"completed at : {wip.completion_time:.0f} s "
          f"(deadline {wip.deadline:.0f} s, met: {wip.completion_time <= wip.deadline})")


if __name__ == "__main__":
    main()
