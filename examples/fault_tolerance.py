"""Fault tolerance: node failures, task re-execution and speculation.

Runs a deadline-carrying workflow while TaskTrackers fail (and some
recover), with heavy-tailed task durations producing stragglers.  Shows
Hadoop's recovery semantics in the substrate — lost attempts re-queue,
completed map outputs on dead nodes re-execute — and how speculative
backups claw back straggler time.

Run:  python examples/fault_tolerance.py
"""

from repro import (
    ClusterConfig,
    ClusterSimulation,
    FailureInjector,
    LognormalNoise,
    Outage,
    SpeculationManager,
    WohaScheduler,
    WorkflowBuilder,
    make_planner,
)


def workflow():
    return (
        WorkflowBuilder("resilient-etl")
        .job("ingest", maps=40, reduces=8, map_s=30, reduce_s=90)
        .job("transform", maps=24, reduces=6, map_s=25, reduce_s=80, after=["ingest"])
        .job("publish", maps=8, reduces=2, map_s=20, reduce_s=60, after=["transform"])
        .deadline(relative=2400)
        .build()
    )


def run(outages: bool, speculate: bool):
    config = ClusterConfig(num_nodes=10, map_slots_per_node=2, reduce_slots_per_node=1)
    sim = ClusterSimulation(
        config,
        WohaScheduler(),
        submission="woha",
        planner=make_planner("lpf"),
        duration_sampler_factory=LognormalNoise(0.5, seed=3),
    )
    manager = None
    if speculate:
        manager = SpeculationManager(sim.sim, sim.jobtracker, slow_factor=1.5, min_runtime=15.0)
    injector = FailureInjector(sim.sim, sim.jobtracker)
    if outages:
        injector.schedule(
            [
                Outage(time=120.0, tracker_id=2, down_for=300.0),
                Outage(time=200.0, tracker_id=7, down_for=None),  # never comes back
                Outage(time=450.0, tracker_id=4, down_for=120.0),
            ]
        )
    sim.add_workflow(workflow())
    result = sim.run()
    return result, manager, injector


def main() -> None:
    for outages, speculate in ((False, False), (True, False), (True, True)):
        result, manager, injector = run(outages, speculate)
        stats = result.stats["resilient-etl"]
        label = f"outages={'on ' if outages else 'off'} speculation={'on ' if speculate else 'off'}"
        extras = []
        if injector.killed:
            extras.append(f"{len(injector.killed)} nodes lost, {len(injector.revived)} recovered")
        if manager is not None:
            extras.append(f"{manager.backups_launched} backups ({manager.backups_won} won)")
        extras.append(f"{result.metrics.tasks_lost} attempts retired")
        print(
            f"{label}: finished {stats.completion_time:7.0f}s "
            f"(deadline {stats.deadline:.0f}s, {'MET' if stats.met_deadline else 'MISSED'})"
            f"  [{'; '.join(extras)}]"
        )


if __name__ == "__main__":
    main()
