"""Unit tests for the discrete-event engine."""

import pytest

from repro.events import SimulationError, Simulator


class TestScheduling:
    def test_events_fire_in_time_order(self):
        sim = Simulator()
        fired = []
        sim.schedule(5.0, fired.append, "b")
        sim.schedule(1.0, fired.append, "a")
        sim.schedule(9.0, fired.append, "c")
        sim.run()
        assert fired == ["a", "b", "c"]

    def test_same_time_events_fire_fifo(self):
        sim = Simulator()
        fired = []
        for tag in "abcde":
            sim.schedule(2.0, fired.append, tag)
        sim.run()
        assert fired == list("abcde")

    def test_clock_advances_to_event_time(self):
        sim = Simulator()
        seen = []
        sim.schedule(3.5, lambda: seen.append(sim.now))
        sim.run()
        assert seen == [3.5]
        assert sim.now == 3.5

    def test_schedule_after_is_relative(self):
        sim = Simulator()
        seen = []
        sim.schedule(10.0, lambda: sim.schedule_after(5.0, lambda: seen.append(sim.now)))
        sim.run()
        assert seen == [15.0]

    def test_schedule_in_past_rejected(self):
        sim = Simulator()
        sim.schedule(1.0, lambda: None)
        sim.run()
        with pytest.raises(SimulationError):
            sim.schedule(0.5, lambda: None)

    def test_negative_delay_rejected(self):
        sim = Simulator()
        with pytest.raises(SimulationError):
            sim.schedule_after(-1.0, lambda: None)

    def test_callback_args_passed(self):
        sim = Simulator()
        got = []
        sim.schedule(1.0, lambda a, b: got.append((a, b)), 1, "x")
        sim.run()
        assert got == [(1, "x")]


class TestCancellation:
    def test_cancelled_event_does_not_fire(self):
        sim = Simulator()
        fired = []
        handle = sim.schedule(1.0, fired.append, "nope")
        assert handle.cancel()
        sim.run()
        assert fired == []
        assert handle.cancelled and not handle.fired

    def test_cancel_after_fire_returns_false(self):
        sim = Simulator()
        handle = sim.schedule(1.0, lambda: None)
        sim.run()
        assert handle.fired
        assert not handle.cancel()

    def test_double_cancel_returns_false(self):
        sim = Simulator()
        handle = sim.schedule(1.0, lambda: None)
        assert handle.cancel()
        assert not handle.cancel()

    def test_pending_events_excludes_cancelled(self):
        sim = Simulator()
        sim.schedule(1.0, lambda: None)
        handle = sim.schedule(2.0, lambda: None)
        handle.cancel()
        assert sim.pending_events == 1


class TestRun:
    def test_run_until_stops_before_later_events(self):
        sim = Simulator()
        fired = []
        sim.schedule(1.0, fired.append, "a")
        sim.schedule(10.0, fired.append, "b")
        sim.run(until=5.0)
        assert fired == ["a"]
        assert sim.now == 5.0
        sim.run()
        assert fired == ["a", "b"]

    def test_run_until_advances_clock_even_without_events(self):
        sim = Simulator()
        sim.run(until=42.0)
        assert sim.now == 42.0

    def test_max_events_guard(self):
        sim = Simulator()

        def rearm():
            sim.schedule_after(1.0, rearm)

        sim.schedule(0.0, rearm)
        with pytest.raises(SimulationError):
            sim.run(max_events=100)

    def test_step_returns_false_when_empty(self):
        sim = Simulator()
        assert sim.step() is False

    def test_run_not_reentrant(self):
        sim = Simulator()
        errors = []

        def reenter():
            try:
                sim.run()
            except SimulationError as exc:
                errors.append(exc)

        sim.schedule(1.0, reenter)
        sim.run()
        assert len(errors) == 1

    def test_processed_events_counter(self):
        sim = Simulator()
        for t in range(5):
            sim.schedule(float(t), lambda: None)
        sim.run()
        assert sim.processed_events == 5

    def test_reset_clears_state(self):
        sim = Simulator()
        sim.schedule(1.0, lambda: None)
        sim.run()
        sim.reset()
        assert sim.now == 0.0
        assert sim.pending_events == 0
        sim.schedule(0.5, lambda: None)  # past-time scheduling OK after reset
        sim.run()
        assert sim.now == 0.5

    def test_events_scheduled_during_run_fire(self):
        sim = Simulator()
        fired = []
        sim.schedule(1.0, lambda: sim.schedule(2.0, fired.append, "late"))
        sim.run()
        assert fired == ["late"]


class TestMaxEventsExactness:
    def test_exactly_max_events_drains_without_error(self):
        sim = Simulator()
        for t in range(10):
            sim.schedule(float(t), lambda: None)
        sim.run(max_events=10)
        assert sim.processed_events == 10

    def test_guard_fires_before_the_excess_event(self):
        # Regression: the guard used to raise only after max_events + 1
        # events had already fired.
        sim = Simulator()
        for t in range(10):
            sim.schedule(float(t), lambda: None)
        with pytest.raises(SimulationError):
            sim.run(max_events=9)
        assert sim.processed_events == 9


class TestPeekAndAdvance:
    def test_peek_time_skips_cancelled_heads(self):
        sim = Simulator()
        doomed = sim.schedule(1.0, lambda: None)
        sim.schedule(2.0, lambda: None)
        doomed.cancel()
        assert sim.peek_time() == 2.0

    def test_peek_time_empty_queue(self):
        sim = Simulator()
        assert sim.peek_time() is None

    def test_advance_to_is_monotonic(self):
        sim = Simulator()
        sim.advance_to(5.0)
        assert sim.now == 5.0
        sim.advance_to(3.0)  # moving backwards is a no-op
        assert sim.now == 5.0


class TestResetReplay:
    def test_reset_restarts_sequence_numbers(self):
        # Same-time events scheduled after a reset must tie-break exactly
        # like a fresh simulator: the sequence counter restarts.
        def replay(sim):
            fired = []
            for tag in "abc":
                sim.schedule(1.0, fired.append, tag)
            sim.schedule(0.5, fired.append, "first")
            sim.run()
            return fired, sim._seq

        sim = Simulator()
        first_run = replay(sim)
        sim.reset()
        assert replay(sim) == first_run

    def test_reset_cancels_leftover_handles(self):
        sim = Simulator()
        handle = sim.schedule(1.0, lambda: None)
        sim.reset()
        assert handle.cancelled and not handle.pending
        # A stale cancel after reset must not corrupt the live counter.
        sim.schedule(1.0, lambda: None)
        assert not handle.cancel()
        assert sim.pending_events == 1
