"""Tests for post-mortem analysis and progress curves."""

import pytest

from repro.cluster.config import ClusterConfig
from repro.cluster.simulation import ClusterSimulation
from repro.core.client import make_planner
from repro.core.scheduler import WohaScheduler
from repro.metrics.postmortem import PostMortem, explain_miss
from repro.schedulers.fifo import FifoScheduler
from repro.trace import read_jsonl
from repro.workflow.builder import WorkflowBuilder


@pytest.fixture
def run_rig(tiny_cluster):
    def _run(workflow, scheduler=None, submission="oozie", planner=None):
        sim = ClusterSimulation(
            tiny_cluster, scheduler or FifoScheduler(), submission=submission, planner=planner
        )
        postmortem = PostMortem()
        sim.jobtracker.add_listener(postmortem)
        sim.add_workflow(workflow)
        result = sim.run()
        return result, postmortem, sim

    return _run


def heavy_light():
    """Diamond where the realized critical path must follow the heavy arm."""
    return (
        WorkflowBuilder("w")
        .job("src", maps=1, reduces=0, map_s=5)
        .job("heavy", maps=8, reduces=2, map_s=20, reduce_s=40, after=["src"])
        .job("light", maps=1, reduces=0, map_s=1, after=["src"])
        .job("sink", maps=1, reduces=0, map_s=5, after=["heavy", "light"])
        .build()
    )


class TestJobSpans:
    def test_spans_recorded_for_all_jobs(self, run_rig):
        _result, pm, _sim = run_rig(heavy_light())
        spans = pm.job_spans("w")
        assert {s.name for s in spans} == {"src", "heavy", "light", "sink"}
        assert all(s.finish_time is not None for s in spans)

    def test_span_fields_consistent(self, run_rig):
        _result, pm, _sim = run_rig(heavy_light())
        for span in pm.job_spans("w"):
            assert span.submit_time <= span.first_launch <= span.finish_time
            assert span.queue_delay >= 0.0
            assert span.span >= 0.0

    def test_map_phase_end_recorded(self, run_rig):
        _result, pm, _sim = run_rig(heavy_light())
        heavy = next(s for s in pm.job_spans("w") if s.name == "heavy")
        assert heavy.map_phase_end is not None
        assert heavy.map_phase_end < heavy.finish_time  # reduces follow


class TestRealizedCriticalPath:
    def test_follows_heavy_arm(self, run_rig):
        _result, pm, _sim = run_rig(heavy_light())
        assert pm.realized_critical_path("w") == ["src", "heavy", "sink"]

    def test_is_a_real_dependency_chain(self, run_rig):
        wf = heavy_light()
        _result, pm, sim = run_rig(wf)
        path = pm.realized_critical_path("w")
        for pre, job in zip(path, path[1:]):
            assert pre in wf.prerequisites(job)

    def test_unknown_workflow_raises(self, run_rig):
        _result, pm, _sim = run_rig(heavy_light())
        with pytest.raises(KeyError):
            pm.realized_critical_path("ghost")

    def test_completion_time_matches_stats(self, run_rig):
        result, pm, _sim = run_rig(heavy_light())
        assert pm.completion_time("w") == result.stats["w"].completion_time


class TestProgressCurve:
    def test_curve_counts_wjob_tasks_only(self, run_rig):
        wf = heavy_light()
        result, _pm, _sim = run_rig(
            wf, scheduler=WohaScheduler(), submission="woha", planner=make_planner()
        )
        curve = result.metrics.progress_curve("w")
        # Final rho equals the wjob task count; submitter tasks excluded.
        assert curve[-1][1] == wf.total_tasks

    def test_curve_monotone_in_time_and_count(self, run_rig):
        result, _pm, _sim = run_rig(heavy_light())
        curve = result.metrics.progress_curve("w")
        times = [t for t, _ in curve]
        counts = [c for _, c in curve]
        assert times == sorted(times)
        assert counts == list(range(1, len(curve) + 1))

    def test_requirement_at_time_wrapper(self):
        from repro.core.plangen import generate_requirements

        wf = heavy_light()
        plan = generate_requirements(wf, cap=4)
        deadline = 1000.0
        # At the deadline, everything must be scheduled.
        assert plan.requirement_at_time(deadline, deadline) == wf.total_tasks
        # Before the plan's aligned start, nothing is required.
        assert plan.requirement_at_time(deadline, deadline - plan.makespan - 1) == 0


def synthetic_trace():
    """A hand-built decision log: `victim` loses two slots to `hog`, is
    skipped once while waiting on a barrier, and misses its deadline."""
    return [
        {"seq": 0, "event": "workflow_submitted", "time": 0.0,
         "workflow": "hog", "deadline": None, "total_tasks": 10},
        {"seq": 1, "event": "workflow_submitted", "time": 1.0,
         "workflow": "victim", "deadline": 50.0, "total_tasks": 4},
        # Before the victim arrives: must not be attributed to it.
        {"seq": 2, "event": "decision", "time": 0.5, "workflow": "hog",
         "task": "h/map-0", "lag": None, "skipped": []},
        # Contention window: hog wins twice, victim served once, skipped once.
        {"seq": 3, "event": "decision", "time": 2.0, "workflow": "hog",
         "task": "h/map-1", "lag": None, "skipped": []},
        {"seq": 4, "event": "decision", "time": 3.0, "workflow": "victim",
         "task": "v/map-0", "lag": 2.0, "skipped": []},
        {"seq": 5, "event": "decision", "time": 4.0, "workflow": "hog",
         "task": "h/map-2", "lag": None, "skipped": ["victim"]},
        {"seq": 6, "event": "decision", "time": 5.0, "workflow": "hog",
         "task": "h/map-3", "lag": None, "skipped": []},
        # Idle call: nobody had work of this kind.
        {"seq": 7, "event": "decision", "time": 6.0, "workflow": None,
         "task": None, "lag": None, "skipped": []},
        {"seq": 8, "event": "ct_advance", "time": 7.0, "workflow": "victim",
         "index": 2, "lag": 3.0},
        # After the deadline: already lost, not attributable.
        {"seq": 9, "event": "decision", "time": 60.0, "workflow": "hog",
         "task": "h/map-4", "lag": None, "skipped": []},
        {"seq": 10, "event": "workflow_completed", "time": 70.0,
         "workflow": "victim", "deadline": 50.0, "met": False},
    ]


class TestExplainMiss:
    def test_attribution_buckets(self):
        exp = explain_miss(synthetic_trace(), "victim")
        assert exp.deadline == 50.0
        assert exp.submit_time == 1.0
        assert exp.completion_time == 70.0
        assert exp.missed is True
        assert exp.tardiness == 20.0
        assert exp.served == 1
        # hog's wins at t=2 and t=5; the t=4 one saw the victim skipped and
        # the t=0.5/t=60 ones fall outside the danger window.
        assert exp.outranked == 2
        assert exp.lost_to == {"hog": 2}
        # skipped at t=4 plus the idle call at t=6.
        assert exp.not_runnable == 2
        assert exp.max_lag == 3.0  # the ct_advance tops the served lag of 2.0

    def test_best_effort_never_missed(self):
        exp = explain_miss(synthetic_trace(), "hog")
        assert exp.deadline is None
        assert exp.missed is False
        assert exp.tardiness == 0.0
        assert exp.served >= 1

    def test_summary_mentions_winners(self):
        text = explain_miss(synthetic_trace(), "victim").summary()
        assert "victim" in text
        assert "MISSED" in text
        assert "hog (2x)" in text

    def test_truncated_trace_leaves_window_open(self):
        # Drop the lifecycle markers, as a small ring buffer would.
        events = [e for e in synthetic_trace()
                  if e["event"] not in ("workflow_submitted", "workflow_completed")]
        exp = explain_miss(events, "victim")
        assert exp.deadline is None
        assert exp.missed is False  # unknowable without a deadline
        # Every decision now falls in the (unbounded) window.
        assert exp.served == 1
        assert exp.outranked == 4

    def test_end_to_end_from_traced_run(self, tiny_cluster):
        """Starve a tight workflow behind a hog and read the miss off the
        dumped JSONL trace."""
        import io

        hog = WorkflowBuilder("hog").job("h", maps=30, reduces=0, map_s=20).build()
        tight = (
            WorkflowBuilder("tight")
            .job("t", maps=4, reduces=0, map_s=10)
            .deadline(relative=25.0)
            .submit_at(1.0)
            .build()
        )
        sim = ClusterSimulation(tiny_cluster, FifoScheduler(), trace=True)
        sim.add_workflows([hog, tight])
        result = sim.run()
        assert not result.stats["tight"].met_deadline
        events = read_jsonl(io.StringIO(result.tracer.dumps_jsonl()))
        exp = explain_miss(events, "tight")
        assert exp.missed is True
        assert exp.outranked > 0
        assert "hog" in exp.lost_to
