"""Tests for post-mortem analysis and progress curves."""

import pytest

from repro.cluster.config import ClusterConfig
from repro.cluster.simulation import ClusterSimulation
from repro.core.client import make_planner
from repro.core.scheduler import WohaScheduler
from repro.metrics.postmortem import PostMortem
from repro.schedulers.fifo import FifoScheduler
from repro.workflow.builder import WorkflowBuilder


@pytest.fixture
def run_rig(tiny_cluster):
    def _run(workflow, scheduler=None, submission="oozie", planner=None):
        sim = ClusterSimulation(
            tiny_cluster, scheduler or FifoScheduler(), submission=submission, planner=planner
        )
        postmortem = PostMortem()
        sim.jobtracker.add_listener(postmortem)
        sim.add_workflow(workflow)
        result = sim.run()
        return result, postmortem, sim

    return _run


def heavy_light():
    """Diamond where the realized critical path must follow the heavy arm."""
    return (
        WorkflowBuilder("w")
        .job("src", maps=1, reduces=0, map_s=5)
        .job("heavy", maps=8, reduces=2, map_s=20, reduce_s=40, after=["src"])
        .job("light", maps=1, reduces=0, map_s=1, after=["src"])
        .job("sink", maps=1, reduces=0, map_s=5, after=["heavy", "light"])
        .build()
    )


class TestJobSpans:
    def test_spans_recorded_for_all_jobs(self, run_rig):
        _result, pm, _sim = run_rig(heavy_light())
        spans = pm.job_spans("w")
        assert {s.name for s in spans} == {"src", "heavy", "light", "sink"}
        assert all(s.finish_time is not None for s in spans)

    def test_span_fields_consistent(self, run_rig):
        _result, pm, _sim = run_rig(heavy_light())
        for span in pm.job_spans("w"):
            assert span.submit_time <= span.first_launch <= span.finish_time
            assert span.queue_delay >= 0.0
            assert span.span >= 0.0

    def test_map_phase_end_recorded(self, run_rig):
        _result, pm, _sim = run_rig(heavy_light())
        heavy = next(s for s in pm.job_spans("w") if s.name == "heavy")
        assert heavy.map_phase_end is not None
        assert heavy.map_phase_end < heavy.finish_time  # reduces follow


class TestRealizedCriticalPath:
    def test_follows_heavy_arm(self, run_rig):
        _result, pm, _sim = run_rig(heavy_light())
        assert pm.realized_critical_path("w") == ["src", "heavy", "sink"]

    def test_is_a_real_dependency_chain(self, run_rig):
        wf = heavy_light()
        _result, pm, sim = run_rig(wf)
        path = pm.realized_critical_path("w")
        for pre, job in zip(path, path[1:]):
            assert pre in wf.prerequisites(job)

    def test_unknown_workflow_raises(self, run_rig):
        _result, pm, _sim = run_rig(heavy_light())
        with pytest.raises(KeyError):
            pm.realized_critical_path("ghost")

    def test_completion_time_matches_stats(self, run_rig):
        result, pm, _sim = run_rig(heavy_light())
        assert pm.completion_time("w") == result.stats["w"].completion_time


class TestProgressCurve:
    def test_curve_counts_wjob_tasks_only(self, run_rig):
        wf = heavy_light()
        result, _pm, _sim = run_rig(
            wf, scheduler=WohaScheduler(), submission="woha", planner=make_planner()
        )
        curve = result.metrics.progress_curve("w")
        # Final rho equals the wjob task count; submitter tasks excluded.
        assert curve[-1][1] == wf.total_tasks

    def test_curve_monotone_in_time_and_count(self, run_rig):
        result, _pm, _sim = run_rig(heavy_light())
        curve = result.metrics.progress_curve("w")
        times = [t for t, _ in curve]
        counts = [c for _, c in curve]
        assert times == sorted(times)
        assert counts == list(range(1, len(curve) + 1))

    def test_requirement_at_time_wrapper(self):
        from repro.core.plangen import generate_requirements

        wf = heavy_light()
        plan = generate_requirements(wf, cap=4)
        deadline = 1000.0
        # At the deadline, everything must be scheduled.
        assert plan.requirement_at_time(deadline, deadline) == wf.total_tasks
        # Before the plan's aligned start, nothing is required.
        assert plan.requirement_at_time(deadline, deadline - plan.makespan - 1) == 0
