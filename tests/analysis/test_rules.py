"""Every rule ID fires on its seeded fixture, and only there.

The fixtures under ``tests/analysis/fixtures/`` are the executable
specification of the rule catalog: one file per rule containing exactly
that violation, one clean decision-path module, and one inline-suppressed
hit.  ``repro lint`` must exit non-zero on each violating fixture.
"""

from pathlib import Path

import pytest

from repro.analysis import RULES, lint_paths, lint_source
from repro.analysis.dataflow import DATAFLOW_RULES
from repro.analysis.interproc import INTERPROC_RULES
from repro.analysis.perflint import PERF_RULES
from repro.cli import main as cli_main

FIXTURES = Path(__file__).parent / "fixtures"

RULE_FIXTURES = {
    "DT101": "dt101_set_iteration.py",
    "DT102": "dt102_wallclock.py",
    "DT103": "dt103_float_eq.py",
    "DT104": "dt104_frozen_mutation.py",
    "DT105": "dt105_slots.py",
    "DT106": "dt106_eq_without_hash.py",
    "DT107": "dt107_order_pop.py",
}

#: The interprocedural rules' fixtures live in ``fixtures/interproc/`` and
#: are exercised (whole-corpus, ``interproc=True``) by test_interproc.py.
INTERPROC_FIXTURES = {
    "DT201": "interproc/ip_sink.py",
    "DT202": "interproc/ip_dynamic.py",
    "DT203": "interproc/ip_budget.py",
    "DT204": "interproc/ip_hot.py",
}

#: The dataflow rules' fixtures live in ``fixtures/dataflow/`` and are
#: exercised (whole-corpus, ``interproc=True``) by test_dataflow.py.
DATAFLOW_FIXTURES = {
    "DT301": "dataflow/df_fork_shared.py",
    "DT302": "dataflow/df_pool_closure.py",
    "DT303": "dataflow/df_atomicity.py",
    "DT304": "dataflow/df_stale_allow.py",
    "DT305": "dataflow/df_wallclock_taint.py",
}

#: The hot-path performance rules' fixtures live in ``fixtures/perflint/``
#: and are exercised (whole-corpus, ``interproc=True``) by test_perflint.py.
PERF_FIXTURES = {
    "DT401": "perflint/pf_alloc.py",
    "DT402": "perflint/pf_chain.py",
    "DT403": "perflint/pf_trace.py",
    "DT404": "perflint/pf_generator.py",
    "DT405": "perflint/pf_except.py",
}


def test_every_rule_has_a_fixture():
    assert (
        set(RULE_FIXTURES) | set(INTERPROC_FIXTURES) | set(DATAFLOW_FIXTURES)
        | set(PERF_FIXTURES)
        == set(RULES)
    )
    assert set(INTERPROC_FIXTURES) == set(INTERPROC_RULES)
    assert set(DATAFLOW_FIXTURES) == set(DATAFLOW_RULES)
    assert set(PERF_FIXTURES) == set(PERF_RULES)
    for rel in (
        *INTERPROC_FIXTURES.values(),
        *DATAFLOW_FIXTURES.values(),
        *PERF_FIXTURES.values(),
    ):
        assert (FIXTURES / rel).is_file(), rel


@pytest.mark.parametrize("rule_id", sorted(RULE_FIXTURES))
def test_rule_fires_on_its_fixture(rule_id):
    report = lint_paths([FIXTURES / RULE_FIXTURES[rule_id]])
    fired = {v.rule for v in report.violations}
    assert fired == {rule_id}, f"expected only {rule_id}, got {fired}"


@pytest.mark.parametrize("rule_id", sorted(RULE_FIXTURES))
def test_cli_exits_nonzero_on_fixture(rule_id, capsys):
    exit_code = cli_main(["lint", str(FIXTURES / RULE_FIXTURES[rule_id])])
    assert exit_code == 1
    out = capsys.readouterr().out
    assert rule_id in out


def test_clean_fixture_passes():
    report = lint_paths([FIXTURES / "clean_module.py"])
    assert report.clean
    assert not report.suppressed


def test_cli_exits_zero_on_clean_fixture():
    assert cli_main(["lint", str(FIXTURES / "clean_module.py")]) == 0


def test_violations_carry_location_and_render():
    report = lint_paths([FIXTURES / "dt103_float_eq.py"])
    (violation,) = report.violations
    assert violation.line == 5
    rendered = violation.render()
    assert rendered.startswith("dt103_float_eq.py:5:")
    assert "DT103" in rendered


# -- rule-precision cases: constructs that must NOT fire ---------------------


def test_order_free_set_consumers_allowed():
    source = (
        "# repro: decision-path\n"
        "def f(workflow):\n"
        "    a = sorted(workflow.prerequisites)\n"
        "    b = frozenset(p for p in workflow.prerequisites)\n"
        "    c = len(workflow.dependents('x'))\n"
        "    d = {p for p in workflow.prerequisites}\n"
        "    return a, b, c, d\n"
    )
    assert lint_source(source, "repro/core/x.py").clean


def test_set_iteration_outside_decision_paths_allowed():
    source = "def f(s):\n    return [x for x in {1, 2, 3}]\n"
    assert lint_source(source, "repro/metrics/x.py").clean


def test_set_iteration_in_decision_path_dirs_fires():
    source = "def f(workflow):\n    return list(workflow.prerequisites)\n"
    for subdir in ("core", "schedulers", "structures", "cluster"):
        report = lint_source(source, f"repro/{subdir}/x.py")
        assert [v.rule for v in report.violations] == ["DT101"], subdir


def test_seeded_numpy_generator_allowed():
    source = (
        "import numpy as np\n"
        "def f(seed):\n"
        "    return np.random.default_rng(seed).normal()\n"
    )
    assert lint_source(source, "repro/core/x.py").clean


def test_global_numpy_random_fires():
    source = "import numpy as np\ndef f():\n    return np.random.normal()\n"
    report = lint_source(source, "repro/core/x.py")
    assert [v.rule for v in report.violations] == ["DT102"]


def test_randomness_allowed_in_noise_and_workloads():
    source = "import random\ndef f():\n    return random.random()\n"
    assert lint_source(source, "repro/noise.py").clean
    assert lint_source(source, "repro/workloads/yahoo.py").clean
    assert not lint_source(source, "repro/core/x.py").clean


def test_setattr_in_post_init_allowed():
    source = (
        "class Plan:\n"
        "    def __post_init__(self):\n"
        "        object.__setattr__(self, 'x', 1)\n"
    )
    assert lint_source(source, "repro/core/x.py").clean


def test_nonfloat_identifiers_not_durationish():
    source = "def f(index, count):\n    return index == count\n"
    assert lint_source(source, "repro/core/x.py").clean


def test_dt107_set_pop_and_dict_popitem_fire():
    source = (
        "# repro: decision-path\n"
        "def f(workflow, table):\n"
        "    a = workflow.prerequisites.pop()\n"
        "    b = table.popitem()\n"
        "    return a, b\n"
    )
    report = lint_source(source, "x.py")
    assert [v.rule for v in report.violations] == ["DT107", "DT107"]


def test_dt107_does_not_double_report_the_inner_iter_as_dt101():
    source = (
        "# repro: decision-path\n"
        "def f(workflow):\n"
        "    return next(iter(workflow.prerequisites))\n"
    )
    report = lint_source(source, "x.py")
    assert [v.rule for v in report.violations] == ["DT107"]


def test_dt107_precision_deterministic_extractions_allowed():
    source = (
        "# repro: decision-path\n"
        "def f(workflow, queue, history):\n"
        "    a = min(workflow.prerequisites)\n"
        "    b = next(iter(sorted(workflow.prerequisites)))\n"
        "    c = queue.pop(0)\n"                  # positional: list semantics
        "    d = history.popitem(last=False)\n"   # keyword: declared FIFO order
        "    return a, b, c, d\n"
    )
    assert lint_source(source, "x.py").clean


def test_eq_with_hash_allowed_and_non_decision_path_exempt():
    source = (
        "class K:\n"
        "    def __eq__(self, o):\n"
        "        return True\n"
        "    def __hash__(self):\n"
        "        return 0\n"
    )
    assert lint_source(source, "repro/core/x.py").clean
    no_hash = "class K:\n    def __eq__(self, o):\n        return True\n"
    assert lint_source(no_hash, "repro/metrics/x.py").clean
    assert not lint_source(no_hash, "repro/core/x.py").clean
