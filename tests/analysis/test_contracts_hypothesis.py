"""Randomized-operation properties for the runtime contract layer.

Two properties the contracts must satisfy to be trustworthy:

1. **Soundness on correct code**: the Double Skip List under any valid
   sequence of insert/remove/update operations never trips a contract —
   thousands of randomized op sequences, every mutation checked.
2. **Observational transparency**: attaching a checker (or leaving the
   null checker in place) changes *zero* decisions — the structure's
   observable order is identical with contracts on and off.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.contracts import ContractChecker, ContractViolation
from repro.structures.avl import AvlTree
from repro.structures.dsl import DoubleSkipList

# An op is (code, item_seed, ct, priority); the interpreter resolves the
# item seed against the ids currently present so removes/updates hit.
_OPS = st.lists(
    st.tuples(
        st.sampled_from(["insert", "remove", "update_priority", "update_ct", "pop_head"]),
        st.integers(min_value=0, max_value=99),
        st.floats(min_value=0.0, max_value=1e6, allow_nan=False),
        st.floats(min_value=-1e6, max_value=1e6, allow_nan=False),
    ),
    min_size=1,
    max_size=60,
)


def _apply(dsl, ops):
    """Drive one op sequence; returns the observable decision trail."""
    trail = []
    next_id = 0
    for code, seed, ct, priority in ops:
        present = sorted(dsl._entries)
        if code == "insert":
            dsl.insert(item_id=f"w{next_id}", ct=ct, priority=priority)
            next_id += 1
        elif not present:
            continue
        elif code == "remove":
            dsl.remove(present[seed % len(present)])
        elif code == "update_priority":
            dsl.update_priority(present[seed % len(present)], priority)
        elif code == "update_ct":
            dsl.update_ct(present[seed % len(present)], ct)
        elif code == "pop_head":
            dsl.update_head_ct(ct, priority)
        head_ct = dsl.head_by_ct()
        head_pr = dsl.head_by_priority()
        trail.append(
            (
                head_ct.item_id if head_ct else None,
                head_pr.item_id if head_pr else None,
                [e.item_id for e in dsl.iter_by_priority()],
            )
        )
    return trail


@given(ops=_OPS)
@settings(max_examples=200, deadline=None)
def test_contracts_hold_over_randomized_op_sequences(ops):
    checker = ContractChecker()
    dsl = DoubleSkipList()
    dsl.attach_contracts(checker)
    _apply(dsl, ops)  # no ContractViolation may escape
    assert checker.counters["violations"] == 0
    assert checker.counters["dsl_checks"] >= sum(
        1 for code, *_ in ops if code == "insert"
    )


@given(ops=_OPS)
@settings(max_examples=100, deadline=None)
def test_contracts_hold_on_avl_backend(ops):
    checker = ContractChecker()
    dsl = DoubleSkipList(map_factory=AvlTree)
    dsl.attach_contracts(checker)
    _apply(dsl, ops)
    assert checker.counters["violations"] == 0


@given(ops=_OPS)
@settings(max_examples=150, deadline=None)
def test_disabled_contracts_change_zero_decisions(ops):
    plain = DoubleSkipList()  # null checker: contracts off
    checked = DoubleSkipList()
    checked.attach_contracts(ContractChecker())
    assert _apply(plain, ops) == _apply(checked, ops)


@given(ops=_OPS, bad_ct=st.floats(min_value=-1e6, max_value=1e6, allow_nan=False))
@settings(max_examples=50, deadline=None)
def test_any_stale_cross_link_is_eventually_caught(ops, bad_ct):
    """After corrupting one entry's ct in place, the next mutating op
    must raise (unless the corrupted entry was already gone, or the new
    ct happens to be identical)."""
    checker = ContractChecker()
    dsl = DoubleSkipList()
    dsl.attach_contracts(checker)
    _apply(dsl, ops)
    if not dsl._entries:
        return
    victim = sorted(dsl._entries)[0]
    if dsl.get(victim).ct == bad_ct:
        return
    dsl.get(victim).ct = bad_ct
    try:
        dsl.insert(item_id="fresh", ct=0.5, priority=0.5)
    except ContractViolation:
        return
    raise AssertionError("stale ct cross-link went undetected")
