"""Lint driver mechanics: suppressions, baselines, module keys, errors."""

from pathlib import Path

import pytest

from repro.analysis import LintError, lint_paths, lint_source, load_baseline, module_key
from repro.cli import main as cli_main

FIXTURES = Path(__file__).parent / "fixtures"


# -- inline suppressions ------------------------------------------------------


def test_inline_suppression_moves_violation_to_suppressed():
    report = lint_paths([FIXTURES / "suppressed_violation.py"])
    assert report.clean
    assert [v.rule for v in report.suppressed] == ["DT102"]


def test_suppression_is_rule_specific():
    source = "import time\ndef f():\n    return time.time()  # repro: allow[DT101]\n"
    report = lint_source(source, "repro/core/x.py")
    assert [v.rule for v in report.violations] == ["DT102"]
    assert not report.suppressed


def test_wildcard_and_comma_list_suppressions():
    starred = "import time\ndef f():\n    return time.time()  # repro: allow[*]\n"
    assert lint_source(starred, "repro/core/x.py").clean
    listed = (
        "import time\n"
        "def f(deadline):\n"
        "    return time.time() == deadline  # repro: allow[DT102, DT103]\n"
    )
    assert lint_source(listed, "repro/core/x.py").clean


# -- baselines ----------------------------------------------------------------


def test_baseline_absorbs_budgeted_violations(tmp_path):
    baseline = tmp_path / "baseline.txt"
    baseline.write_text("# known debt\ndt102_wallclock.py:DT102:1\n")
    report = lint_paths([FIXTURES / "dt102_wallclock.py"], baseline_path=baseline)
    assert report.clean
    assert [v.rule for v in report.baselined] == ["DT102"]
    assert not report.stale_baseline


def test_baseline_budget_does_not_hide_excess(tmp_path):
    source = "import time\ndef f():\n    return time.time() + time.time()\n"
    module = tmp_path / "two_hits.py"
    module.write_text(source)
    baseline = tmp_path / "baseline.txt"
    baseline.write_text("two_hits.py:DT102:1\n")
    report = lint_paths([module], baseline_path=baseline)
    assert len(report.baselined) == 1
    assert len(report.violations) == 1  # the second hit still fails the run


def test_stale_baseline_entries_reported_and_fail_cli(tmp_path):
    baseline = tmp_path / "baseline.txt"
    baseline.write_text("clean_module.py:DT101:2\n")
    report = lint_paths([FIXTURES / "clean_module.py"], baseline_path=baseline)
    assert report.clean
    assert report.stale_baseline == [("clean_module.py", "DT101", 2)]
    exit_code = cli_main(
        ["lint", str(FIXTURES / "clean_module.py"), "--baseline", str(baseline)]
    )
    assert exit_code == 1


def test_malformed_baseline_rejected(tmp_path):
    bad = tmp_path / "baseline.txt"
    bad.write_text("not a baseline line\n")
    with pytest.raises(LintError, match="malformed"):
        load_baseline(bad)


def test_unknown_rule_in_baseline_rejected(tmp_path):
    bad = tmp_path / "baseline.txt"
    bad.write_text("x.py:DT999:1\n")
    with pytest.raises(LintError, match="unknown rule"):
        load_baseline(bad)


def test_baseline_counts_accumulate(tmp_path):
    baseline = tmp_path / "baseline.txt"
    baseline.write_text("x.py:DT102:1\nx.py:DT102:2\n")
    assert load_baseline(baseline) == {("x.py", "DT102"): 3}


# -- module keys and directives -----------------------------------------------


def test_module_key_normalises_to_package_root():
    assert module_key("/a/b/src/repro/core/plangen.py") == "repro/core/plangen.py"
    assert module_key("src/repro/noise.py") == "repro/noise.py"
    assert module_key("tests/analysis/fixtures/dt101.py") == "dt101.py"


def test_decision_path_directive_opts_file_in():
    source = "# repro: decision-path\ndef f(w):\n    return list(w.prerequisites)\n"
    assert not lint_source(source, "anywhere.py").clean
    undirected = "def f(w):\n    return list(w.prerequisites)\n"
    assert lint_source(undirected, "anywhere.py").clean


def test_randomness_ok_directive():
    source = "# repro: randomness-ok\nimport random\ndef f():\n    return random.random()\n"
    assert lint_source(source, "repro/core/x.py").clean


# -- driver errors and CLI ----------------------------------------------------


def test_syntax_error_raises_lint_error(tmp_path):
    broken = tmp_path / "broken.py"
    broken.write_text("def f(:\n")
    with pytest.raises(LintError, match="cannot parse"):
        lint_paths([broken])


def test_empty_path_set_rejected(tmp_path):
    empty = tmp_path / "empty_dir_that_exists"
    empty.mkdir()
    with pytest.raises(LintError, match="no python files"):
        lint_paths([empty])


def test_cli_usage_error_exits_2(tmp_path, capsys):
    missing = tmp_path / "nope.txt"
    assert cli_main(["lint", str(missing)]) == 2
    assert "lint:" in capsys.readouterr().err


def test_directory_lint_is_deterministic_and_counts_files():
    first = lint_paths([FIXTURES])
    second = lint_paths([FIXTURES])
    assert first.files_checked == second.files_checked >= 8
    assert [v.render() for v in first.violations] == [v.render() for v in second.violations]
