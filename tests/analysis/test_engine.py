"""Lint driver mechanics: suppressions, baselines, module keys, errors."""

from pathlib import Path

import pytest

from repro.analysis import LintError, lint_paths, lint_source, load_baseline, module_key
from repro.cli import main as cli_main

FIXTURES = Path(__file__).parent / "fixtures"


# -- inline suppressions ------------------------------------------------------


def test_inline_suppression_moves_violation_to_suppressed():
    report = lint_paths([FIXTURES / "suppressed_violation.py"])
    assert report.clean
    assert [v.rule for v in report.suppressed] == ["DT102"]


def test_suppression_is_rule_specific():
    source = "import time\ndef f():\n    return time.time()  # repro: allow[DT101]\n"
    report = lint_source(source, "repro/core/x.py")
    assert [v.rule for v in report.violations] == ["DT102"]
    assert not report.suppressed


def test_wildcard_and_comma_list_suppressions():
    starred = "import time\ndef f():\n    return time.time()  # repro: allow[*]\n"
    assert lint_source(starred, "repro/core/x.py").clean
    listed = (
        "import time\n"
        "def f(deadline):\n"
        "    return time.time() == deadline  # repro: allow[DT102, DT103]\n"
    )
    assert lint_source(listed, "repro/core/x.py").clean


def test_comma_list_suppression_records_every_rule():
    source = (
        "import time\n"
        "def f(deadline):\n"
        "    return time.time() == deadline  # repro: allow[DT102, DT103]\n"
    )
    report = lint_source(source, "repro/core/x.py")
    assert report.clean
    assert sorted(v.rule for v in report.suppressed) == ["DT102", "DT103"]


def test_allow_on_decorator_line_does_not_cover_the_def(tmp_path):
    # Suppressions are strictly line-anchored: an allow on the decorator
    # line neither silences the def-line violation nor counts as used —
    # DT304 reports it stale in the same run.
    (tmp_path / "m.py").write_text(
        "from repro.analysis.annotations import hot_path\n\n"
        "@hot_path  # repro: allow[DT204]\n"
        "def pick(q):\n"
        "    return q\n"
    )
    report = lint_paths([tmp_path], interproc=True)
    assert sorted(v.rule for v in report.violations) == ["DT204", "DT304"]


def test_allow_on_the_def_line_covers_a_decorated_def(tmp_path):
    (tmp_path / "m.py").write_text(
        "from repro.analysis.annotations import hot_path\n\n"
        "@hot_path\n"
        "def pick(q):  # repro: allow[DT204]\n"
        "    return q\n"
    )
    report = lint_paths([tmp_path], interproc=True)
    assert report.clean
    assert [v.rule for v in report.suppressed] == ["DT204"]


# -- baselines ----------------------------------------------------------------


def test_baseline_absorbs_budgeted_violations(tmp_path):
    baseline = tmp_path / "baseline.txt"
    baseline.write_text("# known debt\ndt102_wallclock.py:DT102:1\n")
    report = lint_paths([FIXTURES / "dt102_wallclock.py"], baseline_path=baseline)
    assert report.clean
    assert [v.rule for v in report.baselined] == ["DT102"]
    assert not report.stale_baseline


def test_baseline_budget_does_not_hide_excess(tmp_path):
    source = "import time\ndef f():\n    return time.time() + time.time()\n"
    module = tmp_path / "two_hits.py"
    module.write_text(source)
    baseline = tmp_path / "baseline.txt"
    baseline.write_text("two_hits.py:DT102:1\n")
    report = lint_paths([module], baseline_path=baseline)
    assert len(report.baselined) == 1
    assert len(report.violations) == 1  # the second hit still fails the run


def test_stale_baseline_entries_reported_and_fail_cli(tmp_path):
    baseline = tmp_path / "baseline.txt"
    baseline.write_text("clean_module.py:DT101:2\n")
    report = lint_paths([FIXTURES / "clean_module.py"], baseline_path=baseline)
    assert report.clean
    assert report.stale_baseline == [("clean_module.py", "DT101", 2)]
    exit_code = cli_main(
        ["lint", str(FIXTURES / "clean_module.py"), "--baseline", str(baseline)]
    )
    assert exit_code == 1


def test_malformed_baseline_rejected(tmp_path):
    bad = tmp_path / "baseline.txt"
    bad.write_text("not a baseline line\n")
    with pytest.raises(LintError, match="malformed"):
        load_baseline(bad)


def test_unknown_rule_in_baseline_rejected(tmp_path):
    bad = tmp_path / "baseline.txt"
    bad.write_text("x.py:DT999:1\n")
    with pytest.raises(LintError, match="unknown rule"):
        load_baseline(bad)


def test_baseline_counts_accumulate(tmp_path):
    baseline = tmp_path / "baseline.txt"
    baseline.write_text("x.py:DT102:1\nx.py:DT102:2\n")
    assert load_baseline(baseline) == {("x.py", "DT102"): 3}


# -- module keys and directives -----------------------------------------------


def test_module_key_normalises_to_package_root():
    assert module_key("/a/b/src/repro/core/plangen.py") == "repro/core/plangen.py"
    assert module_key("src/repro/noise.py") == "repro/noise.py"
    assert module_key("tests/analysis/fixtures/dt101.py") == "dt101.py"


def test_module_key_normalises_windows_separators():
    # Baselines written on one platform must bind on another.
    assert module_key(r"src\repro\core\plangen.py") == "repro/core/plangen.py"
    assert module_key(r"C:\work\src\repro\noise.py") == "repro/noise.py"
    assert module_key(r"fixtures\dt101.py") == "dt101.py"


def test_decision_path_directive_opts_file_in():
    source = "# repro: decision-path\ndef f(w):\n    return list(w.prerequisites)\n"
    assert not lint_source(source, "anywhere.py").clean
    undirected = "def f(w):\n    return list(w.prerequisites)\n"
    assert lint_source(undirected, "anywhere.py").clean


def test_randomness_ok_directive():
    source = "# repro: randomness-ok\nimport random\ndef f():\n    return random.random()\n"
    assert lint_source(source, "repro/core/x.py").clean


# -- driver errors and CLI ----------------------------------------------------


def test_syntax_error_raises_lint_error(tmp_path):
    broken = tmp_path / "broken.py"
    broken.write_text("def f(:\n")
    with pytest.raises(LintError, match="cannot parse"):
        lint_paths([broken])


def test_empty_path_set_rejected(tmp_path):
    empty = tmp_path / "empty_dir_that_exists"
    empty.mkdir()
    with pytest.raises(LintError, match="no python files"):
        lint_paths([empty])


def test_cli_usage_error_exits_2(tmp_path, capsys):
    missing = tmp_path / "nope.txt"
    assert cli_main(["lint", str(missing)]) == 2
    assert "lint:" in capsys.readouterr().err


# -- diff mode (only_keys) ----------------------------------------------------


def test_only_keys_restricts_reporting_to_selected_modules():
    full = lint_paths([FIXTURES])
    partial = lint_paths([FIXTURES], only_keys={"dt102_wallclock.py"})
    assert partial.files_checked == 1 < full.files_checked
    assert [v.rule for v in partial.violations] == ["DT102"]
    assert {v.path for v in partial.violations} == {"dt102_wallclock.py"}


def test_only_keys_skips_stale_baseline_accounting(tmp_path):
    baseline = tmp_path / "baseline.txt"
    baseline.write_text("dt101_set_iteration.py:DT101:1\n")
    partial = lint_paths(
        [FIXTURES], baseline_path=baseline, only_keys={"dt102_wallclock.py"}
    )
    # A partial run cannot tell a stale entry from an unvisited module.
    assert partial.stale_baseline == []
    full = lint_paths([FIXTURES / "clean_module.py"], baseline_path=baseline)
    assert full.stale_baseline  # the full run still reports it


def test_only_keys_still_sees_whole_program_for_interproc():
    # The selected module's violation chains through an unselected helper:
    # the graph must cover the whole corpus even when reporting one file.
    partial = lint_paths(
        [FIXTURES / "interproc"], interproc=True, only_keys={"ip_sink.py"}
    )
    (hit,) = partial.violations
    assert hit.rule == "DT201"
    assert "ip_helpers.py::staged_inputs" in hit.message


def test_changed_module_keys_from_a_real_git_repo(tmp_path, monkeypatch):
    import shutil
    import subprocess

    from repro.cli import _changed_module_keys

    if shutil.which("git") is None:
        pytest.skip("git not installed")
    env = {"GIT_AUTHOR_NAME": "t", "GIT_AUTHOR_EMAIL": "t@t",
           "GIT_COMMITTER_NAME": "t", "GIT_COMMITTER_EMAIL": "t@t"}
    for key, value in env.items():
        monkeypatch.setenv(key, value)
    monkeypatch.chdir(tmp_path)
    subprocess.run(["git", "init", "-q"], check=True)
    (tmp_path / "a.py").write_text("x = 1\n")
    (tmp_path / "b.py").write_text("y = 1\n")
    subprocess.run(["git", "add", "."], check=True)
    subprocess.run(["git", "commit", "-qm", "seed"], check=True)
    assert _changed_module_keys("HEAD") == set()
    (tmp_path / "a.py").write_text("x = 2\n")
    assert _changed_module_keys("HEAD") == {"a.py"}
    assert _changed_module_keys("not-a-ref") is None  # falls back to full tree


def test_cli_diff_with_no_changed_files_exits_clean(tmp_path, monkeypatch, capsys):
    import shutil
    import subprocess

    if shutil.which("git") is None:
        pytest.skip("git not installed")
    for key in ("GIT_AUTHOR_NAME", "GIT_COMMITTER_NAME"):
        monkeypatch.setenv(key, "t")
    for key in ("GIT_AUTHOR_EMAIL", "GIT_COMMITTER_EMAIL"):
        monkeypatch.setenv(key, "t@t")
    monkeypatch.chdir(tmp_path)
    subprocess.run(["git", "init", "-q"], check=True)
    fixture = tmp_path / "dirty.py"
    fixture.write_text("import time\ndef f():\n    return time.time()\n")
    subprocess.run(["git", "add", "."], check=True)
    subprocess.run(["git", "commit", "-qm", "seed"], check=True)
    # The file has a violation, but nothing changed versus HEAD.
    assert cli_main(["lint", str(fixture), "--diff", "HEAD"]) == 0
    assert "no Python files changed" in capsys.readouterr().out
    # Once it changes, the violation is back in scope.
    fixture.write_text("import time\ndef g():\n    return time.time()\n")
    assert cli_main(["lint", str(fixture), "--diff", "HEAD"]) == 1


def test_directory_lint_is_deterministic_and_counts_files():
    first = lint_paths([FIXTURES])
    second = lint_paths([FIXTURES])
    assert first.files_checked == second.files_checked >= 8
    assert [v.render() for v in first.violations] == [v.render() for v in second.violations]
