"""The DT401-DT405 hot-path performance pass: regions, rules, precision."""

import ast
from pathlib import Path

from repro.analysis import lint_paths
from repro.analysis.callgraph import build_call_graph
from repro.analysis.interproc import apply_hot_registry
from repro.analysis.perflint import PERF_RULES, analyze_perf, hot_functions

FIXTURES = Path(__file__).parent / "fixtures" / "perflint"


def perf(modules):
    """Raw DT4xx violations for a ``{key: source}`` corpus."""
    graph = build_call_graph(
        {key: (src, ast.parse(src)) for key, src in modules.items()}
    )
    apply_hot_registry(graph)
    return analyze_perf(graph)


def perf_src(src):
    return perf({"m.py": src})


def rules_of(violations):
    return [v.rule for v in violations]


# -- the seeded fixture corpus ------------------------------------------------


def test_corpus_is_clean_without_the_analyzer():
    assert lint_paths([FIXTURES]).clean


def test_every_perf_rule_fires_on_the_corpus():
    report = lint_paths([FIXTURES], interproc=True)
    assert {v.rule for v in report.violations} == set(PERF_RULES)


def test_corpus_findings_are_where_the_fixtures_say():
    report = lint_paths([FIXTURES], interproc=True)
    by_rule = {}
    for v in report.violations:
        by_rule.setdefault(v.rule, set()).add(v.path)
    assert by_rule["DT401"] == {"pf_alloc.py"}
    assert by_rule["DT402"] == {"pf_chain.py"}
    assert by_rule["DT403"] == {"pf_trace.py"}
    assert by_rule["DT404"] == {"pf_generator.py"}
    assert by_rule["DT405"] == {"pf_except.py"}


def test_perf_report_is_deterministic():
    first = lint_paths([FIXTURES], interproc=True)
    second = lint_paths([FIXTURES], interproc=True)
    assert [v.render() for v in first.violations] == [
        v.render() for v in second.violations
    ]


# -- coverage: which functions the pass looks at ------------------------------


def test_only_hot_or_budgeted_functions_are_analyzed():
    cold = (
        "def plain(sim, events):\n"
        "    for event in events:\n"
        "        sim.clock.advance([event])\n"
        "        sim.clock.note([event])\n"
    )
    assert perf_src(cold) == []


def test_hot_path_comment_and_budget_both_grant_coverage():
    marked = (
        "# repro: hot-path\n"
        "def tick(sim, events):\n"
        "    for event in events:\n"
        "        sim.clock.advance(event)\n"
        "        sim.clock.note(event)\n"
    )
    assert rules_of(perf_src(marked)) == ["DT402"]
    budgeted = marked.replace("# repro: hot-path", "# repro: budget O(n)")
    assert rules_of(perf_src(budgeted)) == ["DT402"]


def test_hot_functions_requires_applied_registry():
    graph = build_call_graph({"m.py": ("def f():\n    pass\n", ast.parse("def f():\n    pass\n"))})
    assert hot_functions(graph) == []


# -- DT401 --------------------------------------------------------------------


def test_dt401_fires_on_literals_comprehensions_and_string_builds():
    src = (
        "# repro: budget O(n)\n"
        "def drain(queue, sink):\n"
        "    while queue:\n"
        "        item = queue.pop_head()\n"
        "        sink({'k': item})\n"
        "        sink([x for x in item.parts])\n"
        "        sink(f'task {item}')\n"
    )
    assert rules_of(perf_src(src)) == ["DT401", "DT401", "DT401"]


def test_dt401_bounded_loops_are_exempt():
    src = (
        "# repro: budget O(n)\n"
        "def probe(sink):\n"
        "    for kind in ('map', 'reduce'):\n"
        "        sink([kind])\n"
    )
    assert perf_src(src) == []


def test_dt401_raise_and_unpack_and_constant_tuples_are_exempt():
    src = (
        "# repro: budget O(n)\n"
        "def drain(queue):\n"
        "    while queue:\n"
        "        a, b = queue.x, queue.y\n"          # stack rotation
        "        kinds = ('map', 'reduce')\n"        # folded constant
        "        if a is None:\n"
        "            raise KeyError(f'empty {b}')\n"  # error path
        "        queue.push(a, b)\n"
    )
    assert perf_src(src) == []


def test_dt401_trace_gated_blocks_are_exempt():
    src = (
        "# repro: budget O(n)\n"
        "def drain(queue, tracer):\n"
        "    tracing = tracer.enabled\n"
        "    while queue:\n"
        "        item = queue.pop_head()\n"
        "        if tracing:\n"
        "            tracer.record('pop', [item])\n"
        "        queue.note(item)\n"
    )
    assert perf_src(src) == []


def test_dt401_outside_loops_is_silent():
    src = (
        "# repro: budget O(n)\n"
        "def summarize(queue):\n"
        "    return [queue.head, queue.tail]\n"
    )
    assert perf_src(src) == []


# -- DT402 --------------------------------------------------------------------


def test_dt402_counts_prefixes_of_longer_chains():
    src = (
        "# repro: budget O(n)\n"
        "def tick(sim):\n"
        "    while sim.queue:\n"
        "        sim.clock.advance(1)\n"
        "        sim.clock.note(1)\n"
    )
    (v,) = perf_src(src)
    assert v.rule == "DT402"
    assert "`sim.clock`" in v.message


def test_dt402_store_to_chain_or_prefix_kills_it():
    src = (
        "# repro: budget O(n)\n"
        "def tick(sim, events):\n"
        "    for event in events:\n"
        "        sim.clock = event.make_clock()\n"
        "        sim.clock.advance(1)\n"
        "        sim.clock.note(1)\n"
    )
    assert perf_src(src) == []


def test_dt402_loop_variable_chains_are_prebindable_per_iteration():
    # `event` rebinds between iterations but is stable within one, so
    # `delay = event.delay` at the top of the body is a valid pre-bind.
    src = (
        "# repro: budget O(n)\n"
        "def tick(sim, events):\n"
        "    for event in events:\n"
        "        sim.apply(event.delay)\n"
        "        sim.log(event.delay)\n"
    )
    (v,) = perf_src(src)
    assert "`event.delay`" in v.message


def test_dt402_exclusive_branches_do_not_sum():
    src = (
        "# repro: budget O(n)\n"
        "def route(self, task):\n"
        "    if task.kind:\n"
        "        self.maps.add(task)\n"
        "    else:\n"
        "        self.reduces.add(task)\n"
    )
    assert perf_src(src) == []


def test_dt402_early_return_makes_the_tail_the_else_arm():
    src = (
        "# repro: budget O(1)\n"
        "def poke(self, task):\n"
        "    if task.done:\n"
        "        self.sink.note(task)\n"
        "        return\n"
        "    self.sink.push(task)\n"
    )
    assert perf_src(src) == []


def test_dt402_sibling_ifs_both_execute_and_sum():
    src = (
        "# repro: budget O(1)\n"
        "def poke(self, a, b):\n"
        "    if a:\n"
        "        self.sink.note(a)\n"
        "    if b:\n"
        "        self.sink.note(b)\n"
    )
    (v,) = perf_src(src)
    assert "`self.sink.note`" in v.message


def test_dt402_one_report_per_chain_per_function():
    src = (
        "# repro: budget O(n)\n"
        "def tick(self, events):\n"
        "    self.clock.start()\n"
        "    for event in events:\n"
        "        self.clock.advance(event)\n"
    )
    violations = perf_src(src)
    assert rules_of(violations) == ["DT402"]


# -- DT403 --------------------------------------------------------------------


def test_dt403_gating_idioms_are_recognised():
    src = (
        "# repro: budget O(n)\n"
        "def tick(self, events):\n"
        "    tracing = self.tracer.enabled\n"
        "    for event in events:\n"
        "        if tracing:\n"
        "            self.tracer.record('e', event)\n"
        "        if not tracing:\n"
        "            self.apply(event)\n"
        "        else:\n"
        "            self.tracer.incr('n', 'events')\n"
    )
    assert perf_src(src) == []


def test_dt403_inline_enabled_gate_is_recognised():
    src = (
        "# repro: budget O(n)\n"
        "def tick(self, events):\n"
        "    for event in events:\n"
        "        if self.tracer.enabled:\n"
        "            self.tracer.record('e', event)\n"
        "        self.apply(event)\n"
    )
    assert perf_src(src) == []


def test_repeated_gate_loads_themselves_get_dt402():
    # `self.tracer.enabled` read twice per call is itself a chain to
    # pre-bind — exactly the `tracing = self.tracer.enabled` idiom.
    src = (
        "# repro: budget O(n)\n"
        "def tick(self, events):\n"
        "    tracing = self.tracer.enabled\n"
        "    for event in events:\n"
        "        if self.tracer.enabled:\n"
        "            self.tracer.record('e', event)\n"
        "        self.apply(event)\n"
    )
    (v,) = perf_src(src)
    assert v.rule == "DT402"
    assert "`self.tracer.enabled`" in v.message


def test_dt403_ungated_call_fires(tmp_path):
    src = (
        "# repro: budget O(n)\n"
        "def tick(self, events):\n"
        "    for event in events:\n"
        "        self.logger.info(event)\n"
    )
    assert rules_of(perf_src(src)) == ["DT403"]
    # Without --interproc the pass does not run at all.
    target = tmp_path / "hot.py"
    target.write_text(src)
    assert lint_paths([target]).clean


def test_dt403_non_trace_receivers_do_not_fire():
    src = (
        "# repro: budget O(n)\n"
        "def tick(self, events):\n"
        "    for event in events:\n"
        "        self.tracker.assign(event)\n"
    )
    assert perf_src(src) == []


# -- DT404 --------------------------------------------------------------------


def test_dt404_strict_budgets_reject_generator_indirection():
    gen = "# repro: budget O(1)\ndef g(xs):\n    yield xs[0]\n"
    assert rules_of(perf_src(gen)) == ["DT404"]
    genexp = "# repro: budget O(log n)\ndef g(xs):\n    return sum(x for x in xs)\n"
    assert rules_of(perf_src(genexp)) == ["DT404"]
    itert = (
        "import itertools\n"
        "# repro: budget O(1)\n"
        "def g(a, b):\n"
        "    return itertools.chain(a, b)\n"
    )
    assert rules_of(perf_src(itert)) == ["DT404"]


def test_dt404_loose_budgets_allow_generators():
    src = "# repro: budget O(n)\ndef g(xs):\n    yield from xs\n"
    assert perf_src(src) == []


# -- DT405 --------------------------------------------------------------------


def test_dt405_defaultable_exceptions_fire_in_hot_loops():
    src = (
        "# repro: budget O(n)\n"
        "def resolve(table, keys):\n"
        "    out = 0\n"
        "    for key in keys:\n"
        "        try:\n"
        "            out += table[key]\n"
        "        except KeyError:\n"
        "            pass\n"
        "    return out\n"
    )
    (v,) = perf_src(src)
    assert v.rule == "DT405"
    assert "dict.get" in v.message


def test_dt405_other_exception_types_are_not_its_business():
    src = (
        "# repro: budget O(n)\n"
        "def resolve(table, keys):\n"
        "    for key in keys:\n"
        "        try:\n"
        "            table.apply(key)\n"
        "        except ValueError:\n"
        "            pass\n"
    )
    assert perf_src(src) == []


def test_dt405_strict_budget_body_counts_without_a_loop():
    src = (
        "# repro: budget O(1)\n"
        "def head(table, key):\n"
        "    try:\n"
        "        return table[key]\n"
        "    except KeyError:\n"
        "        return None\n"
    )
    (v,) = perf_src(src)
    assert v.rule == "DT405"


# -- engine integration -------------------------------------------------------


def test_inline_allow_suppresses_perf_findings(tmp_path):
    src = (
        "# repro: budget O(n)\n"
        "def drain(queue, sink):\n"
        "    while queue:\n"
        "        sink([queue.pop_head()])  # repro: allow[DT401]\n"
    )
    target = tmp_path / "hot.py"
    target.write_text(src)
    report = lint_paths([target], interproc=True)
    assert report.clean
    assert rules_of(report.suppressed) == ["DT401"]
