# repro: decision-path
"""Fixture: a decision-path module every rule should pass."""


class Record(object):
    __slots__ = ("name", "rank")

    def __init__(self, name, rank):
        self.name = name
        self.rank = rank

    def __eq__(self, other):
        return isinstance(other, Record) and other.name == self.name

    def __hash__(self):
        return hash(self.name)


def unlock_order(workflow):
    return sorted(workflow.prerequisites)


def residual(workflow, remaining):
    return frozenset(p for p in workflow.prerequisites if p in remaining)


def behind(deadline, now):
    return now > deadline
