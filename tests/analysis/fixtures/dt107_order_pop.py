# repro: decision-path
"""Fixture: DT107 — order-dependent single-element extraction."""


def any_prerequisite(workflow):
    return next(iter(workflow.prerequisites))
