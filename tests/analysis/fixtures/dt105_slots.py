"""Fixture: DT105 — self attribute missing from __slots__."""


class Box(object):
    __slots__ = ("present",)

    def fill(self):
        self.present = 1
        self.missing = 2
