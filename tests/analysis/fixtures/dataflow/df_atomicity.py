# repro: decision-path
"""Fixture: DT303 — a may-raise call between paired mutations."""


class QueueState:
    def __init__(self):
        self.entries = {}
        self.count = 0


def _parse(token):
    if not token:
        raise ValueError("empty token")
    return token


def ingest(state, token):
    state.count += 1
    value = _parse(token)
    state.entries[token] = value
    return value


def ingest_atomic(state, token):
    value = _parse(token)
    state.count += 1
    state.entries[token] = value
    return value
