"""Fixture: DT301 — pool-reachable write to module-level mutable state."""

_CACHE = {}


def _record(key, value):
    _CACHE[key] = value


# repro: entrypoint[fork]
def run_shard(key):
    _record(key, 1)
    return key


# repro: entrypoint[fork]
def run_regenerated(key):
    local = {}
    local[key] = 1
    return local
