# repro: randomness-ok
"""Fixture: DT305 — a wall-clock value leaking into simulated time."""

import time


def lagged(now):
    stamp = time.time()
    return stamp - now


def bench_timing(now):
    start = time.perf_counter()
    elapsed = time.perf_counter() - start
    sim_elapsed = now + 1.0
    return elapsed, sim_elapsed
