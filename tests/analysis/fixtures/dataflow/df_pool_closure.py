"""Fixture: DT302 — a closure crossing the Pool boundary."""

import multiprocessing


def shard(cell):
    return cell * 2


def fan_out(cells, bias):
    def _worker(cell):
        return shard(cell) + bias

    with multiprocessing.Pool(2) as pool:
        return pool.map(_worker, cells)


def fan_out_module_level(cells):
    with multiprocessing.Pool(2) as pool:
        return pool.map(shard, cells)
