"""Fixture: DT304 — one live suppression, one stale one."""

import time


def stamp():
    return time.time()  # repro: allow[DT102]


def plain(values):
    return sorted(values)  # repro: allow[DT101]
