"""Fixture: DT104 — mutating an immutable model object."""


def extend(workflow, extra):
    workflow.deadline = workflow.deadline + extra
