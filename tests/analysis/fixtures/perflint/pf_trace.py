"""Fixture: DT403 — an un-gated tracer call on the hot path."""


# repro: budget O(n)
def complete(tasks, tracer):
    done = 0
    for task in tasks:
        tracer.record("complete", task.task_id)
        done += 1
    return done
