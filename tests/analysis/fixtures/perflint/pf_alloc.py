"""Fixture: DT401 — per-iteration allocation in a hot loop."""


# repro: budget O(n)
def drain(queue, sink):
    while queue:
        item = queue.pop_head()
        sink([item.key, item.value])
