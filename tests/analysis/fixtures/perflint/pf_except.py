"""Fixture: DT405 — try/except as per-iteration control flow."""


# repro: budget O(n)
def resolve(table, keys, sink):
    for key in keys:
        try:
            value = table[key]
        except KeyError:
            value = None
        sink(value)
