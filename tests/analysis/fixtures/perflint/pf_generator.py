"""Fixture: DT404 — generator indirection under a strict budget."""


# repro: budget O(1)
def head_pair(heads):
    yield heads[0]
    yield heads[1]
