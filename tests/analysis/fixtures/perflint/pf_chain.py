"""Fixture: DT402 — the same attribute chain loaded twice per iteration."""


# repro: budget O(n)
def advance_all(sim, events):
    for event in events:
        sim.clock.advance(event.delay)
        sim.clock.note(event.delay)
