# repro: decision-path
"""Fixture: DT101 — set iteration in an order-sensitive position."""


def unlock_order(workflow):
    return [name for name in workflow.prerequisites]
