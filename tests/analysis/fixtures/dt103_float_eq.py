"""Fixture: DT103 — exact float equality on a deadline."""


def at_deadline(deadline, now):
    return deadline == now
