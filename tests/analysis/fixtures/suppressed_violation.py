"""Fixture: a DT102 hit silenced by an inline suppression."""

import time


def stamp():
    # Bench harness wall-clock: never feeds a scheduling decision.
    return time.time()  # repro: allow[DT102]
