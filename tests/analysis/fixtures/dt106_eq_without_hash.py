# repro: decision-path
"""Fixture: DT106 — __eq__ without __hash__ on a decision-path type."""


class CacheKey:
    def __init__(self, value):
        self.value = value

    def __eq__(self, other):
        return isinstance(other, CacheKey) and other.value == self.value
