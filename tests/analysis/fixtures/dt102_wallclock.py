"""Fixture: DT102 — wall-clock read in decision code."""

import time


def stamp():
    return time.time()
