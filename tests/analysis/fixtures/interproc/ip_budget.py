"""Fixture: DT203 — O(n) work reachable from an O(log n) budget."""


def _scan(entries):
    total = 0
    for entry in entries:
        total += entry
    return total


# repro: budget O(log n)
def reposition(entries):
    return _scan(entries)
