"""Fixture: DT204 — a hot-path function without a declared budget."""


# repro: hot-path
def advance(queue):
    return queue.pop_head()
