# repro: decision-path
"""Fixture: DT202 — an unresolvable dynamic call in a decision path."""


def pick(chooser, items):
    return chooser(items)
