# repro: decision-path
"""Fixture: DT201 — a decision-path caller reaching a tainted helper."""

from ip_helpers import staged_inputs


def choose(root):
    return staged_inputs(root)[0]
