"""Fixture: DT201 — a ``@decision_path`` function in a non-decision module."""

import os

from repro.analysis.annotations import decision_path


@decision_path
def ordered_inputs(root):
    return os.listdir(root)
