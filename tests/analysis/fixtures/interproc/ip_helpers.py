"""Fixture: nondeterministic helpers outside any decision path.

Intraprocedurally clean — ``os.listdir`` is only a taint *seed* for the
interprocedural pass (directory order is filesystem-dependent), which is
exactly why DT201 exists: the hazard is invisible file-by-file.
"""

import os


def staged_inputs(root):
    return os.listdir(root)


def double(x):
    return 2 * x
