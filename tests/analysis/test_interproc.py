"""The DT201-DT204 whole-program pass: fixtures, chains, suppressions."""

import ast
from pathlib import Path

from repro.analysis import lint_paths
from repro.analysis.callgraph import build_call_graph
from repro.analysis.interproc import HOT_PATH_REGISTRY, INTERPROC_RULES, analyze_graph

FIXTURES = Path(__file__).parent / "fixtures" / "interproc"


def analyze(modules):
    """Raw interproc violations for ``{module_key: source}``."""
    graph = build_call_graph(
        {key: (src, ast.parse(src)) for key, src in modules.items()}
    )
    return analyze_graph(graph)


# -- the seeded fixture corpus ------------------------------------------------


def test_corpus_is_clean_without_the_analyzer():
    report = lint_paths([FIXTURES])
    assert report.clean
    assert not report.suppressed


def test_every_interproc_rule_fires_on_the_corpus():
    report = lint_paths([FIXTURES], interproc=True)
    fired = {v.rule for v in report.violations}
    assert fired == set(INTERPROC_RULES)


def test_corpus_findings_are_where_the_fixtures_say():
    report = lint_paths([FIXTURES], interproc=True)
    by_rule = {}
    for v in report.violations:
        by_rule.setdefault(v.rule, []).append(v)
    assert {v.path for v in by_rule["DT201"]} == {"ip_sink.py", "ip_annotated_sink.py"}
    assert [v.path for v in by_rule["DT202"]] == ["ip_dynamic.py"]
    assert [v.path for v in by_rule["DT203"]] == ["ip_budget.py"]
    assert [v.path for v in by_rule["DT204"]] == ["ip_hot.py"]


def test_dt201_message_carries_chain_and_source_location():
    report = lint_paths([FIXTURES], interproc=True)
    (hit,) = [v for v in report.violations if v.rule == "DT201" and v.path == "ip_sink.py"]
    assert "ip_sink.py::choose -> ip_helpers.py::staged_inputs" in hit.message
    assert "source at ip_helpers.py:" in hit.message


def test_interproc_report_is_deterministic():
    first = lint_paths([FIXTURES], interproc=True)
    second = lint_paths([FIXTURES], interproc=True)
    assert [v.render() for v in first.violations] == [v.render() for v in second.violations]


# -- DT201: taint -------------------------------------------------------------


def test_taint_propagates_through_intermediate_helpers():
    violations = analyze({
        "lib.py": (
            "import os\n\n"
            "def listing(root):\n    return os.listdir(root)\n\n"
            "def relay(root):\n    return listing(root)\n"
        ),
        "repro/core/x.py": (
            "from lib import relay\n\n"
            "def decide(root):\n    return relay(root)[0]\n"
        ),
    })
    (hit,) = [v for v in violations if v.rule == "DT201"]
    assert hit.path == "repro/core/x.py"
    assert "lib.py::relay -> lib.py::listing" in hit.message


def test_seeds_inside_decision_modules_left_to_intra_rules():
    # A DT101 source already in a decision-path module must not be
    # re-reported by the taint pass (the intra rules own it).
    violations = analyze({
        "repro/core/x.py": (
            "def unlock(w):\n    return [n for n in w.prerequisites]\n\n"
            "def decide(w):\n    return unlock(w)\n"
        ),
    })
    assert [v for v in violations if v.rule == "DT201"] == []


def test_allow_on_the_seed_line_stops_the_taint():
    violations = analyze({
        "lib.py": (
            "import os\n\n"
            "def listing(root):\n"
            "    return sorted(os.listdir(root))  # repro: allow[DT201]\n"
        ),
        "repro/core/x.py": (
            "from lib import listing\n\n"
            "def decide(root):\n    return listing(root)[0]\n"
        ),
    })
    assert [v for v in violations if v.rule == "DT201"] == []


# -- DT202: dynamic-call holes ------------------------------------------------


def test_dynamic_call_outside_decision_path_not_reported():
    violations = analyze({
        "lib.py": "def apply(fn, x):\n    return fn(x)\n",
    })
    assert [v for v in violations if v.rule == "DT202"] == []


def test_calls_annotation_silences_dt202_when_a_target_resolves():
    violations = analyze({
        "repro/core/x.py": (
            "def target(x):\n    return x\n\n"
            "def decide(fn, x):\n"
            "    return fn(x)  # repro: calls[target]\n"
        ),
    })
    assert [v for v in violations if v.rule == "DT202"] == []


# -- DT203/DT204: budgets -----------------------------------------------------


def test_regression_linear_loop_injected_into_log_budget_flagged_with_chain():
    # The ISSUE's acceptance regression: an O(n) scan smuggled into a
    # helper below an O(log n)-budgeted entry point must be flagged at the
    # loop with the full chain from the budgeted root.
    violations = analyze({
        "repro/structures/q.py": (
            "def _rebalance(nodes):\n"
            "    for node in nodes:\n"
            "        node.touch()\n\n"
            "# repro: budget O(log n)\n"
            "def insert(tree, nodes, key):\n"
            "    _rebalance(nodes)\n"
            "    return key\n"
        ),
    })
    (hit,) = [v for v in violations if v.rule == "DT203"]
    assert hit.line == 2  # the loop, not the budgeted def
    assert "chain: repro/structures/q.py::insert -> repro/structures/q.py::_rebalance" in hit.message
    assert "budget O(log n)" in hit.message


def test_call_into_higher_budget_function_flagged_at_the_call():
    violations = analyze({
        "m.py": (
            "# repro: budget O(n)\n"
            "def scan(xs):\n"
            "    return sum(xs)\n\n"
            "# repro: budget O(1)\n"
            "def peek(xs):\n"
            "    return scan(xs)\n"
        ),
    })
    (hit,) = [v for v in violations if v.rule == "DT203"]
    assert hit.line == 7
    assert "declared O(n)" in hit.message and "budget O(1)" in hit.message


def test_declared_callee_within_budget_is_a_boundary():
    # An O(n) site inside an O(n)-budgeted callee is that budget's
    # business; the O(n) caller must not be charged for it.
    violations = analyze({
        "m.py": (
            "# repro: budget O(n)\n"
            "def scan(xs):\n"
            "    return sum(xs)\n\n"
            "# repro: budget O(n)\n"
            "def outer(xs):\n"
            "    return scan(xs)\n"
        ),
    })
    assert [v for v in violations if v.rule == "DT203"] == []


def test_bounded_iterables_and_while_loops_exempt():
    violations = analyze({
        "m.py": (
            "# repro: budget O(1)\n"
            "def f(flag, node):\n"
            "    for kind in ('map', 'reduce'):\n"
            "        flag = not flag\n"
            "    while node.down is not None:\n"
            "        node = node.down\n"
            "    return node\n"
        ),
    })
    assert [v for v in violations if v.rule == "DT203"] == []


def test_ambiguous_cha_edges_excluded_from_budget_arithmetic():
    violations = analyze({
        "m.py": (
            "class A:\n"
            "    def step(self, xs):\n"
            "        return sum(xs)\n"
            "class B:\n"
            "    def step(self, xs):\n"
            "        return 0\n\n"
            "# repro: budget O(1)\n"
            "def run(obj, xs):\n"
            "    return obj.step(xs)\n"
        ),
    })
    assert [v for v in violations if v.rule == "DT203"] == []


def test_dt204_fires_for_decorator_comment_and_builtin_registry():
    violations = analyze({
        "m.py": (
            "from repro.analysis.annotations import hot_path\n\n"
            "@hot_path\n"
            "def undeclared(q):\n    return q\n\n"
            "# repro: hot-path\n"
            "def marked(q):\n    return q\n\n"
            "# repro: hot-path\n"
            "# repro: budget O(1)\n"
            "def declared(q):\n    return q\n"
        ),
        "repro/structures/dsl.py": (
            "class DoubleSkipList:\n"
            "    def insert(self, item):\n"
            "        return item\n"
        ),
    })
    hits = {v.path: v for v in violations if v.rule == "DT204"}
    assert {v.message.split()[2] for v in violations if v.rule == "DT204" and v.path == "m.py"} == {
        "undeclared", "marked",
    }
    # The built-in registry binds even without any marker comment.
    assert "repro/structures/dsl.py" in hits
    assert "DoubleSkipList.insert" in HOT_PATH_REGISTRY["repro/structures/dsl.py"]


# -- engine integration -------------------------------------------------------


def test_inline_allow_suppresses_interproc_violation_through_engine(tmp_path):
    (tmp_path / "lib.py").write_text(
        "import os\n\ndef listing(root):\n    return os.listdir(root)\n"
    )
    (tmp_path / "sink.py").write_text(
        "# repro: decision-path\n"
        "from lib import listing\n\n"
        "def decide(root):\n"
        "    return listing(root)[0]  # repro: allow[DT201]\n"
    )
    report = lint_paths([tmp_path], interproc=True)
    assert report.clean
    assert [v.rule for v in report.suppressed] == ["DT201"]


def test_baseline_budgets_interproc_violations(tmp_path):
    baseline = tmp_path / "baseline.txt"
    baseline.write_text(
        "ip_annotated_sink.py:DT201:1\n"
        "ip_sink.py:DT201:1\n"
        "ip_dynamic.py:DT202:1\n"
        "ip_budget.py:DT203:1\n"
        "ip_hot.py:DT204:1\n"
    )
    report = lint_paths([FIXTURES], baseline_path=baseline, interproc=True)
    assert report.clean
    assert not report.stale_baseline
    assert sorted({v.rule for v in report.baselined}) == list(INTERPROC_RULES)
