"""Tier-1 gate: the source tree itself passes the determinism lint.

This is the test that makes the rules *binding*: a new set iteration in a
decision path, a wall-clock call, or a frozen-model mutation anywhere
under ``src/repro`` fails the suite.  Known debt must be budgeted in the
checked-in ``lint-baseline.txt`` (which reports stale entries, so the
budget only ever shrinks) or justified inline with ``# repro: allow[...]``.
"""

from pathlib import Path

import repro
from repro.analysis import lint_paths
from repro.cli import main as cli_main

PACKAGE_ROOT = Path(repro.__file__).parent
BASELINE = Path(__file__).parents[2] / "lint-baseline.txt"


def test_source_tree_is_lint_clean():
    report = lint_paths([PACKAGE_ROOT], baseline_path=BASELINE)
    rendered = "\n".join(v.render() for v in report.violations)
    assert report.clean, f"determinism lint violations:\n{rendered}"
    stale = "\n".join(f"{p}:{r}:{c}" for p, r, c in report.stale_baseline)
    assert not report.stale_baseline, f"stale baseline entries (delete them):\n{stale}"
    assert report.files_checked >= 50  # the whole package was actually walked


def test_cli_gate_matches_library_gate(capsys):
    exit_code = cli_main(["lint", str(PACKAGE_ROOT), "--baseline", str(BASELINE)])
    out = capsys.readouterr().out
    assert exit_code == 0, out


def test_source_tree_passes_the_interprocedural_gate():
    """The whole-program pass (DT201-DT204) is binding too: a set-order
    helper reachable from a decision path, an undeclared budget on a §IV
    hot-path function, or an O(n) scan under an O(log n) budget anywhere
    in ``src/repro`` fails the suite."""
    report = lint_paths([PACKAGE_ROOT], baseline_path=BASELINE, interproc=True)
    rendered = "\n".join(v.render() for v in report.violations)
    assert report.clean, f"interprocedural lint violations:\n{rendered}"
    assert not report.stale_baseline


def test_hot_path_registry_functions_all_declare_budgets():
    """Belt and braces for the §IV complexity claims: every registry entry
    resolves to a real function carrying an explicit budget."""
    from repro.analysis.callgraph import build_call_graph_from_paths
    from repro.analysis.interproc import HOT_PATH_REGISTRY

    graph = build_call_graph_from_paths([PACKAGE_ROOT])
    for mod_key, names in HOT_PATH_REGISTRY.items():
        assert mod_key in graph.modules, mod_key
        for name in names:
            fn = graph.modules[mod_key].functions.get(name)
            assert fn is not None, f"{mod_key}: {name} not found"
            assert fn.budget is not None, f"{mod_key}: {name} has no budget"
