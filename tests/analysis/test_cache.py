"""The content-hashed incremental lint cache: hits, invalidation, safety."""

import json
from pathlib import Path

from repro.analysis import lint_paths
from repro.analysis.cache import (
    LintCache,
    module_fingerprint,
    program_digest,
    ruleset_fingerprint,
)
from repro.cli import main as cli_main

DIRTY = (
    '"""Reads the wall clock."""\n'
    "\n"
    "import time\n"
    "\n"
    "\n"
    "def stamp():\n"
    "    return time.time()\n"
)

CLEAN = (
    '"""No violations here."""\n'
    "\n"
    "\n"
    "def double(x):\n"
    "    return 2 * x\n"
)


def make_tree(tmp_path):
    tree = tmp_path / "tree"
    tree.mkdir()
    (tree / "dirty.py").write_text(DIRTY)
    (tree / "clean.py").write_text(CLEAN)
    return tree


def run(tree, cache_dir, **kwargs):
    return lint_paths([tree], incremental=True, cache_dir=cache_dir, **kwargs)


# -- hits and replay ----------------------------------------------------------


def test_cold_run_summarizes_everything_and_warm_run_nothing(tmp_path):
    tree = make_tree(tmp_path)
    cache_dir = tmp_path / "cache"
    cold = run(tree, cache_dir)
    assert cold.summaries_recomputed == 2
    warm = run(tree, cache_dir)
    assert warm.summaries_recomputed == 0
    assert [v.render() for v in warm.violations] == [
        v.render() for v in cold.violations
    ]
    assert warm.files_checked == cold.files_checked == 2
    assert [v.rule for v in warm.violations] == ["DT102"]


def test_replay_matches_a_non_incremental_run_exactly(tmp_path):
    tree = make_tree(tmp_path)
    cache_dir = tmp_path / "cache"
    run(tree, cache_dir, interproc=True)
    warm = run(tree, cache_dir, interproc=True)
    reference = lint_paths([tree], interproc=True)
    assert [v.render() for v in warm.violations] == [
        v.render() for v in reference.violations
    ]
    assert [v.render() for v in warm.suppressed] == [
        v.render() for v in reference.suppressed
    ]
    assert warm.stale_baseline == reference.stale_baseline
    assert reference.summaries_recomputed is None  # non-incremental runs


def test_noop_edit_resummarizes_exactly_one_module(tmp_path):
    tree = make_tree(tmp_path)
    cache_dir = tmp_path / "cache"
    run(tree, cache_dir)
    (tree / "clean.py").write_text(CLEAN + "\n# a trailing comment\n")
    partial = run(tree, cache_dir)
    assert partial.summaries_recomputed == 1
    assert [v.rule for v in partial.violations] == ["DT102"]
    # And the edited tree state is itself now cached.
    assert run(tree, cache_dir).summaries_recomputed == 0


def test_edits_change_findings_not_just_counters(tmp_path):
    tree = make_tree(tmp_path)
    cache_dir = tmp_path / "cache"
    assert not run(tree, cache_dir).clean
    (tree / "dirty.py").write_text(CLEAN)
    fixed = run(tree, cache_dir)
    assert fixed.clean
    assert fixed.summaries_recomputed == 1


# -- invalidation by construction ---------------------------------------------


def test_directive_ledger_is_hashed_independently_of_source():
    # The ledger is redundant while the raw source is hashed, but it must
    # stay load-bearing on its own: same source + different ledger =>
    # different fingerprint (satellite: directive-only changes can never
    # be cache-invisible, even if source hashing is later normalised).
    source = "def f():\n    pass\n"
    a = module_fingerprint("m.py", source, [(1, "allow", "DT102")])
    b = module_fingerprint("m.py", source, [(1, "allow", "DT103")])
    c = module_fingerprint("m.py", source, [])
    assert len({a, b, c}) == 3


def test_adding_an_allow_directive_invalidates_and_suppresses(tmp_path):
    tree = make_tree(tmp_path)
    cache_dir = tmp_path / "cache"
    assert [v.rule for v in run(tree, cache_dir).violations] == ["DT102"]
    (tree / "dirty.py").write_text(
        DIRTY.replace("time.time()", "time.time()  # repro: allow[DT102]")
    )
    after = run(tree, cache_dir)
    assert after.clean
    assert [v.rule for v in after.suppressed] == ["DT102"]
    assert after.summaries_recomputed == 1


def test_module_key_is_part_of_the_fingerprint():
    # Rule scoping is path-dependent; the same bytes in another location
    # must not share an entry.
    source = "def f():\n    pass\n"
    assert module_fingerprint("repro/core/x.py", source, []) != module_fingerprint(
        "repro/metrics/x.py", source, []
    )


def test_baseline_content_keys_the_program_entry(tmp_path):
    tree = make_tree(tmp_path)
    cache_dir = tmp_path / "cache"
    baseline = tmp_path / "baseline.txt"
    baseline.write_text("dirty.py:DT102:1\n")
    first = run(tree, cache_dir, baseline_path=baseline)
    assert first.clean and len(first.baselined) == 1
    baseline.write_text("")
    second = run(tree, cache_dir, baseline_path=baseline)
    assert [v.rule for v in second.violations] == ["DT102"]


def test_program_digest_depends_on_interproc_flag():
    fps = {"m.py": "0" * 64}
    assert program_digest(fps, "", True) != program_digest(fps, "", False)


def test_ruleset_fingerprint_is_stable_within_a_process():
    assert ruleset_fingerprint() == ruleset_fingerprint()
    assert len(ruleset_fingerprint()) == 64


# -- safety -------------------------------------------------------------------


def test_corrupt_cache_entries_read_as_misses(tmp_path):
    tree = make_tree(tmp_path)
    cache_dir = tmp_path / "cache"
    run(tree, cache_dir)
    for entry in cache_dir.rglob("*.json"):
        entry.write_text("{not json")
    recovered = run(tree, cache_dir)
    assert recovered.summaries_recomputed == 2
    assert [v.rule for v in recovered.violations] == ["DT102"]


def test_unwritable_cache_is_merely_cold(tmp_path):
    tree = make_tree(tmp_path)
    blocked = tmp_path / "blocked"
    blocked.write_text("a file, not a directory")
    report = lint_paths([tree], incremental=True, cache_dir=blocked / "sub")
    assert [v.rule for v in report.violations] == ["DT102"]
    assert report.summaries_recomputed == 2


def test_only_keys_disables_the_cache(tmp_path):
    tree = make_tree(tmp_path)
    cache_dir = tmp_path / "cache"
    report = lint_paths(
        [tree], incremental=True, cache_dir=cache_dir, only_keys=["dirty.py"]
    )
    assert report.summaries_recomputed is None
    assert not (cache_dir / "programs").exists()


def test_module_summaries_are_shared_across_program_states(tmp_path):
    # Editing one module must not force the other's summary to re-run:
    # entries are keyed per module, not per tree.
    tree = make_tree(tmp_path)
    cache_dir = tmp_path / "cache"
    run(tree, cache_dir)
    modules_before = {p.name for p in (cache_dir / "modules").glob("*.json")}
    (tree / "clean.py").write_text(CLEAN + "\n# touched\n")
    run(tree, cache_dir)
    modules_after = {p.name for p in (cache_dir / "modules").glob("*.json")}
    assert modules_before < modules_after
    assert len(modules_after - modules_before) == 1


# -- CLI ----------------------------------------------------------------------


def test_cli_incremental_reports_summaries_recomputed(tmp_path, capsys):
    tree = make_tree(tmp_path)
    (tree / "dirty.py").write_text(CLEAN)
    cache_dir = tmp_path / "cache"
    argv = [
        "lint", str(tree), "--incremental", "--cache-dir", str(cache_dir),
        "--format", "json",
    ]
    assert cli_main(argv) == 0
    cold = json.loads(capsys.readouterr().out)
    assert cold["summaries_recomputed"] == 2
    assert cli_main(argv) == 0
    warm = json.loads(capsys.readouterr().out)
    assert warm["summaries_recomputed"] == 0
    assert {k: v for k, v in warm.items() if k != "summaries_recomputed"} == {
        k: v for k, v in cold.items() if k != "summaries_recomputed"
    }


def test_cli_incremental_text_summary_line(tmp_path, capsys):
    tree = make_tree(tmp_path)
    cache_dir = tmp_path / "cache"
    argv = ["lint", str(tree), "--incremental", "--cache-dir", str(cache_dir)]
    assert cli_main(argv) == 1  # DT102 fires
    assert "2 summarie(s) recomputed" in capsys.readouterr().out
    assert cli_main(argv) == 1
    assert "0 summarie(s) recomputed" in capsys.readouterr().out
