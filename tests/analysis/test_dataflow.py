"""The DT301-DT305 dataflow pass: summaries, fixpoints, rules, staleness."""

import ast
from pathlib import Path

import pytest

from repro.analysis import entrypoint, lint_paths
from repro.analysis.annotations import ENTRYPOINT_REGISTRY
from repro.analysis.callgraph import build_call_graph
from repro.analysis.dataflow import (
    DATAFLOW_RULES,
    analyze_dataflow,
    compute_summaries,
    directive_comments,
    stale_suppression_violations,
)

FIXTURES = Path(__file__).parent / "fixtures" / "dataflow"


def graph_of(modules):
    return build_call_graph(
        {key: (src, ast.parse(src)) for key, src in modules.items()}
    )


def analyze(modules):
    """Raw dataflow violations (DT301/302/303/305) for ``{key: source}``."""
    return analyze_dataflow(graph_of(modules))


# -- the seeded fixture corpus ------------------------------------------------


def test_corpus_is_clean_without_the_analyzer():
    report = lint_paths([FIXTURES])
    assert report.clean
    # The DT304 fixture's live suppression is the only intra-rule hit.
    assert [v.rule for v in report.suppressed] == ["DT102"]


def test_every_dataflow_rule_fires_on_the_corpus():
    report = lint_paths([FIXTURES], interproc=True)
    fired = {v.rule for v in report.violations}
    assert fired == set(DATAFLOW_RULES)


def test_corpus_findings_are_where_the_fixtures_say():
    report = lint_paths([FIXTURES], interproc=True)
    by_rule = {}
    for v in report.violations:
        by_rule.setdefault(v.rule, []).append(v)
    assert [v.path for v in by_rule["DT301"]] == ["df_fork_shared.py"]
    assert [v.path for v in by_rule["DT302"]] == ["df_pool_closure.py"]
    assert [v.path for v in by_rule["DT303"]] == ["df_atomicity.py"]
    assert [v.path for v in by_rule["DT304"]] == ["df_stale_allow.py"]
    assert [v.path for v in by_rule["DT305"]] == ["df_wallclock_taint.py"]
    (hit,) = by_rule["DT301"]
    assert "df_fork_shared.py::run_shard -> df_fork_shared.py::_record" in hit.message
    (hit,) = by_rule["DT302"]
    assert "captures bias" in hit.message


def test_dataflow_report_is_deterministic():
    first = lint_paths([FIXTURES], interproc=True)
    second = lint_paths([FIXTURES], interproc=True)
    assert [v.render() for v in first.violations] == [v.render() for v in second.violations]


# -- summaries ----------------------------------------------------------------


def test_summary_records_global_rebind_and_mutator_writes():
    summaries = compute_summaries(graph_of({
        "m.py": (
            "TABLE = {}\n\n"
            "def reset():\n"
            "    global TABLE\n"
            "    TABLE = {}\n\n"
            "def put(k):\n"
            "    TABLE.update({k: 1})\n"
        ),
    }))
    assert [w.kind for w in summaries["m.py::reset"].global_writes] == ["rebind"]
    (write,) = summaries["m.py::put"].global_writes
    assert write.target == "m.py::TABLE"
    assert "update" in write.kind


def test_summary_resolves_imported_module_state():
    summaries = compute_summaries(graph_of({
        "registry.py": "TABLE = {}\n",
        "user.py": (
            "import registry\n\n"
            "def add(k):\n"
            "    registry.TABLE[k] = 1\n"
        ),
    }))
    (write,) = summaries["user.py::add"].global_writes
    assert write.target == "registry.py::TABLE"


def test_summary_records_class_level_writes_through_cls():
    summaries = compute_summaries(graph_of({
        "m.py": (
            "class Registry:\n"
            "    TABLE = {}\n\n"
            "    @classmethod\n"
            "    def reset(cls):\n"
            "        cls.TABLE = {}\n"
        ),
    }))
    (write,) = summaries["m.py::Registry.reset"].global_writes
    assert write.target == "m.py::Registry.TABLE"
    assert write.kind == "class-attr"


def test_local_shadowing_is_not_a_global_write():
    summaries = compute_summaries(graph_of({
        "m.py": (
            "TABLE = {}\n\n"
            "def pure(k):\n"
            "    TABLE = {}\n"
            "    TABLE[k] = 1\n"
            "    return TABLE\n"
        ),
    }))
    assert summaries["m.py::pure"].global_writes == []


def test_may_raise_propagates_up_the_call_chain():
    summaries = compute_summaries(graph_of({
        "m.py": (
            "def leaf(x):\n"
            "    if x < 0:\n"
            "        raise ValueError('neg')\n"
            "    return x\n\n"
            "def mid(x):\n    return leaf(x)\n\n"
            "def outer(x):\n    return mid(x)\n"
        ),
    }))
    assert "ValueError" in summaries["m.py::leaf"].raises
    assert "ValueError" in summaries["m.py::mid"].may_raise
    assert "ValueError" in summaries["m.py::outer"].may_raise
    assert summaries["m.py::outer"].raises == set()


def test_may_raise_does_not_cross_ambiguous_cha_edges():
    summaries = compute_summaries(graph_of({
        "m.py": (
            "class A:\n"
            "    def step(self, x):\n"
            "        raise ValueError('a')\n"
            "class B:\n"
            "    def step(self, x):\n"
            "        return x\n\n"
            "def run(obj, x):\n"
            "    return obj.step(x)\n"
        ),
    }))
    assert summaries["m.py::run"].may_raise == set()


def test_wallclock_return_reaches_fixpoint_through_helpers():
    summaries = compute_summaries(graph_of({
        "m.py": (
            "import time\n\n"
            "def wall():\n    return time.perf_counter()\n\n"
            "def relay():\n    t = wall()\n    return t\n"
        ),
    }))
    assert summaries["m.py::wall"].wallclock_return
    assert summaries["m.py::relay"].wallclock_return


# -- DT301 --------------------------------------------------------------------


def test_entrypoint_decorator_registers_and_validates_kind():
    @entrypoint("fork")
    def sample(x):
        return x

    assert sample(3) == 3
    assert sample.__repro_entrypoint__ == "fork"
    assert ENTRYPOINT_REGISTRY[f"{sample.__module__}.{sample.__qualname__}"] == "fork"
    with pytest.raises(ValueError):
        entrypoint("thread")


def test_dt301_decorator_entrypoint_and_chain():
    violations = analyze({
        "m.py": (
            "from repro.analysis.annotations import entrypoint\n\n"
            "SEEN = set()\n\n"
            "def _mark(key):\n"
            "    SEEN.add(key)\n\n"
            "@entrypoint('service')\n"
            "def serve(key):\n"
            "    _mark(key)\n"
            "    return key\n"
        ),
    })
    (hit,) = [v for v in violations if v.rule == "DT301"]
    assert hit.line == 6
    assert "service entrypoint serve" in hit.message
    assert "m.py::serve -> m.py::_mark" in hit.message


def test_dt301_ignores_functions_not_reachable_from_an_entrypoint():
    violations = analyze({
        "m.py": (
            "CACHE = {}\n\n"
            "def warm(key):\n"
            "    CACHE[key] = 1\n"
        ),
    })
    assert [v for v in violations if v.rule == "DT301"] == []


# -- DT302 --------------------------------------------------------------------


def test_dt302_flags_lambda_and_bound_method():
    violations = analyze({
        "m.py": (
            "import multiprocessing\n\n"
            "class Runner:\n"
            "    def go(self, cells):\n"
            "        with multiprocessing.Pool() as pool:\n"
            "            return pool.map(self.run_one, cells)\n"
            "    def run_one(self, cell):\n"
            "        return cell\n\n"
            "def inline(cells):\n"
            "    with multiprocessing.Pool() as pool:\n"
            "        return pool.map(lambda c: c + 1, cells)\n"
        ),
    })
    hits = [v for v in violations if v.rule == "DT302"]
    assert len(hits) == 2
    assert any("bound method self.run_one" in v.message for v in hits)
    assert any("lambda" in v.message for v in hits)


def test_dt302_conditional_rebinding_between_module_functions_passes():
    violations = analyze({
        "m.py": (
            "import multiprocessing\n\n"
            "def a(x):\n    return x\n\n"
            "def b(x):\n    return x\n\n"
            "def run(cells, flag):\n"
            "    worker = a if flag else b\n"
            "    with multiprocessing.Pool() as pool:\n"
            "        return pool.map(worker, cells)\n"
        ),
    })
    assert [v for v in violations if v.rule == "DT302"] == []


# -- DT303 --------------------------------------------------------------------

_PARSE = (
    "def _parse(token):\n"
    "    if not token:\n"
    "        raise ValueError('empty')\n"
    "    return token\n\n"
)


def test_dt303_flags_raiser_between_paired_mutations():
    violations = analyze({
        "repro/core/x.py": (
            _PARSE
            + "def ingest(state, token):\n"
            "    state.count += 1\n"
            "    value = _parse(token)\n"
            "    state.entries[token] = value\n"
        ),
    })
    (hit,) = [v for v in violations if v.rule == "DT303"]
    assert "may raise ValueError" in hit.message
    assert "`state`" in hit.message


def test_dt303_quiet_outside_decision_or_hot_paths():
    violations = analyze({
        "m.py": (
            _PARSE
            + "def ingest(state, token):\n"
            "    state.count += 1\n"
            "    value = _parse(token)\n"
            "    state.entries[token] = value\n"
        ),
    })
    assert [v for v in violations if v.rule == "DT303"] == []


def test_dt303_try_wrapped_raiser_is_handled():
    violations = analyze({
        "repro/core/x.py": (
            _PARSE
            + "def ingest(state, token):\n"
            "    state.count += 1\n"
            "    try:\n"
            "        value = _parse(token)\n"
            "    except ValueError:\n"
            "        value = None\n"
            "    state.entries[token] = value\n"
        ),
    })
    assert [v for v in violations if v.rule == "DT303"] == []


def test_dt303_mutation_in_returning_branch_cannot_pair_forward():
    # The replanning shape: a bookkeeping write inside an early-return
    # branch never reaches the statements after the branch, so it must
    # not pair with a later mutation across the may-raise call.
    violations = analyze({
        "repro/core/x.py": (
            _PARSE
            + "def commit(state, token):\n"
            "    if not token:\n"
            "        state.count += 1\n"
            "        return None\n"
            "    value = _parse(token)\n"
            "    state.entries[token] = value\n"
            "    return value\n"
        ),
    })
    assert [v for v in violations if v.rule == "DT303"] == []


def test_dt303_flags_broad_handler_without_reraise():
    src = (
        "def risky(state):\n"
        "    try:\n"
        "        state.commit()\n"
        "    except Exception:\n"
        "        {body}\n"
    )
    swallowed = analyze({"repro/core/x.py": src.format(body="return None")})
    (hit,) = [v for v in swallowed if v.rule == "DT303"]
    assert "swallow ContractError" in hit.message
    reraising = analyze({"repro/core/x.py": src.format(body="raise")})
    assert [v for v in reraising if v.rule == "DT303"] == []


# -- DT304 --------------------------------------------------------------------


def test_directive_comments_come_from_real_comments_only():
    found = directive_comments(
        '"""Docstring mentioning # repro: allow[DT101] is invisible."""\n'
        "# a `# repro: calls[target]` directive used to live here\n"
        "x = 1  # repro: allow[DT102, DT103]\n"
        "# repro: budget O(log n)\n"
        "def f(q):\n    return q\n"
    )
    assert found == [
        (3, "allow", "DT102, DT103"),
        (4, "budget", "O(log n)"),
    ]


def test_stale_calls_budget_and_entrypoint_directives_flagged():
    graph = graph_of({
        "m.py": (
            "# repro: budget O(1)\n"
            "\n"
            "x = 1  # repro: calls[nowhere]\n"
            "# repro: entrypoint[fork]\n"
            "y = 2\n"
        ),
    })
    messages = [v.message for v in stale_suppression_violations(graph, {})]
    assert len(messages) == 3
    assert any("budget O(1)" in m for m in messages)
    assert any("calls[nowhere]" in m for m in messages)
    assert any("entrypoint[fork]" in m for m in messages)


def test_used_directives_are_not_stale():
    graph = graph_of({
        "repro/core/x.py": (
            "def target(x):\n    return x\n\n"
            "# repro: budget O(1)\n"
            "def decide(fn, x):\n"
            "    return fn(x)  # repro: calls[target]\n"
        ),
    })
    assert stale_suppression_violations(graph, {}) == []


def test_unused_allow_reported_and_used_allow_spared(tmp_path):
    (tmp_path / "m.py").write_text(
        "import time\n\n"
        "def stamp():\n"
        "    return time.time()  # repro: allow[DT102]\n\n"
        "def plain(values):\n"
        "    return sorted(values)  # repro: allow[DT101]\n"
    )
    report = lint_paths([tmp_path], interproc=True)
    (hit,) = report.violations
    assert hit.rule == "DT304"
    assert hit.line == 7
    assert "allow[DT101]" in hit.message


def test_allow_dt304_silences_the_staleness_report(tmp_path):
    (tmp_path / "m.py").write_text(
        "def plain(values):\n"
        "    return sorted(values)  # repro: allow[DT101, DT304]\n"
    )
    report = lint_paths([tmp_path], interproc=True)
    assert report.clean
    assert [v.rule for v in report.suppressed] == ["DT304"]


# -- DT305 --------------------------------------------------------------------


def test_dt305_taint_killed_by_clean_reassignment():
    violations = analyze({
        "m.py": (
            "import time\n\n"
            "def f(now):\n"
            "    t = time.time()\n"
            "    t = 0.0\n"
            "    return t + now\n"
        ),
    })
    assert [v for v in violations if v.rule == "DT305"] == []


def test_dt305_wall_vs_wall_arithmetic_is_fine():
    violations = analyze({
        "m.py": (
            "import time\n\n"
            "def bench():\n"
            "    start = time.perf_counter()\n"
            "    return time.perf_counter() - start\n"
        ),
    })
    assert [v for v in violations if v.rule == "DT305"] == []


def test_dt305_interprocedural_taint_through_helper_return():
    violations = analyze({
        "m.py": (
            "import time\n\n"
            "def wall():\n    return time.perf_counter()\n\n"
            "def f(now):\n"
            "    t = wall()\n"
            "    return t > now\n"
        ),
    })
    (hit,) = [v for v in violations if v.rule == "DT305"]
    assert "compared with" in hit.message
    assert "returns wall-clock time" in hit.message


def test_dt305_from_import_and_wrapper_calls_tracked():
    violations = analyze({
        "m.py": (
            "from time import monotonic\n\n"
            "def f(deadline):\n"
            "    return float(monotonic()) < deadline\n"
        ),
    })
    (hit,) = [v for v in violations if v.rule == "DT305"]
    assert "`deadline`" in hit.message
