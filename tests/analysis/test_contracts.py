"""Runtime contract layer: unit checks + corrupted-structure regressions."""

from types import SimpleNamespace

import pytest

from repro.analysis.contracts import (
    NULL_CONTRACTS,
    ContractChecker,
    ContractViolation,
    NullContractChecker,
)
from repro.cluster.config import ClusterConfig
from repro.cluster.simulation import ClusterSimulation
from repro.cluster.tasks import TaskKind
from repro.core.progress import ProgressEntry, ProgressPlan
from repro.core.scheduler import WohaScheduler
from repro.structures.avl import AvlTree
from repro.structures.dsl import DoubleSkipList
from repro.trace import DecisionTracer


def make_plan(entries, total=None, job_order=("a", "b")):
    return SimpleNamespace(
        entries=tuple(ProgressEntry(ttd=t, cum_req=r) for t, r in entries),
        total_tasks=total if total is not None else (entries[-1][1] if entries else 0),
        job_order=tuple(job_order),
    )


# -- plan contracts -----------------------------------------------------------


def test_valid_plan_passes_and_counts():
    checker = ContractChecker()
    checker.check_plan(make_plan([(30.0, 2), (20.0, 5), (0.0, 9)]))
    assert checker.counters["plan_checks"] == 1
    assert checker.counters["assertions"] > 0
    assert checker.counters["violations"] == 0


def test_real_progress_plan_passes():
    plan = ProgressPlan(
        entries=(ProgressEntry(25.0, 3), ProgressEntry(10.0, 6)),
        job_order=("a",),
        resource_cap=4,
        makespan=25.0,
        total_tasks=6,
    )
    ContractChecker().check_plan(plan)


@pytest.mark.parametrize(
    "entries, total, order, match",
    [
        ([(20.0, 2), (30.0, 5)], 5, ("a",), "ttd not strictly descending"),
        ([(30.0, 5), (20.0, 5)], 5, ("a",), "cum_req not strictly ascending"),
        ([(30.0, 2), (20.0, 5)], 9, ("a",), "workflow has 9"),
        ([(30.0, 0)], 0, ("a",), "non-positive requirement"),
        ([(30.0, 2)], 2, ("a", "a"), "duplicate job names"),
    ],
)
def test_bad_plans_rejected(entries, total, order, match):
    checker = ContractChecker()
    with pytest.raises(ContractViolation, match=match):
        checker.check_plan(make_plan(entries, total=total, job_order=order))
    assert checker.counters["violations"] == 1


def test_batches_sorted_by_instant():
    checker = ContractChecker()
    checker.check_batches([(0.0, 3), (0.0, 1), (10.0, 2)])
    with pytest.raises(ContractViolation, match="not sorted by instant"):
        checker.check_batches([(10.0, 2), (0.0, 3)])
    with pytest.raises(ContractViolation, match="non-positive count"):
        checker.check_batches([(0.0, 0)])


# -- dispatch contracts -------------------------------------------------------


def _task(kind, job_name=None, payload=None):
    return SimpleNamespace(
        kind=kind, payload=payload, job=SimpleNamespace(name=job_name), task_id="t-0"
    )


def test_dispatch_requires_empty_prereqs():
    checker = ContractChecker()
    wip = SimpleNamespace(pending_prereqs={"b": {"a"}, "a": set()})
    checker.check_dispatch(wip, _task(TaskKind.MAP, job_name="a"))
    with pytest.raises(ContractViolation, match="unfinished\n?\\s*prerequisites"):
        checker.check_dispatch(wip, _task(TaskKind.MAP, job_name="b"))
    with pytest.raises(ContractViolation):
        checker.check_dispatch(wip, _task(TaskKind.SUBMIT, payload="b"))
    # Jobs outside the workflow's wjob set (the submitter itself) pass.
    checker.check_dispatch(wip, _task(TaskKind.SUBMIT, payload="not-a-wjob"))


# -- DSL contracts ------------------------------------------------------------


def _filled_dsl(checker, n=8, factory=None):
    dsl = DoubleSkipList() if factory is None else DoubleSkipList(map_factory=factory)
    dsl.attach_contracts(checker)
    for i in range(n):
        dsl.insert(item_id=f"w{i}", ct=float(10 * i), priority=float(i % 3))
    return dsl


def test_dsl_operations_pass_under_contracts():
    checker = ContractChecker()
    dsl = _filled_dsl(checker)
    dsl.update_priority("w3", 99.0)
    dsl.update_ct("w5", 1.5)
    dsl.update_head_ct(500.0, 0.0)
    dsl.remove("w2")
    assert checker.counters["dsl_checks"] >= 12
    assert checker.counters["violations"] == 0


def test_corrupted_cross_link_caught():
    """The acceptance-criteria regression: a DoubleEntry whose ct was
    mutated without repositioning must trip the very next check."""
    checker = ContractChecker()
    dsl = _filled_dsl(checker)
    dsl.get("w4").ct = -123.0  # stale ct-list key: the cross-link now lies
    with pytest.raises(ContractViolation, match="ct_key"):
        dsl.insert(item_id="w99", ct=1.0, priority=1.0)
    assert checker.counters["violations"] == 1


def test_corrupted_priority_link_caught():
    checker = ContractChecker()
    dsl = _filled_dsl(checker)
    dsl.get("w1").priority = 1e9
    with pytest.raises(ContractViolation, match="priority_key"):
        dsl.update_ct("w5", 2.0)


def test_corrupted_skiplist_tower_caught():
    checker = ContractChecker()
    dsl = _filled_dsl(checker, n=24)  # tall enough to have towers
    ct_list = dsl._ct_list
    node = ct_list._heads[1].right
    assert node is not ct_list._tail, "expected a level-1 node at n=24"
    node.key = (node.key[0] + 0.5, node.key[1])  # break the tower key match
    with pytest.raises(ContractViolation):
        checker.check_skiplist(ct_list)


def test_avl_backend_falls_back_to_its_invariants():
    checker = ContractChecker()
    dsl = _filled_dsl(checker, factory=AvlTree)
    dsl.update_head_ct(999.0, 5.0)
    dsl.remove("w0")
    assert checker.counters["violations"] == 0


# -- null checker and counter plumbing ----------------------------------------


def test_null_checker_is_inert():
    assert not NULL_CONTRACTS.enabled
    assert isinstance(NULL_CONTRACTS, NullContractChecker)
    NULL_CONTRACTS.check_plan(None)
    NULL_CONTRACTS.check_dsl(None)
    NULL_CONTRACTS.check_batches([(5.0, 1), (0.0, 1)])  # unsorted: still silent
    assert NULL_CONTRACTS.counter_table() == {}


def test_counter_table_shape_and_tracer_mirroring():
    tracer = DecisionTracer()
    checker = ContractChecker(tracer=tracer)
    checker.check_plan(make_plan([(30.0, 2), (20.0, 5)]))
    table = checker.counter_table()
    assert set(table) == {"contracts"}
    assert table["contracts"]["plan_checks"] == 1
    assert tracer.counter_table()["contracts"] == table["contracts"]


def test_scheduler_attach_contracts_reaches_queue():
    checker = ContractChecker()
    scheduler = WohaScheduler()
    scheduler.attach_contracts(checker)
    assert scheduler.contracts is checker
    assert scheduler._queue.contracts is checker


# -- simulation wiring --------------------------------------------------------


def _mini_sim(**kwargs):
    config = ClusterConfig(
        num_nodes=2, map_slots_per_node=2, reduce_slots_per_node=1,
        heartbeat_interval=float("inf"),
    )
    from repro.core.client import make_planner

    return ClusterSimulation(
        config, WohaScheduler(), submission="woha", planner=make_planner("lpf"), **kwargs
    )


def test_simulation_contracts_off_by_default(small_workflow):
    sim = _mini_sim()
    sim.add_workflow(small_workflow)
    result = sim.run()
    assert result.contracts is None


def test_simulation_contracts_counted_in_metrics(small_workflow):
    sim = _mini_sim(contracts=True)
    sim.add_workflow(small_workflow)
    result = sim.run()
    assert result.contracts is not None
    assert result.contracts.counters["assertions"] > 0
    assert result.contracts.counters["violations"] == 0
    assert result.metrics.scheduler_counters["contracts"]["assertions"] > 0


def test_contract_counters_aggregate_exactly_once_with_a_tracer(small_workflow):
    # With both layers attached the checker mirrors every counter into the
    # tracer, and run() aggregates only the tracer: the "contracts" scope
    # in the metrics table must equal the checker's own counters, not
    # twice them (the double-count run() explicitly avoids).
    both = _mini_sim(contracts=True, trace=True)
    both.add_workflow(small_workflow)
    with_tracer = both.run()
    mirrored = with_tracer.metrics.scheduler_counters["contracts"]
    assert mirrored == dict(with_tracer.contracts.counters)
    assert mirrored["assertions"] > 0

    # The deterministic baseline: the same scenario with the checker
    # aggregated directly (no tracer) lands on identical counts.
    solo = _mini_sim(contracts=True)
    solo.add_workflow(small_workflow)
    without_tracer = solo.run()
    assert without_tracer.metrics.scheduler_counters["contracts"] == mirrored


def test_simulation_contracts_and_trace_share_one_table(small_workflow):
    sim = _mini_sim(contracts=True, trace=True)
    sim.add_workflow(small_workflow)
    result = sim.run()
    # Mirrored through the tracer exactly once (no double aggregation).
    assert (
        result.metrics.scheduler_counters["contracts"]["assertions"]
        == result.contracts.counters["assertions"]
    )


def test_simulation_catches_corrupt_plan_from_planner(small_workflow):
    # A planner shipping a non-monotonic plan must be rejected at
    # submission time when contracts are on.
    corrupt = make_plan([(10.0, 5), (20.0, 7)], total=7)
    config = ClusterConfig(
        num_nodes=2, map_slots_per_node=2, reduce_slots_per_node=1,
        heartbeat_interval=float("inf"),
    )
    sim = ClusterSimulation(
        config, WohaScheduler(), submission="woha",
        planner=lambda wf, slots: corrupt, contracts=True,
    )
    sim.add_workflow(small_workflow)
    with pytest.raises(ContractViolation, match="ttd not strictly descending"):
        sim.run()
