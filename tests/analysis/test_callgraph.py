"""Call-graph builder mechanics: resolution kinds, annotations, exports."""

import ast

from repro.analysis.callgraph import (
    BUDGET_GRAMMAR,
    build_call_graph,
    build_call_graph_from_paths,
    parse_budget,
)


def graph_of(modules):
    """Build a graph from ``{module_key: source}``."""
    return build_call_graph({key: (src, ast.parse(src)) for key, src in modules.items()})


def edge_set(graph, kind=None):
    return {
        (e.caller, e.callee)
        for e in graph.edges
        if kind is None or e.kind == kind
    }


# -- resolution kinds ---------------------------------------------------------


def test_direct_and_cross_module_calls_resolve():
    graph = graph_of({
        "pkg/a.py": "def helper():\n    return 1\n\ndef top():\n    return helper()\n",
        "pkg/b.py": "from pkg.a import helper\n\ndef other():\n    return helper()\n",
    })
    assert ("pkg/a.py::top", "pkg/a.py::helper") in edge_set(graph)
    assert ("pkg/b.py::other", "pkg/a.py::helper") in edge_set(graph)
    assert not graph.dynamic_calls


def test_self_method_and_constructor_calls_resolve():
    graph = graph_of({
        "m.py": (
            "class Q:\n"
            "    def a(self):\n"
            "        return self.b()\n"
            "    def b(self):\n"
            "        return 0\n"
            "    @classmethod\n"
            "    def fresh(cls):\n"
            "        return cls()\n"
            "    def __init__(self):\n"
            "        pass\n"
        ),
    })
    edges = edge_set(graph)
    assert ("m.py::Q.a", "m.py::Q.b") in edges
    assert ("m.py::Q.fresh", "m.py::Q.__init__") in edges


def test_dispatch_table_subscript_call_resolves_to_registry_edges():
    graph = graph_of({
        "m.py": (
            "def f(x):\n    return x\n\n"
            "def g(x):\n    return -x\n\n"
            "TABLE = {'f': f, 'g': g}\n\n"
            "def dispatch(name, x):\n"
            "    return TABLE[name](x)\n"
        ),
    })
    registry = edge_set(graph, kind="registry")
    assert ("m.py::dispatch", "m.py::f") in registry
    assert ("m.py::dispatch", "m.py::g") in registry
    assert not graph.dynamic_calls


def test_cha_fallback_single_candidate_precise_many_ambiguous():
    graph = graph_of({
        "m.py": (
            "class A:\n"
            "    def only_here(self):\n        return 1\n"
            "    def shared(self):\n        return 1\n"
            "class B:\n"
            "    def shared(self):\n        return 2\n"
            "def use(x):\n"
            "    x.only_here()\n"
            "    x.shared()\n"
        ),
    })
    by_pair = {(e.caller, e.callee): e for e in graph.edges if e.kind == "cha"}
    precise = by_pair[("m.py::use", "m.py::A.only_here")]
    assert not precise.ambiguous
    assert by_pair[("m.py::use", "m.py::A.shared")].ambiguous
    assert by_pair[("m.py::use", "m.py::B.shared")].ambiguous


def test_parameter_call_becomes_dynamic():
    graph = graph_of({
        "m.py": "def apply(fn, x):\n    return fn(x)\n",
    })
    (dyn,) = graph.dynamic_calls
    assert dyn.function == "m.py::apply"
    assert not dyn.annotated


def test_nested_def_is_a_graph_node_with_dotted_name():
    graph = graph_of({
        "m.py": (
            "def outer():\n"
            "    def inner():\n"
            "        return 1\n"
            "    return inner()\n"
        ),
    })
    assert "m.py::outer.inner" in graph.functions
    assert ("m.py::outer", "m.py::outer.inner") in edge_set(graph)


# -- comment annotations ------------------------------------------------------


def test_budget_comment_grammar():
    assert parse_budget("# repro: budget O(1)") == "O(1)"
    assert parse_budget("# repro: budget O(log n)") == "O(log n)"
    assert parse_budget("# repro: budget O(n)") == "O(n)"
    assert parse_budget("# repro: budget O(n log n)") is None
    assert parse_budget("just a comment") is None
    assert BUDGET_GRAMMAR == ("O(1)", "O(log n)", "O(n)")


def test_budget_attaches_on_def_line_or_line_above():
    graph = graph_of({
        "m.py": (
            "# repro: budget O(log n)\n"
            "def above():\n    return 1\n\n"
            "def inline():  # repro: budget O(1)\n    return 2\n\n"
            "def bare():\n    return 3\n"
        ),
    })
    assert graph.functions["m.py::above"].budget == "O(log n)"
    assert graph.functions["m.py::inline"].budget == "O(1)"
    assert graph.functions["m.py::bare"].budget is None


def test_calls_annotation_adds_edges_and_marks_dynamic_resolved():
    graph = graph_of({
        "m.py": (
            "def target(x):\n    return x\n\n"
            "def use(fn, x):\n"
            "    return fn(x)  # repro: calls[target]\n"
        ),
    })
    assert ("m.py::use", "m.py::target") in edge_set(graph, kind="annotation")
    (dyn,) = graph.dynamic_calls
    assert dyn.annotated


def test_calls_annotation_with_no_resolving_target_stays_dynamic():
    graph = graph_of({
        "m.py": (
            "def use(fn, x):\n"
            "    return fn(x)  # repro: calls[no_such_function]\n"
        ),
    })
    (dyn,) = graph.dynamic_calls
    assert not dyn.annotated  # a typo must not silence DT202


def test_decorator_marks_recognised_syntactically():
    graph = graph_of({
        "m.py": (
            "from repro.analysis.annotations import decision_path, hot_path\n\n"
            "@decision_path\n"
            "def a():\n    return 1\n\n"
            "@hot_path\n"
            "def b():\n    return 2\n"
        ),
    })
    assert graph.functions["m.py::a"].decision_path
    assert graph.functions["m.py::b"].hot_path


# -- queries and exports ------------------------------------------------------


def test_function_at_returns_innermost_span():
    graph = graph_of({
        "m.py": (
            "def outer():\n"          # line 1
            "    def inner():\n"      # line 2
            "        return 1\n"      # line 3
            "    return inner()\n"    # line 4
        ),
    })
    assert graph.function_at("m.py", 3).qualname == "m.py::outer.inner"
    assert graph.function_at("m.py", 4).qualname == "m.py::outer"
    assert graph.function_at("m.py", 99) is None


def test_json_and_dot_exports_are_deterministic():
    modules = {
        "pkg/a.py": "def helper():\n    return 1\n",
        "pkg/b.py": (
            "from pkg.a import helper\n\n"
            "# repro: budget O(1)\n"
            "def top():\n    return helper()\n"
        ),
    }
    first, second = graph_of(modules), graph_of(modules)
    assert first.to_json() == second.to_json()
    assert first.to_dot() == second.to_dot()
    dump = first.to_json()
    assert set(dump) >= {"modules", "functions", "edges", "dynamic_calls"}
    dot = first.to_dot()
    assert dot.startswith("digraph callgraph {")
    assert '"pkg/b.py::top" -> "pkg/a.py::helper"' in dot
    assert "O(1)" in dot  # budgets surface as labels


def test_build_from_paths_walks_directories(tmp_path):
    (tmp_path / "x.py").write_text("def f():\n    return g()\n\ndef g():\n    return 0\n")
    graph = build_call_graph_from_paths([str(tmp_path)])
    assert ("x.py::f", "x.py::g") in edge_set(graph)
