"""Tests for the dependency-free SVG chart renderer."""

import math
import re

import pytest

from repro.metrics.svgplot import PALETTE, GroupedBarChart, SvgChart, _log_ticks, _ticks


class TestTicks:
    def test_linear_ticks_cover_range(self):
        ticks = _ticks(0.0, 10.0)
        assert ticks[0] >= 0.0 and ticks[-1] <= 10.0
        assert len(ticks) >= 3
        steps = {round(b - a, 9) for a, b in zip(ticks, ticks[1:])}
        assert len(steps) == 1  # uniform spacing

    def test_linear_ticks_degenerate_range(self):
        assert _ticks(5.0, 5.0)  # must not crash or loop forever

    def test_log_ticks_powers_of_ten(self):
        ticks = _log_ticks(100.0, 100_000.0)
        assert ticks == [100.0, 1000.0, 10_000.0, 100_000.0]

    def test_tick_fractional_ranges(self):
        ticks = _ticks(0.0, 0.45)
        assert all(0.0 <= t <= 0.45 for t in ticks)


class TestSvgChart:
    def test_render_contains_series_and_labels(self):
        chart = SvgChart(title="T<est>", xlabel="x", ylabel="y")
        chart.add_line([0, 1, 2], [0.0, 1.0, 4.0], label="quad")
        svg = chart.render()
        assert svg.startswith("<svg")
        assert svg.rstrip().endswith("</svg>")
        assert "polyline" in svg
        assert "T&lt;est&gt;" in svg  # escaped title
        assert "quad" in svg

    def test_step_series_doubles_points(self):
        chart = SvgChart()
        chart.add_step([0, 1, 2], [1, 2, 3], label="s")
        svg = chart.render()
        points = re.search(r'polyline points="([^"]+)"', svg).group(1).split()
        assert len(points) == 5  # 3 anchors + 2 step corners

    def test_log_axes(self):
        chart = SvgChart(xlog=True, ylog=True)
        chart.add_line([10, 100, 1000], [5, 50, 500], label="l")
        svg = chart.render()
        assert "polyline" in svg

    def test_mismatched_lengths_rejected(self):
        chart = SvgChart()
        with pytest.raises(ValueError):
            chart.add_line([1, 2], [1], label="bad")

    def test_empty_series_rejected(self):
        chart = SvgChart()
        with pytest.raises(ValueError):
            chart.add_line([], [], label="bad")
        with pytest.raises(ValueError):
            chart.render()

    def test_coordinates_within_viewbox(self):
        chart = SvgChart(width=400, height=300)
        chart.add_line([0, 50, 100], [0, 10, 5], label="l")
        svg = chart.render()
        points = re.search(r'polyline points="([^"]+)"', svg).group(1).split()
        for pair in points:
            x, y = map(float, pair.split(","))
            assert 0 <= x <= 400
            assert 0 <= y <= 300

    def test_save_roundtrip(self, tmp_path):
        chart = SvgChart()
        chart.add_line([0, 1], [1, 2], label="l")
        path = tmp_path / "c.svg"
        chart.save(str(path))
        assert path.read_text().startswith("<svg")


class TestGroupedBarChart:
    def test_render_bars_per_group_and_series(self):
        chart = GroupedBarChart(title="bars")
        chart.set_groups(["a", "b", "c"])
        chart.add_series("s1", [1.0, 2.0, 3.0])
        chart.add_series("s2", [3.0, 2.0, 1.0])
        svg = chart.render()
        # frame rect + legend rects (2) + data bars (6)
        assert svg.count("<rect") >= 1 + 2 + 6
        assert "s1" in svg and "s2" in svg

    def test_value_count_mismatch_rejected(self):
        chart = GroupedBarChart()
        chart.set_groups(["a", "b"])
        with pytest.raises(ValueError):
            chart.add_series("s", [1.0])

    def test_render_without_setup_rejected(self):
        with pytest.raises(ValueError):
            GroupedBarChart().render()

    def test_zero_values_ok(self):
        chart = GroupedBarChart()
        chart.set_groups(["a"])
        chart.add_series("s", [0.0])
        assert "<svg" in chart.render()

    def test_palette_cycles(self):
        chart = GroupedBarChart()
        chart.set_groups(["g"])
        for i in range(len(PALETTE) + 2):
            chart.add_series(f"s{i}", [float(i)])
        assert "<svg" in chart.render()
