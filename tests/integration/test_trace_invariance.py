"""Tracing must be purely observational.

The acceptance bar for the decision-tracing layer: enabling it changes
*zero* scheduling decisions.  For every scheduler we run the same scenario
twice — tracer attached and not — record the full assignment sequence
(launch time, task id) through a JobTracker listener, and compare the two
sequences as serialised bytes.
"""

import json

import pytest

from repro.cluster.config import ClusterConfig
from repro.cluster.simulation import ClusterSimulation
from repro.core.client import make_planner
from repro.core.replanning import ReplanningWohaScheduler
from repro.core.scheduler import NaiveWohaScheduler, WohaScheduler
from repro.schedulers.edf import EdfScheduler
from repro.schedulers.fair import FairScheduler
from repro.schedulers.fifo import FifoScheduler
from repro.workflow.builder import WorkflowBuilder


class AssignmentLog:
    """JobTracker listener that records every launch in order."""

    def __init__(self):
        self.launches = []

    def on_task_launch(self, task, now):
        self.launches.append((now, task.task_id))


def scenario():
    """A contended mix: deadlines, a chain, a best-effort filler."""
    tight = (
        WorkflowBuilder("tight")
        .job("a", maps=6, reduces=2, map_s=10, reduce_s=20)
        .deadline(relative=120.0)
        .submit_at(5.0)
        .build()
    )
    chain = (
        WorkflowBuilder("chain")
        .job("x", maps=2, reduces=1, map_s=8, reduce_s=15)
        .job("y", maps=3, reduces=1, map_s=8, reduce_s=15, after=["x"])
        .deadline(relative=300.0)
        .build()
    )
    filler = WorkflowBuilder("filler").job("f", maps=10, reduces=0, map_s=12).build()
    return [tight, chain, filler]


SETUPS = [
    ("fifo", lambda: FifoScheduler(), "oozie"),
    ("fair", lambda: FairScheduler(), "oozie"),
    ("edf", lambda: EdfScheduler(), "oozie"),
    ("woha-dsl", lambda: WohaScheduler(queue_backend="dsl"), "woha"),
    ("woha-bst", lambda: WohaScheduler(queue_backend="bst"), "woha"),
    ("woha-list", lambda: WohaScheduler(queue_backend="list"), "woha"),
    ("woha-naive", lambda: NaiveWohaScheduler(), "woha"),
    ("woha-replan", lambda: ReplanningWohaScheduler(min_lag=1, lag_fraction=0.05), "woha"),
]


def run_assignments(make_scheduler, mode, trace, heartbeat=float("inf")):
    config = ClusterConfig(
        num_nodes=2, map_slots_per_node=2, reduce_slots_per_node=1,
        heartbeat_interval=heartbeat,
    )
    planner = make_planner("lpf") if mode == "woha" else None
    sim = ClusterSimulation(
        config, make_scheduler(), submission=mode, planner=planner, trace=trace
    )
    log = AssignmentLog()
    sim.jobtracker.add_listener(log)
    sim.add_workflows(scenario())
    result = sim.run()
    return log.launches, result


@pytest.mark.parametrize("name,make_scheduler,mode", SETUPS, ids=[s[0] for s in SETUPS])
def test_tracing_does_not_change_decisions(name, make_scheduler, mode):
    plain, _ = run_assignments(make_scheduler, mode, trace=False)
    traced, result = run_assignments(make_scheduler, mode, trace=True)
    assert json.dumps(traced).encode() == json.dumps(plain).encode()
    # And the trace really observed those decisions.
    assert result.tracer is not None
    assert len(result.tracer.events("decision")) > 0
    assert len(result.tracer.events("assign")) == len(traced)


@pytest.mark.parametrize("name,make_scheduler,mode", SETUPS[:1] + SETUPS[3:4],
                         ids=["fifo", "woha-dsl"])
def test_tracing_invariant_under_heartbeats(name, make_scheduler, mode):
    """Same invariance with the periodic-heartbeat assignment path."""
    plain, _ = run_assignments(make_scheduler, mode, trace=False, heartbeat=3.0)
    traced, _ = run_assignments(make_scheduler, mode, trace=True, heartbeat=3.0)
    assert json.dumps(traced).encode() == json.dumps(plain).encode()


def test_every_assignment_has_a_decision_with_lag_fields():
    """Acceptance: each assign event pairs with a decision that carries the
    chosen workflow's lag and queue position."""
    _, result = run_assignments(lambda: WohaScheduler(), "woha", trace=True)
    tracer = result.tracer
    decisions = {
        e["task"]: e for e in tracer.events("decision") if e["task"] is not None
    }
    assigns = tracer.events("assign")
    assert assigns
    for assign in assigns:
        decision = decisions[assign["task"]]
        assert decision["workflow"] == assign["workflow"]
        assert "lag" in decision and "position" in decision and "queue_len" in decision
        assert decision["position"] is not None
        assert decision["queue_len"] >= 1


def test_ring_capacity_trace_still_invariant():
    plain, _ = run_assignments(lambda: WohaScheduler(), "woha", trace=False)
    traced, result = run_assignments(lambda: WohaScheduler(), "woha", trace=8)
    assert traced == plain
    assert len(result.tracer) <= 8
    assert result.tracer.dropped > 0


def test_counters_aggregated_into_metrics():
    _, result = run_assignments(lambda: WohaScheduler(), "woha", trace=True)
    counters = result.metrics.scheduler_counters["WOHA"]
    assert counters["decisions"] > 0
    assert counters["assignments"] == len(result.tracer.events("assign"))
    assert counters["slot_frees"] > 0
