"""Guard for the interprocedural-analysis bench machinery.

``benchmarks/bench_interproc_speed.py`` is ``perf``-marked and excluded
from the tier-1 suite, so this tier-1 test runs its measurement path on a
toy corpus (one repeat, the interproc fixture directory) and pins the
payload shape — the same arrangement as ``test_bench_lint_guard``.
"""

import json
from pathlib import Path

from benchmarks.bench_interproc_speed import BUDGET_SECONDS, run_bench

FIXTURES = Path(__file__).resolve().parent.parent / "analysis" / "fixtures" / "interproc"


def test_bench_payload_shape_on_toy_corpus(tmp_path):
    baseline = tmp_path / "baseline.txt"
    baseline.write_text("")  # empty budget; fixture violations are expected
    payload = run_bench(paths=[FIXTURES], baseline=baseline, repeats=1)

    assert json.loads(json.dumps(payload)) == payload  # JSON-serialisable
    assert payload["bench"] == "interproc_speed"
    assert payload["files_checked"] >= 6
    assert payload["functions"] >= 7
    assert payload["edges"] >= 2
    assert payload["violations"] >= 5  # one per DT201-DT204 seeding (DT201 twice)
    assert payload["best_seconds"] > 0
    assert payload["files_per_sec"] > 0
    assert payload["budget_seconds"] == BUDGET_SECONDS
