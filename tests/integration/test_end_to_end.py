"""End-to-end integration: trace workloads, both submission paths, both
scheduling modes, invariants across the whole stack."""

import pytest

from repro.cluster.config import ClusterConfig
from repro.cluster.simulation import ClusterSimulation
from repro.cluster.tasks import TaskKind
from repro.core.client import make_planner
from repro.core.scheduler import WohaScheduler
from repro.schedulers.edf import EdfScheduler
from repro.schedulers.fifo import FifoScheduler
from repro.workloads.yahoo import YahooTraceConfig, generate_yahoo_workflows


@pytest.fixture(scope="module")
def trace():
    # A reduced-size trace keeps this module fast while still exercising
    # DAGs, contention and deadline diversity.
    config = YahooTraceConfig(
        num_workflows=16, total_jobs=48, num_single_job=4, seed=11, drop_single_job=False
    )
    return generate_yahoo_workflows(config)


def cluster(m=60, r=30):
    return ClusterConfig.from_total_slots(m, r, nodes=10, heartbeat_interval=float("inf"))


class TestTraceRuns:
    @pytest.mark.parametrize(
        "scheduler_factory,mode,planner",
        [
            (FifoScheduler, "oozie", None),
            (EdfScheduler, "oozie", None),
            (WohaScheduler, "woha", "lpf"),
        ],
        ids=["fifo", "edf", "woha"],
    )
    def test_trace_completes_under_every_stack(self, trace, scheduler_factory, mode, planner):
        sim = ClusterSimulation(
            cluster(),
            scheduler_factory(),
            submission=mode,
            planner=make_planner(planner) if planner else None,
        )
        sim.add_workflows(trace)
        result = sim.run()
        assert all(s.completion_time < float("inf") for s in result.stats.values())
        wjob_tasks = sum(w.total_tasks for w in trace)
        if mode == "woha":
            wjob_tasks += sum(len(w) for w in trace)  # one submitter task per wjob
        assert result.metrics.tasks_completed == wjob_tasks

    def test_no_slot_oversubscription_on_trace(self, trace):
        sim = ClusterSimulation(cluster(), WohaScheduler(), submission="woha", planner=make_planner())
        sim.add_workflows(trace)
        result = sim.run()
        assert result.metrics.peak_allocation(TaskKind.MAP) <= 60
        assert result.metrics.peak_allocation(TaskKind.REDUCE) <= 30

    def test_more_slots_do_not_increase_misses(self, trace):
        """Sanity for the Fig 8 sweep: the miss ratio is (weakly) monotone
        in cluster size for the WOHA stack on this trace."""
        ratios = []
        for m, r in ((40, 20), (80, 40), (160, 80)):
            sim = ClusterSimulation(
                ClusterConfig.from_total_slots(m, r, nodes=10, heartbeat_interval=float("inf")),
                WohaScheduler(),
                submission="woha",
                planner=make_planner(),
            )
            sim.add_workflows(trace)
            ratios.append(sim.run().miss_ratio)
        assert ratios[0] >= ratios[-1]

    def test_heartbeat_and_eager_modes_both_finish_trace(self, trace):
        hb_cluster = ClusterConfig.from_total_slots(
            60, 30, nodes=10, heartbeat_interval=3.0, eager_heartbeats=True
        )
        sim = ClusterSimulation(hb_cluster, FifoScheduler(), submission="oozie")
        sim.add_workflows(trace)
        result = sim.run()
        assert all(s.completion_time < float("inf") for s in result.stats.values())


class TestSchedulerSwapEquivalence:
    def test_queue_backends_agree_on_trace(self, trace):
        outcomes = []
        for backend in ("dsl", "bst", "list"):
            sim = ClusterSimulation(
                cluster(), WohaScheduler(queue_backend=backend), submission="woha", planner=make_planner()
            )
            sim.add_workflows(trace)
            result = sim.run()
            outcomes.append({k: v.completion_time for k, v in result.stats.items()})
        assert outcomes[0] == outcomes[1] == outcomes[2]
