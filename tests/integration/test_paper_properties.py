"""Integration tests asserting the paper's qualitative results.

These are the repository's reproduction gates: if a change breaks one of
these, the benches will no longer show the paper's shapes.
"""

import pytest

from repro.cluster.config import ClusterConfig
from repro.cluster.simulation import ClusterSimulation
from repro.core.client import make_planner
from repro.core.scheduler import WohaScheduler
from repro.schedulers.edf import EdfScheduler
from repro.schedulers.fair import FairScheduler
from repro.schedulers.fifo import FifoScheduler
from repro.workloads.topologies import fig11_workflows


def fig11_cluster():
    """The paper's Fig 11 testbed: 32 slaves x (2 map + 1 reduce)."""
    return ClusterConfig(
        num_nodes=32, map_slots_per_node=2, reduce_slots_per_node=1, heartbeat_interval=float("inf")
    )


def run_fig11(scheduler, submission, planner=None):
    sim = ClusterSimulation(fig11_cluster(), scheduler, submission=submission, planner=planner)
    sim.add_workflows(fig11_workflows())
    return sim.run()


@pytest.fixture(scope="module")
def fig11_results():
    results = {}
    results["FIFO"] = run_fig11(FifoScheduler(), "oozie")
    results["Fair"] = run_fig11(FairScheduler(), "oozie")
    results["EDF"] = run_fig11(EdfScheduler(), "oozie")
    for prio in ("hlf", "lpf", "mpf"):
        results[f"WOHA-{prio.upper()}"] = run_fig11(
            WohaScheduler(), "woha", planner=make_planner(prio)
        )
    return results


class TestFig11Regime:
    """Paper §VI-A: under the 3-workflow contention experiment, the WOHA
    schedulers satisfy all deadlines while FIFO and Fair do not."""

    def test_all_woha_variants_meet_every_deadline(self, fig11_results):
        for name in ("WOHA-HLF", "WOHA-LPF", "WOHA-MPF"):
            result = fig11_results[name]
            assert result.miss_ratio == 0.0, f"{name} missed deadlines"

    def test_fifo_misses_the_tight_workflow(self, fig11_results):
        result = fig11_results["FIFO"]
        assert not result.stats["W-3"].met_deadline
        assert result.max_tardiness > 100.0

    def test_fair_is_the_worst(self, fig11_results):
        fair = fig11_results["Fair"]
        assert fair.miss_ratio > 0.0
        assert fair.total_tardiness >= fig11_results["FIFO"].total_tardiness

    def test_edf_distorts_toward_the_earliest_deadline(self, fig11_results):
        """Paper Fig 11/16: EDF finishes W-3 far before its deadline while
        W-1 is pushed latest of all schedulers."""
        edf = fig11_results["EDF"]
        assert edf.stats["W-3"].workspan < 0.8 * (edf.stats["W-3"].deadline - edf.stats["W-3"].submit_time)
        # EDF finishes W-3 earliest of all schedulers...
        w3_spans = {name: r.stats["W-3"].workspan for name, r in fig11_results.items()}
        assert w3_spans["EDF"] == min(w3_spans.values())
        # ...while pushing W-1 well past the deadline-agnostic baselines.
        w1_spans = {name: r.stats["W-1"].workspan for name, r in fig11_results.items()}
        assert w1_spans["EDF"] > w1_spans["FIFO"]
        assert w1_spans["EDF"] > w1_spans["Fair"]

    def test_woha_interleaves_instead_of_dominating(self, fig11_results):
        """No workflow under WOHA finishes dramatically early at others'
        expense: completion order follows deadline order."""
        woha = fig11_results["WOHA-LPF"]
        completions = [woha.stats[f"W-{i}"].completion_time for i in (1, 2, 3)]
        # later-released, tighter-deadline workflows finish earlier
        assert completions == sorted(completions, reverse=True)

    def test_woha_utilization_not_below_baselines(self, fig11_results):
        """Paper Fig 12 side-effect: WOHA's utilization is competitive."""
        woha = fig11_results["WOHA-LPF"].utilization
        fair = fig11_results["Fair"].utilization
        assert woha >= fair - 0.02

    def test_workspans_in_paper_band(self, fig11_results):
        """Fig 11's Y axis spans roughly 3000-5500 s; our calibration keeps
        workspans in the same band."""
        for name, result in fig11_results.items():
            for wf in ("W-1", "W-2", "W-3"):
                assert 2000.0 < result.stats[wf].workspan < 6000.0, (name, wf)


class TestDeterminism:
    def test_full_simulation_reproducible(self):
        a = run_fig11(WohaScheduler(), "woha", planner=make_planner("lpf"))
        b = run_fig11(WohaScheduler(), "woha", planner=make_planner("lpf"))
        assert {k: v.completion_time for k, v in a.stats.items()} == {
            k: v.completion_time for k, v in b.stats.items()
        }
        assert a.events_processed == b.events_processed
