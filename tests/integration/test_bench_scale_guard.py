"""Guard for the scale-tier trajectory file.

``benchmarks/bench_scale.py`` is ``perf``-marked and excluded from tier-1,
so this test runs the same bench machinery on a toy grid (tiny clusters,
one repeat) and pins the payload shape, the JSON round-trip, and the
sharded-equals-sequential invariant the tier exists to enforce.
"""

import json

from benchmarks.bench_scale import (
    CLUSTER_METRIC_KEYS,
    WORKER_METRIC_KEYS,
    run_bench,
    write_json,
)
from repro.experiments.runner import ExperimentCell


def test_bench_emits_valid_json_with_expected_keys(tmp_path):
    cells = [
        ExperimentCell("periodic", scheduler, seed=0, nodes=4, scale=0.1)
        for scheduler in ("fifo", "woha-lpf")
    ]
    payload = run_bench(
        node_sizes=(4, 8),
        workflow_count=6,
        worker_counts=(0, 1),
        grid_cells=cells,
        repeats=1,
    )

    out = tmp_path / "BENCH_scale.json"
    write_json(payload, str(out))
    parsed = json.loads(out.read_text())
    assert parsed == payload  # everything in the payload is JSON-serialisable

    assert parsed["bench"] == "scale"
    assert parsed["repeats"] == 1
    assert parsed["corpus"] == {"cluster_workflows": 6, "grid_cells": 2}

    assert set(parsed["cluster_sweep"]) == {"nodes_4", "nodes_8"}
    for entry in parsed["cluster_sweep"].values():
        assert set(entry) == set(CLUSTER_METRIC_KEYS)
        assert entry["wall_s"] > 0
        assert entry["events"] > 0
        assert entry["events_per_sec"] > 0
        assert 0 < entry["utilization"] <= 1

    assert set(parsed["worker_sweep"]) == {"workers_0", "workers_1"}
    for entry in parsed["worker_sweep"].values():
        assert set(entry) == set(WORKER_METRIC_KEYS)
        assert entry["cells"] == 2
        assert entry["matches_sequential"] is True
