"""Cross-process determinism guard.

Regression test for a real bug: frozenset iteration order is governed by
Python's per-process hash randomization, and an unsorted iteration over a
job's dependents made submitter-unlock order — and therefore whole
simulation outcomes — vary between interpreter invocations.  This test
runs the same noisy WOHA simulation in two subprocesses with different
``PYTHONHASHSEED`` values and requires identical results.
"""

import os
import subprocess
import sys

SCRIPT = """
from repro import ClusterConfig, ClusterSimulation, LognormalNoise, WohaScheduler, make_planner
from repro.workloads.topologies import fig7_topology

wfs = [
    fig7_topology("A", submit_time=0.0, relative_deadline=4000.0, duration_scale=1.0),
    fig7_topology("B", submit_time=60.0, relative_deadline=3500.0, duration_scale=1.0),
]
config = ClusterConfig(num_nodes=8, map_slots_per_node=2, reduce_slots_per_node=1,
                       heartbeat_interval=float("inf"))
sim = ClusterSimulation(config, WohaScheduler(), submission="woha",
                        planner=make_planner("lpf"),
                        duration_sampler_factory=LognormalNoise(0.4, seed=13))
sim.add_workflows(wfs)
result = sim.run()
print(sorted((k, v.completion_time) for k, v in result.stats.items()))
print(result.events_processed)
"""


def _run_with_hash_seed(seed: str) -> str:
    env = dict(os.environ, PYTHONHASHSEED=seed)
    proc = subprocess.run(
        [sys.executable, "-c", SCRIPT], capture_output=True, text=True, env=env, timeout=120
    )
    assert proc.returncode == 0, proc.stderr
    return proc.stdout


def test_identical_outcomes_across_hash_seeds():
    assert _run_with_hash_seed("1") == _run_with_hash_seed("2")
