"""Contracts must be purely observational on the Yahoo-trace corpus.

Same acceptance bar as the decision-tracing layer
(:mod:`tests.integration.test_trace_invariance`): enabling runtime
contract checks changes *zero* scheduling decisions.  We run a reduced
Yahoo!-like trace (§VI-A composition, fixed seed) through the full WOHA
stack with contracts off and on, compare the complete launch sequences
byte-for-byte, and require that the enabled run actually evaluated a
substantial number of assertions — an invariance test that checks
nothing is no test at all.
"""

import json

import pytest

from repro.cluster.config import ClusterConfig
from repro.cluster.simulation import ClusterSimulation
from repro.core.client import make_planner
from repro.core.scheduler import WohaScheduler
from repro.schedulers.edf import EdfScheduler
from repro.workloads.yahoo import YahooTraceConfig, generate_yahoo_workflows


class AssignmentLog:
    """JobTracker listener that records every launch in order."""

    def __init__(self):
        self.launches = []

    def on_task_launch(self, task, now):
        self.launches.append((now, task.task_id))


def corpus():
    config = YahooTraceConfig(
        num_workflows=10,
        total_jobs=28,
        num_single_job=3,
        max_workflow_size=6,
        seed=2014,
        submission_window=200.0,
    )
    return generate_yahoo_workflows(config)


def run_once(scheduler_factory, submission, planner, contracts):
    sim = ClusterSimulation(
        ClusterConfig(num_nodes=8, map_slots_per_node=2, reduce_slots_per_node=1),
        scheduler_factory(),
        submission=submission,
        planner=planner,
        contracts=contracts,
    )
    log = AssignmentLog()
    sim.jobtracker.add_listener(log)
    for wf in corpus():
        sim.add_workflow(wf)
    result = sim.run()
    return log.launches, result


@pytest.mark.parametrize("backend", ["dsl", "bst"])
def test_woha_contracts_change_zero_decisions_on_yahoo_trace(backend):
    factory = lambda: WohaScheduler(queue_backend=backend)
    planner = make_planner("lpf")
    plain, _ = run_once(factory, "woha", planner, contracts=False)
    checked, result = run_once(factory, "woha", planner, contracts=True)
    assert plain, "scenario launched nothing; invariance is vacuous"
    assert json.dumps(plain) == json.dumps(checked)
    assert result.contracts.counters["assertions"] > 1000
    assert result.contracts.counters["violations"] == 0
    assert result.contracts.counters["dsl_checks"] > 0
    assert result.contracts.counters["plan_checks"] >= 7  # 10 wfs - 3 singles pass too


def test_baseline_scheduler_contracts_also_invariant():
    # Non-WOHA stacks exercise the dispatch/monitor side only.
    plain, _ = run_once(EdfScheduler, "oozie", None, contracts=False)
    checked, result = run_once(EdfScheduler, "oozie", None, contracts=True)
    assert plain and json.dumps(plain) == json.dumps(checked)
    assert result.contracts.counters["dispatch_checks"] > 0
    assert result.contracts.counters["violations"] == 0
