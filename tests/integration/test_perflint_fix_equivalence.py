"""The DT401-DT405 hot-path fixes change no decision (DESIGN.md §14).

ISSUE 9 pre-bound attribute chains in ``JobTracker._heartbeat_tick`` /
``_wake_parked`` / ``_complete_task``, ``Simulator``'s callers,
``FifoScheduler``/``FairScheduler`` batched rounds, and the
``DoubleSkipList``/``DeterministicSkipList`` update paths, and annotated
the surviving allocations with ``# repro: allow[DT401]`` bargains.  A
pre-bind is a pure strength reduction — same loads, same order, fewer
dict probes — so the DecisionTracer stream must be byte-identical across
every configuration corner that routes through the edited functions:
(quiescent heartbeats on/off) x (batched assignment on/off).  The
quiescent and batched equivalences are each pinned separately by their
own suites; asserting all four corners agree additionally pins the
*composition*, which crosses every edited function in one run.

The suite also pins the acceptance bar itself: the production tree must
stay free of DT401-DT405 findings under ``repro lint --interproc``.
"""

import random
from pathlib import Path

import pytest

from repro.analysis import lint_paths
from repro.cluster.config import ClusterConfig
from repro.cluster.simulation import ClusterSimulation
from repro.core.client import make_planner
from repro.core.scheduler import WohaScheduler
from repro.schedulers.edf import EdfScheduler
from repro.schedulers.fair import FairScheduler
from repro.schedulers.fifo import FifoScheduler
from repro.workflow.builder import WorkflowBuilder

REPO_ROOT = Path(__file__).resolve().parents[2]

SCHEDULERS = {
    "fifo": FifoScheduler,
    "fair": FairScheduler,
    "edf": EdfScheduler,
    "woha": WohaScheduler,
}


def build_workload(seed: int, n_workflows: int = 3):
    """Staggered submissions, mixed DAG shapes, enough tasks that the
    batched rounds and the skip-list update paths all run repeatedly."""
    rng = random.Random(seed)
    workflows = []
    for w in range(n_workflows):
        builder = WorkflowBuilder(f"wf{seed}_{w}").submit_at(round(rng.uniform(0.0, 30.0), 1))
        names = []
        for j in range(rng.randint(2, 4)):
            after = [name for name in names if rng.random() < 0.5][:2]
            builder.job(
                f"j{j}",
                maps=rng.randint(2, 8),
                reduces=rng.randint(0, 3),
                map_s=rng.choice([5.0, 10.0, 30.0]),
                reduce_s=rng.choice([5.0, 15.0]),
                after=after,
            )
            names.append(f"j{j}")
        builder.deadline(relative=rng.choice([120.0, 600.0]))
        workflows.append(builder.build())
    return workflows


def run_once(seed, mode, sched_name, *, quiescent, batched):
    config = ClusterConfig(
        num_nodes=4,
        map_slots_per_node=2,
        reduce_slots_per_node=1,
        heartbeat_interval=3.0,
        quiescent_heartbeats=quiescent,
        batched_assignment=batched,
    )
    planner = make_planner("lpf") if mode == "woha" else None
    sim = ClusterSimulation(
        config, SCHEDULERS[sched_name](), submission=mode, planner=planner, trace=True
    )
    sim.add_workflows(build_workload(seed))
    return sim.run()


@pytest.mark.parametrize("seed", [0, 1])
@pytest.mark.parametrize("mode", ["oozie", "woha"])
@pytest.mark.parametrize("sched_name", sorted(SCHEDULERS))
def test_all_fast_path_corners_agree(seed, mode, sched_name):
    corners = {
        (quiescent, batched): run_once(
            seed, mode, sched_name, quiescent=quiescent, batched=batched
        )
        for quiescent in (False, True)
        for batched in (False, True)
    }
    reference = corners[(False, False)]
    reference_trace = reference.tracer.dumps_jsonl()
    for key, result in corners.items():
        assert result.tracer.dumps_jsonl() == reference_trace, key
        assert result.stats == reference.stats, key
        assert result.makespan == reference.makespan, key


def test_production_tree_has_no_perf_findings():
    """The ISSUE 9 acceptance bar, as a regression test: every DT4xx
    finding on ``src/repro`` is either fixed or carries an inline
    ``# repro: allow[...]`` justification."""
    report = lint_paths(
        [REPO_ROOT / "src" / "repro"],
        baseline_path=REPO_ROOT / "lint-baseline.txt",
        interproc=True,
    )
    perf = [v for v in report.violations if v.rule.startswith("DT4")]
    assert perf == [], [v.render() for v in perf]
