"""Guard for the plan-throughput trajectory file.

``benchmarks/bench_plan_throughput.py`` is ``perf``-marked and excluded
from the tier-1 suite, so nothing else would notice if a refactor broke
its JSON emission until the next time someone compared trajectories.  This
tier-1 test runs the bench machinery on a toy corpus (one repeat, two tiny
workflows) and pins the payload shape and JSON round-trip.
"""

import json

from benchmarks.bench_plan_throughput import (
    RATE_KEYS,
    SCENARIO_KEYS,
    recurrent_instances,
    run_bench,
    write_json,
)
from repro.workflow.builder import WorkflowBuilder


def _tiny_trace():
    return [
        WorkflowBuilder("t1")
        .job("a", maps=6, reduces=2, map_s=10.0, reduce_s=15.0)
        .deadline(relative=200.0)
        .build(),
        WorkflowBuilder("t2")
        .job("a", maps=4, reduces=0, map_s=8.0)
        .job("b", maps=3, reduces=1, map_s=6.0, reduce_s=9.0, after=["a"])
        .deadline(relative=150.0)
        .build(),
    ]


def test_bench_emits_valid_json_with_expected_keys(tmp_path):
    payload = run_bench(
        trace=_tiny_trace(),
        instances=recurrent_instances(count=3),
        total_slots=16,
        repeats=1,
    )

    out = tmp_path / "BENCH_plan_throughput.json"
    write_json(payload, str(out))
    parsed = json.loads(out.read_text())
    assert parsed == payload  # everything in the payload is JSON-serialisable

    assert parsed["bench"] == "plan_throughput"
    assert parsed["total_slots"] == 16
    assert parsed["corpus"] == {"trace_workflows": 2, "recurrent_instances": 3}
    assert set(parsed["scenarios"]) == set(SCENARIO_KEYS)
    for scenario in parsed["scenarios"].values():
        assert set(scenario) == set(RATE_KEYS)
        for key in RATE_KEYS:
            assert isinstance(scenario[key], (int, float))
            assert scenario[key] > 0
