"""Batched-assignment equivalence: the fast path changes no decision.

``ClusterConfig.batched_assignment`` (DESIGN.md §11) fills every free slot
of a kind in one ``select_tasks`` round per tracker tick / scheduling round
instead of re-walking the scheduler queue once per launch.  These tests pin
the correctness bar from ISSUE 6: with batching on vs. off, DecisionTracer
logs must be byte-identical and every WorkflowStats equal, across seeds,
both submission modes, all four schedulers, and finite vs. infinite
heartbeat intervals — including under random outage interleavings
(hypothesis) and on workloads dense enough that a single round genuinely
fills many slots at once.
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster.config import ClusterConfig
from repro.cluster.failures import FailureInjector, Outage
from repro.cluster.simulation import ClusterSimulation
from repro.core.client import make_planner
from repro.core.scheduler import WohaScheduler
from repro.schedulers.edf import EdfScheduler
from repro.schedulers.fair import FairScheduler
from repro.schedulers.fifo import FifoScheduler
from repro.workflow.builder import WorkflowBuilder

SCHEDULERS = {
    "fifo": FifoScheduler,
    "fair": FairScheduler,
    "edf": EdfScheduler,
    "woha": WohaScheduler,
}


def build_workload(seed: int, n_workflows: int = 3, dense: bool = False):
    """A small seeded workload; ``dense`` packs far more tasks than slots so
    one scheduling round must launch many tasks back to back."""
    rng = random.Random(seed)
    workflows = []
    for w in range(n_workflows):
        builder = WorkflowBuilder(f"wf{seed}_{w}").submit_at(round(rng.uniform(0.0, 30.0), 1))
        names = []
        for j in range(rng.randint(2, 4)):
            after = [name for name in names if rng.random() < 0.5][:2]
            builder.job(
                f"j{j}",
                maps=rng.randint(8, 20) if dense else rng.randint(1, 4),
                reduces=rng.randint(2, 6) if dense else rng.randint(0, 2),
                map_s=rng.choice([5.0, 10.0, 30.0]),
                reduce_s=rng.choice([5.0, 15.0]),
                after=after,
            )
            names.append(f"j{j}")
        builder.deadline(relative=rng.choice([120.0, 600.0]))
        workflows.append(builder.build())
    return workflows


def run_once(seed, mode, sched_name, batched, heartbeat_interval=3.0, dense=False, outages=()):
    config = ClusterConfig(
        num_nodes=4,
        map_slots_per_node=2,
        reduce_slots_per_node=1,
        heartbeat_interval=heartbeat_interval,
        batched_assignment=batched,
    )
    planner = make_planner("lpf") if mode == "woha" else None
    sim = ClusterSimulation(
        config, SCHEDULERS[sched_name](), submission=mode, planner=planner, trace=True
    )
    sim.add_workflows(build_workload(seed, dense=dense))
    if outages:
        FailureInjector(sim.sim, sim.jobtracker).schedule(outages)
    return sim.run()


@pytest.mark.parametrize("seed", [0, 1])
@pytest.mark.parametrize("mode", ["oozie", "woha"])
@pytest.mark.parametrize("sched_name", sorted(SCHEDULERS))
@pytest.mark.parametrize("heartbeat_interval", [3.0, float("inf")])
def test_batched_assignment_changes_nothing(seed, mode, sched_name, heartbeat_interval):
    batched = run_once(seed, mode, sched_name, True, heartbeat_interval)
    reference = run_once(seed, mode, sched_name, False, heartbeat_interval)
    assert batched.tracer.dumps_jsonl() == reference.tracer.dumps_jsonl()
    assert batched.stats == reference.stats
    assert batched.makespan == reference.makespan
    # Batching reorders no events and removes none: same stream, fewer walks.
    assert batched.events_processed == reference.events_processed


@pytest.mark.parametrize("mode", ["oozie", "woha"])
@pytest.mark.parametrize("sched_name", sorted(SCHEDULERS))
def test_batched_assignment_dense_rounds(mode, sched_name):
    """Slot-starved workloads: one round fills all 8 map slots at once."""
    batched = run_once(3, mode, sched_name, True, dense=True)
    reference = run_once(3, mode, sched_name, False, dense=True)
    assert batched.tracer.dumps_jsonl() == reference.tracer.dumps_jsonl()
    assert batched.stats == reference.stats


@settings(max_examples=15, deadline=None)
@given(
    seed=st.integers(0, 50),
    sched_name=st.sampled_from(sorted(SCHEDULERS)),
    outage_plan=st.lists(
        st.tuples(
            st.floats(1.0, 90.0).map(lambda t: round(t, 1)),  # kill time
            st.floats(5.0, 60.0).map(lambda t: round(t, 1)),  # downtime
        ),
        max_size=2,
    ),
)
def test_batched_equivalence_under_failures(seed, sched_name, outage_plan):
    """Random submit/complete/kill/revive interleavings: on/off identical."""
    outages = tuple(
        Outage(time=kill_time, tracker_id=i, down_for=down_for)
        for i, (kill_time, down_for) in enumerate(outage_plan)
    )
    batched = run_once(seed, "oozie", sched_name, True, outages=outages)
    reference = run_once(seed, "oozie", sched_name, False, outages=outages)
    assert batched.tracer.dumps_jsonl() == reference.tracer.dumps_jsonl()
    assert batched.stats == reference.stats
