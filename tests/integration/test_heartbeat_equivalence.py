"""Quiescent-heartbeat equivalence: the fast path changes no decision.

The quiescence protocol (DESIGN.md §10) parks periodic heartbeat timers
whose ticks are provably no-ops and wakes them on state changes.  These
tests pin the correctness bar from ISSUE 5: with the fast path on vs. off,
DecisionTracer logs must be byte-identical and every WorkflowStats equal,
across seeds, both submission modes, all four schedulers, and finite vs.
infinite heartbeat intervals — including under random submit/complete/kill
interleavings (hypothesis).
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster.config import ClusterConfig
from repro.cluster.failures import FailureInjector, Outage
from repro.cluster.simulation import ClusterSimulation
from repro.core.client import make_planner
from repro.core.scheduler import WohaScheduler
from repro.schedulers.edf import EdfScheduler
from repro.schedulers.fair import FairScheduler
from repro.schedulers.fifo import FifoScheduler
from repro.workflow.builder import WorkflowBuilder

SCHEDULERS = {
    "fifo": FifoScheduler,
    "fair": FairScheduler,
    "edf": EdfScheduler,
    "woha": WohaScheduler,
}


def build_workload(seed: int, n_workflows: int = 3):
    """A small seeded workload with staggered submissions and mixed shapes."""
    rng = random.Random(seed)
    workflows = []
    for w in range(n_workflows):
        builder = WorkflowBuilder(f"wf{seed}_{w}").submit_at(round(rng.uniform(0.0, 30.0), 1))
        names = []
        for j in range(rng.randint(2, 4)):
            after = [name for name in names if rng.random() < 0.5][:2]
            builder.job(
                f"j{j}",
                maps=rng.randint(1, 4),
                reduces=rng.randint(0, 2),
                map_s=rng.choice([5.0, 10.0, 30.0]),
                reduce_s=rng.choice([5.0, 15.0]),
                after=after,
            )
            names.append(f"j{j}")
        builder.deadline(relative=rng.choice([120.0, 600.0]))
        workflows.append(builder.build())
    return workflows


def run_once(seed, mode, sched_name, heartbeat_interval, quiescent, outages=()):
    config = ClusterConfig(
        num_nodes=4,
        map_slots_per_node=2,
        reduce_slots_per_node=1,
        heartbeat_interval=heartbeat_interval,
        quiescent_heartbeats=quiescent,
    )
    planner = make_planner("lpf") if mode == "woha" else None
    sim = ClusterSimulation(
        config, SCHEDULERS[sched_name](), submission=mode, planner=planner, trace=True
    )
    sim.add_workflows(build_workload(seed))
    if outages:
        FailureInjector(sim.sim, sim.jobtracker).schedule(outages)
    return sim.run()


@pytest.mark.parametrize("seed", [0, 1])
@pytest.mark.parametrize("mode", ["oozie", "woha"])
@pytest.mark.parametrize("sched_name", sorted(SCHEDULERS))
@pytest.mark.parametrize("heartbeat_interval", [3.0, float("inf")])
def test_quiescent_heartbeats_change_nothing(seed, mode, sched_name, heartbeat_interval):
    fast = run_once(seed, mode, sched_name, heartbeat_interval, quiescent=True)
    reference = run_once(seed, mode, sched_name, heartbeat_interval, quiescent=False)
    assert fast.tracer.dumps_jsonl() == reference.tracer.dumps_jsonl()
    assert fast.stats == reference.stats
    assert fast.makespan == reference.makespan
    # The fast path only ever removes no-op tick events.
    assert fast.events_processed <= reference.events_processed


def test_fast_path_actually_parks():
    """With long tasks and a finite interval, parking must drop events."""
    fast = run_once(2, "oozie", "fifo", 3.0, quiescent=True)
    reference = run_once(2, "oozie", "fifo", 3.0, quiescent=False)
    assert fast.tracer.dumps_jsonl() == reference.tracer.dumps_jsonl()
    assert fast.events_processed < reference.events_processed


@settings(max_examples=15, deadline=None)
@given(
    seed=st.integers(0, 50),
    sched_name=st.sampled_from(sorted(SCHEDULERS)),
    outage_plan=st.lists(
        st.tuples(
            st.floats(1.0, 90.0).map(lambda t: round(t, 1)),  # kill time
            st.floats(5.0, 60.0).map(lambda t: round(t, 1)),  # downtime
        ),
        max_size=2,
    ),
)
def test_park_wake_equivalence_under_failures(seed, sched_name, outage_plan):
    """Random submit/complete/kill/revive interleavings: on/off identical.

    Each outage hits a distinct tracker and always revives, so every
    workflow eventually completes and both runs terminate.
    """
    outages = tuple(
        Outage(time=kill_time, tracker_id=i, down_for=down_for)
        for i, (kill_time, down_for) in enumerate(outage_plan)
    )
    fast = run_once(seed, "oozie", sched_name, 3.0, quiescent=True, outages=outages)
    reference = run_once(seed, "oozie", sched_name, 3.0, quiescent=False, outages=outages)
    assert fast.tracer.dumps_jsonl() == reference.tracer.dumps_jsonl()
    assert fast.stats == reference.stats
