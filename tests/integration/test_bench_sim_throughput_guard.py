"""Guard for the simulation-throughput trajectory file.

``benchmarks/bench_sim_throughput.py`` is ``perf``-marked and excluded
from the tier-1 suite, so nothing else would notice if a refactor broke
its JSON emission until the next time someone compared trajectories.  This
tier-1 test runs the bench machinery on a toy corpus (one repeat, tiny
cluster) and pins the payload shape and JSON round-trip.
"""

import json

from benchmarks.bench_sim_throughput import (
    HEARTBEAT_INTERVAL,
    METRIC_KEYS,
    SCENARIO_KEYS,
    periodic_workflows,
    run_bench,
    write_json,
)
from repro.workflow.builder import WorkflowBuilder


def _tiny_trace():
    return [
        WorkflowBuilder("t1")
        .job("a", maps=4, reduces=2, map_s=10.0, reduce_s=15.0)
        .deadline(relative=200.0)
        .build(),
        WorkflowBuilder("t2")
        .submit_at(5.0)
        .job("a", maps=3, reduces=0, map_s=8.0)
        .job("b", maps=2, reduces=1, map_s=6.0, reduce_s=9.0, after=["a"])
        .deadline(relative=150.0)
        .build(),
    ]


def test_bench_emits_valid_json_with_expected_keys(tmp_path):
    payload = run_bench(
        trace=_tiny_trace(),
        periodic=periodic_workflows(count=2, task_s=30.0),
        trace_slots=4,
        trace_nodes=2,
        periodic_nodes=3,
        repeats=1,
    )

    out = tmp_path / "BENCH_sim_throughput.json"
    write_json(payload, str(out))
    parsed = json.loads(out.read_text())
    assert parsed == payload  # everything in the payload is JSON-serialisable

    assert parsed["bench"] == "sim_throughput"
    assert parsed["heartbeat_interval"] == HEARTBEAT_INTERVAL
    # The measurement protocol is part of the payload: a trajectory entry
    # is only comparable to another taken with the same repeat count.
    assert parsed["repeats"] == 1
    assert parsed["cluster"] == {"trace_nodes": 2, "periodic_nodes": 3}
    assert parsed["corpus"] == {"trace_workflows": 2, "periodic_workflows": 2}
    assert set(parsed["scenarios"]) == set(SCENARIO_KEYS)
    for scenario in parsed["scenarios"].values():
        assert set(scenario) == set(METRIC_KEYS)
        for key in METRIC_KEYS:
            assert isinstance(scenario[key], (int, float))
            assert scenario[key] > 0
        # Parking only ever removes events; it can never add any.
        assert scenario["fast_events"] <= scenario["reference_events"]
        # The per-event costs must be the inverse of the event rates (both
        # are derived from the same wall/events pair, rounding aside).
        assert scenario["reference_us_per_event"] > 0
        assert scenario["fast_us_per_event"] > 0
        ref_rate_us = 1e6 / scenario["reference_events_per_sec"]
        fast_rate_us = 1e6 / scenario["fast_events_per_sec"]
        assert abs(scenario["reference_us_per_event"] - ref_rate_us) < 0.01 * ref_rate_us + 0.01
        assert abs(scenario["fast_us_per_event"] - fast_rate_us) < 0.01 * fast_rate_us + 0.01
