"""Fast-path planning is byte-identical to the frozen reference path.

The fast path (heap kernel, memoised + analytically seeded cap search,
plan built from the search's final probe, optional plan cache) promises to
change *nothing* about the emitted plans — only how fast they are
produced.  Following the trace-invariance pattern, this corpus test pins
that promise over the evaluation workloads: the Yahoo! trace behind
Figs 8-10 and the Fig 11 topologies, for all three prioritizers and both
pool modes, comparing ``ProgressPlan.to_bytes()`` pair-wise against
``benchmarks/_reference_plangen`` (the planning pipeline as it stood
before the rewrite, kept verbatim).
"""

import pytest

from benchmarks._helpers import yahoo_trace
from benchmarks._reference_plangen import (
    reference_find_min_cap,
    reference_planner,
)
from repro.core.capsearch import find_min_cap
from repro.core.client import make_planner
from repro.core.plancache import PlanCache
from repro.core.priorities import PRIORITIZERS
from repro.workloads.topologies import fig11_workflows

#: (corpus name, workflows, total_slots) — slot counts match the figure
#: benches: Fig 8's 200m+200r cluster and Fig 11's 32-node cluster.
def _corpus():
    return [
        ("yahoo", list(yahoo_trace()), 400),
        ("fig11", list(fig11_workflows()), 96),
    ]


@pytest.mark.parametrize("pool", ["pooled", "split"])
@pytest.mark.parametrize("prioritizer", sorted(PRIORITIZERS))
def test_fast_path_plans_byte_identical(prioritizer, pool):
    fast = make_planner(prioritizer, pool=pool)
    reference = reference_planner(prioritizer, pool=pool)
    for corpus_name, workflows, slots in _corpus():
        for workflow in workflows:
            got = fast(workflow, slots).to_bytes()
            want = reference(workflow, slots).to_bytes()
            assert got == want, (corpus_name, workflow.name, prioritizer, pool)


@pytest.mark.parametrize("prioritizer", sorted(PRIORITIZERS))
def test_cap_search_matches_reference(prioritizer):
    """Same cap/feasible/makespan; never more probes than the naive search."""
    order_fn = PRIORITIZERS[prioritizer]
    for corpus_name, workflows, slots in _corpus():
        for workflow in workflows:
            order = order_fn(workflow)
            fast = find_min_cap(workflow, slots, job_order=order)
            ref = reference_find_min_cap(workflow, slots, job_order=order)
            assert (fast.cap, fast.feasible, fast.makespan) == (
                ref.cap,
                ref.feasible,
                ref.makespan,
            ), (corpus_name, workflow.name, prioritizer)
            assert fast.probes <= ref.probes


@pytest.mark.parametrize("pool", ["pooled", "split"])
def test_plan_cache_serves_byte_identical_plans(pool):
    """Cache hits return the same bytes a fresh planning run would emit."""
    cache = PlanCache()
    cached = make_planner("lpf", pool=pool, plan_cache=cache)
    plain = make_planner("lpf", pool=pool)
    for _corpus_name, workflows, slots in _corpus():
        for _round in range(2):  # second round is served from the cache
            for workflow in workflows:
                assert cached(workflow, slots).to_bytes() == plain(workflow, slots).to_bytes()
    assert cache.hits > 0 and cache.misses > 0
