"""Guard for the lint-speed bench machinery.

``benchmarks/bench_lint_speed.py`` is ``perf``-marked and excluded from
the tier-1 suite, so this tier-1 test runs its measurement path on a toy
corpus (one repeat, the fixture directory) and pins the payload shape —
the same arrangement as ``test_bench_plan_throughput_guard``.
"""

import json
from pathlib import Path

from benchmarks.bench_lint_speed import (
    BUDGET_SECONDS,
    INCREMENTAL_BUDGET_SECONDS,
    INTERPROC_BUDGET_SECONDS,
    MIN_INCREMENTAL_SPEEDUP,
    run_bench,
    run_incremental_bench,
)

FIXTURES = Path(__file__).resolve().parent.parent / "analysis" / "fixtures"


def test_bench_payload_shape_on_toy_corpus(tmp_path):
    baseline = tmp_path / "baseline.txt"
    baseline.write_text("")  # empty budget; fixture violations are expected
    payload = run_bench(paths=[FIXTURES], baseline=baseline, repeats=1)

    assert json.loads(json.dumps(payload)) == payload  # JSON-serialisable
    assert payload["bench"] == "lint_speed"
    assert payload["files_checked"] >= 8
    assert payload["violations"] >= 6  # one per seeded rule fixture
    assert payload["best_seconds"] > 0
    assert payload["files_per_sec"] > 0
    assert payload["budget_seconds"] == BUDGET_SECONDS


def test_bench_interproc_payload_shape_on_toy_corpus(tmp_path):
    baseline = tmp_path / "baseline.txt"
    baseline.write_text("")
    payload = run_bench(
        paths=[FIXTURES], baseline=baseline, repeats=1, interproc=True
    )

    assert json.loads(json.dumps(payload)) == payload
    assert payload["bench"] == "lint_speed_interproc"
    # The whole-program pass adds the DT2xx/DT3xx/DT4xx corpus findings.
    assert payload["violations"] >= 15
    assert payload["budget_seconds"] == INTERPROC_BUDGET_SECONDS


def test_bench_incremental_payload_shape_on_toy_corpus(tmp_path):
    baseline = tmp_path / "baseline.txt"
    baseline.write_text("")
    payload = run_incremental_bench(paths=[FIXTURES], baseline=baseline, repeats=1)

    assert json.loads(json.dumps(payload)) == payload
    assert payload["bench"] == "lint_speed_incremental"
    assert payload["files_checked"] >= 8
    # The warm replay must be a full program-cache hit.
    assert payload["warm_summaries_recomputed"] == 0
    assert payload["cold_seconds"] > 0 and payload["warm_seconds"] > 0
    assert payload["budget_seconds"] == INCREMENTAL_BUDGET_SECONDS
    assert payload["min_speedup"] == MIN_INCREMENTAL_SPEEDUP
