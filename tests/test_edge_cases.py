"""Edge-case tests across modules: churn, ties, staggering, failure mixes."""

import pytest

from repro.cluster.config import ClusterConfig
from repro.cluster.failures import FailureInjector, Outage
from repro.cluster.jobtracker import JobTracker
from repro.cluster.simulation import ClusterSimulation
from repro.cluster.tasks import TaskKind
from repro.core.client import make_planner
from repro.core.scheduler import WohaScheduler
from repro.events import Simulator
from repro.schedulers.edf import EdfScheduler
from repro.schedulers.fair import FairScheduler
from repro.schedulers.fifo import FifoScheduler
from repro.structures.skiplist import DeterministicSkipList
from repro.workflow.builder import WorkflowBuilder
from repro.workloads.yahoo import YahooTraceConfig, generate_yahoo_workflows


class TestSkipListChurn:
    def test_heavy_head_deletion_churn(self):
        sl = DeterministicSkipList()
        for i in range(512):
            sl.insert(i, i)
        for i in range(500):
            sl.pop_head()
        sl.check_invariants()
        # Structure remains usable after deep head churn.
        for i in range(1000, 1500):
            sl.insert(i, i)
        sl.check_invariants()
        assert len(sl) == 512 - 500 + 500

    def test_alternating_insert_delete_same_keys(self):
        sl = DeterministicSkipList()
        for round_ in range(20):
            for i in range(30):
                sl.insert((i, round_), i)
            for i in range(30):
                sl.delete((i, round_))
        assert len(sl) == 0
        sl.check_invariants()

    def test_reverse_deletion_order(self):
        sl = DeterministicSkipList()
        for i in range(200):
            sl.insert(i, i)
        for i in reversed(range(200)):
            sl.delete(i)
        assert len(sl) == 0
        sl.check_invariants()

    def test_height_bounded_after_churn(self):
        sl = DeterministicSkipList()
        for i in range(2048):
            sl.insert(i, i)
        for i in range(0, 2048, 2):
            sl.delete(i)
        # Height tracks the historical maximum (documented trade-off) but
        # must stay logarithmic in it.
        assert sl.height <= 16
        sl.check_invariants()


class TestSchedulerTieBreaks:
    def _cluster(self):
        return ClusterConfig(
            num_nodes=1, map_slots_per_node=2, reduce_slots_per_node=1, heartbeat_interval=float("inf")
        )

    def test_edf_equal_deadlines_fall_back_to_submission_order(self):
        wfs = [
            WorkflowBuilder("b-second").job("j", maps=2, reduces=0, map_s=10).submit_at(1.0)
            .deadline(absolute=100.0).build(),
            WorkflowBuilder("a-first").job("j", maps=2, reduces=0, map_s=10).submit_at(0.0)
            .deadline(absolute=100.0).build(),
        ]
        sim = ClusterSimulation(self._cluster(), EdfScheduler(), submission="oozie")
        sim.add_workflows(wfs)
        result = sim.run()
        assert (
            result.stats["a-first"].completion_time < result.stats["b-second"].completion_time
        )

    def test_fair_is_fair_per_slot_kind(self):
        """A reduce-heavy and a map-heavy job must not block each other."""
        map_heavy = WorkflowBuilder("maps").job("j", maps=10, reduces=0, map_s=10).build()
        reduce_heavy = (
            WorkflowBuilder("reduces").job("j", maps=1, reduces=6, map_s=1, reduce_s=10).build()
        )
        sim = ClusterSimulation(self._cluster(), FairScheduler(), submission="oozie")
        sim.add_workflows([map_heavy, reduce_heavy])
        result = sim.run()
        # reduce-heavy's map waits one wave (map slots busy until t=10),
        # then its 6 reduces run on the reduce slot concurrently with
        # map-heavy's remaining maps: ~11 + 60 = ~71.  Neither workload
        # blocks the other's slot kind.
        assert result.stats["reduces"].completion_time <= 75.0
        assert result.stats["maps"].completion_time <= 55.0


class TestTrackerSelection:
    def test_round_robin_spreads_tasks(self):
        sim = Simulator()
        config = ClusterConfig(
            num_nodes=4, map_slots_per_node=2, reduce_slots_per_node=1, heartbeat_interval=float("inf")
        )
        jt = JobTracker(sim, config, FifoScheduler())
        wf = WorkflowBuilder("w").job("j", maps=8, reduces=0, map_s=10).build()
        jt.submit_workflow(wf, use_submitter=False)
        jt.submit_wjob("w", "j")
        per_tracker = [len(t.running) for t in jt.trackers]
        assert per_tracker == [2, 2, 2, 2]


class TestHeartbeatStaggering:
    def test_first_heartbeats_spread_across_interval(self):
        sim = Simulator()
        config = ClusterConfig(
            num_nodes=4, map_slots_per_node=1, reduce_slots_per_node=1,
            heartbeat_interval=4.0, eager_heartbeats=False,
        )
        jt = JobTracker(sim, config, FifoScheduler())
        seen = []

        original = jt.heartbeat

        def spy(tracker):
            seen.append((sim.now, tracker.tracker_id))
            return original(tracker)

        jt.heartbeat = spy
        jt.start_heartbeats()
        sim.run(until=4.0)
        times = sorted(t for t, _tid in seen)
        assert len(times) == 4
        assert len(set(times)) == 4  # all distinct: no heartbeat storm


class TestSimulationControls:
    def test_run_until_freezes_midway(self, small_workflow, tiny_cluster):
        sim = ClusterSimulation(tiny_cluster, FifoScheduler(), submission="oozie")
        sim.add_workflow(small_workflow)
        partial = sim.run(until=15.0)
        assert partial.stats["wf"].completion_time == float("inf")
        final = sim.run()
        assert final.stats["wf"].completion_time < float("inf")

    def test_max_events_guard_propagates(self, small_workflow, tiny_cluster):
        from repro.events import SimulationError

        sim = ClusterSimulation(tiny_cluster, FifoScheduler(), submission="oozie")
        sim.add_workflow(small_workflow)
        with pytest.raises(SimulationError):
            sim.run(max_events=3)


class TestFailuresOnTrace:
    def test_woha_trace_run_survives_random_outages(self):
        workflows = generate_yahoo_workflows(
            YahooTraceConfig(num_workflows=10, total_jobs=30, num_single_job=2, seed=3)
        )
        config = ClusterConfig.from_total_slots(60, 30, nodes=10, heartbeat_interval=float("inf"))
        sim = ClusterSimulation(config, WohaScheduler(), submission="woha", planner=make_planner())
        injector = FailureInjector(sim.sim, sim.jobtracker)
        injector.random_outages(horizon=2000.0, rate_per_hour=30.0, mean_downtime=120.0, seed=5)
        sim.add_workflows(workflows)
        result = sim.run()
        # Every workflow still completes despite the outage process
        # (enough trackers recover to retain capacity).
        assert all(s.completion_time < float("inf") for s in result.stats.values())
        assert result.metrics.tasks_completed >= sum(w.total_tasks for w in workflows)
