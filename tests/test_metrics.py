"""Unit tests for metrics collection and report helpers."""

import pytest

from repro.cluster.config import ClusterConfig
from repro.cluster.simulation import ClusterSimulation, WorkflowStats
from repro.cluster.tasks import TaskKind
from repro.metrics.report import (
    deadline_miss_ratio,
    format_table,
    max_tardiness,
    total_tardiness,
    workspans,
)
from repro.schedulers.fifo import FifoScheduler
from repro.workflow.builder import WorkflowBuilder


def stats(name, submit, done, deadline):
    return WorkflowStats(name=name, submit_time=submit, completion_time=done, deadline=deadline)


class TestReportHelpers:
    def test_miss_ratio(self):
        data = [stats("a", 0, 10, 20), stats("b", 0, 30, 20), stats("c", 0, 5, None)]
        assert deadline_miss_ratio(data) == 0.5  # best-effort excluded

    def test_miss_ratio_empty_and_all_best_effort(self):
        assert deadline_miss_ratio([]) == 0.0
        assert deadline_miss_ratio([stats("a", 0, 10, None)]) == 0.0

    def test_tardiness_aggregates(self):
        data = [stats("a", 0, 30, 20), stats("b", 0, 25, 20), stats("c", 0, 10, 20)]
        assert max_tardiness(data) == 10.0
        assert total_tardiness(data) == 15.0

    def test_tardiness_zero_when_all_met(self):
        data = [stats("a", 0, 10, 20)]
        assert max_tardiness(data) == 0.0
        assert total_tardiness(data) == 0.0

    def test_workspans(self):
        data = [stats("a", 5, 30, None)]
        assert workspans(data) == {"a": 25.0}

    def test_format_table_alignment(self):
        out = format_table(["name", "value"], [["x", 1.5], ["longer", 22.25]], title="T")
        lines = out.splitlines()
        assert lines[0] == "T"
        assert "name" in lines[1] and "value" in lines[1]
        assert len(lines) == 5
        assert "22.250" in lines[4]


class TestCollector:
    @pytest.fixture
    def run_result(self, tiny_cluster):
        wf = (
            WorkflowBuilder("w")
            .job("a", maps=4, reduces=2, map_s=10, reduce_s=20)
            .build()
        )
        sim = ClusterSimulation(tiny_cluster, FifoScheduler(), submission="oozie")
        sim.add_workflow(wf)
        return sim.run()

    def test_busy_seconds_match_task_durations(self, run_result):
        m = run_result.metrics
        assert m.busy_map_seconds == 4 * 10.0
        assert m.busy_reduce_seconds == 2 * 20.0

    def test_utilization_bounds(self, run_result):
        u = run_result.metrics.utilization()
        assert 0.0 < u <= 1.0

    def test_allocation_series_steps(self, run_result):
        series = run_result.metrics.allocation_series(TaskKind.MAP, workflow="w")
        # 4 maps on 4 slots at t=0, drop to 0 at t=10, reduces later.
        assert series[0].time == 0.0 and series[0].count == 4
        assert series[-1].count == 0

    def test_allocation_series_reduce(self, run_result):
        series = run_result.metrics.allocation_series(TaskKind.REDUCE, workflow="w")
        assert max(s.count for s in series) == 2

    def test_allocation_matrix_grid(self, run_result):
        times, counts = run_result.metrics.allocation_matrix(TaskKind.MAP, ["w"], step=5.0)
        assert len(times) == len(counts["w"])
        assert counts["w"][0] == 4  # sampled at t=0
        assert counts["w"][-1] == 0

    def test_peak_allocation(self, run_result, tiny_cluster):
        assert run_result.metrics.peak_allocation(TaskKind.MAP) == tiny_cluster.total_map_slots

    def test_event_counters(self, run_result):
        m = run_result.metrics
        assert m.tasks_launched == m.tasks_completed == 6
        assert m.window == 30.0
