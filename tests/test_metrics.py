"""Unit tests for metrics collection and report helpers."""

import pytest

from repro.cluster.config import ClusterConfig
from repro.cluster.simulation import ClusterSimulation, WorkflowStats
from repro.cluster.tasks import TaskKind
from repro.metrics.report import (
    deadline_miss_ratio,
    format_table,
    max_tardiness,
    total_tardiness,
    workspans,
)
from repro.schedulers.fifo import FifoScheduler
from repro.workflow.builder import WorkflowBuilder


def stats(name, submit, done, deadline):
    return WorkflowStats(name=name, submit_time=submit, completion_time=done, deadline=deadline)


class TestReportHelpers:
    def test_miss_ratio(self):
        data = [stats("a", 0, 10, 20), stats("b", 0, 30, 20), stats("c", 0, 5, None)]
        assert deadline_miss_ratio(data) == 0.5  # best-effort excluded

    def test_miss_ratio_empty_and_all_best_effort(self):
        assert deadline_miss_ratio([]) == 0.0
        assert deadline_miss_ratio([stats("a", 0, 10, None)]) == 0.0

    def test_tardiness_aggregates(self):
        data = [stats("a", 0, 30, 20), stats("b", 0, 25, 20), stats("c", 0, 10, 20)]
        assert max_tardiness(data) == 10.0
        assert total_tardiness(data) == 15.0

    def test_tardiness_zero_when_all_met(self):
        data = [stats("a", 0, 10, 20)]
        assert max_tardiness(data) == 0.0
        assert total_tardiness(data) == 0.0

    def test_workspans(self):
        data = [stats("a", 5, 30, None)]
        assert workspans(data) == {"a": 25.0}

    def test_format_table_alignment(self):
        out = format_table(["name", "value"], [["x", 1.5], ["longer", 22.25]], title="T")
        lines = out.splitlines()
        assert lines[0] == "T"
        assert "name" in lines[1] and "value" in lines[1]
        assert len(lines) == 5
        assert "22.250" in lines[4]


class TestCollector:
    @pytest.fixture
    def run_result(self, tiny_cluster):
        wf = (
            WorkflowBuilder("w")
            .job("a", maps=4, reduces=2, map_s=10, reduce_s=20)
            .build()
        )
        sim = ClusterSimulation(tiny_cluster, FifoScheduler(), submission="oozie")
        sim.add_workflow(wf)
        return sim.run()

    def test_busy_seconds_match_task_durations(self, run_result):
        m = run_result.metrics
        assert m.busy_map_seconds == 4 * 10.0
        assert m.busy_reduce_seconds == 2 * 20.0

    def test_utilization_bounds(self, run_result):
        u = run_result.metrics.utilization()
        assert 0.0 < u <= 1.0

    def test_allocation_series_steps(self, run_result):
        series = run_result.metrics.allocation_series(TaskKind.MAP, workflow="w")
        # 4 maps on 4 slots at t=0, drop to 0 at t=10, reduces later.
        assert series[0].time == 0.0 and series[0].count == 4
        assert series[-1].count == 0

    def test_allocation_series_reduce(self, run_result):
        series = run_result.metrics.allocation_series(TaskKind.REDUCE, workflow="w")
        assert max(s.count for s in series) == 2

    def test_allocation_matrix_grid(self, run_result):
        times, counts = run_result.metrics.allocation_matrix(TaskKind.MAP, ["w"], step=5.0)
        assert len(times) == len(counts["w"])
        assert counts["w"][0] == 4  # sampled at t=0
        assert counts["w"][-1] == 0

    def test_peak_allocation(self, run_result, tiny_cluster):
        assert run_result.metrics.peak_allocation(TaskKind.MAP) == tiny_cluster.total_map_slots

    def test_event_counters(self, run_result):
        m = run_result.metrics
        assert m.tasks_launched == m.tasks_completed == 6
        assert m.window == 30.0


class TestMerge:
    """MetricsCollector.merge: the reduction step of sharded sweeps."""

    def _run(self, name, submit=0.0, nodes=2):
        config = ClusterConfig(
            num_nodes=nodes,
            map_slots_per_node=2,
            reduce_slots_per_node=1,
            heartbeat_interval=float("inf"),
        )
        wf = (
            WorkflowBuilder(name)
            .submit_at(submit)
            .job("a", maps=4, reduces=2, map_s=10, reduce_s=20)
            .build()
        )
        sim = ClusterSimulation(config, FifoScheduler(), submission="oozie")
        sim.add_workflow(wf)
        return sim.run().metrics

    def test_counters_add(self):
        a, b = self._run("wa"), self._run("wb")
        merged = self._run("wa").merge(b)
        assert merged.tasks_launched == a.tasks_launched + b.tasks_launched
        assert merged.tasks_completed == a.tasks_completed + b.tasks_completed
        assert merged.busy_map_seconds == a.busy_map_seconds + b.busy_map_seconds
        assert merged.busy_reduce_seconds == a.busy_reduce_seconds + b.busy_reduce_seconds

    def test_identical_shards_keep_their_utilization(self):
        """Two copies of the same run must not dilute utilization: naive
        (max(last) - min(first)) would halve it for overlapping shards."""
        a, b = self._run("w"), self._run("w")
        expected = a.utilization()
        merged = a.merge(b)
        assert merged.utilization() == pytest.approx(expected)
        assert merged.window == pytest.approx(2 * self._run("w").window)

    def test_disjoint_time_ranges_do_not_stretch_the_window(self):
        """A shard submitted late lives on its own time axis; merging must
        not price the other shard's idle gap into the denominator."""
        a, b = self._run("wa"), self._run("wb", submit=1000.0)
        util_a, util_b = a.utilization(), b.utilization()
        window_a, window_b = a.window, b.window
        merged = a.merge(b)
        assert merged.window == pytest.approx(window_a + window_b)
        # Weighted mean of the shard utilizations, never the naive
        # busy / (slots * (1030 - 0)) which the global span would give.
        lo, hi = sorted([util_a, util_b])
        assert lo <= merged.utilization() <= hi
        assert merged.utilization() > 0.1  # the naive global span gives ~0.04

    def test_merge_is_order_deterministic(self):
        shards = lambda: [self._run("wa"), self._run("wb", submit=50.0), self._run("wc")]
        left = shards()
        acc = left[0]
        for shard in left[1:]:
            acc.merge(shard)
        right = shards()
        acc2 = right[0]
        for shard in right[1:]:
            acc2.merge(shard)
        assert acc.utilization() == acc2.utilization()
        assert acc.window == acc2.window
        assert acc.tasks_launched == acc2.tasks_launched

    def test_per_kind_utilization_after_merge(self):
        a, b = self._run("wa"), self._run("wb")
        ua_map = a.utilization(TaskKind.MAP)
        merged = a.merge(b)
        assert merged.utilization(TaskKind.MAP) == pytest.approx(ua_map)

    def test_scheduler_counters_merge_additively(self):
        a, b = self._run("wa"), self._run("wb")
        a.scheduler_counters = {"FIFO": {"decisions": 3}}
        b.scheduler_counters = {"FIFO": {"decisions": 2, "idle_decisions": 1}}
        merged = a.merge(b)
        assert merged.scheduler_counters == {"FIFO": {"decisions": 5, "idle_decisions": 1}}

    def test_merge_into_empty_collector(self):
        config = ClusterConfig(num_nodes=1, heartbeat_interval=float("inf"))
        from repro.metrics.collector import MetricsCollector

        empty = MetricsCollector(config)
        b = self._run("wb")
        merged = empty.merge(b)
        assert merged.tasks_launched == b.tasks_launched
        assert merged.window == pytest.approx(self._run("wb").window)
        assert merged.utilization() == pytest.approx(self._run("wb").utilization())
