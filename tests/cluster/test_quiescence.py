"""Unit tests for the quiescent-heartbeat park/wake protocol (DESIGN.md §10)."""

from repro.cluster.config import ClusterConfig
from repro.cluster.jobtracker import JobTracker
from repro.cluster.tasks import TaskKind
from repro.events import Simulator
from repro.schedulers.fifo import FifoScheduler
from repro.workflow.builder import WorkflowBuilder


class CountingFifo(FifoScheduler):
    def __init__(self):
        super().__init__()
        self.calls = 0

    def select_task(self, kind, now):
        self.calls += 1
        return super().select_task(kind, now)


def make_jt(interval=3.0, eager=True, quiescent=True, nodes=3, scheduler=None):
    sim = Simulator()
    config = ClusterConfig(
        num_nodes=nodes,
        heartbeat_interval=interval,
        eager_heartbeats=eager,
        quiescent_heartbeats=quiescent,
    )
    jt = JobTracker(sim, config, scheduler or FifoScheduler())
    return sim, jt


def diamond():
    return (
        WorkflowBuilder("wf")
        .job("a", maps=2, reduces=1, map_s=10, reduce_s=10)
        .job("b", maps=1, reduces=1, map_s=5, reduce_s=5, after=["a"])
        .build()
    )


def heartbeat_tick_times(sim, jt):
    """Pending heartbeat-tick event times, sorted."""
    return sorted(
        time
        for time, _seq, handle in sim._queue
        if handle.pending
        and getattr(handle.callback, "__func__", None) is JobTracker._heartbeat_tick
    )


class TestParking:
    def test_idle_trackers_park(self):
        sim, jt = make_jt()
        jt.start_heartbeats()
        sim.run(until=10.0)
        assert sim.pending_events == 0
        assert sorted(jt._parked) == [0, 1, 2]

    def test_no_parking_when_flag_off(self):
        sim, jt = make_jt(quiescent=False)
        jt.start_heartbeats()
        sim.run(until=10.0)
        assert sim.pending_events == 3
        assert not jt._parked

    def test_no_parking_without_eager_heartbeats(self):
        # Parking is only provably invisible under eager heartbeats; with
        # them off the periodic loop must keep driving assignment.
        sim, jt = make_jt(eager=False)
        jt.start_heartbeats()
        sim.run(until=10.0)
        assert sim.pending_events == 3
        assert not jt._parked

    def test_submission_wakes_parked_on_original_grid(self):
        sim, jt = make_jt()
        jt.start_heartbeats()
        sim.run(until=10.0)
        assert sorted(jt._parked) == [0, 1, 2]
        jt.submit_workflow(diamond())
        assert not jt._parked
        # Offsets were 1, 2, 3 (interval 3 over 3 trackers): the woken
        # timers land on the next grid points after t=10, not at 10+3.
        ticks = heartbeat_tick_times(sim, jt)
        assert ticks == [11.0, 12.0, 13.0]

    def test_all_trackers_repark_after_drain(self):
        sim, jt = make_jt()
        jt.start_heartbeats()
        jt.submit_workflow(diamond())
        sim.run()  # terminates: every timer parks once the workflow is done
        assert sim.pending_events == 0
        assert sorted(jt._parked) == [0, 1, 2]
        assert jt.workflows["wf"].completion_time is not None

    def test_killed_parked_tracker_is_unparked_and_revive_rearms(self):
        sim, jt = make_jt()
        jt.start_heartbeats()
        sim.run(until=10.0)
        jt.kill_tracker(0)
        assert 0 not in jt._parked
        jt.revive_tracker(0)
        assert 0 not in jt._parked
        # The revived tracker's timer is live again.
        assert sim.pending_events >= 1


class TestRunnabilityHints:
    def test_heartbeat_gating_skips_proven_idle_select_task(self):
        scheduler = CountingFifo()
        sim, jt = make_jt(scheduler=scheduler)
        before = scheduler.calls
        jt.heartbeat(jt.trackers[0])  # one probe per kind, both idle
        assert scheduler.calls == before + 2
        jt.heartbeat(jt.trackers[0])  # both kinds now gated
        assert scheduler.calls == before + 2

    def test_state_change_reopens_the_gate(self):
        scheduler = CountingFifo()
        sim, jt = make_jt(scheduler=scheduler)
        jt.heartbeat(jt.trackers[0])
        assert not scheduler.has_runnable(TaskKind.MAP)
        assert not scheduler.has_runnable(TaskKind.REDUCE)
        jt.submit_workflow(diamond())
        # The submission marked the scheduler dirty (and the eager round
        # drained it back to proven-idle for whatever cannot run yet).
        assert scheduler.calls > 2


class TestPickTrackerRing:
    def test_round_robin_skips_dead_trackers(self):
        sim, jt = make_jt(nodes=5, interval=float("inf"))
        jt.kill_tracker(1)
        jt.kill_tracker(3)
        picks = [jt._pick_tracker(TaskKind.MAP).tracker_id for _ in range(6)]
        assert picks == [0, 2, 4, 0, 2, 4]

    def test_ring_matches_slot_occupancy(self):
        sim, jt = make_jt(nodes=2, interval=float("inf"))
        jt.submit_workflow(diamond())  # eagerly launches a's maps + submit tasks
        for tracker in jt.trackers:
            bit = 1 << tracker.tracker_id
            assert bool(jt._free_mask_map & bit) == (tracker.free_map_slots > 0)
            assert bool(jt._free_mask_reduce & bit) == (tracker.free_reduce_slots > 0)


class TestIncrementalBookkeeping:
    def test_ready_and_active_track_transitions(self):
        sim, jt = make_jt(interval=float("inf"))
        wf = diamond()
        wip = jt.submit_workflow(wf, use_submitter=False)
        assert wip.ready_wjobs() == ["a"]
        assert wip.active_jobs() == []
        assert jt.running_wjob_count() == 0
        jt.submit_wjob("wf", "a")
        assert wip.ready_wjobs() == []
        assert [j.name for j in wip.active_jobs()] == ["a"]
        assert jt.running_wjob_count() == 1
        sim.run()
        # 'a' finished, unlocking 'b'; nothing submitted it (no submitter,
        # no Oozie listener here), so it sits in the ready set.
        assert wip.ready_wjobs() == ["b"]
        assert wip.active_jobs() == []
        assert jt.running_wjob_count() == 0
        jt.submit_wjob("wf", "b")
        sim.run()
        assert wip.ready_wjobs() == []
        assert wip.done
        assert jt.running_wjob_count() == 0
