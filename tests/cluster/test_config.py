"""Unit tests for ClusterConfig."""

import pytest

from repro.cluster.config import ClusterConfig


class TestValidation:
    def test_totals(self):
        cfg = ClusterConfig(num_nodes=10, map_slots_per_node=2, reduce_slots_per_node=1)
        assert cfg.total_map_slots == 20
        assert cfg.total_reduce_slots == 10
        assert cfg.total_slots == 30

    def test_zero_nodes_rejected(self):
        with pytest.raises(ValueError):
            ClusterConfig(num_nodes=0)

    def test_all_zero_slots_rejected(self):
        with pytest.raises(ValueError):
            ClusterConfig(num_nodes=1, map_slots_per_node=0, reduce_slots_per_node=0)

    def test_negative_slots_rejected(self):
        with pytest.raises(ValueError):
            ClusterConfig(num_nodes=1, map_slots_per_node=-1)

    def test_bad_heartbeat_rejected(self):
        with pytest.raises(ValueError):
            ClusterConfig(num_nodes=1, heartbeat_interval=0.0)

    def test_negative_durations_rejected(self):
        with pytest.raises(ValueError):
            ClusterConfig(num_nodes=1, submit_task_duration=-1.0)


class TestFactories:
    def test_from_total_slots(self):
        cfg = ClusterConfig.from_total_slots(200, 200, nodes=40)
        assert cfg.num_nodes == 40
        assert cfg.total_map_slots == 200
        assert cfg.total_reduce_slots == 200

    def test_from_total_slots_indivisible_rejected(self):
        with pytest.raises(ValueError, match="divisible"):
            ClusterConfig.from_total_slots(201, 200, nodes=40)

    def test_paper_testbed(self):
        cfg = ClusterConfig.paper_testbed()
        assert cfg.num_nodes == 80
        assert cfg.map_slots_per_node == 2
        assert cfg.reduce_slots_per_node == 1
