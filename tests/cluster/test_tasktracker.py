"""Unit tests for TaskTracker slot accounting."""

import pytest

from repro.cluster.job import JobInProgress
from repro.cluster.tasks import TaskKind
from repro.cluster.tasktracker import TaskTracker
from repro.workflow.model import WJob


def make_task(kind=TaskKind.MAP):
    wjob = WJob(name="j", num_maps=5, num_reduces=5, map_duration=1.0, reduce_duration=1.0)
    jip = JobInProgress("job", wjob, None, 0.0)
    return jip.obtain_map() if kind is TaskKind.MAP else None


class TestSlots:
    def test_initial_free_slots(self):
        tt = TaskTracker(0, map_slots=2, reduce_slots=1)
        assert tt.free_map_slots == 2
        assert tt.free_reduce_slots == 1
        assert tt.free_slots(TaskKind.MAP) == 2
        assert tt.free_slots(TaskKind.SUBMIT) == 2  # submit uses map slots
        assert tt.free_slots(TaskKind.REDUCE) == 1

    def test_occupy_and_release(self):
        tt = TaskTracker(0, map_slots=1, reduce_slots=1)
        task = make_task()
        tt.occupy(task)
        assert tt.free_map_slots == 0
        assert task.tracker_id == 0
        tt.release(task)
        assert tt.free_map_slots == 1
        assert task not in tt.running

    def test_oversubscription_rejected(self):
        tt = TaskTracker(0, map_slots=1, reduce_slots=0)
        tt.occupy(make_task())
        with pytest.raises(RuntimeError, match="oversubscribed"):
            tt.occupy(make_task())

    def test_dead_tracker_rejects_tasks(self):
        tt = TaskTracker(0, map_slots=1, reduce_slots=0)
        tt.alive = False
        with pytest.raises(RuntimeError, match="dead"):
            tt.occupy(make_task())
