"""Tests for speculative execution (straggler backups)."""

import pytest

from repro.cluster.config import ClusterConfig
from repro.cluster.simulation import ClusterSimulation
from repro.cluster.speculation import SpeculationManager
from repro.cluster.tasks import TaskKind
from repro.noise import LognormalNoise
from repro.schedulers.fifo import FifoScheduler
from repro.workflow.builder import WorkflowBuilder


def straggler_sampler(slow_index=0, slow_factor=10.0, base=10.0):
    """All tasks take ``base`` seconds except one pathological straggler."""

    def factory(wjob):
        def sampler(kind, index):
            if kind is TaskKind.MAP and index == slow_index:
                return base * slow_factor
            return base

        return sampler

    return factory


def build_sim(duration_sampler_factory=None, nodes=2, **spec_kwargs):
    config = ClusterConfig(
        num_nodes=nodes, map_slots_per_node=2, reduce_slots_per_node=1, heartbeat_interval=float("inf")
    )
    sim = ClusterSimulation(
        config, FifoScheduler(), submission="oozie", duration_sampler_factory=duration_sampler_factory
    )
    spec_kwargs.setdefault("slow_factor", 1.5)
    spec_kwargs.setdefault("min_runtime", 5.0)
    spec_kwargs.setdefault("check_interval", 5.0)
    manager = SpeculationManager(sim.sim, sim.jobtracker, **spec_kwargs)
    return sim, manager


def wide(maps=4, reduces=0):
    return WorkflowBuilder("w").job("a", maps=maps, reduces=reduces, map_s=10, reduce_s=20).build()


class TestBackupLifecycle:
    def test_straggler_gets_backed_up_and_backup_wins(self):
        sim, manager = build_sim(straggler_sampler(slow_index=0, slow_factor=10.0))
        sim.add_workflow(wide(maps=4))
        result = sim.run()
        assert manager.backups_launched == 1
        assert manager.backups_won == 1
        # Without speculation the straggler runs 100s; the backup launches
        # once slots free (~t=20) and finishes ~t=30.
        assert result.stats["w"].completion_time < 50.0

    def test_no_speculation_without_stragglers(self):
        sim, manager = build_sim()
        sim.add_workflow(wide(maps=8, reduces=2))
        result = sim.run()
        assert manager.backups_launched == 0
        assert result.metrics.tasks_lost == 0

    def test_original_win_kills_backup(self):
        # Straggler only 1.7x estimate: backup launches at ~15s (policy
        # threshold) with a 10s nominal duration finishing ~25s; original
        # finishes at 17s and must win.
        sim, manager = build_sim(straggler_sampler(slow_index=0, slow_factor=1.7))
        sim.add_workflow(wide(maps=4))
        result = sim.run()
        assert manager.backups_launched == 1
        assert manager.backups_won == 0
        assert result.metrics.tasks_lost == 1  # the killed backup attempt

    def test_task_accounting_exact(self):
        sim, manager = build_sim(straggler_sampler(slow_factor=10.0))
        wf = wide(maps=6, reduces=2)
        sim.add_workflow(wf)
        result = sim.run()
        jip = sim.jobtracker.workflows["w"].jobs["a"]
        assert jip.maps_finished == 6
        assert jip.reduces_finished == 2
        assert jip.running_maps == 0 and jip.running_reduces == 0
        assert result.metrics.tasks_completed == wf.total_tasks

    def test_slots_balanced_after_run(self):
        sim, manager = build_sim(straggler_sampler(slow_factor=10.0))
        sim.add_workflow(wide(maps=6, reduces=2))
        sim.run()
        jt = sim.jobtracker
        assert jt.free_slots(TaskKind.MAP) == jt.config.total_map_slots
        assert jt.free_slots(TaskKind.REDUCE) == jt.config.total_reduce_slots


class TestPolicy:
    def test_slow_factor_validation(self):
        sim, _ = build_sim()
        with pytest.raises(ValueError):
            SpeculationManager(sim.sim, sim.jobtracker, slow_factor=1.0)

    def test_min_runtime_suppresses_early_speculation(self):
        sim, manager = build_sim(
            straggler_sampler(slow_factor=3.0), min_runtime=10_000.0
        )
        sim.add_workflow(wide(maps=4))
        sim.run()
        assert manager.backups_launched == 0

    def test_speculation_with_noise_improves_makespan(self):
        def run(speculate):
            config = ClusterConfig(
                num_nodes=4, map_slots_per_node=2, reduce_slots_per_node=1,
                heartbeat_interval=float("inf"),
            )
            sim = ClusterSimulation(
                config, FifoScheduler(), submission="oozie",
                duration_sampler_factory=LognormalNoise(0.8, seed=11),
            )
            if speculate:
                SpeculationManager(sim.sim, sim.jobtracker, slow_factor=1.4, min_runtime=5.0,
                                   check_interval=5.0)
            wf = (
                WorkflowBuilder("w")
                .job("a", maps=12, reduces=2, map_s=10, reduce_s=20)
                .job("b", maps=6, reduces=2, map_s=10, reduce_s=20, after=["a"])
                .build()
            )
            sim.add_workflow(wf)
            return sim.run().stats["w"].completion_time

        assert run(True) < run(False)

    def test_rho_not_inflated_by_backups(self):
        sim, manager = build_sim(straggler_sampler(slow_factor=10.0))
        wf = wide(maps=6, reduces=2)
        sim.add_workflow(wf)
        sim.run()
        wip = sim.jobtracker.workflows["w"]
        assert wip.scheduled_tasks == wf.total_tasks


class TestFailureInterplay:
    def test_tracker_loss_with_live_backup_does_not_requeue(self):
        sim, manager = build_sim(straggler_sampler(slow_factor=10.0), nodes=2)
        sim.add_workflow(wide(maps=4))
        # The backup launches at the t=15 tick with a 10 s nominal duration;
        # probe while both attempts are alive.
        sim.run(until=20.0)
        straggler_attempts = [
            attempts for attempts in manager._attempts.values() if len(attempts) == 2
        ]
        assert straggler_attempts, "backup should be running by t=20"
        original = next(t for t in straggler_attempts[0] if not t.speculative)
        sim.jobtracker.kill_tracker(original.tracker_id)
        result = sim.run()
        jip = sim.jobtracker.workflows["w"].jobs["a"]
        assert jip.maps_finished == 4  # index covered by the backup, no rerun
        assert sim.jobtracker.workflows["w"].done
