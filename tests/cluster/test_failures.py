"""Tests for tracker failure handling and the failure injector."""

import pytest

from repro.cluster.config import ClusterConfig
from repro.cluster.failures import FailureInjector, FailureSchedule, Outage
from repro.cluster.jobtracker import JobTracker
from repro.cluster.simulation import ClusterSimulation
from repro.core.client import make_planner
from repro.core.scheduler import WohaScheduler
from repro.events import Simulator
from repro.schedulers.fifo import FifoScheduler
from repro.workflow.builder import WorkflowBuilder


def rig(nodes=4):
    sim = Simulator()
    config = ClusterConfig(
        num_nodes=nodes, map_slots_per_node=2, reduce_slots_per_node=1, heartbeat_interval=float("inf")
    )
    jt = JobTracker(sim, config, FifoScheduler())
    return sim, jt


def wide(name="w", maps=8, reduces=4):
    return (
        WorkflowBuilder(name)
        .job("a", maps=maps, reduces=reduces, map_s=10, reduce_s=20)
        .build()
    )


class TestKillTracker:
    def test_running_tasks_requeued_and_rerun(self):
        sim, jt = rig(nodes=4)
        jt.submit_workflow(wide(), use_submitter=False)
        jt.submit_wjob("w", "a")
        sim.run(until=5.0)  # 8 maps running on 8 slots
        lost = jt.kill_tracker(0)
        assert len(lost) == 2  # 2 map slots on the node
        jip = jt.workflows["w"].jobs["a"]
        assert jip.running_maps == 6
        sim.run()
        assert jt.workflows["w"].done
        assert jip.maps_finished == 8

    def test_completed_map_outputs_invalidated(self):
        sim, jt = rig(nodes=4)
        jt.submit_workflow(wide(maps=8, reduces=4), use_submitter=False)
        jt.submit_wjob("w", "a")
        sim.run(until=10.0)  # all maps done at t=10
        jip = jt.workflows["w"].jobs["a"]
        assert jip.map_phase_done
        before = jip.maps_finished
        jt.kill_tracker(0)
        # the two maps that ran on tracker 0 must re-execute
        assert jip.maps_finished == before - 2
        assert not jip.reduces_ready
        sim.run()
        assert jt.workflows["w"].done

    def test_completed_job_outputs_survive(self):
        sim, jt = rig(nodes=4)
        jt.submit_workflow(wide(maps=4, reduces=2), use_submitter=False)
        jt.submit_wjob("w", "a")
        sim.run()
        assert jt.workflows["w"].done
        finish = jt.workflows["w"].completion_time
        jt.kill_tracker(0)  # job already finished: nothing re-runs
        sim.run()
        assert jt.workflows["w"].completion_time == finish

    def test_capacity_accounting_after_kill_and_revive(self):
        sim, jt = rig(nodes=2)
        from repro.cluster.tasks import TaskKind

        assert jt.free_slots(TaskKind.MAP) == 4
        jt.kill_tracker(1)
        assert jt.free_slots(TaskKind.MAP) == 2
        assert jt.free_slots(TaskKind.REDUCE) == 1
        jt.revive_tracker(1)
        assert jt.free_slots(TaskKind.MAP) == 4

    def test_double_kill_rejected(self):
        sim, jt = rig()
        jt.kill_tracker(0)
        with pytest.raises(ValueError):
            jt.kill_tracker(0)
        jt.revive_tracker(0)
        with pytest.raises(ValueError):
            jt.revive_tracker(0)

    def test_rho_decremented_for_lost_tasks(self):
        sim, jt = rig(nodes=4)
        jt.submit_workflow(wide(), use_submitter=False)
        jt.submit_wjob("w", "a")
        sim.run(until=5.0)
        wip = jt.workflows["w"]
        rho_before = wip.scheduled_tasks
        lost = jt.kill_tracker(0)
        assert wip.scheduled_tasks == rho_before - len(lost)


class TestWohaUnderFailure:
    def test_submit_task_loss_rearms_submission(self):
        sim = Simulator()
        config = ClusterConfig(
            num_nodes=1,
            map_slots_per_node=1,
            reduce_slots_per_node=1,
            heartbeat_interval=float("inf"),
            submit_task_duration=5.0,
        )
        jt = JobTracker(sim, config, WohaScheduler())
        wf = WorkflowBuilder("w").job("a", maps=1, reduces=0, map_s=10).build()
        jt.submit_workflow(wf, plan=None, use_submitter=True)
        sim.run(until=2.0)  # submit task for "a" is mid-flight
        jt.kill_tracker(0)
        sim.run(until=3.0)
        jt.revive_tracker(0)
        sim.run()
        assert jt.workflows["w"].done

    def test_full_workflow_completes_despite_outages(self):
        config = ClusterConfig(
            num_nodes=6, map_slots_per_node=2, reduce_slots_per_node=1, heartbeat_interval=float("inf")
        )
        sim = ClusterSimulation(config, WohaScheduler(), submission="woha", planner=make_planner())
        injector = FailureInjector(sim.sim, sim.jobtracker)
        injector.schedule(
            [Outage(time=15.0, tracker_id=0, down_for=40.0), Outage(time=30.0, tracker_id=3, down_for=None)]
        )
        wf = (
            WorkflowBuilder("w")
            .job("a", maps=12, reduces=4, map_s=10, reduce_s=20)
            .job("b", maps=6, reduces=2, map_s=10, reduce_s=20, after=["a"])
            .build()
        )
        sim.add_workflow(wf)
        result = sim.run()
        assert result.stats["w"].completion_time < float("inf")
        assert injector.killed and injector.revived


class TestInjector:
    def test_random_outages_seeded(self):
        sim, jt = rig(nodes=4)
        injector = FailureInjector(sim, jt)
        a = injector.random_outages(horizon=3600.0, rate_per_hour=10.0, seed=3)
        sim2, jt2 = rig(nodes=4)
        b = FailureInjector(sim2, jt2).random_outages(horizon=3600.0, rate_per_hour=10.0, seed=3)
        assert a == b
        assert all(0.0 < o.time < 3600.0 for o in a)

    def test_zero_rate_yields_nothing(self):
        sim, jt = rig()
        assert FailureInjector(sim, jt).random_outages(3600.0, 0.0) == []

    def test_unknown_tracker_rejected(self):
        sim, jt = rig(nodes=2)
        injector = FailureInjector(sim, jt)
        with pytest.raises(ValueError):
            injector.schedule([Outage(time=1.0, tracker_id=9)])

    def test_overlapping_outage_ignored(self):
        sim, jt = rig(nodes=2)
        injector = FailureInjector(sim, jt)
        injector.schedule(
            [Outage(time=1.0, tracker_id=0, down_for=100.0), Outage(time=2.0, tracker_id=0, down_for=100.0)]
        )
        sim.run(until=50.0)
        assert len(injector.killed) == 1


class TestFailureSchedule:
    """Satellite bar (ISSUE 6): scripted outages must wake quiescent-parked
    heartbeat timers, so parking on/off stays byte-identical under them."""

    def test_rejects_negative_time(self):
        with pytest.raises(ValueError, match="negative"):
            FailureSchedule((Outage(time=-1.0, tracker_id=0),))

    def test_rejects_nonpositive_downtime(self):
        with pytest.raises(ValueError, match="positive"):
            FailureSchedule((Outage(time=1.0, tracker_id=0, down_for=0.0),))

    def test_validate_checks_tracker_ids(self):
        schedule = FailureSchedule((Outage(time=1.0, tracker_id=9),))
        with pytest.raises(ValueError, match="tracker 9"):
            schedule.validate(4)

    def test_apply_schedules_and_returns_injector(self):
        sim, jt = rig(nodes=4)
        jt.submit_workflow(wide(), use_submitter=False)
        jt.submit_wjob("w", "a")
        schedule = FailureSchedule((Outage(time=5.0, tracker_id=0, down_for=10.0),))
        injector = schedule.apply(sim, jt)
        sim.run(until=30.0)
        assert injector.killed and injector.revived

    @staticmethod
    def _run_scripted(quiescent):
        """Long tasks with a 3 s heartbeat: timers park almost immediately,
        then a scripted outage must wake them (kill at t=40, revive t=100)."""
        config = ClusterConfig(
            num_nodes=4,
            map_slots_per_node=2,
            reduce_slots_per_node=1,
            heartbeat_interval=3.0,
            quiescent_heartbeats=quiescent,
        )
        sim = ClusterSimulation(config, FifoScheduler(), trace=True)
        sim.add_workflows(
            [
                WorkflowBuilder("w0")
                .job("a", maps=8, reduces=4, map_s=200.0, reduce_s=100.0)
                .deadline(relative=2000.0)
                .build()
            ]
        )
        schedule = FailureSchedule((Outage(time=40.0, tracker_id=0, down_for=60.0),))
        schedule.apply(sim.sim, sim.jobtracker)
        return sim.run()

    def test_parking_on_off_byte_identical_under_scripted_outage(self):
        fast = self._run_scripted(quiescent=True)
        reference = self._run_scripted(quiescent=False)
        assert fast.tracer.dumps_jsonl() == reference.tracer.dumps_jsonl()
        assert fast.stats == reference.stats
        assert fast.makespan == reference.makespan
        # The outage actually bit (attempts died) and parking actually
        # parked (the fast run shed tick events) — the regression is only
        # meaningful if both mechanisms engaged.
        assert fast.metrics.tasks_lost > 0
        assert fast.events_processed < reference.events_processed
