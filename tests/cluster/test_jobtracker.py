"""Unit tests for the JobTracker master."""

import pytest

from repro.cluster.config import ClusterConfig
from repro.cluster.jobtracker import JobTracker
from repro.cluster.tasks import TaskKind
from repro.events import Simulator
from repro.schedulers.fifo import FifoScheduler
from repro.workflow.builder import WorkflowBuilder


def make_tracker(num_nodes=2, scheduler=None, **cfg_kwargs):
    cfg_kwargs.setdefault("heartbeat_interval", float("inf"))
    config = ClusterConfig(num_nodes=num_nodes, map_slots_per_node=2, reduce_slots_per_node=1, **cfg_kwargs)
    sim = Simulator()
    jt = JobTracker(sim, config, scheduler or FifoScheduler())
    return sim, jt


def two_job_workflow(name="wf"):
    return (
        WorkflowBuilder(name)
        .job("a", maps=2, reduces=1, map_s=10, reduce_s=20)
        .job("b", maps=1, reduces=1, map_s=5, reduce_s=10, after=["a"])
        .build()
    )


class TestSubmission:
    def test_workflow_ids_unique_and_sequential(self):
        sim, jt = make_tracker()
        w1 = jt.submit_workflow(two_job_workflow("w1"), use_submitter=False)
        w2 = jt.submit_workflow(two_job_workflow("w2"), use_submitter=False)
        assert w1.wf_id != w2.wf_id

    def test_duplicate_workflow_name_rejected(self):
        sim, jt = make_tracker()
        jt.submit_workflow(two_job_workflow(), use_submitter=False)
        with pytest.raises(ValueError, match="already submitted"):
            jt.submit_workflow(two_job_workflow(), use_submitter=False)

    def test_submitter_mode_creates_submitter_with_unlocked_roots(self):
        sim, jt = make_tracker()
        wip = jt.submit_workflow(two_job_workflow(), use_submitter=True)
        assert wip.submitter is not None
        # Only root "a" was unlocked; the eager round launched it already.
        assert wip.submitter.maps_scheduled == 1
        assert wip.submitter.runnable_maps == 0

    def test_wjob_with_pending_prereqs_rejected(self):
        sim, jt = make_tracker()
        jt.submit_workflow(two_job_workflow(), use_submitter=False)
        with pytest.raises(ValueError, match="unfinished prerequisites"):
            jt.submit_wjob("wf", "b")

    def test_double_wjob_submission_rejected(self):
        sim, jt = make_tracker()
        jt.submit_workflow(two_job_workflow(), use_submitter=False)
        jt.submit_wjob("wf", "a")
        with pytest.raises(ValueError, match="twice"):
            jt.submit_wjob("wf", "a")

    def test_ready_wjobs_in_topo_order(self):
        sim, jt = make_tracker()
        wip = jt.submit_workflow(two_job_workflow(), use_submitter=False)
        assert wip.ready_wjobs() == ["a"]
        jt.submit_wjob("wf", "a")
        assert wip.ready_wjobs() == []


class TestEagerScheduling:
    def test_submission_triggers_launch(self):
        sim, jt = make_tracker()
        jt.submit_workflow(two_job_workflow(), use_submitter=False)
        jt.submit_wjob("wf", "a")
        # Both map tasks of "a" should be running already (eager round).
        jip = jt.workflows["wf"].jobs["a"]
        assert jip.running_maps == 2

    def test_completion_frees_slot_and_reassigns(self):
        sim, jt = make_tracker(num_nodes=1)  # 2 map slots, 1 reduce slot
        wf = (
            WorkflowBuilder("wf")
            .job("a", maps=5, reduces=0, map_s=10)
            .build()
        )
        jt.submit_workflow(wf, use_submitter=False)
        jt.submit_wjob("wf", "a")
        jip = jt.workflows["wf"].jobs["a"]
        assert jip.running_maps == 2
        sim.run(until=10.0)
        assert jip.maps_finished == 2
        assert jip.running_maps == 2  # next wave launched at t=10
        sim.run()
        assert jip.completed
        assert jt.workflows["wf"].completion_time == 30.0  # 5 maps / 2 slots = 3 waves

    def test_rho_counts_only_wjob_tasks(self):
        sim, jt = make_tracker()
        jt.submit_workflow(two_job_workflow(), use_submitter=True)
        sim.run()
        wip = jt.workflows["wf"]
        assert wip.done
        # rho == m+r of both jobs, submitter tasks excluded
        assert wip.scheduled_tasks == wip.definition.total_tasks

    def test_free_slot_accounting_balances(self):
        sim, jt = make_tracker()
        jt.submit_workflow(two_job_workflow(), use_submitter=False)
        jt.submit_wjob("wf", "a")
        sim.run()
        assert jt.free_slots(TaskKind.MAP) == jt.config.total_map_slots
        assert jt.free_slots(TaskKind.REDUCE) == jt.config.total_reduce_slots


class TestListeners:
    def test_listener_hooks_fire_in_order(self):
        events = []

        class Probe:
            def on_workflow_submitted(self, wip, now):
                events.append(("wf_submit", wip.name))

            def on_wjob_submitted(self, jip, now):
                events.append(("job_submit", jip.name))

            def on_job_completed(self, jip, now):
                events.append(("job_done", jip.name))

            def on_workflow_completed(self, wip, now):
                events.append(("wf_done", wip.name))

        sim, jt = make_tracker()
        jt.add_listener(Probe())
        jt.submit_workflow(two_job_workflow(), use_submitter=False)
        jt.submit_wjob("wf", "a")
        sim.run()
        # "b" never submitted (no Oozie in this test), so workflow incomplete.
        assert ("wf_submit", "wf") in events
        assert ("job_submit", "a") in events
        assert ("job_done", "a") in events
        assert ("wf_done", "wf") not in events

    def test_workflow_completion_event(self):
        done = []

        class Probe:
            def on_workflow_completed(self, wip, now):
                done.append((wip.name, now))

        sim, jt = make_tracker()
        jt.add_listener(Probe())
        jt.submit_workflow(two_job_workflow(), use_submitter=True)
        sim.run()
        assert len(done) == 1
        assert done[0][0] == "wf"


class TestHeartbeatMode:
    def test_periodic_heartbeats_drive_assignment(self):
        config = ClusterConfig(
            num_nodes=1,
            map_slots_per_node=2,
            reduce_slots_per_node=1,
            heartbeat_interval=3.0,
            eager_heartbeats=False,
        )
        sim = Simulator()
        jt = JobTracker(sim, config, FifoScheduler())
        jt.submit_workflow(two_job_workflow(), use_submitter=False)
        jt.submit_wjob("wf", "a")
        jip = jt.workflows["wf"].jobs["a"]
        assert jip.running_maps == 0  # nothing runs before the first heartbeat
        jt.start_heartbeats()
        sim.run(until=4.0)
        assert jip.running_maps == 2
