"""Unit tests for JobInProgress / SubmitterJob lifecycle."""

import pytest

from repro.cluster.job import JobInProgress, JobState, SubmitterJob
from repro.cluster.tasks import TaskKind
from repro.workflow.model import WJob


def make_jip(maps=3, reduces=2, map_s=10.0, reduce_s=20.0, sampler=None):
    wjob = WJob(name="j", num_maps=maps, num_reduces=reduces, map_duration=map_s, reduce_duration=reduce_s)
    return JobInProgress("job_1", wjob, "wf", submit_time=0.0, duration_sampler=sampler)


class TestMapPhase:
    def test_obtain_maps_until_exhausted(self):
        jip = make_jip(maps=3)
        tasks = [jip.obtain_map() for _ in range(3)]
        assert all(t is not None and t.kind is TaskKind.MAP for t in tasks)
        assert [t.index for t in tasks] == [0, 1, 2]
        assert jip.obtain_map() is None
        assert jip.runnable_maps == 0
        assert jip.running_maps == 3

    def test_reduces_gated_until_maps_finish(self):
        jip = make_jip(maps=2, reduces=1)
        t0, t1 = jip.obtain_map(), jip.obtain_map()
        assert jip.obtain_reduce() is None  # not even schedulable yet
        jip.on_task_complete(t0, now=10.0)
        assert jip.obtain_reduce() is None  # one map still running
        maps_done, job_done = jip.on_task_complete(t1, now=10.0)
        assert maps_done and not job_done
        assert jip.reduces_ready
        assert jip.obtain_reduce() is not None

    def test_task_durations_default_to_estimates(self):
        jip = make_jip(map_s=7.5, reduce_s=31.0)
        assert jip.obtain_map().duration == 7.5

    def test_duration_sampler_override(self):
        jip = make_jip(sampler=lambda kind, idx: 1.0 + idx)
        assert jip.obtain_map().duration == 1.0
        assert jip.obtain_map().duration == 2.0


class TestCompletion:
    def test_full_lifecycle(self):
        jip = make_jip(maps=1, reduces=1)
        m = jip.obtain_map()
        maps_done, job_done = jip.on_task_complete(m, now=10.0)
        assert maps_done and not job_done
        r = jip.obtain_reduce()
        maps_done, job_done = jip.on_task_complete(r, now=30.0)
        assert not maps_done and job_done
        assert jip.state is JobState.SUCCEEDED
        assert jip.finish_time == 30.0
        assert jip.completed

    def test_map_only_job_completes_after_maps(self):
        jip = make_jip(maps=2, reduces=0, reduce_s=0.0)
        t0, t1 = jip.obtain_map(), jip.obtain_map()
        jip.on_task_complete(t0, now=5.0)
        _done, job_done = jip.on_task_complete(t1, now=6.0)
        assert job_done
        assert jip.runnable_reduces == 0

    def test_reduce_only_job_ready_immediately(self):
        wjob = WJob(name="r", num_maps=0, num_reduces=2, map_duration=0.0, reduce_duration=5.0)
        jip = JobInProgress("job_r", wjob, None, 0.0)
        assert jip.reduces_ready
        assert jip.obtain_reduce() is not None

    def test_has_runnable_by_kind(self):
        jip = make_jip(maps=1, reduces=1)
        assert jip.has_runnable(TaskKind.MAP)
        assert not jip.has_runnable(TaskKind.REDUCE)
        m = jip.obtain_map()
        assert not jip.has_runnable(TaskKind.MAP)
        jip.on_task_complete(m, now=1.0)
        assert jip.has_runnable(TaskKind.REDUCE)


class TestSubmitterJob:
    def test_tasks_gated_by_unlock(self):
        sub = SubmitterJob("job_s", "wf", ["a", "b", "c"], submit_time=0.0, task_duration=1.0)
        assert sub.obtain_map() is None
        sub.unlock("b")
        task = sub.obtain_map()
        assert task.kind is TaskKind.SUBMIT
        assert task.payload == "b"
        assert sub.obtain_map() is None

    def test_unlock_unknown_rejected(self):
        sub = SubmitterJob("job_s", "wf", ["a"], submit_time=0.0, task_duration=1.0)
        with pytest.raises(KeyError):
            sub.unlock("ghost")

    def test_double_unlock_rejected(self):
        sub = SubmitterJob("job_s", "wf", ["a"], submit_time=0.0, task_duration=1.0)
        sub.unlock("a")
        with pytest.raises(ValueError):
            sub.unlock("a")

    def test_completes_after_all_submit_tasks(self):
        sub = SubmitterJob("job_s", "wf", ["a", "b"], submit_time=0.0, task_duration=1.0)
        sub.unlock("a")
        sub.unlock("b")
        t0 = sub.obtain_map()
        t1 = sub.obtain_map()
        _x, done = sub.on_task_complete(t0, now=1.0)
        assert not done
        _x, done = sub.on_task_complete(t1, now=2.0)
        assert done
        assert sub.completed

    def test_no_reduces_ever(self):
        sub = SubmitterJob("job_s", "wf", ["a"], submit_time=0.0, task_duration=1.0)
        assert sub.runnable_reduces == 0
        assert not sub.has_runnable(TaskKind.REDUCE)
