"""Integration-grade tests for the ClusterSimulation driver."""

import pytest

from repro.cluster.config import ClusterConfig
from repro.cluster.simulation import ClusterSimulation
from repro.cluster.tasks import TaskKind
from repro.core.client import make_planner
from repro.events import SimulationError
from repro.core.scheduler import WohaScheduler
from repro.schedulers.fair import FairScheduler
from repro.schedulers.fifo import FifoScheduler
from repro.workflow.builder import WorkflowBuilder


class TestOozieMode:
    def test_single_workflow_completes(self, small_workflow, tiny_cluster):
        sim = ClusterSimulation(tiny_cluster, FifoScheduler(), submission="oozie")
        sim.add_workflow(small_workflow)
        result = sim.run()
        stats = result.stats["wf"]
        assert stats.completion_time < float("inf")
        assert stats.met_deadline
        assert result.metrics.tasks_completed == small_workflow.total_tasks

    def test_exact_makespan_of_chain(self, tiny_cluster):
        # chain: a (2 maps @10s, then 1 reduce @20s) -> b (same): strictly
        # serial phases on a 4-map/2-reduce cluster => 2*(10+20) = 60s.
        wf = (
            WorkflowBuilder("c")
            .job("a", maps=2, reduces=1, map_s=10, reduce_s=20)
            .job("b", maps=2, reduces=1, map_s=10, reduce_s=20, after=["a"])
            .build()
        )
        sim = ClusterSimulation(tiny_cluster, FifoScheduler(), submission="oozie")
        sim.add_workflow(wf)
        result = sim.run()
        assert result.stats["c"].completion_time == 60.0

    def test_submit_time_respected(self, small_workflow, tiny_cluster):
        shifted = small_workflow.with_timing(submit_time=100.0, deadline=500.0)
        sim = ClusterSimulation(tiny_cluster, FifoScheduler(), submission="oozie")
        sim.add_workflow(shifted)
        result = sim.run()
        assert result.stats["wf"].submit_time == 100.0
        assert result.stats["wf"].completion_time >= 100.0

    def test_unknown_mode_rejected(self, tiny_cluster):
        with pytest.raises(ValueError):
            ClusterSimulation(tiny_cluster, FifoScheduler(), submission="magic")


class TestWohaMode:
    def test_planner_invoked_and_workflow_completes(self, small_workflow, tiny_cluster):
        calls = []
        base = make_planner("lpf")

        def spy(workflow, total_slots):
            calls.append((workflow.name, total_slots))
            return base(workflow, total_slots)

        sim = ClusterSimulation(tiny_cluster, WohaScheduler(), submission="woha", planner=spy)
        sim.add_workflow(small_workflow)
        result = sim.run()
        assert calls == [("wf", tiny_cluster.total_slots)]
        assert result.stats["wf"].met_deadline

    def test_submitter_tasks_occupy_map_slots(self, small_workflow, tiny_cluster):
        sim = ClusterSimulation(tiny_cluster, WohaScheduler(), submission="woha", planner=make_planner())
        sim.add_workflow(small_workflow)
        result = sim.run()
        # 4 wjobs => 4 submitter tasks + 15 wjob tasks
        assert result.metrics.tasks_completed == small_workflow.total_tasks + 4


class TestHeartbeatVsEager:
    def test_heartbeat_mode_completes_with_bounded_slack(self, small_workflow, tiny_cluster, heartbeat_cluster):
        eager = ClusterSimulation(tiny_cluster, FifoScheduler(), submission="oozie")
        eager.add_workflow(small_workflow)
        t_eager = eager.run().stats["wf"].completion_time

        hb = ClusterSimulation(heartbeat_cluster, FifoScheduler(), submission="oozie")
        hb.add_workflow(small_workflow)
        t_hb = hb.run().stats["wf"].completion_time
        # Heartbeat polling can add at most ~one interval per scheduling
        # opportunity; for this 8-wave workflow allow a generous bound.
        assert t_hb <= t_eager + 8 * heartbeat_cluster.heartbeat_interval
        assert t_hb > 0


class TestInvariantsDuringRun:
    def test_slots_never_oversubscribed(self, tiny_cluster):
        """Track peak per-kind usage through the metrics collector."""
        wf = (
            WorkflowBuilder("big")
            .job("wide", maps=50, reduces=10, map_s=5, reduce_s=7)
            .build()
        )
        sim = ClusterSimulation(tiny_cluster, FairScheduler(), submission="oozie")
        sim.add_workflow(wf)
        result = sim.run()
        assert result.metrics.peak_allocation(TaskKind.MAP) <= tiny_cluster.total_map_slots
        assert result.metrics.peak_allocation(TaskKind.REDUCE) <= tiny_cluster.total_reduce_slots

    def test_dependencies_respected(self, tiny_cluster, chain3):
        """No task of job k may start before job k-1 completed."""
        launches = {}
        completions = {}

        class Probe:
            def on_task_launch(self, task, now):
                launches.setdefault(task.job.name, []).append(now)

            def on_job_completed(self, jip, now):
                completions[jip.name] = now

        sim = ClusterSimulation(tiny_cluster, FifoScheduler(), submission="oozie")
        sim.jobtracker.add_listener(Probe())
        sim.add_workflow(chain3)
        sim.run()
        assert min(launches["j1"]) >= completions["j0"]
        assert min(launches["j2"]) >= completions["j1"]

    def test_work_conservation_single_workflow(self, tiny_cluster):
        """With one wide job pending, no map slot may idle while runnable
        maps exist: makespan equals the perfect-packing bound."""
        wf = WorkflowBuilder("w").job("wide", maps=8, reduces=0, map_s=10).build()
        sim = ClusterSimulation(tiny_cluster, FifoScheduler(), submission="oozie")
        sim.add_workflow(wf)
        result = sim.run()
        assert result.stats["w"].completion_time == 20.0  # 8 maps / 4 slots


class TestMultiWorkflow:
    def test_all_workflows_tracked(self, tiny_cluster):
        wfs = [
            WorkflowBuilder(f"w{i}").job("a", maps=2, reduces=1, map_s=5, reduce_s=5).build()
            for i in range(4)
        ]
        sim = ClusterSimulation(tiny_cluster, FifoScheduler(), submission="oozie")
        sim.add_workflows(wfs)
        result = sim.run()
        assert set(result.stats) == {f"w{i}" for i in range(4)}
        assert all(s.completion_time < float("inf") for s in result.stats.values())

    def test_miss_ratio_and_tardiness_aggregation(self, tiny_cluster):
        on_time = (
            WorkflowBuilder("ok").job("a", maps=1, reduces=0, map_s=5).deadline(relative=100).build()
        )
        late = (
            WorkflowBuilder("late").job("a", maps=8, reduces=0, map_s=10).deadline(relative=1).build()
        )
        sim = ClusterSimulation(tiny_cluster, FifoScheduler(), submission="oozie")
        sim.add_workflows([on_time, late])
        result = sim.run()
        assert result.miss_ratio == 0.5
        assert result.max_tardiness > 0
        assert result.total_tardiness == result.stats["late"].tardiness


class TestFiniteHeartbeatRunLoop:
    """Regressions for the periodic-heartbeat branch of ClusterSimulation.run."""

    def _sim(self, **config_kwargs):
        config = ClusterConfig(num_nodes=2, heartbeat_interval=3.0, **config_kwargs)
        sim = ClusterSimulation(config, FifoScheduler(), submission="oozie")
        wf = WorkflowBuilder("w").job("a", maps=2, reduces=1, map_s=10, reduce_s=10).build()
        sim.add_workflow(wf)
        return sim

    def test_run_until_does_not_overshoot_horizon(self):
        # The old loop checked `now < horizon` before stepping, so one step
        # could fire an event past `until` (here the completions at t=10).
        sim = self._sim()
        result = sim.run(until=7.5)
        assert sim.sim.now == 7.5
        assert result.stats["w"].completion_time == float("inf")

    def test_run_until_fires_events_at_the_horizon(self):
        # Same boundary rule as Simulator.run: events at exactly `until`
        # fire; only strictly later ones wait.
        sim = self._sim()
        sim.run(until=10.0)
        assert sim.sim.now == 10.0
        assert sim.jobtracker.workflows["w"].jobs["a"].maps_finished == 2

    def test_max_events_honoured_with_periodic_heartbeats(self):
        # The finite-heartbeat branch used to ignore max_events entirely.
        sim = self._sim(quiescent_heartbeats=False)
        with pytest.raises(SimulationError):
            sim.run(max_events=5)

    def test_quiescent_run_terminates_with_incomplete_workflows(self):
        # A workflow that can never finish (its only job is never submitted)
        # must not hang the run loop: parked timers let the queue drain.
        config = ClusterConfig(num_nodes=2, heartbeat_interval=3.0)
        sim = ClusterSimulation(config, FifoScheduler(), submission="oozie")
        wf = (
            WorkflowBuilder("w")
            .job("a", maps=1, reduces=0, map_s=5)
            .job("b", maps=1, reduces=0, map_s=5, after=["a"])
            .build()
        )
        sim.add_workflow(wf)
        # Sabotage: the coordinator never hears about completions, so 'b'
        # is never submitted and the workflow can never finish.
        sim.jobtracker._hook_listeners["on_job_completed"] = [
            fn
            for fn in sim.jobtracker._hook_listeners["on_job_completed"]
            if getattr(fn, "__self__", None) is not sim.oozie
        ]
        result = sim.run()
        assert result.stats["w"].completion_time == float("inf")
