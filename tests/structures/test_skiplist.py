"""Unit + property tests for the deterministic 1-2-3 skip list."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.structures.skiplist import DeterministicSkipList


class TestBasics:
    def test_empty(self):
        sl = DeterministicSkipList()
        assert len(sl) == 0
        assert sl.peek_head() is None
        assert list(sl.items()) == []
        with pytest.raises(KeyError):
            sl.pop_head()
        with pytest.raises(KeyError):
            sl.find(1)
        with pytest.raises(KeyError):
            sl.delete(1)

    def test_single_element(self):
        sl = DeterministicSkipList()
        sl.insert(5, "five")
        assert len(sl) == 1
        assert sl.peek_head() == (5, "five")
        assert sl.find(5) == "five"
        assert 5 in sl
        sl.check_invariants()

    def test_ascending_insert_keeps_order(self):
        sl = DeterministicSkipList()
        for i in range(100):
            sl.insert(i, i * 2)
        assert [k for k, _ in sl.items()] == list(range(100))
        sl.check_invariants()

    def test_descending_insert_keeps_order(self):
        sl = DeterministicSkipList()
        for i in reversed(range(100)):
            sl.insert(i, i)
        assert [k for k, _ in sl.items()] == list(range(100))
        sl.check_invariants()

    def test_duplicate_insert_rejected(self):
        sl = DeterministicSkipList()
        sl.insert(1, "a")
        with pytest.raises(KeyError):
            sl.insert(1, "b")
        assert sl.find(1) == "a"
        assert len(sl) == 1

    def test_tuple_keys(self):
        sl = DeterministicSkipList()
        sl.insert((1.5, "b"), 1)
        sl.insert((1.5, "a"), 2)
        sl.insert((0.5, "z"), 3)
        assert [k for k, _ in sl.items()] == [(0.5, "z"), (1.5, "a"), (1.5, "b")]

    def test_none_key_rejected(self):
        sl = DeterministicSkipList()
        with pytest.raises(TypeError):
            sl.insert(None, 1)


class TestDeletion:
    def test_delete_returns_value(self):
        sl = DeterministicSkipList()
        for i in range(20):
            sl.insert(i, -i)
        assert sl.delete(7) == -7
        assert 7 not in sl
        assert len(sl) == 19
        sl.check_invariants()

    def test_delete_missing_rejected(self):
        sl = DeterministicSkipList()
        sl.insert(1, 1)
        with pytest.raises(KeyError):
            sl.delete(2)

    def test_delete_all_then_reuse(self):
        sl = DeterministicSkipList()
        for i in range(50):
            sl.insert(i, i)
        for i in range(50):
            sl.delete(i)
        assert len(sl) == 0
        sl.check_invariants()
        sl.insert(99, "back")
        assert sl.peek_head() == (99, "back")

    def test_pop_head_is_minimum(self):
        sl = DeterministicSkipList()
        for i in (5, 3, 9, 1, 7):
            sl.insert(i, str(i))
        assert sl.pop_head() == (1, "1")
        assert sl.pop_head() == (3, "3")
        assert len(sl) == 3
        sl.check_invariants()

    def test_interleaved_pop_and_insert(self):
        sl = DeterministicSkipList()
        for i in range(0, 100, 2):
            sl.insert(i, i)
        for i in range(1, 100, 2):
            sl.insert(i, i)
            key, _ = sl.pop_head()
        sl.check_invariants()
        assert len(sl) == 50

    def test_height_stays_logarithmic(self):
        sl = DeterministicSkipList()
        for i in range(1024):
            sl.insert(i, i)
        # 1-2-3 list over 1024 elements: height <= log2(n) + slack.
        assert sl.height <= 14
        sl.check_invariants()


KEYS = st.lists(st.integers(min_value=0, max_value=200), min_size=0, max_size=80)


class TestPropertyBased:
    @given(KEYS)
    @settings(max_examples=120, deadline=None)
    def test_matches_sorted_set_semantics(self, keys):
        sl = DeterministicSkipList()
        model = {}
        for k in keys:
            if k in model:
                with pytest.raises(KeyError):
                    sl.insert(k, k)
            else:
                sl.insert(k, k)
                model[k] = k
        assert [k for k, _ in sl.items()] == sorted(model)
        sl.check_invariants()

    @given(KEYS, st.data())
    @settings(max_examples=120, deadline=None)
    def test_random_op_sequences(self, keys, data):
        sl = DeterministicSkipList()
        model = {}
        for k in keys:
            op = data.draw(st.sampled_from(["insert", "delete", "pop", "find"]))
            if op == "insert" and k not in model:
                sl.insert(k, -k)
                model[k] = -k
            elif op == "delete" and model:
                victim = data.draw(st.sampled_from(sorted(model)))
                assert sl.delete(victim) == model.pop(victim)
            elif op == "pop" and model:
                lo = min(model)
                assert sl.pop_head() == (lo, model.pop(lo))
            elif op == "find":
                if k in model:
                    assert sl.find(k) == model[k]
                else:
                    with pytest.raises(KeyError):
                        sl.find(k)
            assert len(sl) == len(model)
        assert [k for k, _ in sl.items()] == sorted(model)
        sl.check_invariants()
