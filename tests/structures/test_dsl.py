"""Unit + property tests for the Double Skip List (paper §IV-B)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.structures.avl import AvlTree
from repro.structures.dsl import DoubleSkipList
from repro.structures.naive import SortedListMap
from repro.structures.skiplist import DeterministicSkipList

BACKENDS = [DeterministicSkipList, AvlTree, SortedListMap]


@pytest.fixture(params=BACKENDS, ids=lambda c: c.__name__)
def dsl(request):
    return DoubleSkipList(map_factory=request.param)


class TestBasics:
    def test_insert_and_heads(self, dsl):
        dsl.insert("w1", ct=10.0, priority=5.0)
        dsl.insert("w2", ct=3.0, priority=1.0)
        dsl.insert("w3", ct=7.0, priority=9.0)
        assert dsl.head_by_ct().item_id == "w2"       # soonest change
        assert dsl.head_by_priority().item_id == "w3"  # largest lag
        assert len(dsl) == 3
        dsl.check_invariants()

    def test_duplicate_item_rejected(self, dsl):
        dsl.insert("w", ct=1.0, priority=1.0)
        with pytest.raises(KeyError):
            dsl.insert("w", ct=2.0, priority=2.0)

    def test_remove_clears_both_lists(self, dsl):
        dsl.insert("w1", ct=1.0, priority=1.0)
        dsl.insert("w2", ct=2.0, priority=2.0)
        dsl.remove("w1")
        assert "w1" not in dsl
        assert dsl.head_by_ct().item_id == "w2"
        assert dsl.head_by_priority().item_id == "w2"
        dsl.check_invariants()

    def test_priority_ties_break_by_id(self, dsl):
        dsl.insert("b", ct=1.0, priority=5.0)
        dsl.insert("a", ct=2.0, priority=5.0)
        assert dsl.head_by_priority().item_id == "a"

    def test_iter_by_priority_descending(self, dsl):
        for i, p in enumerate([3.0, 9.0, 1.0, 7.0]):
            dsl.insert(f"w{i}", ct=float(i), priority=p)
        priorities = [e.priority for e in dsl.iter_by_priority()]
        assert priorities == sorted(priorities, reverse=True)

    def test_iter_by_ct_ascending(self, dsl):
        for i, ct in enumerate([3.0, 9.0, 1.0, 7.0]):
            dsl.insert(f"w{i}", ct=ct, priority=float(i))
        cts = [e.ct for e in dsl.iter_by_ct()]
        assert cts == sorted(cts)


class TestUpdates:
    def test_update_head_ct_repositions_both(self, dsl):
        dsl.insert("w1", ct=1.0, priority=0.0)
        dsl.insert("w2", ct=5.0, priority=3.0)
        entry = dsl.update_head_ct(new_ct=9.0, new_priority=10.0)
        assert entry.item_id == "w1"
        assert dsl.head_by_ct().item_id == "w2"
        assert dsl.head_by_priority().item_id == "w1"
        dsl.check_invariants()

    def test_update_priority_only_moves_priority_list(self, dsl):
        dsl.insert("w1", ct=1.0, priority=5.0)
        dsl.insert("w2", ct=2.0, priority=3.0)
        dsl.update_priority("w1", 1.0)
        assert dsl.head_by_priority().item_id == "w2"
        assert dsl.head_by_ct().item_id == "w1"  # ct untouched
        dsl.check_invariants()

    def test_update_priority_of_non_head(self, dsl):
        dsl.insert("w1", ct=1.0, priority=5.0)
        dsl.insert("w2", ct=2.0, priority=3.0)
        dsl.update_priority("w2", 9.0)
        assert dsl.head_by_priority().item_id == "w2"
        dsl.check_invariants()

    def test_update_ct_only_moves_ct_list(self, dsl):
        dsl.insert("w1", ct=1.0, priority=5.0)
        dsl.insert("w2", ct=2.0, priority=3.0)
        dsl.update_ct("w1", 10.0)
        assert dsl.head_by_ct().item_id == "w2"
        assert dsl.head_by_priority().item_id == "w1"
        dsl.check_invariants()

    def test_missing_item_raises(self, dsl):
        with pytest.raises(KeyError):
            dsl.remove("ghost")
        with pytest.raises(KeyError):
            dsl.update_priority("ghost", 1.0)


class TestAlgorithm2Walk:
    """The scheduler's canonical usage pattern: drain fired ct-heads, then
    serve and reposition the priority head."""

    def test_ct_walk_until_future(self, dsl):
        for i, ct in enumerate([1.0, 2.0, 8.0]):
            dsl.insert(f"w{i}", ct=ct, priority=float(i))
        now = 5.0
        fired = []
        while dsl.head_by_ct() is not None and dsl.head_by_ct().ct <= now:
            entry = dsl.head_by_ct()
            fired.append(entry.item_id)
            dsl.update_head_ct(new_ct=now + 100.0, new_priority=entry.priority + 1)
        assert fired == ["w0", "w1"]
        assert dsl.head_by_ct().item_id == "w2"
        dsl.check_invariants()

    def test_serve_head_decrement_reinsert(self, dsl):
        dsl.insert("big", ct=100.0, priority=10.0)
        dsl.insert("small", ct=100.0, priority=9.0)
        served = []
        for _ in range(4):
            head = dsl.head_by_priority()
            served.append(head.item_id)
            dsl.update_priority(head.item_id, head.priority - 1)
        # big is served twice until its lag matches, then they alternate
        # (ties break toward "big" alphabetically).
        assert served[0] == "big"
        assert set(served) == {"big", "small"}
        dsl.check_invariants()


@given(st.lists(st.tuples(st.integers(0, 50), st.integers(-20, 20), st.integers(0, 100)), max_size=60), st.data())
@settings(max_examples=80, deadline=None)
def test_dsl_property_random_ops(ops, data):
    """DSL stays consistent with a dict model under random op sequences."""
    dsl = DoubleSkipList()
    model = {}
    for item, priority, ct in ops:
        choice = data.draw(st.sampled_from(["insert", "remove", "upd_p", "upd_ct", "head"]))
        key = f"i{item}"
        if choice == "insert" and key not in model:
            dsl.insert(key, ct=float(ct), priority=float(priority))
            model[key] = (float(ct), float(priority))
        elif choice == "remove" and model:
            victim = data.draw(st.sampled_from(sorted(model)))
            dsl.remove(victim)
            del model[victim]
        elif choice == "upd_p" and model:
            victim = data.draw(st.sampled_from(sorted(model)))
            dsl.update_priority(victim, float(priority))
            model[victim] = (model[victim][0], float(priority))
        elif choice == "upd_ct" and model:
            victim = data.draw(st.sampled_from(sorted(model)))
            dsl.update_ct(victim, float(ct))
            model[victim] = (float(ct), model[victim][1])
        elif choice == "head" and model:
            expect_ct = min(model.items(), key=lambda kv: (kv[1][0], kv[0]))[0]
            expect_p = min(model.items(), key=lambda kv: (-kv[1][1], kv[0]))[0]
            assert dsl.head_by_ct().item_id == expect_ct
            assert dsl.head_by_priority().item_id == expect_p
        assert len(dsl) == len(model)
    dsl.check_invariants()
