"""Unit tests for the sorted-list baseline."""

import pytest

from repro.structures.naive import SortedListMap


class TestSortedListMap:
    def test_empty(self):
        m = SortedListMap()
        assert len(m) == 0
        assert m.peek_head() is None
        with pytest.raises(KeyError):
            m.pop_head()

    def test_insert_keeps_sorted(self):
        m = SortedListMap()
        for k in (3, 1, 2):
            m.insert(k, str(k))
        assert [k for k, _ in m.items()] == [1, 2, 3]

    def test_duplicate_rejected(self):
        m = SortedListMap()
        m.insert(1, "a")
        with pytest.raises(KeyError):
            m.insert(1, "b")

    def test_delete_and_find(self):
        m = SortedListMap()
        for k in range(5):
            m.insert(k, -k)
        assert m.delete(3) == -3
        assert 3 not in m
        assert m.find(4) == -4
        with pytest.raises(KeyError):
            m.find(3)
        with pytest.raises(KeyError):
            m.delete(3)

    def test_pop_head(self):
        m = SortedListMap()
        for k in (9, 4, 6):
            m.insert(k, k)
        assert m.pop_head() == (4, 4)
        assert m.peek_head() == (6, 6)

    def test_items_snapshot_safe(self):
        m = SortedListMap()
        m.insert(1, "a")
        m.insert(2, "b")
        items = m.items()
        m.delete(1)
        assert list(items) == [(1, "a"), (2, "b")]
