"""No-op-reorder elision and key caching (ISSUE 7 satellite).

The DSL update paths skip the remove+reinsert churn when the new key equals
the old one.  Elision must be *invisible*: any op sequence replayed against
an eliding and a non-eliding DSL has to leave both orderings identical, and
a whole scheduler run on top of an eliding queue has to emit byte-identical
decision traces.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster.config import ClusterConfig
from repro.cluster.simulation import ClusterSimulation
from repro.experiments.runner import _make_stack
from repro.experiments.scenarios import yahoo_scenario
from repro.structures.dsl import DoubleEntry, DoubleSkipList


def snapshot(dsl):
    """Both orderings, with the keys the lists actually filed entries under."""
    return (
        [(e.item_id, e.ct_key, e.priority_key) for e in dsl.iter_by_ct()],
        [(e.item_id, e.ct_key, e.priority_key) for e in dsl.iter_by_priority()],
    )


# Small value pools on purpose: collisions are what make updates no-ops,
# and no-ops are the behavior under test.
_VALUES = st.integers(-3, 3)


@given(
    st.lists(st.tuples(st.integers(0, 12), _VALUES, _VALUES), max_size=80),
    st.data(),
)
@settings(max_examples=80, deadline=None)
def test_elision_on_and_off_keep_identical_orders(ops, data):
    eliding = DoubleSkipList(elide_noops=True)
    plain = DoubleSkipList(elide_noops=False)
    live = set()
    for item, priority, ct in ops:
        choice = data.draw(
            st.sampled_from(["insert", "remove", "upd_p", "upd_ct", "upd_head", "same_p", "same_ct"])
        )
        key = f"i{item}"
        if choice == "insert" and key not in live:
            for dsl in (eliding, plain):
                dsl.insert(key, ct=float(ct), priority=float(priority))
            live.add(key)
        elif choice == "remove" and live:
            victim = data.draw(st.sampled_from(sorted(live)))
            for dsl in (eliding, plain):
                dsl.remove(victim)
            live.discard(victim)
        elif choice == "upd_p" and live:
            victim = data.draw(st.sampled_from(sorted(live)))
            for dsl in (eliding, plain):
                dsl.update_priority(victim, float(priority))
        elif choice == "upd_ct" and live:
            victim = data.draw(st.sampled_from(sorted(live)))
            for dsl in (eliding, plain):
                dsl.update_ct(victim, float(ct))
        elif choice == "upd_head" and live:
            for dsl in (eliding, plain):
                dsl.update_head_ct(float(ct), float(priority))
        elif choice == "same_p" and live:
            # A guaranteed no-op: rewrite the current priority verbatim.
            victim = data.draw(st.sampled_from(sorted(live)))
            for dsl in (eliding, plain):
                dsl.update_priority(victim, dsl.get(victim).priority)
        elif choice == "same_ct" and live:
            victim = data.draw(st.sampled_from(sorted(live)))
            for dsl in (eliding, plain):
                dsl.update_ct(victim, dsl.get(victim).ct)
        assert snapshot(eliding) == snapshot(plain)
    eliding.check_invariants()
    plain.check_invariants()


def test_fully_elided_head_update_touches_nothing():
    dsl = DoubleSkipList(elide_noops=True)
    dsl.insert("a", ct=1.0, priority=2.0)
    dsl.insert("b", ct=5.0, priority=9.0)
    entry = dsl.get("a")
    before = snapshot(dsl)
    assert dsl.update_head_ct(1.0, 2.0) is entry
    assert dsl.update_priority("a", 2.0) is entry
    assert dsl.update_ct("a", 1.0) is entry
    assert snapshot(dsl) == before
    dsl.check_invariants()


def test_cached_keys_track_setters():
    entry = DoubleEntry("w", ct=3.0, priority=4.0)
    assert entry.ct_key == (3.0, "w")
    assert entry.priority_key == (-4.0, "w")
    entry.ct = 7.5
    entry.priority = -1.0
    assert entry.ct == 7.5 and entry.priority == -1.0
    assert entry.ct_key == (7.5, "w")
    assert entry.priority_key == (1.0, "w")


def _traced_run(elide: bool) -> str:
    workflows, _ = yahoo_scenario(seed=7, scale=0.05)
    scheduler, mode, planner = _make_stack("woha-lpf")
    # The queue is empty until the first submission, so swapping in a
    # non-eliding twin before the run is equivalent to a constructor flag.
    scheduler._queue = DoubleSkipList(elide_noops=elide)
    config = ClusterConfig(num_nodes=4, heartbeat_interval=3.0)
    sim = ClusterSimulation(config, scheduler, submission=mode, planner=planner, trace=True)
    sim.add_workflows(workflows)
    result = sim.run()
    return result.tracer.dumps_jsonl()


def test_scheduler_traces_byte_identical_with_and_without_elision():
    assert _traced_run(elide=True) == _traced_run(elide=False)
