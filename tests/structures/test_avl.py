"""Unit + property tests for the AVL tree baseline."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.structures.avl import AvlTree


class TestBasics:
    def test_empty(self):
        t = AvlTree()
        assert len(t) == 0
        assert t.peek_head() is None
        with pytest.raises(KeyError):
            t.pop_head()

    def test_insert_find(self):
        t = AvlTree()
        t.insert(2, "b")
        t.insert(1, "a")
        t.insert(3, "c")
        assert t.find(2) == "b"
        assert [k for k, _ in t.items()] == [1, 2, 3]
        t.check_invariants()

    def test_duplicate_rejected(self):
        t = AvlTree()
        t.insert(1, "a")
        with pytest.raises(KeyError):
            t.insert(1, "b")

    def test_sequential_insert_balances(self):
        t = AvlTree()
        for i in range(1000):
            t.insert(i, i)
        t.check_invariants()
        # AVL height bound: 1.44 log2(n+2) ~= 14.4 for n=1000
        assert t._root.height <= 15

    def test_delete_leaf_and_internal(self):
        t = AvlTree()
        for i in (5, 2, 8, 1, 3, 7, 9):
            t.insert(i, i)
        assert t.delete(1) == 1  # leaf
        assert t.delete(5) == 5  # two children (root)
        assert t.delete(8) == 8  # one/two children
        assert [k for k, _ in t.items()] == [2, 3, 7, 9]
        t.check_invariants()

    def test_delete_missing_rejected(self):
        t = AvlTree()
        t.insert(1, 1)
        with pytest.raises(KeyError):
            t.delete(42)

    def test_pop_head_order(self):
        t = AvlTree()
        for i in (4, 1, 3, 2):
            t.insert(i, i)
        assert [t.pop_head()[0] for _ in range(4)] == [1, 2, 3, 4]


class TestPropertyBased:
    @given(st.lists(st.integers(0, 300), max_size=120), st.data())
    @settings(max_examples=100, deadline=None)
    def test_random_ops_match_model(self, keys, data):
        t = AvlTree()
        model = {}
        for k in keys:
            op = data.draw(st.sampled_from(["insert", "delete", "pop"]))
            if op == "insert" and k not in model:
                t.insert(k, k * 3)
                model[k] = k * 3
            elif op == "delete" and model:
                victim = data.draw(st.sampled_from(sorted(model)))
                assert t.delete(victim) == model.pop(victim)
            elif op == "pop" and model:
                lo = min(model)
                assert t.pop_head() == (lo, model.pop(lo))
        assert [k for k, _ in t.items()] == sorted(model)
        t.check_invariants()
