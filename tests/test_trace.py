"""Unit tests for the decision-tracing layer (repro.trace)."""

import io
import json

import pytest

from repro.trace import DecisionTracer, NULL_TRACER, NullTracer, read_jsonl


class TestNullTracer:
    def test_disabled_and_inert(self):
        assert NULL_TRACER.enabled is False
        # No-ops must accept the full recording surface without effect.
        NULL_TRACER.record("decision", 1.0, workflow="w", lag=3.5)
        NULL_TRACER.incr("WOHA", "decisions")
        assert isinstance(NULL_TRACER, NullTracer)


class TestRecording:
    def test_events_are_sequenced(self):
        tracer = DecisionTracer()
        tracer.record("decision", 1.0, workflow="a")
        tracer.record("assign", 2.0, workflow="a", task="j/map-0")
        events = tracer.events()
        assert [e["seq"] for e in events] == [0, 1]
        assert [e["event"] for e in events] == ["decision", "assign"]
        assert events[0]["workflow"] == "a"

    def test_non_finite_floats_become_none(self):
        tracer = DecisionTracer()
        tracer.record("decision", 0.0, lag=float("-inf"), other=float("nan"), ok=1.5)
        event = tracer.events()[0]
        assert event["lag"] is None
        assert event["other"] is None
        assert event["ok"] == 1.5

    def test_event_filter(self):
        tracer = DecisionTracer()
        tracer.record("decision", 0.0)
        tracer.record("assign", 1.0)
        tracer.record("decision", 2.0)
        assert len(tracer.events("decision")) == 2
        assert len(tracer.events("assign")) == 1
        assert len(tracer) == 3


class TestRingBuffer:
    def test_capacity_evicts_oldest_and_counts_drops(self):
        tracer = DecisionTracer(capacity=3)
        for i in range(5):
            tracer.record("decision", float(i))
        assert len(tracer) == 3
        assert tracer.dropped == 2
        # Sequence numbers keep rising across evictions.
        assert [e["seq"] for e in tracer.events()] == [2, 3, 4]

    def test_invalid_capacity_rejected(self):
        with pytest.raises(ValueError):
            DecisionTracer(capacity=0)

    def test_counters_survive_eviction(self):
        tracer = DecisionTracer(capacity=1)
        for _ in range(10):
            tracer.record("decision", 0.0)
            tracer.incr("WOHA", "decisions")
        assert len(tracer) == 1
        assert tracer.counters[("WOHA", "decisions")] == 10


class TestCounters:
    def test_counter_table_groups_by_scheduler(self):
        tracer = DecisionTracer()
        tracer.incr("WOHA", "decisions")
        tracer.incr("WOHA", "decisions")
        tracer.incr("WOHA", "assign_wait_seconds", 2.5)
        tracer.incr("FIFO", "decisions")
        assert tracer.counter_table() == {
            "WOHA": {"decisions": 2, "assign_wait_seconds": 2.5},
            "FIFO": {"decisions": 1},
        }

    def test_clear(self):
        tracer = DecisionTracer(capacity=1)
        tracer.record("decision", 0.0)
        tracer.record("decision", 1.0)
        tracer.incr("WOHA", "decisions")
        tracer.clear()
        assert len(tracer) == 0
        assert tracer.dropped == 0
        assert not tracer.counters
        tracer.record("decision", 2.0)
        # Sequencing continues: cleared tracers don't reuse old seq numbers.
        assert tracer.events()[0]["seq"] == 2


class TestJsonl:
    def test_roundtrip_via_file_object(self):
        tracer = DecisionTracer()
        tracer.record("decision", 1.0, workflow="w", lag=0.5, skipped=["x"])
        tracer.record("assign", 2.0, workflow="w", task="j/map-0", wait=None)
        buf = io.StringIO()
        assert tracer.to_jsonl(buf) == 2
        loaded = read_jsonl(io.StringIO(buf.getvalue()))
        assert loaded == tracer.events()

    def test_dumps_matches_to_jsonl(self):
        tracer = DecisionTracer()
        tracer.record("decision", 1.0, workflow="w")
        buf = io.StringIO()
        tracer.to_jsonl(buf)
        assert tracer.dumps_jsonl() == buf.getvalue()

    def test_read_jsonl_from_path(self, tmp_path):
        tracer = DecisionTracer()
        tracer.record("decision", 1.0, workflow="w", lag=float("inf"))
        path = tmp_path / "trace.jsonl"
        with open(path, "w") as fh:
            tracer.to_jsonl(fh)
        loaded = read_jsonl(str(path))
        assert loaded[0]["workflow"] == "w"
        assert loaded[0]["lag"] is None  # inf is not JSON; mapped to null

    def test_every_line_is_standard_json(self):
        tracer = DecisionTracer()
        tracer.record("decision", 0.0, lag=float("-inf"))
        for line in tracer.dumps_jsonl().splitlines():
            json.loads(line)  # must not need allow_nan extensions
            assert "Infinity" not in line and "NaN" not in line


class TestListenerHooks:
    def test_workflow_lifecycle_events(self):
        class Wip:
            name = "w"
            deadline = 100.0
            total_tasks = 7

        tracer = DecisionTracer()
        tracer.on_workflow_submitted(Wip(), 1.0)
        tracer.on_workflow_completed(Wip(), 120.0)
        submitted, completed = tracer.events()
        assert submitted["event"] == "workflow_submitted"
        assert submitted["deadline"] == 100.0
        assert submitted["total_tasks"] == 7
        assert completed["event"] == "workflow_completed"
        assert completed["met"] is False
