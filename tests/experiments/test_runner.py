"""Sharded experiment runner: determinism, merging, worker-count equality.

The runner's correctness bar (ISSUE 6): a sharded sweep must be
byte-identical to a sequential run of the same grid — same per-cell
WorkflowStats, same merged collector, same canonical JSON — for any worker
count, any input order, and with the batched-assignment fast path on or
off.  Shard seeds must derive only from the cell key (stable hash), never
from worker index or wall clock.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.experiments import (
    SCENARIOS,
    ExperimentCell,
    run_grid,
    shard_seed,
)
from repro.experiments.runner import SCHEDULER_STACKS, run_cell

#: One scheduler per submission mode family, plus the other oozie baselines.
FOUR_SCHEDULERS = ("fifo", "fair", "edf", "woha-lpf")

#: Small enough for tier-1; large enough that cells actually schedule work.
SMOKE = dict(seed=0, nodes=4, scale=0.1)


def smoke_grid(schedulers=("fifo", "woha-lpf"), scenarios=("periodic", "yahoo")):
    return [
        ExperimentCell(scenario, scheduler, **SMOKE)
        for scenario in scenarios
        for scheduler in schedulers
    ]


class TestCells:
    def test_unknown_scenario_rejected(self):
        with pytest.raises(ValueError, match="unknown scenario"):
            ExperimentCell("nope", "fifo", seed=0)

    def test_unknown_scheduler_rejected(self):
        with pytest.raises(ValueError, match="unknown scheduler"):
            ExperimentCell("periodic", "nope", seed=0)

    def test_key_includes_every_coordinate(self):
        base = ExperimentCell("periodic", "fifo", seed=1, nodes=8, scale=0.5)
        variants = [
            ExperimentCell("yahoo", "fifo", seed=1, nodes=8, scale=0.5),
            ExperimentCell("periodic", "fair", seed=1, nodes=8, scale=0.5),
            ExperimentCell("periodic", "fifo", seed=2, nodes=8, scale=0.5),
            ExperimentCell("periodic", "fifo", seed=1, nodes=9, scale=0.5),
            ExperimentCell("periodic", "fifo", seed=1, nodes=8, scale=0.25),
        ]
        keys = {base.key} | {v.key for v in variants}
        assert len(keys) == len(variants) + 1

    def test_shard_seed_is_a_pure_function_of_the_key(self):
        a = ExperimentCell("periodic", "fifo", seed=3)
        b = ExperimentCell("periodic", "fifo", seed=3)
        assert shard_seed(a) == shard_seed(b)
        assert shard_seed(a) != shard_seed(ExperimentCell("periodic", "fifo", seed=4))

    def test_duplicate_cells_rejected(self):
        cell = ExperimentCell("periodic", "fifo", **SMOKE)
        with pytest.raises(ValueError, match="duplicate"):
            run_grid([cell, cell])

    def test_registries_cover_each_other(self):
        # Every scenario and scheduler name a cell may use is exercisable.
        for scenario in SCENARIOS:
            ExperimentCell(scenario, "fifo", seed=0)
        for scheduler in SCHEDULER_STACKS:
            ExperimentCell("periodic", scheduler, seed=0)


class TestDeterminism:
    def test_rerun_is_byte_identical(self):
        cells = smoke_grid()
        assert run_grid(cells).dumps() == run_grid(cells).dumps()

    def test_input_order_does_not_matter(self):
        cells = smoke_grid()
        assert run_grid(cells).dumps() == run_grid(list(reversed(cells))).dumps()

    def test_sharded_equals_sequential(self):
        cells = smoke_grid()
        sequential = run_grid(cells, workers=0)
        sharded = run_grid(cells, workers=2)
        assert sharded.dumps() == sequential.dumps()
        assert sharded.stats == sequential.stats
        assert sharded.merged.scheduler_counters == sequential.merged.scheduler_counters

    def test_batched_assignment_equals_reference(self):
        cells = smoke_grid()
        assert (
            run_grid(cells, batched_assignment=True).dumps()
            == run_grid(cells, batched_assignment=False).dumps()
        )

    def test_outage_cells_run_and_lose_tasks(self):
        cell = ExperimentCell("outages", "fifo", seed=1, nodes=4, scale=0.5)
        result = run_cell(cell)
        # The scripted outage actually bites: attempts die and re-run.
        assert result.metrics.tasks_lost > 0
        # Every workflow still completes (outages always revive).
        assert all(
            ws.completion_time != float("inf") for ws in result.stats.values()
        )


class TestMergedMetrics:
    def test_merged_counters_are_sums(self):
        cells = smoke_grid()
        grid = run_grid(cells)
        assert grid.merged.tasks_launched == sum(
            c.metrics.tasks_launched for c in grid.cells
        )
        assert grid.merged.window == pytest.approx(
            sum(c.metrics.window for c in grid.cells)
        )

    def test_merged_utilization_between_extremes(self):
        grid = run_grid(smoke_grid())
        utils = [c.metrics.utilization() for c in grid.cells]
        assert min(utils) <= grid.merged.utilization() <= max(utils)


@settings(max_examples=4, deadline=None)
@given(
    scenario=st.sampled_from(sorted(SCENARIOS)),
    seed=st.integers(0, 20),
    workers=st.sampled_from([1, 2, 4]),
)
def test_worker_count_never_changes_results(scenario, seed, workers):
    """Satellite bar: 1, 2 and 4 workers all equal the sequential grid,
    across both submission modes and all four schedulers."""
    cells = [
        ExperimentCell(scenario, scheduler, seed=seed, nodes=4, scale=0.05)
        for scheduler in FOUR_SCHEDULERS
    ]
    sequential = run_grid(cells, workers=0)
    sharded = run_grid(cells, workers=workers)
    assert sharded.dumps() == sequential.dumps()
    assert sharded.stats == sequential.stats
    assert sharded.merged.tasks_launched == sequential.merged.tasks_launched
    assert sharded.merged.tasks_completed == sequential.merged.tasks_completed
    assert sharded.merged.busy_map_seconds == sequential.merged.busy_map_seconds
    assert sharded.merged.busy_reduce_seconds == sequential.merged.busy_reduce_seconds
