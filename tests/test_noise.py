"""Tests for estimation-error noise injection."""

import pytest

from repro.cluster.config import ClusterConfig
from repro.cluster.simulation import ClusterSimulation
from repro.cluster.tasks import TaskKind
from repro.noise import LognormalNoise
from repro.schedulers.fifo import FifoScheduler
from repro.workflow.builder import WorkflowBuilder
from repro.workflow.model import WJob


def wjob():
    return WJob(name="j", num_maps=4, num_reduces=2, map_duration=10.0, reduce_duration=20.0)


class TestLognormalNoise:
    def test_sigma_zero_is_identity(self):
        noise = LognormalNoise(0.0)
        assert noise(wjob()) is None
        assert noise.factor("j", TaskKind.MAP, 0) == 1.0

    def test_negative_sigma_rejected(self):
        with pytest.raises(ValueError):
            LognormalNoise(-0.1)

    def test_factors_deterministic_per_task(self):
        a = LognormalNoise(0.3, seed=5)
        b = LognormalNoise(0.3, seed=5)
        assert a.factor("j", TaskKind.MAP, 3) == b.factor("j", TaskKind.MAP, 3)

    def test_factors_vary_across_tasks_and_seeds(self):
        noise = LognormalNoise(0.3, seed=5)
        f0 = noise.factor("j", TaskKind.MAP, 0)
        f1 = noise.factor("j", TaskKind.MAP, 1)
        other_seed = LognormalNoise(0.3, seed=6).factor("j", TaskKind.MAP, 0)
        assert f0 != f1
        assert f0 != other_seed

    def test_sampler_scales_base_durations(self):
        noise = LognormalNoise(0.5, seed=1)
        sampler = noise(wjob())
        d = sampler(TaskKind.MAP, 0)
        assert d == 10.0 * noise.factor("j", TaskKind.MAP, 0)
        assert d > 0

    def test_median_is_one(self):
        """Lognormal with mu=0: about half the factors are below 1."""
        noise = LognormalNoise(0.4, seed=2)
        factors = [noise.factor("j", TaskKind.MAP, i) for i in range(400)]
        below = sum(1 for f in factors if f < 1.0)
        assert 140 < below < 260


class TestSimulationWithNoise:
    def _run(self, sigma, seed=7):
        wf = (
            WorkflowBuilder("w")
            .job("a", maps=6, reduces=2, map_s=10, reduce_s=20)
            .build()
        )
        config = ClusterConfig(
            num_nodes=2, map_slots_per_node=2, reduce_slots_per_node=1, heartbeat_interval=float("inf")
        )
        sim = ClusterSimulation(
            config,
            FifoScheduler(),
            submission="oozie",
            duration_sampler_factory=LognormalNoise(sigma, seed=seed),
        )
        sim.add_workflow(wf)
        return sim.run()

    def test_zero_noise_matches_clean_run(self):
        noisy = self._run(0.0)
        clean = self._run(0.0, seed=99)
        assert noisy.stats["w"].completion_time == clean.stats["w"].completion_time

    def test_noise_changes_completion_times(self):
        assert self._run(0.5).stats["w"].completion_time != self._run(0.0).stats["w"].completion_time

    def test_noisy_runs_reproducible(self):
        assert (
            self._run(0.5, seed=3).stats["w"].completion_time
            == self._run(0.5, seed=3).stats["w"].completion_time
        )
