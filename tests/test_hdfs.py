"""Unit tests for the HDFS-lite namespace."""

import pytest

from repro.hdfs import HdfsError, HdfsNamespace


class TestCreate:
    def test_create_and_stat(self):
        fs = HdfsNamespace()
        meta = fs.create("/a/b", created_at=5.0, producer="wf/job", size_bytes=10)
        assert fs.stat("/a/b") == meta
        assert meta.created_at == 5.0 and meta.producer == "wf/job"

    def test_double_create_rejected(self):
        fs = HdfsNamespace()
        fs.create("/a", created_at=0.0)
        with pytest.raises(HdfsError, match="already exists"):
            fs.create("/a", created_at=1.0)

    def test_relative_path_rejected(self):
        fs = HdfsNamespace()
        with pytest.raises(HdfsError, match="absolute"):
            fs.create("a/b", created_at=0.0)

    def test_paths_normalised(self):
        fs = HdfsNamespace()
        fs.create("/a//b/", created_at=0.0)
        assert fs.exists("/a/b")

    def test_preload(self):
        fs = HdfsNamespace()
        fs.preload(["/data/x", "/data/y"])
        assert fs.exists("/data/x") and fs.exists("/data/y")
        assert fs.stat("/data/x").producer is None


class TestExists:
    def test_directory_prefix_semantics(self):
        fs = HdfsNamespace()
        fs.create("/logs/2014/03/07", created_at=0.0)
        assert fs.exists("/logs")
        assert fs.exists("/logs/2014")
        assert not fs.exists("/logs/2015")

    def test_prefix_is_component_wise(self):
        fs = HdfsNamespace()
        fs.create("/data-raw", created_at=0.0)
        assert not fs.exists("/data")  # "/data" is not a path prefix of "/data-raw"

    def test_missing_helper(self):
        fs = HdfsNamespace()
        fs.create("/x", created_at=0.0)
        assert fs.missing(["/x", "/y", "/z"]) == ("/y", "/z")


class TestDeleteAndList:
    def test_delete_recursive(self):
        fs = HdfsNamespace()
        fs.create("/d/one", created_at=0.0)
        fs.create("/d/two", created_at=0.0)
        fs.delete("/d")
        assert not fs.exists("/d")
        assert len(fs) == 0

    def test_delete_missing_rejected(self):
        fs = HdfsNamespace()
        with pytest.raises(HdfsError):
            fs.delete("/nope")

    def test_stat_missing_rejected(self):
        fs = HdfsNamespace()
        with pytest.raises(HdfsError):
            fs.stat("/nope")

    def test_listing_sorted_and_scoped(self):
        fs = HdfsNamespace()
        for path in ("/b", "/a/2", "/a/1", "/c/x"):
            fs.create(path, created_at=0.0)
        assert [m.path for m in fs.listing("/a")] == ["/a/1", "/a/2"]
        assert [m.path for m in fs.listing()] == ["/a/1", "/a/2", "/b", "/c/x"]
