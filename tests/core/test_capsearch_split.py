"""Tests for the split-pool cap search ablation."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.capsearch import _split_caps, capped_plan_split, find_min_cap, find_min_cap_split
from repro.core.plangen import generate_requirements, generate_requirements_split
from repro.workflow.builder import WorkflowBuilder


def reduce_heavy():
    return (
        WorkflowBuilder("w")
        .job("a", maps=8, reduces=16, map_s=10, reduce_s=60)
        .build()
    )


class TestFindMinCapSplit:
    def test_caps_respect_pool_mix(self):
        result = find_min_cap_split(reduce_heavy(), max_slots=96, map_fraction=2 / 3,
                                    relative_deadline=10_000.0)
        assert result.feasible
        # Found caps follow the 2:1 ratio of the modelled cluster.
        assert result.map_cap >= result.reduce_cap

    def test_infeasible_flagged(self):
        result = find_min_cap_split(reduce_heavy(), max_slots=96, relative_deadline=1.0)
        assert not result.feasible

    def test_no_deadline_full_size(self):
        w = WorkflowBuilder("w").job("a", maps=4, reduces=2, map_s=5, reduce_s=5).build()
        result = find_min_cap_split(w, max_slots=30, map_fraction=2 / 3)
        assert result.feasible
        assert result.map_cap == 20 and result.reduce_cap == 10

    def test_validation(self):
        with pytest.raises(ValueError):
            find_min_cap_split(reduce_heavy(), max_slots=0)
        with pytest.raises(ValueError):
            find_min_cap_split(reduce_heavy(), max_slots=10, map_fraction=1.5)

    def test_one_slot_cluster_degrades_gracefully(self):
        """A 1-slot cluster used to raise; the callers only guarantee
        max_slots >= 1, so the search now clamps its floor instead and
        plans against the (1, 1) pool pair ``_split_caps`` floors to."""
        result = find_min_cap_split(reduce_heavy(), max_slots=1, relative_deadline=10_000.0)
        assert (result.map_cap, result.reduce_cap) == (1, 1)
        assert result.feasible
        plan = capped_plan_split(reduce_heavy(), max_slots=1, relative_deadline=10_000.0)
        assert plan.total_tasks == reduce_heavy().total_tasks

    def test_probes_match_pooled_search_for_best_effort(self):
        """Regression: the no-deadline path used to fall through into the
        binary-search body, so a best-effort split search reported more
        probes than the pooled search for the same workflow."""
        w = WorkflowBuilder("w").job("a", maps=4, reduces=2, map_s=5, reduce_s=5).build()
        pooled = find_min_cap(w, max_slots=30)
        split = find_min_cap_split(w, max_slots=30, map_fraction=2 / 3)
        assert pooled.probes == split.probes == 1
        assert pooled.feasible and split.feasible


class TestSplitCaps:
    @given(
        k=st.integers(1, 300),
        total=st.integers(2, 300),
        map_fraction=st.floats(0.05, 0.95),
    )
    @settings(max_examples=200, deadline=None)
    def test_caps_bounded_by_pools(self, k, total, map_fraction):
        """Regression: ``_split_caps`` ignored ``total``, so rounding could
        grant a scaled-down plan more slots of a kind than the modelled
        cluster's pool of that kind actually holds."""
        map_cap, reduce_cap = _split_caps(k, total, map_fraction)
        pool_maps = max(1, round(total * map_fraction))
        pool_reduces = max(1, total - pool_maps)
        assert 1 <= map_cap <= pool_maps
        assert 1 <= reduce_cap <= pool_reduces

    def test_full_size_request_matches_pools_exactly(self):
        assert _split_caps(30, 30, 2 / 3) == (20, 10)
        assert _split_caps(96, 96, 2 / 3) == (64, 32)

    def test_overshoot_clamped(self):
        # A small cluster with a reduce-light mix: the reduce pool holds a
        # single slot, so no scaled-down k may be granted more than that.
        for k in range(1, 11):
            _map_cap, reduce_cap = _split_caps(k, 10, 0.9)
            assert reduce_cap == 1


class TestPredictionFidelity:
    def test_split_model_not_more_optimistic_than_reality(self):
        """The pooled plan underestimates reduce-bound makespans; the
        split plan's prediction equals the split simulation by
        construction and is never below the pooled one."""
        w = reduce_heavy()
        pooled = generate_requirements(w, 96)
        split = generate_requirements_split(w, 64, 32)
        assert split.makespan >= pooled.makespan
        # reduce phase of 16 reduces on 32 slots: one wave; on a pooled 96
        # it's also one wave — pick numbers where they differ:
        w2 = WorkflowBuilder("w2").job("a", maps=8, reduces=64, map_s=10, reduce_s=60).build()
        pooled2 = generate_requirements(w2, 96)
        split2 = generate_requirements_split(w2, 64, 32)
        assert split2.makespan > pooled2.makespan

    def test_capped_plan_split_meets_deadline_in_model(self):
        w = (
            WorkflowBuilder("w")
            .job("a", maps=30, reduces=10, map_s=10, reduce_s=30)
            .deadline(relative=400.0)
            .build()
        )
        plan = capped_plan_split(w, max_slots=96, map_fraction=2 / 3)
        assert plan.feasible
        assert plan.makespan <= 400.0
        assert plan.entries[-1].cum_req == w.total_tasks
