"""Unit tests for ProgressPlan / ProgressEntry (the F_i structure)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.progress import ProgressEntry, ProgressPlan


def make_plan(pairs, job_order=("a", "b"), cap=4, makespan=None, total=None, feasible=True):
    entries = tuple(ProgressEntry(ttd=t, cum_req=r) for t, r in pairs)
    if makespan is None:
        makespan = pairs[0][0] if pairs else 0.0
    if total is None:
        total = pairs[-1][1] if pairs else 0
    return ProgressPlan(
        entries=entries,
        job_order=tuple(job_order),
        resource_cap=cap,
        makespan=makespan,
        total_tasks=total,
        feasible=feasible,
    )


class TestValidation:
    def test_entries_must_descend_in_ttd(self):
        with pytest.raises(ValueError, match="out of order"):
            make_plan([(10.0, 2), (10.0, 4)])

    def test_entries_must_ascend_in_req(self):
        with pytest.raises(ValueError, match="out of order"):
            make_plan([(10.0, 4), (5.0, 2)])

    def test_final_req_must_equal_total(self):
        with pytest.raises(ValueError, match="workflow has"):
            make_plan([(10.0, 2)], total=5)

    def test_empty_plan_allowed(self):
        plan = make_plan([], total=0)
        assert len(plan) == 0
        assert plan.requirement_at(5.0) == 0


class TestLookups:
    @pytest.fixture
    def plan(self):
        # fires: ttd 60 -> 4 tasks, ttd 30 -> 10, ttd 6 -> 15
        return make_plan([(60.0, 4), (30.0, 10), (6.0, 15)])

    def test_requirement_at_steps(self, plan):
        assert plan.requirement_at(100.0) == 0   # before first entry
        assert plan.requirement_at(60.0) == 4    # entry fires exactly at its ttd
        assert plan.requirement_at(45.0) == 4
        assert plan.requirement_at(30.0) == 10
        assert plan.requirement_at(6.0) == 15
        assert plan.requirement_at(0.0) == 15
        assert plan.requirement_at(-10.0) == 15  # past the deadline

    def test_first_index_after(self, plan):
        D = 100.0
        assert plan.first_index_after(D, now=0.0) == 0       # ttd=100, nothing fired
        assert plan.first_index_after(D, now=40.0) == 1      # ttd=60 fired
        assert plan.first_index_after(D, now=70.0) == 2
        assert plan.first_index_after(D, now=94.0) == 3
        assert plan.first_index_after(D, now=1000.0) == 3

    def test_change_time(self, plan):
        D = 100.0
        assert plan.change_time(D, 0) == 40.0
        assert plan.change_time(D, 2) == 94.0
        assert plan.change_time(D, 3) == float("inf")

    def test_requirement_before(self, plan):
        assert plan.requirement_before(0) == 0
        assert plan.requirement_before(1) == 4
        assert plan.requirement_before(3) == 15
        assert plan.requirement_before(99) == 15

    def test_change_intervals(self, plan):
        assert plan.change_intervals() == [30.0, 24.0]


class TestSerialization:
    def test_roundtrip(self):
        plan = make_plan([(60.0, 4), (30.0, 10), (6.0, 15)], job_order=("x", "y", "z"), cap=7)
        clone = ProgressPlan.from_bytes(plan.to_bytes())
        assert clone.entries == plan.entries
        assert clone.job_order == plan.job_order
        assert clone.resource_cap == plan.resource_cap
        assert clone.total_tasks == plan.total_tasks

    def test_size_grows_with_entries(self):
        small = make_plan([(10.0, 1)], total=1)
        big = make_plan([(float(t), 20 - t) for t in range(19, 0, -1)], total=19)
        assert big.size_bytes > small.size_bytes

    def test_size_is_kilobyte_scale_for_thousand_entries(self):
        entries = [(float(2000 - i), i + 1) for i in range(1000)]
        plan = make_plan(entries, total=1000)
        # The paper's Fig 13b: plans stay within a few KB even for
        # 1400-task workflows.  12 bytes/entry + header + job names.
        assert plan.size_bytes < 16 * 1024

    @given(st.integers(1, 60))
    @settings(max_examples=30, deadline=None)
    def test_roundtrip_random_sizes(self, n):
        entries = [(float(n - i), i + 1) for i in range(n)]
        plan = make_plan(entries, total=n)
        assert ProgressPlan.from_bytes(plan.to_bytes()).entries == plan.entries

    def test_roundtrip_preserves_infeasible_flag(self):
        """Regression: from_bytes used to drop ``feasible`` (it defaulted to
        True), silently promoting best-effort plans after one serialise."""
        plan = make_plan([(60.0, 4), (30.0, 10), (6.0, 15)], feasible=False)
        clone = ProgressPlan.from_bytes(plan.to_bytes())
        assert clone.feasible is False
        assert clone.resource_cap == plan.resource_cap

    def test_feasible_wire_format_is_unchanged(self):
        """The flag rides the cap field's high bit: feasible plans must
        serialise byte-identically to the original flagless layout."""
        import struct
        import zlib

        plan = make_plan([(60.0, 4), (30.0, 10), (6.0, 15)], job_order=("x", "y"), cap=7)
        legacy = [struct.pack("<IdII", plan.resource_cap, plan.makespan,
                              len(plan.entries), len(plan.job_order))]
        for entry in plan.entries:
            legacy.append(struct.pack("<dI", entry.ttd, entry.cum_req))
        for name in plan.job_order:
            encoded = name.encode("utf-8")
            legacy.append(struct.pack("<H", len(encoded)))
            legacy.append(encoded)
        assert plan.to_bytes() == zlib.compress(b"".join(legacy), level=6)

    def test_roundtrip_empty_infeasible_plan(self):
        plan = make_plan([], total=0, feasible=False)
        clone = ProgressPlan.from_bytes(plan.to_bytes())
        assert clone.feasible is False
        assert clone.entries == ()

    def test_roundtrip_unicode_job_names(self):
        plan = make_plan([(10.0, 3)], job_order=("étape-1", "作业②"), total=3)
        clone = ProgressPlan.from_bytes(plan.to_bytes())
        assert clone.job_order == ("étape-1", "作业②")

    def test_oversized_cap_rejected(self):
        plan = make_plan([(10.0, 3)], cap=0x8000_0000, total=3)
        with pytest.raises(ValueError, match="too large"):
            plan.to_bytes()

    @given(st.integers(1, 30), st.booleans())
    @settings(max_examples=40, deadline=None)
    def test_roundtrip_preserves_all_fields(self, n, feasible):
        entries = [(float(n - i), i + 1) for i in range(n)]
        plan = make_plan(entries, total=n, feasible=feasible, cap=n)
        clone = ProgressPlan.from_bytes(plan.to_bytes())
        assert clone == plan


@given(
    st.lists(
        st.tuples(st.floats(0.1, 1e5, allow_nan=False), st.integers(1, 5)),
        min_size=1,
        max_size=40,
        unique_by=lambda p: p[0],
    )
)
@settings(max_examples=80, deadline=None)
def test_requirement_at_matches_linear_scan(raw):
    """Property: the bisect lookup equals a brute-force scan."""
    raw = sorted(raw, key=lambda p: -p[0])
    cum = 0
    pairs = []
    for ttd, inc in raw:
        cum += inc
        pairs.append((ttd, cum))
    plan = make_plan(pairs, total=cum)
    probes = [p[0] for p in pairs] + [0.0, 1e9, pairs[len(pairs) // 2][0] + 1e-3]
    for q in probes:
        expected = max((r for t, r in pairs if t >= q), default=0)
        assert plan.requirement_at(q) == expected
