"""Typed validation failures: ValidationError carries a ValidationReport.

ISSUE satellite 2: ``WohaClient.submit_xml`` on malformed XML must raise
the *typed* :class:`~repro.core.client.ValidationError` whose ``.report``
says what failed — API clients (the serve tier's 400 path) need structure,
not an exception string.
"""

import pytest

from repro.core.client import ValidationError, ValidationReport, WohaClient
from repro.workflow.model import WorkflowValidationError


class TestValidationErrorType:
    def test_is_a_workflow_validation_error(self):
        # Existing except-clauses for the base class keep working.
        assert issubclass(ValidationError, WorkflowValidationError)

    def test_message_composed_from_report(self):
        report = ValidationReport((), (), errors=("first", "second"))
        err = ValidationError(report)
        assert "first; second" in str(err)
        assert err.report is report

    def test_message_lists_missing_artifacts(self):
        report = ValidationReport(
            missing_inputs=("/in/a", "/in/b"), missing_jars=("wf.jar",)
        )
        message = str(ValidationError(report))
        assert "wf.jar" in message and "/in/a" in message

    def test_empty_report_still_has_a_message(self):
        assert str(ValidationError(ValidationReport((), ()))) == "validation failed"

    def test_to_payload_shape(self):
        report = ValidationReport(
            missing_inputs=(), missing_jars=("a.jar",), errors=("bad deadline",)
        )
        payload = report.to_payload()
        assert payload["ok"] is False
        assert payload["errors"] == ["bad deadline"]
        assert payload["missing_jars"] == ["a.jar"]
        assert payload["missing_inputs"] == []


class TestSubmitXml:
    def test_malformed_xml_raises_typed_error(self, tmp_path):
        path = tmp_path / "broken.xml"
        path.write_text("<workflow name='w'><job name='j'")
        client = WohaClient(None)
        with pytest.raises(ValidationError) as exc_info:
            client.submit_xml(str(path))
        report = exc_info.value.report
        assert not report.ok
        assert report.errors and "malformed" in report.errors[0]

    def test_semantically_invalid_xml_raises_typed_error(self, tmp_path):
        path = tmp_path / "cycle.xml"
        path.write_text(
            """<workflow name="w" deadline="100">
                 <job name="a" maps="1" reduces="0" map-duration="1">
                   <after>b</after>
                 </job>
                 <job name="b" maps="1" reduces="0" map-duration="1">
                   <after>a</after>
                 </job>
               </workflow>"""
        )
        client = WohaClient(None)
        with pytest.raises(ValidationError) as exc_info:
            client.submit_xml(str(path))
        assert exc_info.value.report.errors
