"""Tests for mid-flight replanning (the future-work extension)."""

import pytest

from repro.cluster.config import ClusterConfig
from repro.cluster.simulation import ClusterSimulation
from repro.core.client import make_planner
from repro.core.replanning import ReplanningWohaScheduler, residual_workflow
from repro.core.scheduler import WohaScheduler
from repro.noise import LognormalNoise
from repro.workflow.builder import WorkflowBuilder


def build_sim(scheduler, sigma=0.0):
    config = ClusterConfig(
        num_nodes=2, map_slots_per_node=2, reduce_slots_per_node=1, heartbeat_interval=float("inf")
    )
    factory = LognormalNoise(sigma, seed=5) if sigma else None
    return ClusterSimulation(
        config, scheduler, submission="woha", planner=make_planner("lpf"),
        duration_sampler_factory=factory,
    )


class TestResidualWorkflow:
    def _wip(self, sim_until=None):
        wf = (
            WorkflowBuilder("w")
            .job("a", maps=4, reduces=2, map_s=10, reduce_s=20)
            .job("b", maps=2, reduces=1, map_s=10, reduce_s=20, after=["a"])
            .deadline(relative=500)
            .build()
        )
        sim = build_sim(WohaScheduler())
        sim.add_workflow(wf)
        if sim_until is not None:
            sim.sim.run(until=sim_until)
        else:
            sim.run()
        return sim.jobtracker.workflows["w"]

    def test_fresh_workflow_residual_is_full(self):
        wip = self._wip(sim_until=0.5)  # submitter ran; "a" just submitted
        residual = residual_workflow(wip)
        # a's maps are already handed out by t=0.5 (eager round), so only
        # its reduces plus all of b remain.
        assert residual is not None
        assert set(residual.job_names()) <= {"a", "b"}
        assert "b" in residual.job_names()

    def test_completed_workflow_has_no_residual(self):
        wip = self._wip()
        assert residual_workflow(wip) is None

    def test_edges_dropped_to_inflight_jobs(self):
        wip = self._wip(sim_until=15.0)  # a's maps done, reduces running/pending
        residual = residual_workflow(wip)
        if residual is not None and "b" in residual.job_names() and "a" not in residual.job_names():
            assert residual.prerequisites("b") == frozenset()


class TestReplanningScheduler:
    def test_validation(self):
        with pytest.raises(ValueError):
            ReplanningWohaScheduler(lag_fraction=0.0)

    def test_no_replans_when_plans_hold(self):
        scheduler = ReplanningWohaScheduler()
        sim = build_sim(scheduler)
        wf = (
            WorkflowBuilder("w")
            .job("a", maps=8, reduces=2, map_s=10, reduce_s=20)
            .deadline(relative=600)
            .build()
        )
        sim.add_workflow(wf)
        result = sim.run()
        assert scheduler.replans == 0
        assert result.stats["w"].met_deadline

    def test_replans_fire_under_heavy_noise(self):
        scheduler = ReplanningWohaScheduler(min_lag=5, lag_fraction=0.05, cooldown=30.0)
        sim = build_sim(scheduler, sigma=0.8)
        wf = (
            WorkflowBuilder("w")
            .job("a", maps=10, reduces=3, map_s=10, reduce_s=20)
            .job("b", maps=10, reduces=3, map_s=10, reduce_s=20, after=["a"])
            # Loose enough that the regenerated residual plan is feasible
            # (an infeasible one is declined, not installed).
            .deadline(relative=300)
            .build()
        )
        sim.add_workflow(wf)
        result = sim.run()
        assert result.stats["w"].completion_time < float("inf")
        assert scheduler.replans >= 1

    def test_cooldown_limits_replan_rate(self):
        eager = ReplanningWohaScheduler(min_lag=1, lag_fraction=0.01, cooldown=1e9)
        sim = build_sim(eager, sigma=0.8)
        wf = (
            WorkflowBuilder("w")
            .job("a", maps=10, reduces=3, map_s=10, reduce_s=20)
            .job("b", maps=10, reduces=3, map_s=10, reduce_s=20, after=["a"])
            .deadline(relative=260)
            .build()
        )
        sim.add_workflow(wf)
        sim.run()
        assert eager.replans <= 1  # one replan, then the cooldown blocks

    def test_infeasible_replan_is_not_installed(self, monkeypatch):
        """A residual plan even the whole cluster cannot meet must not
        replace the stale feasible plan — installing it would demote the
        workflow to best-effort and guarantee a bigger miss."""
        import repro.core.replanning as replanning_module

        produced = []
        orig = replanning_module.capped_plan

        def recording_capped_plan(*args, **kwargs):
            plan = orig(*args, **kwargs)
            produced.append(plan.feasible)
            return plan

        monkeypatch.setattr(replanning_module, "capped_plan", recording_capped_plan)
        scheduler = ReplanningWohaScheduler(min_lag=5, lag_fraction=0.05, cooldown=30.0)
        sim = build_sim(scheduler, sigma=1.2)
        wf = (
            WorkflowBuilder("w")
            .job("a", maps=10, reduces=3, map_s=10, reduce_s=20)
            .job("b", maps=10, reduces=3, map_s=10, reduce_s=20, after=["a"])
            .deadline(relative=350)
            .build()
        )
        sim.add_workflow(wf)
        sim.run()
        assert False in produced  # the scenario did regenerate an infeasible plan
        # Only the feasible regenerations were installed (counted).
        assert scheduler.replans == sum(1 for f in produced if f) == 1

    def test_raising_residual_extraction_leaves_bookkeeping_untouched(self, monkeypatch):
        """DT303 regression: if residual extraction blows up mid-replan,
        no cooldown stamp or replan count may survive the failed attempt."""
        import repro.core.replanning as replanning_module

        class Boom(Exception):
            pass

        def exploding_residual(wip):
            raise Boom("residual extraction failed")

        monkeypatch.setattr(replanning_module, "residual_workflow", exploding_residual)
        scheduler = ReplanningWohaScheduler(min_lag=5, lag_fraction=0.05, cooldown=30.0)
        sim = build_sim(scheduler, sigma=0.8)
        wf = (
            WorkflowBuilder("w")
            .job("a", maps=10, reduces=3, map_s=10, reduce_s=20)
            .job("b", maps=10, reduces=3, map_s=10, reduce_s=20, after=["a"])
            .deadline(relative=300)
            .build()
        )
        sim.add_workflow(wf)
        with pytest.raises(Boom):
            sim.run()
        assert scheduler.replans == 0
        assert scheduler._last_replan == {}

    def test_same_decisions_as_plain_without_triggers(self, small_workflow):
        plain_sim = build_sim(WohaScheduler())
        plain_sim.add_workflow(small_workflow)
        plain = plain_sim.run()

        replan_sim = build_sim(ReplanningWohaScheduler())
        replan_sim.add_workflow(small_workflow)
        replanned = replan_sim.run()
        assert plain.stats["wf"].completion_time == replanned.stats["wf"].completion_time
