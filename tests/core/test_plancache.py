"""Unit tests for the recurrence-aware plan cache (DESIGN.md §6)."""

import pytest

from repro.cluster.config import ClusterConfig
from repro.core.client import make_planner
from repro.core.plancache import PlanCache
from repro.metrics.collector import MetricsCollector
from repro.trace import DecisionTracer
from repro.workflow.builder import WorkflowBuilder
from repro.workloads.recurrence import Recurrence, expand_recurrences


def diamond(name="wf", *, maps=8, map_s=10.0, relative_deadline=400.0):
    return (
        WorkflowBuilder(name)
        .job("extract", maps=maps, reduces=2, map_s=map_s, reduce_s=15.0)
        .job("left", maps=4, reduces=1, map_s=8.0, reduce_s=9.0, after=["extract"])
        .job("right", maps=6, reduces=0, map_s=12.0, after=["extract"])
        .job("load", maps=2, reduces=1, map_s=5.0, reduce_s=20.0, after=["left", "right"])
        .deadline(relative=relative_deadline)
        .build()
    )


class TestAccounting:
    def test_miss_then_hit(self):
        cache = PlanCache()
        planner = make_planner("lpf", plan_cache=cache)
        w = diamond()
        planner(w, 24)
        assert (cache.hits, cache.misses) == (0, 1)
        planner(w, 24)
        assert (cache.hits, cache.misses) == (1, 1)
        assert len(cache) == 1
        assert cache.hit_ratio == 0.5

    def test_hit_ratio_zero_before_first_lookup(self):
        assert PlanCache().hit_ratio == 0.0

    def test_capacity_validated(self):
        with pytest.raises(ValueError):
            PlanCache(capacity=0)

    def test_counter_table_feeds_metrics_collector(self):
        cache = PlanCache()
        planner = make_planner("lpf", plan_cache=cache)
        planner(diamond(), 24)
        planner(diamond(), 24)
        collector = MetricsCollector(ClusterConfig(num_nodes=1))
        table = collector.aggregate_counters(cache)
        assert table["plan_cache"] == {"coalesced": 0, "evictions": 0, "hits": 1, "misses": 1}

    def test_tracer_mirrors_events(self):
        tracer = DecisionTracer()
        cache = PlanCache(capacity=1, tracer=tracer)
        planner = make_planner("lpf", plan_cache=cache)
        planner(diamond(), 24)
        planner(diamond(), 24)
        planner(diamond(maps=9), 24)  # second distinct problem: miss + eviction
        counters = tracer.counter_table()["plan_cache"]
        assert counters == {"hits": 1, "misses": 2, "evictions": 1}

    def test_raising_build_leaves_cache_untouched(self):
        # DT303 regression: a planner that raises mid-build must not leave
        # a phantom miss count or a dangling entry behind.
        cache = PlanCache()
        w = diamond()

        def explode():
            raise RuntimeError("planner blew up")

        with pytest.raises(RuntimeError):
            cache.get_or_build(w, ("extract",), 24, ("lpf",), explode)
        assert (len(cache), cache.hits, cache.misses, cache.evictions) == (0, 0, 0, 0)
        assert cache.counter_table()["plan_cache"]["misses"] == 0

    def test_clear_resets(self):
        cache = PlanCache()
        planner = make_planner("lpf", plan_cache=cache)
        planner(diamond(), 24)
        cache.clear()
        assert (len(cache), cache.hits, cache.misses, cache.evictions) == (0, 0, 0, 0)


class TestLru:
    def test_eviction_order_is_least_recently_used(self):
        cache = PlanCache(capacity=2)
        planner = make_planner("lpf", plan_cache=cache)
        a, b, c = diamond(maps=4), diamond(maps=5), diamond(maps=6)
        planner(a, 24)
        planner(b, 24)
        planner(a, 24)  # refresh a; b is now the LRU entry
        planner(c, 24)  # evicts b
        assert cache.evictions == 1
        hits_before = cache.hits
        planner(a, 24)
        planner(c, 24)
        assert cache.hits == hits_before + 2
        planner(b, 24)  # must be a miss again
        assert cache.misses == 4


class TestRecurrence:
    def test_dated_instances_share_one_entry(self):
        cache = PlanCache()
        planner = make_planner("lpf", plan_cache=cache)
        instances = expand_recurrences(diamond(), Recurrence(period=600.0, count=20))
        plans = [planner(w, 24) for w in instances]
        assert (cache.misses, cache.hits) == (1, 19)
        assert len(cache) == 1
        first = plans[0].to_bytes()
        assert all(p.to_bytes() == first for p in plans)

    def test_absolute_timing_does_not_enter_the_key(self):
        w = diamond()
        shifted = w.renamed("wf@later").with_timing(submit_time=10_000.0, deadline=10_400.0)
        assert PlanCache.fingerprint(w, w.topological_order(), 24) == PlanCache.fingerprint(
            shifted, shifted.topological_order(), 24
        )


class TestEquivalence:
    @pytest.mark.parametrize("pool", ["pooled", "split"])
    @pytest.mark.parametrize("cap_search", [True, False])
    def test_cached_plans_byte_identical_to_uncached(self, pool, cap_search):
        cache = PlanCache()
        cached = make_planner("lpf", cap_search=cap_search, pool=pool, plan_cache=cache)
        plain = make_planner("lpf", cap_search=cap_search, pool=pool)
        w = diamond()
        for _ in range(2):  # second call is served from the cache
            assert cached(w, 24).to_bytes() == plain(w, 24).to_bytes()
        assert cache.hits == 1

    def test_pool_and_cap_search_config_partition_the_cache(self):
        cache = PlanCache()
        w = diamond()
        for pool in ("pooled", "split"):
            for cap_search in (True, False):
                make_planner("lpf", cap_search=cap_search, pool=pool, plan_cache=cache)(w, 24)
        assert (cache.misses, cache.hits) == (4, 0)


class TestMutationsMiss:
    """Any input the planning pipeline reads must invalidate the key."""

    def _misses(self, first, second, slots=(24, 24)):
        cache = PlanCache()
        planner = make_planner("lpf", plan_cache=cache)
        planner(first, slots[0])
        planner(second, slots[1])
        return cache.misses

    def test_changed_map_count(self):
        assert self._misses(diamond(), diamond(maps=9)) == 2

    def test_changed_duration(self):
        assert self._misses(diamond(), diamond(map_s=11.0)) == 2

    def test_changed_relative_deadline(self):
        assert self._misses(diamond(), diamond(relative_deadline=500.0)) == 2

    def test_changed_slot_count(self):
        assert self._misses(diamond(), diamond(), slots=(24, 32)) == 2

    def test_renaming_alone_hits(self):
        """The workflow *name* is presentation, not structure."""
        assert self._misses(diamond(), diamond().renamed("other")) == 1
