"""Unit tests for the WOHA client (validate -> plan -> submit)."""

import pytest

from repro.cluster.config import ClusterConfig
from repro.cluster.jobtracker import JobTracker
from repro.core.client import WohaClient, make_planner
from repro.core.scheduler import WohaScheduler
from repro.events import Simulator
from repro.hdfs import HdfsNamespace
from repro.workflow.builder import WorkflowBuilder
from repro.workflow.model import WorkflowValidationError
from repro.workflow.xmlconfig import workflow_to_xml


@pytest.fixture
def rig():
    sim = Simulator()
    config = ClusterConfig(
        num_nodes=2, map_slots_per_node=2, reduce_slots_per_node=1, heartbeat_interval=float("inf")
    )
    jt = JobTracker(sim, config, WohaScheduler())
    return sim, jt


def wf_with_paths():
    return (
        WorkflowBuilder("p")
        .job(
            "a",
            maps=2,
            reduces=1,
            map_s=10,
            reduce_s=10,
            inputs=["/data/in"],
            outputs=["/stage/a"],
            jar_path="/jars/a.jar",
        )
        .job("b", maps=1, reduces=0, map_s=5, inputs=["/stage/a"], after=["a"])
        .deadline(relative=200)
        .build()
    )


class TestValidation:
    def test_all_present_passes(self, rig):
        sim, jt = rig
        hdfs = HdfsNamespace()
        hdfs.preload(["/data/in", "/jars/a.jar"])
        client = WohaClient(jt, hdfs=hdfs)
        report = client.validate(wf_with_paths())
        assert report.ok

    def test_missing_input_reported(self, rig):
        sim, jt = rig
        hdfs = HdfsNamespace()
        hdfs.preload(["/jars/a.jar"])
        client = WohaClient(jt, hdfs=hdfs)
        report = client.validate(wf_with_paths())
        assert report.missing_inputs == ("/data/in",)

    def test_missing_jar_reported(self, rig):
        sim, jt = rig
        hdfs = HdfsNamespace()
        hdfs.preload(["/data/in"])
        client = WohaClient(jt, hdfs=hdfs)
        report = client.validate(wf_with_paths())
        assert report.missing_jars == ("/jars/a.jar",)

    def test_intra_workflow_outputs_exempt(self, rig):
        """b's input /stage/a is produced by a, so it must not be flagged."""
        sim, jt = rig
        hdfs = HdfsNamespace()
        hdfs.preload(["/data/in", "/jars/a.jar"])
        client = WohaClient(jt, hdfs=hdfs)
        assert client.validate(wf_with_paths()).missing_inputs == ()

    def test_no_hdfs_skips_validation(self, rig):
        sim, jt = rig
        client = WohaClient(jt, hdfs=None)
        assert client.validate(wf_with_paths()).ok

    def test_submit_rejects_invalid(self, rig):
        sim, jt = rig
        client = WohaClient(jt, hdfs=HdfsNamespace())
        with pytest.raises(WorkflowValidationError, match="missing inputs"):
            client.submit(wf_with_paths())


class TestPlanning:
    def test_generate_plan_uses_master_slot_count(self, rig):
        sim, jt = rig
        client = WohaClient(jt)
        plan = client.generate_plan(wf_with_paths())
        assert plan.resource_cap <= jt.total_slots
        assert plan.entries[-1].cum_req == 4

    def test_cap_search_disabled_plans_full_size(self, rig):
        sim, jt = rig
        client = WohaClient(jt, cap_search=False)
        plan = client.generate_plan(wf_with_paths())
        assert plan.resource_cap == jt.total_slots

    def test_unknown_prioritizer_rejected(self, rig):
        sim, jt = rig
        with pytest.raises(ValueError, match="unknown prioritizer"):
            WohaClient(jt, prioritizer="zpf")

    def test_callable_prioritizer_accepted(self, rig):
        sim, jt = rig
        client = WohaClient(jt, prioritizer=lambda w: tuple(reversed(w.topological_order())))
        plan = client.generate_plan(wf_with_paths())
        assert plan.job_order == ("b", "a")


class TestSubmission:
    def test_submit_end_to_end(self, rig):
        sim, jt = rig
        client = WohaClient(jt)
        wip = client.submit(wf_with_paths())
        assert wip.plan is not None
        sim.run()
        assert wip.done

    def test_submit_xml_path(self, rig):
        sim, jt = rig
        client = WohaClient(jt)
        xml = workflow_to_xml(wf_with_paths())
        wip = client.submit_xml(xml)
        sim.run()
        assert wip.done


class TestMakePlanner:
    def test_planner_standalone(self):
        planner = make_planner("hlf")
        plan = planner(wf_with_paths(), 12)
        assert plan.resource_cap <= 12

    def test_unknown_name_rejected(self):
        with pytest.raises(ValueError):
            make_planner("nope")
