"""Unit tests for the resource-cap binary search (§IV-A improvement)."""

import pytest

from repro.core.capsearch import capped_plan, find_min_cap
from repro.core.plangen import simulate_makespan
from repro.workflow.builder import WorkflowBuilder


def wide_job(maps=12, map_s=10.0):
    return WorkflowBuilder("w").job("a", maps=maps, reduces=0, map_s=map_s).build()


class TestFindMinCap:
    def test_loose_deadline_gives_small_cap(self):
        # 12 maps @10s: cap 1 -> 120s; deadline 120 is met by a single slot.
        w = wide_job()
        result = find_min_cap(w, max_slots=50, relative_deadline=120.0)
        assert result.cap == 1
        assert result.feasible

    def test_tight_deadline_needs_more_slots(self):
        w = wide_job()
        # deadline 30s: need ceil(12/3)=... cap 4 -> 30s exactly.
        result = find_min_cap(w, max_slots=50, relative_deadline=30.0)
        assert result.cap == 4
        assert result.makespan == 30.0

    def test_exact_deadline_boundary(self):
        w = wide_job()
        # 20s requires 6 slots (2 waves); 5 slots -> 30s.
        assert find_min_cap(w, 50, relative_deadline=20.0).cap == 6

    def test_infeasible_returns_max_slots(self):
        w = wide_job()
        result = find_min_cap(w, max_slots=50, relative_deadline=5.0)
        assert result.cap == 50
        assert not result.feasible
        assert result.makespan == 10.0

    def test_minimality(self):
        """The returned cap meets the deadline and cap-1 does not."""
        w = (
            WorkflowBuilder("w")
            .job("a", maps=7, reduces=3, map_s=13, reduce_s=29)
            .job("b", maps=5, reduces=2, map_s=11, reduce_s=17, after=["a"])
            .build()
        )
        deadline = 150.0
        result = find_min_cap(w, max_slots=32, relative_deadline=deadline)
        assert result.feasible
        assert simulate_makespan(w, result.cap) <= deadline
        if result.cap > 1:
            assert simulate_makespan(w, result.cap - 1) > deadline

    def test_workflow_deadline_used_by_default(self):
        w = (
            WorkflowBuilder("w")
            .job("a", maps=12, reduces=0, map_s=10)
            .deadline(relative=60.0)
            .build()
        )
        result = find_min_cap(w, max_slots=50)
        assert result.cap == 2  # 12 maps / 2 slots = 60s

    def test_no_deadline_plans_at_full_size(self):
        w = wide_job()
        result = find_min_cap(w, max_slots=24)
        assert result.cap == 24
        assert result.feasible

    def test_probe_count_logarithmic(self):
        w = wide_job(maps=100)
        result = find_min_cap(w, max_slots=1024, relative_deadline=200.0)
        # 1 feasibility probe + ~log2(1024) bisection probes
        assert result.probes <= 12

    def test_bad_max_slots_rejected(self):
        with pytest.raises(ValueError):
            find_min_cap(wide_job(), max_slots=0)


class TestCappedPlan:
    def test_plan_generated_at_found_cap(self):
        w = (
            WorkflowBuilder("w")
            .job("a", maps=12, reduces=0, map_s=10)
            .deadline(relative=40.0)
            .build()
        )
        plan = capped_plan(w, max_slots=50)
        assert plan.resource_cap == 3
        assert plan.makespan == 40.0
        assert plan.feasible

    def test_infeasible_plan_flagged(self):
        w = (
            WorkflowBuilder("w")
            .job("a", maps=12, reduces=0, map_s=10)
            .deadline(relative=5.0)
            .build()
        )
        plan = capped_plan(w, max_slots=8)
        assert plan.resource_cap == 8
        assert not plan.feasible


class TestPaperFig2Property:
    """The qualitative claim of the paper's Fig 2: uncapped plans
    procrastinate; capped plans demand early progress."""

    def test_capped_plan_demands_earlier_progress(self):
        w = (
            WorkflowBuilder("w")
            .job("j1", maps=3, reduces=3, map_s=1, reduce_s=1)
            .job("j2", maps=3, reduces=3, map_s=1, reduce_s=1, after=["j1"])
            .deadline(relative=9.0)
            .build()
        )
        uncapped = capped_plan(w, max_slots=6, relative_deadline=None)  # uses D, still searches
        from repro.core.plangen import generate_requirements

        full = generate_requirements(w, cap=6)
        tight = generate_requirements(w, cap=2)
        # With the full cluster the plan finishes in 4s, so nothing is
        # required until ttd=4 (i.e. 5s of procrastination before D=9).
        assert full.makespan < tight.makespan <= 9.0
        # At half the remaining time (ttd such that absolute time = 4.5),
        # the capped plan requires strictly more scheduled tasks.
        D = 9.0
        t_mid = 4.0
        assert tight.requirement_at(D - t_mid) >= full.requirement_at(D - t_mid)
        # And the capped plan requires progress from the very start.
        assert tight.requirement_at(tight.makespan) > 0
