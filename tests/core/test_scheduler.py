"""Tests for the WOHA Workflow Scheduler (Algorithm 2)."""

import pytest

from repro.cluster.config import ClusterConfig
from repro.cluster.simulation import ClusterSimulation
from repro.cluster.tasks import TaskKind
from repro.core.client import make_planner
from repro.core.scheduler import NaiveWohaScheduler, WohaScheduler
from repro.workflow.builder import WorkflowBuilder


def run_woha(workflows, scheduler, config=None, planner=None):
    config = config or ClusterConfig(
        num_nodes=2, map_slots_per_node=2, reduce_slots_per_node=1, heartbeat_interval=float("inf")
    )
    sim = ClusterSimulation(config, scheduler, submission="woha", planner=planner or make_planner("lpf"))
    sim.add_workflows(workflows)
    return sim.run()


def wide(name, maps, submit=0.0, deadline=None, map_s=10.0):
    b = WorkflowBuilder(name).job("a", maps=maps, reduces=0, map_s=map_s).submit_at(submit)
    if deadline is not None:
        b.deadline(relative=deadline)
    return b.build()


class TestBasicOperation:
    def test_single_workflow_completes(self, small_workflow):
        result = run_woha([small_workflow], WohaScheduler())
        assert result.stats["wf"].met_deadline

    def test_invalid_backend_rejected(self):
        with pytest.raises(ValueError, match="unknown queue backend"):
            WohaScheduler(queue_backend="btree")

    def test_all_backends_identical_schedules(self, small_workflow):
        results = {}
        for backend in ("dsl", "bst", "list"):
            wfs = [
                small_workflow.renamed("w1"),
                small_workflow.renamed("w2").with_timing(5.0, 250.0),
            ]
            result = run_woha(wfs, WohaScheduler(queue_backend=backend))
            results[backend] = {k: v.completion_time for k, v in result.stats.items()}
        assert results["dsl"] == results["bst"] == results["list"]

    def test_naive_scheduler_matches_dsl(self, small_workflow):
        wfs = [
            small_workflow.renamed("w1"),
            small_workflow.renamed("w2").with_timing(5.0, 250.0),
        ]
        dsl = run_woha([w.renamed(w.name) for w in wfs], WohaScheduler())
        naive = run_woha([w.renamed(w.name) for w in wfs], NaiveWohaScheduler())
        assert {k: v.completion_time for k, v in dsl.stats.items()} == {
            k: v.completion_time for k, v in naive.stats.items()
        }

    def test_queue_empties_after_completion(self, small_workflow):
        scheduler = WohaScheduler()
        run_woha([small_workflow], scheduler)
        assert scheduler.queue_length() == 0
        scheduler.check_invariants()


class TestLagPrioritization:
    def test_behind_plan_workflow_preempts_ahead_one(self):
        """A late-submitted tight workflow overtakes an early loose one."""
        loose = wide("loose", maps=16, submit=0.0, deadline=1000.0)
        tight = wide("tight", maps=8, submit=20.0, deadline=60.0)
        result = run_woha([loose, tight], WohaScheduler())
        assert result.stats["tight"].met_deadline
        assert result.stats["loose"].met_deadline

    def test_best_effort_workflow_yields_to_planned(self):
        best_effort = wide("be", maps=16, submit=0.0, deadline=None)
        urgent = wide("urgent", maps=8, submit=0.0, deadline=40.0)
        result = run_woha([best_effort, urgent], WohaScheduler())
        assert result.stats["urgent"].met_deadline
        # Work conservation: best-effort still finishes.
        assert result.stats["be"].completion_time < float("inf")

    @pytest.mark.parametrize("scheduler_factory", [WohaScheduler, NaiveWohaScheduler])
    def test_deserialized_infeasible_plan_sorts_behind_feasible(self, scheduler_factory):
        """Regression for the from_bytes feasibility drop: a plan marked
        infeasible must stay demoted after a wire round-trip.  Before the
        fix, deserialisation silently reset ``feasible=True`` and the doomed
        workflow (tighter deadline, bigger lag) would outrank the planned
        one."""
        from dataclasses import replace

        from repro.core.progress import ProgressPlan

        base = make_planner("lpf")

        def planner(workflow, slots):
            plan = base(workflow, slots)
            if workflow.name == "doomed":
                plan = replace(plan, feasible=False)
            # Ship every plan over the wire, as the real client would.
            return ProgressPlan.from_bytes(plan.to_bytes())

        doomed = wide("doomed", maps=8, submit=0.0, deadline=60.0)
        planned = wide("planned", maps=8, submit=0.0, deadline=200.0)
        result = run_woha([doomed, planned], scheduler_factory(), planner=planner)
        assert result.stats["planned"].met_deadline
        assert (
            result.stats["planned"].completion_time
            < result.stats["doomed"].completion_time
        )

    def test_work_conserving_when_top_workflow_stalls(self):
        """Head workflow with no runnable tasks must not idle the cluster."""
        # chain workflow: between phases it has nothing runnable.
        chain = (
            WorkflowBuilder("chain")
            .job("a", maps=1, reduces=1, map_s=10, reduce_s=30)
            .job("b", maps=1, reduces=1, map_s=10, reduce_s=30, after=["a"])
            .deadline(relative=90.0)
            .build()
        )
        filler = wide("filler", maps=40, deadline=None, map_s=5.0)
        result = run_woha([chain, filler], WohaScheduler())
        assert result.stats["chain"].met_deadline
        # The filler's 40 maps on 4 slots need 50s; chain only ever takes
        # one map slot at a time, so the filler must finish close to its
        # 50s bound — if the scheduler idled slots while the chain stalled
        # between phases, the filler would stretch far beyond this.
        assert result.stats["filler"].completion_time <= 65.0


class TestProgressAccounting:
    def test_rho_equals_launched_wjob_tasks(self, small_workflow):
        scheduler = WohaScheduler()
        config = ClusterConfig(
            num_nodes=2, map_slots_per_node=2, reduce_slots_per_node=1, heartbeat_interval=float("inf")
        )
        sim = ClusterSimulation(config, scheduler, submission="woha", planner=make_planner())
        sim.add_workflow(small_workflow)
        sim.run()
        wip = sim.jobtracker.workflows["wf"]
        assert wip.scheduled_tasks == small_workflow.total_tasks

    def test_assign_calls_counted(self, small_workflow):
        scheduler = WohaScheduler()
        run_woha([small_workflow], scheduler)
        assert scheduler.assign_calls > 0


class TestHeartbeatMode:
    def test_woha_works_with_periodic_heartbeats(self, small_workflow, heartbeat_cluster):
        result = run_woha([small_workflow], WohaScheduler(), config=heartbeat_cluster)
        assert result.stats["wf"].completion_time < float("inf")
