"""Unit tests for HLF / LPF / MPF intra-workflow prioritization (§V-C)."""

import pytest

from repro.core.priorities import PRIORITIZERS, hlf_order, lpf_order, mpf_order
from repro.workflow.builder import WorkflowBuilder


@pytest.fixture
def wf():
    r"""
        a ── b ── c          (chain, light)
        a ── heavy           (one fat job)
        a ── h1 h2 h3        (a has many dependents)
    """
    return (
        WorkflowBuilder("w")
        .job("a", maps=1, reduces=1, map_s=10, reduce_s=10)
        .job("b", maps=1, reduces=1, map_s=10, reduce_s=10, after=["a"])
        .job("c", maps=1, reduces=1, map_s=10, reduce_s=10, after=["b"])
        .job("heavy", maps=1, reduces=1, map_s=200, reduce_s=200, after=["a"])
        .job("h1", maps=1, reduces=1, map_s=1, reduce_s=1, after=["a"])
        .job("h2", maps=1, reduces=1, map_s=1, reduce_s=1, after=["a"])
        .job("h3", maps=1, reduces=1, map_s=1, reduce_s=1, after=["a"])
        .build()
    )


class TestHlf:
    def test_levels_rank_chain_heads_first(self, wf):
        order = hlf_order(wf)
        # a heads the longest chain (level 2); b level 1; everything else level 0.
        assert order[0] == "a"
        assert order[1] == "b"
        assert set(order[2:]) == {"c", "heavy", "h1", "h2", "h3"}

    def test_ties_break_by_definition_order(self, wf):
        order = hlf_order(wf)
        level0 = [n for n in order if n in {"c", "heavy", "h1", "h2", "h3"}]
        assert level0 == ["c", "heavy", "h1", "h2", "h3"]

    def test_all_jobs_present_once(self, wf):
        order = hlf_order(wf)
        assert sorted(order) == sorted(wf.job_names())


class TestLpf:
    def test_heavy_path_outranks_long_path(self, wf):
        order = lpf_order(wf)
        # a's weight includes heavy (400+), so a first; heavy next (400).
        assert order[0] == "a"
        assert order[1] == "heavy"
        # chain b (20+20+... weight 40+20=... ) before tiny h-jobs
        assert order.index("b") < order.index("h1")

    def test_lpf_differs_from_hlf_when_weights_invert(self, wf):
        assert lpf_order(wf) != hlf_order(wf)


class TestMpf:
    def test_most_dependents_first(self, wf):
        order = mpf_order(wf)
        assert order[0] == "a"  # 5 dependents
        assert order[1] == "b"  # 1 dependent; ties beyond

    def test_sinks_last(self, wf):
        order = mpf_order(wf)
        sinks = {"c", "heavy", "h1", "h2", "h3"}
        assert set(order[-5:]) == sinks


class TestRegistry:
    def test_registry_contents(self):
        assert set(PRIORITIZERS) == {"hlf", "lpf", "mpf"}

    def test_registry_functions_work(self, wf):
        for fn in PRIORITIZERS.values():
            order = fn(wf)
            assert sorted(order) == sorted(wf.job_names())

    def test_deterministic(self, wf):
        for fn in PRIORITIZERS.values():
            assert fn(wf) == fn(wf)
