"""Regression tests for the PlanCache per-key in-flight guard.

The serve tier plans concurrently on one event loop; the sync
``get_or_build`` is a read-then-write sequence, so two asyncio tasks
missing on the same key around an *awaiting* build would both run the
planner and double-count the miss.  ``get_or_build_async`` must build
once: the first misser is the builder, later missers await and are served
the committed entry (outcome ``"coalesced"``)."""

import asyncio

import pytest

from repro.core.plancache import PlanCache
from repro.workflow.builder import WorkflowBuilder

ORDER = ("a",)
MODE = ("pooled", True)


def wf(maps=6):
    return (
        WorkflowBuilder("wf")
        .job("a", maps=maps, reduces=2, map_s=10.0, reduce_s=15.0)
        .deadline(relative=300.0)
        .build()
    )


class SlowBuilder:
    """An awaitable build that yields mid-flight and counts invocations."""

    def __init__(self, fail_first=0):
        self.calls = 0
        self.fail_first = fail_first

    async def __call__(self):
        self.calls += 1
        call = self.calls
        await asyncio.sleep(0)  # yield so concurrent missers can pile up
        if call <= self.fail_first:
            raise RuntimeError(f"build {call} failed")
        return None, f"entry-from-call-{call}"


def gather(cache, build, count, key_wf=None):
    workflow = key_wf or wf()

    async def go():
        return await asyncio.gather(
            *(
                cache.get_or_build_async(workflow, ORDER, 24, MODE, build)
                for _ in range(count)
            ),
            return_exceptions=True,
        )

    return asyncio.run(go())


class TestCoalescing:
    def test_concurrent_misses_build_exactly_once(self):
        cache = PlanCache()
        build = SlowBuilder()
        results = gather(cache, build, 4)
        assert build.calls == 1
        outcomes = sorted(outcome for _entry, outcome in results)
        assert outcomes == ["coalesced", "coalesced", "coalesced", "miss"]
        entries = {entry[1] for entry, _ in results}
        assert entries == {"entry-from-call-1"}
        assert (cache.misses, cache.hits, cache.coalesced) == (1, 0, 3)
        assert cache.counter_table()["plan_cache"]["coalesced"] == 3

    def test_sequential_calls_hit_normally(self):
        cache = PlanCache()
        build = SlowBuilder()

        async def go():
            first = await cache.get_or_build_async(wf(), ORDER, 24, MODE, build)
            second = await cache.get_or_build_async(wf(), ORDER, 24, MODE, build)
            return first, second

        (_, first), (_, second) = asyncio.run(go())
        assert (first, second) == ("miss", "hit")
        assert build.calls == 1

    def test_sync_build_still_works(self):
        cache = PlanCache()
        results = gather(cache, lambda: (None, "sync-entry"), 2)
        assert sorted(o for _e, o in results) == ["hit", "miss"]


class TestBuilderFailure:
    def test_failure_propagates_to_builder_only_and_one_waiter_rebuilds(self):
        cache = PlanCache()
        build = SlowBuilder(fail_first=1)
        results = gather(cache, build, 3)
        errors = [r for r in results if isinstance(r, Exception)]
        served = [r for r in results if not isinstance(r, Exception)]
        # Exactly the first builder sees the exception; one waiter took
        # over as the next builder, the rest coalesced onto its entry.
        assert len(errors) == 1 and "build 1 failed" in str(errors[0])
        assert build.calls == 2
        assert sorted(outcome for _e, outcome in served) == ["coalesced", "miss"]
        assert {entry[1] for entry, _ in served} == {"entry-from-call-2"}
        assert cache.misses == 1  # the failed attempt left no phantom miss

    def test_all_failures_leave_cache_untouched(self):
        cache = PlanCache()
        build = SlowBuilder(fail_first=10)
        results = gather(cache, build, 3)
        assert all(isinstance(r, RuntimeError) for r in results)
        assert build.calls == 3  # every waiter took one turn as builder
        assert (len(cache), cache.misses, cache.hits, cache.coalesced) == (0, 0, 0, 0)
        assert not cache._inflight  # no guard leaked

    def test_clear_during_flight_is_safe(self):
        cache = PlanCache()
        build = SlowBuilder()

        async def go():
            task = asyncio.ensure_future(
                cache.get_or_build_async(wf(), ORDER, 24, MODE, build)
            )
            await asyncio.sleep(0)  # builder is now awaiting inside build()
            cache.clear()
            return await task

        entry, outcome = asyncio.run(go())
        assert outcome == "miss"
        assert len(cache) == 1  # the in-flight build committed post-clear
