"""Unit + property tests for Algorithm 1 (plan generation)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.plangen import (
    generate_requirements,
    generate_requirements_split,
    simulate_makespan,
)
from repro.workflow.builder import WorkflowBuilder
from repro.workflow.model import WJob, Workflow


def single_job_workflow(maps=4, reduces=2, map_s=10.0, reduce_s=20.0):
    return WorkflowBuilder("w").job("a", maps=maps, reduces=reduces, map_s=map_s, reduce_s=reduce_s).build()


class TestSingleJob:
    def test_enough_slots_two_batches(self):
        w = single_job_workflow(maps=4, reduces=2)
        plan = generate_requirements(w, cap=8)
        # maps at t=0 (batch 4), reduces at t=10 (batch 2); makespan 30.
        assert plan.makespan == 30.0
        assert [(e.ttd, e.cum_req) for e in plan.entries] == [(30.0, 4), (20.0, 6)]

    def test_map_waves_when_slots_scarce(self):
        w = single_job_workflow(maps=4, reduces=2)
        plan = generate_requirements(w, cap=2)
        # waves: 2 maps @0, 2 maps @10, 2 reduces @20 -> makespan 40
        assert plan.makespan == 40.0
        assert [(e.ttd, e.cum_req) for e in plan.entries] == [(40.0, 2), (30.0, 4), (20.0, 6)]

    def test_single_slot(self):
        w = single_job_workflow(maps=2, reduces=1)
        plan = generate_requirements(w, cap=1)
        assert plan.makespan == 40.0  # 10+10+20
        assert plan.entries[-1].cum_req == 3

    def test_map_only_job(self):
        w = WorkflowBuilder("w").job("m", maps=3, reduces=0, map_s=5).build()
        plan = generate_requirements(w, cap=3)
        assert plan.makespan == 5.0
        assert plan.entries[-1].cum_req == 3

    def test_reduce_only_job(self):
        w = Workflow("w", [WJob(name="r", num_maps=0, num_reduces=2, map_duration=0.0, reduce_duration=7.0)])
        plan = generate_requirements(w, cap=2)
        assert plan.makespan == 7.0
        assert plan.entries[-1].cum_req == 2


class TestDependencies:
    def test_chain_serializes(self, chain3):
        plan = generate_requirements(chain3, cap=10)
        # per job: maps 10s then reduce 10s = 20s; chain of 3 = 60s
        assert plan.makespan == 60.0

    def test_parallel_branches_overlap(self):
        w = (
            WorkflowBuilder("w")
            .job("a", maps=2, reduces=0, map_s=10)
            .job("b", maps=2, reduces=0, map_s=10)
            .build()
        )
        assert simulate_makespan(w, cap=4) == 10.0
        assert simulate_makespan(w, cap=2) == 20.0

    def test_diamond_dependencies(self, small_workflow):
        plan = generate_requirements(small_workflow, cap=100)
        # a: 10+20; then b (5+10) and c (8+12) in parallel -> max 20; then d 4+6=10
        assert plan.makespan == 30.0 + 20.0 + 10.0

    def test_dependent_waits_for_reduce_not_map(self):
        w = (
            WorkflowBuilder("w")
            .job("a", maps=1, reduces=1, map_s=10, reduce_s=100)
            .job("b", maps=1, reduces=0, map_s=1, after=["a"])
            .build()
        )
        assert simulate_makespan(w, cap=10) == 111.0


class TestPlanShape:
    def test_priorities_control_order_under_contention(self):
        # Two independent jobs, 1 slot: the prioritized one goes first.
        w = (
            WorkflowBuilder("w")
            .job("first", maps=1, reduces=0, map_s=10)
            .job("second", maps=1, reduces=0, map_s=20)
            .build()
        )
        plan_a = generate_requirements(w, cap=1, job_order=["first", "second"])
        plan_b = generate_requirements(w, cap=1, job_order=["second", "first"])
        assert plan_a.makespan == plan_b.makespan == 30.0
        # first-priority job scheduled at t=0 in both, but the *second* batch
        # lands at a different time.
        assert [e.ttd for e in plan_a.entries] != [e.ttd for e in plan_b.entries]

    def test_job_order_must_cover_all_jobs(self, small_workflow):
        with pytest.raises(ValueError, match="missing jobs"):
            generate_requirements(small_workflow, cap=4, job_order=["a", "b"])

    def test_cap_below_one_rejected(self, small_workflow):
        with pytest.raises(ValueError):
            generate_requirements(small_workflow, cap=0)

    def test_feasible_flag_recorded(self, small_workflow):
        plan = generate_requirements(small_workflow, cap=4, feasible=False)
        assert plan.feasible is False


class TestSplitPool:
    def test_split_pool_respects_reduce_cap(self):
        w = single_job_workflow(maps=2, reduces=4, map_s=10, reduce_s=10)
        pooled = generate_requirements(w, cap=6)
        split = generate_requirements_split(w, map_cap=2, reduce_cap=1)
        # pooled: maps@0, 4 reduces together @10 -> 20
        assert pooled.makespan == 20.0
        # split: maps@0 (2 slots), reduces serialized on 1 slot -> 10 + 40
        assert split.makespan == 50.0

    def test_split_requires_positive_reduce_cap(self):
        w = single_job_workflow()
        with pytest.raises(ValueError):
            generate_requirements_split(w, map_cap=2, reduce_cap=0)


@st.composite
def random_workflows(draw):
    n = draw(st.integers(1, 8))
    builder = WorkflowBuilder("rw")
    names = []
    for k in range(n):
        parents = []
        if names:
            for cand in names:
                if draw(st.booleans()) and len(parents) < 2:
                    parents.append(cand)
        maps = draw(st.integers(0, 6))
        reduces = draw(st.integers(0, 4)) if maps else draw(st.integers(1, 4))
        builder.job(
            f"j{k}",
            maps=maps,
            reduces=reduces,
            map_s=draw(st.floats(1.0, 50.0)),
            reduce_s=draw(st.floats(1.0, 50.0)),
            after=parents,
        )
        names.append(f"j{k}")
    return builder.build()


class TestProperties:
    @given(random_workflows(), st.integers(1, 12))
    @settings(max_examples=100, deadline=None)
    def test_plan_invariants(self, workflow, cap):
        try:
            plan = generate_requirements(workflow, cap)
        except Exception as exc:  # jobs with 0 maps AND 0 reduces are rejected upstream
            raise AssertionError(f"plan generation failed: {exc}")
        # Total requirement covers every task exactly once.
        assert plan.entries[-1].cum_req == workflow.total_tasks
        # ttd strictly decreasing, cum_req strictly increasing.
        for a, b in zip(plan.entries, plan.entries[1:]):
            assert a.ttd > b.ttd and a.cum_req < b.cum_req
        # First entry fires at simulation start: ttd == makespan.
        assert plan.entries[0].ttd == pytest.approx(plan.makespan)
        # Makespan never below the critical-path bound and never above
        # the fully-serial bound.
        serial = sum(j.num_maps * j.map_duration + j.num_reduces * j.reduce_duration for j in workflow.jobs)
        assert plan.makespan <= serial + 1e-6

    @given(random_workflows())
    @settings(max_examples=60, deadline=None)
    def test_more_slots_never_hurt_much(self, workflow):
        """Makespan at the full slot count <= makespan at 1 slot."""
        assert simulate_makespan(workflow, 16) <= simulate_makespan(workflow, 1) + 1e-9

    @given(random_workflows(), st.integers(1, 10))
    @settings(max_examples=60, deadline=None)
    def test_batches_never_exceed_cap(self, workflow, cap):
        plan = generate_requirements(workflow, cap)
        increments = []
        prev = 0
        for e in plan.entries:
            increments.append(e.cum_req - prev)
            prev = e.cum_req
        # A single instant can schedule at most `cap` tasks.
        assert all(0 < inc <= cap for inc in increments)
