"""Public API surface tests: imports, __all__ hygiene, docstring coverage."""

import importlib
import inspect
import pkgutil

import pytest

import repro

MODULES = [
    "repro",
    "repro.events",
    "repro.hdfs",
    "repro.oozie",
    "repro.noise",
    "repro.estimate",
    "repro.registry",
    "repro.trace",
    "repro.cli",
    "repro.workflow",
    "repro.workflow.model",
    "repro.workflow.dag",
    "repro.workflow.builder",
    "repro.workflow.xmlconfig",
    "repro.cluster",
    "repro.cluster.config",
    "repro.cluster.tasks",
    "repro.cluster.job",
    "repro.cluster.tasktracker",
    "repro.cluster.jobtracker",
    "repro.cluster.simulation",
    "repro.cluster.failures",
    "repro.cluster.speculation",
    "repro.structures",
    "repro.structures.skiplist",
    "repro.structures.dsl",
    "repro.structures.avl",
    "repro.structures.naive",
    "repro.core",
    "repro.core.progress",
    "repro.core.plangen",
    "repro.core.capsearch",
    "repro.core.priorities",
    "repro.core.scheduler",
    "repro.core.client",
    "repro.core.replanning",
    "repro.schedulers",
    "repro.schedulers.fifo",
    "repro.schedulers.fair",
    "repro.schedulers.edf",
    "repro.workloads",
    "repro.workloads.distributions",
    "repro.workloads.topologies",
    "repro.workloads.yahoo",
    "repro.workloads.deadlines",
    "repro.workloads.recurrence",
    "repro.workloads.io",
    "repro.metrics",
    "repro.metrics.collector",
    "repro.metrics.report",
    "repro.metrics.postmortem",
    "repro.metrics.svgplot",
]


class TestImports:
    @pytest.mark.parametrize("module_name", MODULES)
    def test_module_imports(self, module_name):
        importlib.import_module(module_name)

    @pytest.mark.parametrize("module_name", MODULES)
    def test_module_has_docstring(self, module_name):
        module = importlib.import_module(module_name)
        assert module.__doc__ and module.__doc__.strip(), f"{module_name} lacks a docstring"

    def test_version_string(self):
        assert repro.__version__.count(".") == 2


class TestAllExports:
    @pytest.mark.parametrize(
        "module_name",
        [m for m in MODULES if not m.endswith(("cli",))],
    )
    def test_all_names_resolve(self, module_name):
        module = importlib.import_module(module_name)
        for name in getattr(module, "__all__", []):
            assert hasattr(module, name), f"{module_name}.__all__ names missing {name!r}"

    def test_top_level_all_is_importable_star_surface(self):
        for name in repro.__all__:
            assert getattr(repro, name) is not None


class TestDocstringCoverage:
    @pytest.mark.parametrize(
        "module_name",
        ["repro.core.plangen", "repro.core.scheduler", "repro.core.progress",
         "repro.structures.skiplist", "repro.structures.dsl", "repro.cluster.jobtracker",
         "repro.trace"],
    )
    def test_public_callables_documented(self, module_name):
        """Every public class and function in the core modules carries a
        docstring (the paper-facing API must be self-explanatory)."""
        module = importlib.import_module(module_name)
        undocumented = []
        for name, obj in vars(module).items():
            if name.startswith("_"):
                continue
            if getattr(obj, "__module__", None) != module_name:
                continue
            if inspect.isclass(obj) or inspect.isfunction(obj):
                if not (obj.__doc__ and obj.__doc__.strip()):
                    undocumented.append(name)
                if inspect.isclass(obj):
                    for meth_name, meth in vars(obj).items():
                        if meth_name.startswith("_") or not inspect.isfunction(meth):
                            continue
                        if meth.__doc__ and meth.__doc__.strip():
                            continue
                        # Interface overrides inherit their contract docs.
                        inherited = any(
                            getattr(getattr(base, meth_name, None), "__doc__", None)
                            for base in obj.__mro__[1:]
                        )
                        if not inherited:
                            undocumented.append(f"{name}.{meth_name}")
        assert not undocumented, f"{module_name}: missing docstrings on {undocumented}"
