"""Tests for the ``python -m repro`` command-line interface."""

import json

import pytest

from repro.cli import main

WORKFLOW_XML = """
<workflow name="demo" deadline="1200">
  <job name="a" maps="20" reduces="4" map-duration="30" reduce-duration="100">
    <output>/s/a</output>
  </job>
  <job name="b" maps="10" reduces="2" map-duration="20" reduce-duration="60">
    <input>/s/a</input>
  </job>
</workflow>
"""


@pytest.fixture
def xml_file(tmp_path):
    path = tmp_path / "wf.xml"
    path.write_text(WORKFLOW_XML)
    return str(path)


class TestPlanCommand:
    def test_plan_prints_cap_and_steps(self, xml_file, capsys):
        assert main(["plan", xml_file, "--slots", "48"]) == 0
        out = capsys.readouterr().out
        assert "resource cap" in out
        assert "demo" in out
        assert "tasks required" in out

    def test_plan_no_cap_search_uses_full_slots(self, xml_file, capsys):
        assert main(["plan", xml_file, "--slots", "48", "--no-cap-search"]) == 0
        out = capsys.readouterr().out
        assert "resource cap  : 48 of 48" in out

    def test_plan_split_pool(self, xml_file, capsys):
        assert main(["plan", xml_file, "--slots", "48", "--pool", "split"]) == 0
        assert "(split)" in capsys.readouterr().out


class TestSimulateCommand:
    @pytest.mark.parametrize("scheduler", ["fifo", "fair", "edf", "woha-lpf"])
    def test_simulate_xml(self, xml_file, capsys, scheduler):
        assert main(["simulate", xml_file, "--scheduler", scheduler, "--nodes", "8"]) == 0
        out = capsys.readouterr().out
        assert "demo" in out
        assert "miss ratio" in out

    def test_simulate_without_input_errors(self, capsys):
        assert main(["simulate"]) == 2

    def test_simulate_with_heartbeats(self, xml_file, capsys):
        assert main(["simulate", xml_file, "--nodes", "8", "--heartbeat", "3"]) == 0
        assert "demo" in capsys.readouterr().out


class TestTraceCommand:
    def test_trace_then_simulate(self, tmp_path, capsys):
        trace_path = str(tmp_path / "trace.json")
        assert main([
            "trace", "--out", trace_path, "--workflows", "6", "--jobs", "18",
            "--single-job", "2", "--task-scale", "0.3",
        ]) == 0
        assert "wrote 6 workflows" in capsys.readouterr().out
        assert main(["simulate", "--trace", trace_path, "--nodes", "16", "--scheduler", "edf"]) == 0
        out = capsys.readouterr().out
        assert "yw00" in out

    def test_trace_drop_single_job(self, tmp_path, capsys):
        trace_path = str(tmp_path / "trace.json")
        assert main([
            "trace", "--out", trace_path, "--workflows", "6", "--jobs", "18",
            "--single-job", "2", "--drop-single-job",
        ]) == 0
        assert "wrote 4 workflows" in capsys.readouterr().out


class TestTraceDecisionsCommand:
    def test_jsonl_on_stdout(self, xml_file, capsys):
        import json

        assert main(["trace-decisions", xml_file, "--nodes", "8"]) == 0
        out = capsys.readouterr().out
        events = [json.loads(line) for line in out.splitlines()]
        assert any(e["event"] == "decision" for e in events)
        assert any(e["event"] == "assign" for e in events)

    def test_jsonl_to_file_with_counters_and_explain(self, xml_file, tmp_path, capsys):
        from repro.trace import read_jsonl

        out_path = str(tmp_path / "decisions.jsonl")
        assert main([
            "trace-decisions", xml_file, "--nodes", "8",
            "--out", out_path, "--counters", "--explain", "demo",
        ]) == 0
        captured = capsys.readouterr()
        assert "wrote" in captured.err
        assert "counters [" in captured.err
        assert "workflow demo:" in captured.err
        events = read_jsonl(out_path)
        assert any(e["event"] == "workflow_submitted" for e in events)

    def test_ring_capacity_limits_dump(self, xml_file, capsys):
        assert main(["trace-decisions", xml_file, "--nodes", "8", "--ring", "5"]) == 0
        out = capsys.readouterr().out
        assert len(out.splitlines()) == 5

    def test_unknown_explain_workflow_errors(self, xml_file, capsys):
        assert main([
            "trace-decisions", xml_file, "--nodes", "8", "--explain", "ghost",
        ]) == 2

    def test_no_input_errors(self, capsys):
        assert main(["trace-decisions"]) == 2


class TestContractsFlag:
    def test_simulate_with_contracts_reports_assertions(self, xml_file, capsys):
        assert main([
            "simulate", xml_file, "--scheduler", "woha-lpf", "--nodes", "8",
            "--contracts",
        ]) == 0
        out = capsys.readouterr().out
        assert "contracts:" in out
        assert "assertions evaluated" in out

    def test_simulate_without_contracts_is_silent(self, xml_file, capsys):
        assert main(["simulate", xml_file, "--nodes", "8"]) == 0
        assert "contracts:" not in capsys.readouterr().out


class TestLintCommand:
    def test_list_rules_names_the_full_catalog(self, capsys):
        assert main(["lint", "--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule_id in ("DT101", "DT102", "DT103", "DT104", "DT105", "DT106",
                        "DT107", "DT201", "DT202", "DT203", "DT204",
                        "DT301", "DT302", "DT303", "DT304", "DT305"):
            assert rule_id in out

    def test_lint_defaults_to_package_tree(self, capsys):
        assert main(["lint"]) == 0
        out = capsys.readouterr().out
        assert "0 violation(s)" in out
        assert "file(s) checked" in out

    def test_lint_interproc_package_tree_is_clean(self, capsys):
        assert main(["lint", "--interproc"]) == 0
        assert "0 violation(s)" in capsys.readouterr().out

    def test_lint_json_reports_sorted_records_and_exits_nonzero(self, tmp_path, capsys):
        (tmp_path / "m.py").write_text(
            "import time\ndef f():\n    return time.time()\n"
        )
        assert main(["lint", str(tmp_path), "--format", "json"]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["clean"] is False
        assert payload["files_checked"] == 1
        (record,) = payload["violations"]
        assert record["module"] == "m.py"
        assert record["rule"] == "DT102"
        assert record["line"] == 3
        assert sorted(record) == ["col", "line", "message", "module", "rule"]
        assert "suppressed" not in payload  # records only under --verbose

    def test_lint_json_verbose_lists_suppressed_records(self, tmp_path, capsys):
        (tmp_path / "m.py").write_text(
            "import time\ndef f():\n    return time.time()  # repro: allow[DT102]\n"
        )
        assert main(["lint", str(tmp_path), "--format", "json", "--verbose"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["clean"] is True
        assert payload["suppressed_count"] == 1
        assert [r["rule"] for r in payload["suppressed"]] == ["DT102"]

    def test_lint_json_output_is_byte_stable(self, capsys):
        assert main(["lint", "--format", "json", "--interproc"]) == 0
        first = capsys.readouterr().out
        assert main(["lint", "--format", "json", "--interproc"]) == 0
        assert capsys.readouterr().out == first
        assert json.loads(first)["clean"] is True

    def test_lint_diff_unknown_ref_falls_back_to_full_report(self, capsys):
        assert main(["lint", "--diff", "definitely-not-a-ref"]) == 0
        captured = capsys.readouterr()
        assert "reporting the full tree" in captured.err
        assert "file(s) checked" in captured.out


class TestProfileCommand:
    def test_smoke_renders_top_table_and_exits_zero(self, capsys):
        assert main(["profile", "--scenario", "periodic", "--scale", "0.1",
                     "--nodes", "2", "--top", "5"]) == 0
        out = capsys.readouterr().out
        assert "profile: scenario=periodic" in out
        assert "path=fast" in out
        assert "µs/event" in out
        assert "top 5 by cumulative time" in out
        # The hot-spot table names actual simulator internals.
        assert "events=" in out and "wall=" in out

    def test_reference_path_and_tottime_sort(self, capsys):
        assert main(["profile", "--scenario", "yahoo", "--scale", "0.05",
                     "--reference", "--sort", "tottime", "--top", "3"]) == 0
        out = capsys.readouterr().out
        assert "path=reference" in out
        assert "top 3 by internal time" in out

    def test_bad_top_errors(self, capsys):
        assert main(["profile", "--top", "0"]) == 2
        assert "--top must be positive" in capsys.readouterr().err


class TestCallgraphCommand:
    def test_dot_on_stdout_defaults_to_package_tree(self, capsys):
        assert main(["callgraph"]) == 0
        out = capsys.readouterr().out
        assert out.startswith("digraph callgraph {")
        assert "select_task" in out

    def test_json_export_to_file(self, tmp_path, capsys):
        out_path = tmp_path / "graph.json"
        assert main(["callgraph", "--format", "json", "--out", str(out_path)]) == 0
        dump = json.loads(out_path.read_text())
        assert set(dump) >= {"modules", "functions", "edges", "dynamic_calls"}
        assert any(f["qualname"].endswith("WohaScheduler.select_task")
                   for f in dump["functions"])
        assert "wrote" in capsys.readouterr().err

    def test_unreadable_path_exits_2(self, tmp_path, capsys):
        assert main(["callgraph", str(tmp_path / "nope.py")]) == 2
        assert "callgraph:" in capsys.readouterr().err


class TestSweepCommand:
    def test_sweep_prints_cells_and_merged_summary(self, capsys):
        assert main([
            "sweep", "--scenario", "periodic", "--scheduler", "fifo",
            "--nodes", "4", "--scale", "0.1",
        ]) == 0
        out = capsys.readouterr().out
        assert "1-cell sweep" in out
        assert "periodic|fifo|seed=0" in out
        assert "merged:" in out

    def test_sweep_grid_spans_scenarios_schedulers_seeds(self, capsys):
        assert main([
            "sweep", "--scenario", "periodic", "--scenario", "yahoo",
            "--scheduler", "fifo", "--scheduler", "woha-lpf",
            "--seeds", "2", "--nodes", "4", "--scale", "0.1",
        ]) == 0
        out = capsys.readouterr().out
        assert "8-cell sweep" in out
        assert "yahoo|woha-lpf|seed=1" in out

    def test_sweep_json_payload_matches_inline_run(self, tmp_path, capsys):
        args = ["sweep", "--scenario", "periodic", "--scheduler", "fifo",
                "--nodes", "4", "--scale", "0.1"]
        inline = tmp_path / "inline.json"
        sharded = tmp_path / "sharded.json"
        assert main(args + ["--json", str(inline)]) == 0
        assert main(args + ["--workers", "2", "--json", str(sharded)]) == 0
        capsys.readouterr()
        assert inline.read_text() == sharded.read_text()
        payload = json.loads(inline.read_text())
        assert set(payload) == {"cells", "merged"}

    def test_sweep_batched_payload_identical(self, tmp_path, capsys):
        args = ["sweep", "--scenario", "periodic", "--scheduler", "fair",
                "--nodes", "4", "--scale", "0.1"]
        ref = tmp_path / "ref.json"
        bat = tmp_path / "bat.json"
        assert main(args + ["--json", str(ref)]) == 0
        assert main(args + ["--batched", "--json", str(bat)]) == 0
        capsys.readouterr()
        assert ref.read_text() == bat.read_text()

    def test_sweep_rejects_bad_arguments(self, capsys):
        assert main(["sweep", "--seeds", "0"]) == 2
        assert main(["sweep", "--workers", "-1"]) == 2
        capsys.readouterr()
