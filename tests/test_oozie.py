"""Unit tests for the Oozie-lite coordinator."""

import pytest

from repro.cluster.config import ClusterConfig
from repro.cluster.jobtracker import JobTracker
from repro.events import Simulator
from repro.oozie import OozieCoordinator
from repro.schedulers.fifo import FifoScheduler
from repro.workflow.builder import WorkflowBuilder


def rig(poll_interval=0.0):
    sim = Simulator()
    config = ClusterConfig(
        num_nodes=2,
        map_slots_per_node=2,
        reduce_slots_per_node=1,
        heartbeat_interval=float("inf"),
        oozie_poll_interval=poll_interval,
    )
    jt = JobTracker(sim, config, FifoScheduler())
    oozie = OozieCoordinator(sim, jt)
    return sim, jt, oozie


def chain(name="wf"):
    return (
        WorkflowBuilder(name)
        .job("a", maps=1, reduces=0, map_s=10)
        .job("b", maps=1, reduces=0, map_s=10, after=["a"])
        .job("c", maps=1, reduces=0, map_s=10, after=["b"])
        .build()
    )


class TestImmediateMode:
    def test_roots_submitted_at_workflow_submission(self):
        sim, jt, oozie = rig()
        wip = oozie.submit_workflow(chain())
        assert set(wip.jobs) == {"a"}

    def test_dependents_submitted_on_completion(self):
        sim, jt, oozie = rig()
        wip = oozie.submit_workflow(chain())
        sim.run(until=10.0)
        assert set(wip.jobs) == {"a", "b"}
        sim.run()
        assert wip.done
        assert wip.completion_time == 30.0

    def test_no_submitter_job_in_oozie_mode(self):
        sim, jt, oozie = rig()
        wip = oozie.submit_workflow(chain())
        assert wip.submitter is None

    def test_parallel_workflows_independent(self):
        sim, jt, oozie = rig()
        w1 = oozie.submit_workflow(chain("w1"))
        w2 = oozie.submit_workflow(chain("w2"))
        sim.run()
        assert w1.done and w2.done


class TestPollingMode:
    def test_poll_delay_postpones_submission(self):
        sim, jt, oozie = rig(poll_interval=5.0)
        wip = oozie.submit_workflow(chain())
        sim.run(until=10.0)
        assert set(wip.jobs) == {"a"}  # b not yet submitted at completion
        sim.run(until=15.0)
        assert set(wip.jobs) == {"a", "b"}

    def test_chain_completion_includes_poll_latency(self):
        sim, jt, oozie = rig(poll_interval=5.0)
        wip = oozie.submit_workflow(chain())
        sim.run()
        assert wip.done
        # Two dependency hand-offs, each costing up to one poll interval.
        assert wip.completion_time == 40.0

    def test_foreign_job_completions_ignored(self):
        sim, jt, oozie = rig()
        # Workflow submitted directly (WOHA-style), not via Oozie.
        jt.submit_workflow(chain("foreign"), use_submitter=True)
        sim.run()
        assert jt.workflows["foreign"].done  # Oozie did not interfere
