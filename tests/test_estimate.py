"""Unit tests for task-duration estimators."""

import pytest

from repro.estimate import HistoryEstimator, SizeModelEstimator, TaskObservation


def obs(job="j", phase="map", duration=10.0, size=0):
    return TaskObservation(job_name=job, phase=phase, duration=duration, input_bytes=size)


class TestHistoryEstimator:
    def test_default_for_unknown(self):
        est = HistoryEstimator(default=42.0)
        assert est.estimate("ghost", "map") == 42.0
        assert not est.known("ghost", "map")

    def test_plain_mean_with_decay_one(self):
        est = HistoryEstimator(decay=1.0)
        est.observe_all([obs(duration=10.0), obs(duration=20.0), obs(duration=30.0)])
        assert est.estimate("j", "map") == pytest.approx(20.0)

    def test_decay_weights_recent_runs(self):
        est = HistoryEstimator(decay=0.5)
        est.observe(obs(duration=100.0))
        est.observe(obs(duration=10.0))
        # Recent 10s should dominate: weighted mean = (0.5*100 + 10)/(0.5+1)
        assert est.estimate("j", "map") == pytest.approx(40.0)
        assert est.estimate("j", "map") < 55.0

    def test_phases_independent(self):
        est = HistoryEstimator()
        est.observe(obs(phase="map", duration=10.0))
        est.observe(obs(phase="reduce", duration=100.0))
        assert est.estimate("j", "map") == pytest.approx(10.0)
        assert est.estimate("j", "reduce") == pytest.approx(100.0)

    def test_invalid_decay_rejected(self):
        with pytest.raises(ValueError):
            HistoryEstimator(decay=0.0)
        with pytest.raises(ValueError):
            HistoryEstimator(decay=1.5)


class TestSizeModelEstimator:
    def test_default_until_two_points(self):
        est = SizeModelEstimator(default=33.0)
        assert est.estimate("map", 1000) == 33.0
        est.observe(obs(duration=5.0, size=100))
        assert est.estimate("map", 1000) == 33.0

    def test_linear_fit_recovered(self):
        est = SizeModelEstimator()
        # duration = 0.01 * size + 5
        for size in (100, 200, 400, 800):
            est.observe(obs(duration=0.01 * size + 5.0, size=size))
        assert est.estimate("map", 1000) == pytest.approx(15.0, rel=1e-6)

    def test_constant_sizes_fall_back_to_mean(self):
        est = SizeModelEstimator()
        est.observe(obs(duration=10.0, size=500))
        est.observe(obs(duration=20.0, size=500))
        assert est.estimate("map", 500) == pytest.approx(15.0)

    def test_estimates_floor_at_one_second(self):
        est = SizeModelEstimator()
        est.observe(obs(duration=1.0, size=1000))
        est.observe(obs(duration=2.0, size=2000))
        assert est.estimate("map", 0) >= 1.0

    def test_refit_after_new_observation(self):
        est = SizeModelEstimator()
        est.observe(obs(duration=10.0, size=100))
        est.observe(obs(duration=20.0, size=200))
        first = est.estimate("map", 300)
        est.observe(obs(duration=90.0, size=300))
        assert est.estimate("map", 300) != first
