"""Tests for the workflow-scheduler.xml plug-in registry."""

import pytest

from repro.core.scheduler import WohaScheduler
from repro.registry import (
    PLAN_GENERATOR_REGISTRY,
    SCHEDULER_REGISTRY,
    ConfigError,
    parse_scheduler_config,
    register_plan_generator,
    register_scheduler,
)
from repro.schedulers.base import WorkflowScheduler
from repro.schedulers.fifo import FifoScheduler


class TestParse:
    def test_default_woha_stack(self):
        scheduler, planner = parse_scheduler_config(
            "<workflow-scheduler><scheduler>woha-dsl</scheduler>"
            "<plan-generator>lpf-capped</plan-generator></workflow-scheduler>"
        )
        assert isinstance(scheduler, WohaScheduler)
        assert scheduler.queue_backend == "dsl"
        assert callable(planner)

    def test_baseline_without_planner(self):
        scheduler, planner = parse_scheduler_config(
            "<workflow-scheduler><scheduler>fifo</scheduler></workflow-scheduler>"
        )
        assert isinstance(scheduler, FifoScheduler)
        assert planner is None

    def test_two_line_swap(self):
        """The paper's claim: switching implementations is a two-line edit."""
        base = "<workflow-scheduler><scheduler>{}</scheduler><plan-generator>{}</plan-generator></workflow-scheduler>"
        a, _ = parse_scheduler_config(base.format("woha-dsl", "hlf-capped"))
        b, _ = parse_scheduler_config(base.format("woha-bst", "mpf-capped"))
        assert a.queue_backend == "dsl" and b.queue_backend == "bst"

    def test_unknown_scheduler_rejected(self):
        with pytest.raises(ConfigError, match="unknown scheduler"):
            parse_scheduler_config(
                "<workflow-scheduler><scheduler>magic</scheduler></workflow-scheduler>"
            )

    def test_unknown_planner_rejected(self):
        with pytest.raises(ConfigError, match="unknown plan generator"):
            parse_scheduler_config(
                "<workflow-scheduler><scheduler>fifo</scheduler>"
                "<plan-generator>magic</plan-generator></workflow-scheduler>"
            )

    def test_malformed_rejected(self):
        with pytest.raises(ConfigError, match="malformed"):
            parse_scheduler_config("<workflow-scheduler><scheduler>")

    def test_wrong_root_rejected(self):
        with pytest.raises(ConfigError, match="root element"):
            parse_scheduler_config("<config/>")

    def test_missing_scheduler_rejected(self):
        with pytest.raises(ConfigError, match="missing <scheduler>"):
            parse_scheduler_config("<workflow-scheduler/>")


class TestRegistration:
    def test_register_custom_scheduler(self):
        class MyScheduler(FifoScheduler):
            pass

        register_scheduler("my-sched-test", MyScheduler)
        try:
            scheduler, _ = parse_scheduler_config(
                "<workflow-scheduler><scheduler>my-sched-test</scheduler></workflow-scheduler>"
            )
            assert isinstance(scheduler, MyScheduler)
        finally:
            del SCHEDULER_REGISTRY["my-sched-test"]

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ConfigError, match="already registered"):
            register_scheduler("fifo", FifoScheduler)

    def test_replace_flag_allows_override(self):
        original = SCHEDULER_REGISTRY["fifo"]
        try:
            register_scheduler("fifo", FifoScheduler, replace=True)
        finally:
            SCHEDULER_REGISTRY["fifo"] = original

    def test_register_custom_planner(self):
        register_plan_generator("null-test", lambda: None)
        try:
            _, planner = parse_scheduler_config(
                "<workflow-scheduler><scheduler>fifo</scheduler>"
                "<plan-generator>null-test</plan-generator></workflow-scheduler>"
            )
            assert planner is None
        finally:
            del PLAN_GENERATOR_REGISTRY["null-test"]

    def test_all_registered_schedulers_instantiate(self):
        for name, factory in SCHEDULER_REGISTRY.items():
            assert isinstance(factory(), WorkflowScheduler), name

    def test_all_registered_planners_instantiate(self):
        for name, factory in PLAN_GENERATOR_REGISTRY.items():
            planner = factory()
            assert planner is None or callable(planner), name
