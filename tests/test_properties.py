"""Cross-cutting property-based tests over the whole stack."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster.config import ClusterConfig
from repro.cluster.simulation import ClusterSimulation
from repro.core.capsearch import find_min_cap
from repro.core.client import make_planner
from repro.core.plangen import generate_requirements, simulate_makespan
from repro.core.scheduler import NaiveWohaScheduler, WohaScheduler
from repro.schedulers.edf import EdfScheduler
from repro.schedulers.fair import FairScheduler
from repro.schedulers.fifo import FifoScheduler
from repro.workflow import dag
from repro.workflow.xmlconfig import parse_workflow_xml, workflow_to_xml
from repro.workloads.io import workflows_from_json, workflows_to_json

from tests.strategies import workflows


def small_cluster():
    return ClusterConfig(
        num_nodes=2, map_slots_per_node=2, reduce_slots_per_node=1, heartbeat_interval=float("inf")
    )


class TestSimulationProperties:
    @given(workflows(), st.sampled_from(["fifo", "fair", "edf"]))
    @settings(max_examples=40, deadline=None)
    def test_baselines_complete_any_workflow_within_bounds(self, wf, which):
        scheduler = {"fifo": FifoScheduler, "fair": FairScheduler, "edf": EdfScheduler}[which]()
        sim = ClusterSimulation(small_cluster(), scheduler, submission="oozie")
        sim.add_workflow(wf)
        result = sim.run(max_events=200_000)
        completion = result.stats["hw"].completion_time
        assert completion < float("inf")
        # Lower bound: the critical path (serial phase latencies).
        assert completion >= dag.critical_path_length(wf) - 1e-6
        # Upper bound: fully serial execution on one slot.
        serial = sum(
            j.num_maps * j.map_duration + j.num_reduces * j.reduce_duration for j in wf.jobs
        )
        assert completion <= serial + 1e-6
        assert result.metrics.tasks_completed == wf.total_tasks

    @given(workflows(with_deadline=True))
    @settings(max_examples=25, deadline=None)
    def test_woha_stack_completes_and_counts_submitters(self, wf):
        sim = ClusterSimulation(
            small_cluster(), WohaScheduler(), submission="woha", planner=make_planner("hlf")
        )
        sim.add_workflow(wf)
        result = sim.run(max_events=200_000)
        assert result.stats["hw"].completion_time < float("inf")
        assert result.metrics.tasks_completed == wf.total_tasks + len(wf)

    @given(workflows(with_deadline=True))
    @settings(max_examples=20, deadline=None)
    def test_dsl_and_naive_schedulers_agree(self, wf):
        outcomes = []
        for scheduler in (WohaScheduler(), NaiveWohaScheduler()):
            sim = ClusterSimulation(
                small_cluster(), scheduler, submission="woha", planner=make_planner("lpf")
            )
            sim.add_workflow(wf)
            outcomes.append(sim.run(max_events=200_000).stats["hw"].completion_time)
        assert outcomes[0] == outcomes[1]


class TestSerializationProperties:
    @given(workflows(with_deadline=True))
    @settings(max_examples=50, deadline=None)
    def test_xml_roundtrip(self, wf):
        clone = parse_workflow_xml(workflow_to_xml(wf))
        assert clone.job_names() == wf.job_names()
        assert clone.deadline == wf.deadline
        for name in wf.job_names():
            assert clone.job(name).prerequisites == wf.job(name).prerequisites
            assert clone.job(name).num_maps == wf.job(name).num_maps

    @given(workflows(with_deadline=True))
    @settings(max_examples=50, deadline=None)
    def test_json_roundtrip(self, wf):
        clone = workflows_from_json(workflows_to_json([wf]))[0]
        assert clone.job_names() == wf.job_names()
        assert clone.total_tasks == wf.total_tasks
        assert clone.deadline == wf.deadline


class TestPlanProperties:
    @given(workflows(), st.integers(1, 10))
    @settings(max_examples=50, deadline=None)
    def test_requirement_monotone_in_time(self, wf, cap):
        plan = generate_requirements(wf, cap)
        deadline = plan.makespan + 100.0
        previous = -1
        for step in range(0, 12):
            t = step * (deadline / 10.0)
            req = plan.requirement_at_time(deadline, t)
            assert req >= previous
            previous = req
        assert previous == wf.total_tasks

    @given(workflows())
    @settings(max_examples=30, deadline=None)
    def test_cap_search_minimality(self, wf):
        deadline = simulate_makespan(wf, 4) * 1.1  # feasible at cap 4
        result = find_min_cap(wf, max_slots=16, relative_deadline=deadline)
        assert result.feasible
        assert simulate_makespan(wf, result.cap) <= deadline
        if result.cap > 1:
            assert simulate_makespan(wf, result.cap - 1) > deadline

    @given(workflows(), st.integers(1, 8))
    @settings(max_examples=30, deadline=None)
    def test_plan_serialization_roundtrip(self, wf, cap):
        from repro.core.progress import ProgressPlan

        plan = generate_requirements(wf, cap)
        clone = ProgressPlan.from_bytes(plan.to_bytes())
        assert clone.entries == plan.entries
        assert clone.job_order == plan.job_order


class TestDagProperties:
    @given(workflows())
    @settings(max_examples=60, deadline=None)
    def test_levels_respect_edges(self, wf):
        levels = dag.levels(wf)
        for job in wf.jobs:
            for dep in wf.dependents(job.name):
                assert levels[job.name] > levels[dep]

    @given(workflows())
    @settings(max_examples=60, deadline=None)
    def test_critical_path_weight_is_max(self, wf):
        weights = dag.longest_path_weights(wf)
        path = dag.critical_path(wf)
        path_weight = sum(wf.job(n).serial_length for n in path)
        assert path_weight == pytest.approx(max(weights.values()))

    @given(workflows())
    @settings(max_examples=60, deadline=None)
    def test_makespan_bounded_by_critical_path_and_serial(self, wf):
        cp = dag.critical_path_length(wf)
        serial = sum(j.serial_length * max(j.num_maps, j.num_reduces, 1) for j in wf.jobs)
        makespan = simulate_makespan(wf, 4)
        assert makespan >= cp - 1e-6
