"""Shared fixtures for the test suite."""

import pytest

from repro.cluster.config import ClusterConfig
from repro.workflow.builder import WorkflowBuilder
from repro.workflow.model import Workflow


@pytest.fixture
def small_workflow() -> Workflow:
    """A 4-job diamond-with-tail used across scheduler tests.

    a (4m/2r) -> {b (2m/1r), c (3m/1r)} -> d (1m/1r); 15 tasks total.
    """
    return (
        WorkflowBuilder("wf")
        .job("a", maps=4, reduces=2, map_s=10, reduce_s=20)
        .job("b", maps=2, reduces=1, map_s=5, reduce_s=10, after=["a"])
        .job("c", maps=3, reduces=1, map_s=8, reduce_s=12, after=["a"])
        .job("d", maps=1, reduces=1, map_s=4, reduce_s=6, after=["b", "c"])
        .deadline(relative=300)
        .build()
    )


@pytest.fixture
def chain3() -> Workflow:
    """Three jobs in a strict chain."""
    return (
        WorkflowBuilder("chain")
        .job("j0", maps=2, reduces=1, map_s=10, reduce_s=10)
        .job("j1", maps=2, reduces=1, map_s=10, reduce_s=10, after=["j0"])
        .job("j2", maps=2, reduces=1, map_s=10, reduce_s=10, after=["j1"])
        .build()
    )


@pytest.fixture
def tiny_cluster() -> ClusterConfig:
    """2 nodes x (2 map + 1 reduce) with event-driven scheduling."""
    return ClusterConfig(
        num_nodes=2,
        map_slots_per_node=2,
        reduce_slots_per_node=1,
        heartbeat_interval=float("inf"),
    )


@pytest.fixture
def heartbeat_cluster() -> ClusterConfig:
    """Same size but pure periodic-heartbeat scheduling (no eager rounds)."""
    return ClusterConfig(
        num_nodes=2,
        map_slots_per_node=2,
        reduce_slots_per_node=1,
        heartbeat_interval=3.0,
        eager_heartbeats=False,
    )
