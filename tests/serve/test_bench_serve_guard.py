"""Tier-1 shape guard for ``BENCH_serve.json`` (benchmarks/bench_serve.py).

Runs one tiny grid (fast enough for tier-1) and pins the payload schema
the trajectory tooling reads, so a refactor cannot silently change the
JSON shape between perf runs.  Latency *values* are asserted only for
sanity — the perf bars live behind ``-m perf``.
"""

import json

from benchmarks.bench_serve import PAYLOAD_KEYS, run_bench
from repro.serve.loadgen import CELL_KEYS, LATENCY_KEYS, MIXES, percentile


def tiny_payload():
    return run_bench(concurrency_levels=(2,), requests_per_client=15, scale=0.5)


class TestPayloadShape:
    def test_payload_schema_is_pinned(self):
        payload = tiny_payload()
        assert tuple(sorted(payload)) == tuple(sorted(PAYLOAD_KEYS))
        assert payload["bench"] == "serve"

        cells = payload["cells"]
        assert len(cells) == len(MIXES) * 2 * 1  # mix x batching x concurrency
        for cell in cells:
            assert tuple(sorted(cell)) == tuple(sorted(CELL_KEYS))
            assert tuple(sorted(cell["latency_ms"])) == tuple(sorted(LATENCY_KEYS))
            assert cell["requests"] == 2 * 15
            assert sum(cell["outcomes"].values()) == cell["requests"]
            assert 0.0 <= cell["hit_rate"] <= 1.0
            assert cell["latency_ms"]["p50"] <= cell["latency_ms"]["p99"]

        summary = payload["summary"]
        assert summary["top_concurrency"] == 2
        assert set(summary["cold_p99_ms"]) == {"batching_on", "batching_off"}

    def test_payload_round_trips_through_json(self):
        payload = tiny_payload()
        assert json.loads(json.dumps(payload, sort_keys=True)) == payload

    def test_recurrent_mix_is_cache_served(self):
        # Deterministic at these parameters: with T templates and R>=T
        # requests per client, misses are bounded by the template count, so
        # the steady state clears the >=90% acceptance bar even in tier-1.
        payload = tiny_payload()
        assert payload["summary"]["recurrent_hit_rate"] >= 0.9


class TestPercentile:
    def test_nearest_rank(self):
        values = [float(v) for v in range(1, 101)]
        assert percentile(values, 0.50) == 50.0
        assert percentile(values, 0.99) == 99.0
        assert percentile(values, 0.999) == 100.0

    def test_empty_and_singleton(self):
        assert percentile([], 0.99) == 0.0
        assert percentile([7.0], 0.5) == 7.0
