"""The service adds sharing, never different answers (ISSUE satellite 3).

Plans fetched over HTTP must be byte-identical to what a direct
``make_planner`` call produces for the same configuration — across
prioritizers × pool modes × batching on/off, for feasible and infeasible
workflows — and ``/v1/admit`` verdicts must agree with direct planner
feasibility across the sweep scenario corpus.
"""

import asyncio
import json

import pytest

from repro.core.client import make_planner
from repro.core.progress import ProgressPlan
from repro.experiments.scenarios import SCENARIOS
from repro.serve.api import PlanServer
from repro.serve.loadgen import _read_response, build_request
from repro.serve.service import PlanningService, ServiceConfig
from repro.workflow.builder import WorkflowBuilder

SLOTS = 24


def diamond(name="wf", *, relative_deadline=400.0):
    return (
        WorkflowBuilder(name)
        .job("extract", maps=8, reduces=2, map_s=10.0, reduce_s=15.0)
        .job("left", maps=4, reduces=1, map_s=8.0, reduce_s=9.0, after=["extract"])
        .job("right", maps=6, reduces=0, map_s=12.0, after=["extract"])
        .job("load", maps=2, reduces=1, map_s=5.0, reduce_s=20.0, after=["left", "right"])
        .deadline(relative=relative_deadline)
        .build()
    )


def served_bytes(config, workflows, path="/v1/plan"):
    """Plan each workflow through a real server; return the response bodies."""

    async def go():
        service = PlanningService(config)
        server = PlanServer(service, port=0)
        await server.start()
        try:
            reader, writer = await asyncio.open_connection("127.0.0.1", server.port)
            try:
                bodies = []
                for workflow in workflows:
                    writer.write(build_request(workflow, "t", path=path))
                    await writer.drain()
                    status, _headers, body = await _read_response(reader)
                    assert status == 200
                    bodies.append(body)
                return bodies
            finally:
                writer.close()
                await writer.wait_closed()
        finally:
            await server.stop()

    return asyncio.run(go())


@pytest.mark.parametrize("prioritizer", ["hlf", "lpf", "mpf"])
@pytest.mark.parametrize("pool", ["pooled", "split"])
@pytest.mark.parametrize("batching", [True, False])
def test_plan_bytes_identical_to_direct_planner(prioritizer, pool, batching):
    config = ServiceConfig(
        total_slots=SLOTS, prioritizer=prioritizer, pool=pool, batching=batching
    )
    workflows = [diamond("feasible"), diamond("infeasible", relative_deadline=1.0)]
    bodies = served_bytes(config, workflows)
    planner = make_planner(prioritizer=prioritizer, pool=pool)
    for workflow, body in zip(workflows, bodies):
        direct = planner(workflow, SLOTS)
        assert body == direct.to_bytes()
        wire = ProgressPlan.from_bytes(body)
        assert wire.feasible == direct.feasible
        assert wire.resource_cap == direct.resource_cap


def test_infeasible_bit_survives_the_wire():
    [body] = served_bytes(
        ServiceConfig(total_slots=SLOTS), [diamond("doomed", relative_deadline=1.0)]
    )
    plan = ProgressPlan.from_bytes(body)
    assert plan.feasible is False
    assert plan.to_bytes() == body  # byte-stable round-trip


def test_admission_agrees_with_direct_planner_across_sweep_corpus():
    slots = 200
    planner = make_planner()
    corpus = []
    for name in sorted(SCENARIOS):
        workflows, _outages = SCENARIOS[name](seed=3, scale=0.25)
        corpus.extend(w for w in workflows if w.relative_deadline is not None)
    assert len(corpus) >= 8  # the corpus actually exercises several scenarios

    bodies = served_bytes(
        ServiceConfig(total_slots=slots), corpus, path="/v1/admit"
    )
    verdicts = [json.loads(body) for body in bodies]
    for workflow, verdict in zip(corpus, verdicts):
        assert verdict["workflow"] == workflow.name
        assert verdict["admitted"] == planner(workflow, slots).feasible
    assert any(v["admitted"] for v in verdicts)  # the comparison is not vacuous
