"""Tests for the transport-independent PlanningService core."""

import asyncio
import json

import pytest

from repro.core.client import ValidationError
from repro.serve.service import PlanningService, ServiceConfig
from repro.workflow.builder import WorkflowBuilder
from repro.workflow.xmlconfig import workflow_to_xml
from repro.workloads.io import workflows_to_json


def diamond(name="wf", *, relative_deadline=400.0):
    return (
        WorkflowBuilder(name)
        .job("extract", maps=8, reduces=2, map_s=10.0, reduce_s=15.0)
        .job("left", maps=4, reduces=1, map_s=8.0, reduce_s=9.0, after=["extract"])
        .job("right", maps=6, reduces=0, map_s=12.0, after=["extract"])
        .job("load", maps=2, reduces=1, map_s=5.0, reduce_s=20.0, after=["left", "right"])
        .deadline(relative=relative_deadline)
        .build()
    )


class TestConfigValidation:
    def test_bad_slots_rejected(self):
        with pytest.raises(ValueError):
            ServiceConfig(total_slots=0)

    def test_bad_pool_rejected(self):
        with pytest.raises(ValueError):
            ServiceConfig(pool="quantum")

    def test_bad_prioritizer_rejected(self):
        with pytest.raises(ValueError):
            ServiceConfig(prioritizer="alphabetical")


class TestParseWorkflow:
    def test_xml_body(self):
        service = PlanningService()
        xml = workflow_to_xml(diamond())
        assert service.parse_workflow(xml.encode()).name == "wf"

    def test_json_body(self):
        service = PlanningService()
        body = workflows_to_json([diamond()]).encode()
        workflow = service.parse_workflow(body, "application/json")
        assert workflow.name == "wf" and len(workflow.jobs) == 4

    def test_malformed_xml_raises_typed_error(self):
        service = PlanningService()
        with pytest.raises(ValidationError) as exc_info:
            service.parse_workflow(b"<workflow name='w'><job")
        report = exc_info.value.report
        assert not report.ok and report.errors

    def test_json_with_wrong_count_rejected(self):
        service = PlanningService()
        body = workflows_to_json([diamond("a"), diamond("b")]).encode()
        with pytest.raises(ValidationError, match="exactly 1"):
            service.parse_workflow(body, "application/json")

    def test_undecodable_body_rejected(self):
        service = PlanningService()
        with pytest.raises(ValidationError, match="undecodable"):
            service.parse_workflow(b"\xff\xfe\x01", "application/xml")

    def test_bad_json_rejected(self):
        service = PlanningService()
        with pytest.raises(ValidationError, match="bad workflow JSON"):
            service.parse_workflow(b'{"format": "nope"}', "application/json")


class TestPlanAndAdmit:
    def test_per_tenant_outcome_counters(self):
        service = PlanningService(ServiceConfig(total_slots=24))
        w = diamond()

        async def go():
            await service.plan(w, tenant="alice")
            await service.plan(w, tenant="bob")
            await service.plan(w, tenant="bob")

        asyncio.run(go())
        stats = service.stats()
        assert stats["tenants"]["alice"] == {"miss": 1}
        assert stats["tenants"]["bob"] == {"hit": 2}
        assert stats["requests"] == 3
        assert stats["plan_cache"]["hits"] == 2

    def test_admission_verdict_is_the_feasibility_bit(self):
        service = PlanningService(ServiceConfig(total_slots=24))

        async def go():
            good = await service.admit(diamond("ok"))
            bad = await service.admit(diamond("doomed", relative_deadline=1.0))
            return good, bad

        good, bad = asyncio.run(go())
        assert good["admitted"] is True
        assert bad["admitted"] is False
        assert bad["resource_cap"] == 24  # infeasible: most optimistic plan
        assert good["outcome"] == "miss"

    def test_plan_records_trace_events(self):
        service = PlanningService(ServiceConfig(total_slots=24))
        asyncio.run(service.plan(diamond(), tenant="t"))
        page, cursor = service.trace_page(0, 10)
        events = [json.loads(line) for line in page.splitlines()]
        assert [e["event"] for e in events] == ["plan_served"]
        assert events[0]["tenant"] == "t" and events[0]["outcome"] == "miss"
        assert cursor == events[-1]["seq"] + 1

    def test_trace_page_is_incremental(self):
        service = PlanningService(ServiceConfig(total_slots=24))

        async def go():
            await service.admit(diamond("a"))
            await service.admit(diamond("b", relative_deadline=500.0))

        asyncio.run(go())
        first, cursor = service.trace_page(0, 2)
        rest, end = service.trace_page(cursor, 100)
        assert len(first.splitlines()) == 2
        seqs = [json.loads(line)["seq"] for line in (first + rest).splitlines()]
        assert seqs == sorted(seqs) and len(set(seqs)) == len(seqs)
        # A poll past the end returns an empty page and a stable cursor.
        empty, again = service.trace_page(end, 10)
        assert empty == "" and again == end

    def test_stats_are_json_serialisable(self):
        service = PlanningService()
        asyncio.run(service.plan(diamond()))
        assert json.loads(json.dumps(service.stats()))["requests"] == 1
