"""Unit tests for the micro-batching planner (DESIGN.md §15)."""

import asyncio

import pytest

from repro.core.plancache import PlanCache
from repro.core.priorities import PRIORITIZERS
from repro.metrics.collector import MetricsCollector
from repro.cluster.config import ClusterConfig
from repro.serve.batching import BatchingPlanner
from repro.trace import DecisionTracer
from repro.workflow.builder import WorkflowBuilder


def diamond(name="wf", *, maps=8, relative_deadline=400.0):
    return (
        WorkflowBuilder(name)
        .job("extract", maps=maps, reduces=2, map_s=10.0, reduce_s=15.0)
        .job("left", maps=4, reduces=1, map_s=8.0, reduce_s=9.0, after=["extract"])
        .job("right", maps=6, reduces=0, map_s=12.0, after=["extract"])
        .job("load", maps=2, reduces=1, map_s=5.0, reduce_s=20.0, after=["left", "right"])
        .deadline(relative=relative_deadline)
        .build()
    )


def order_of(workflow):
    return tuple(PRIORITIZERS["lpf"](workflow))


def plan_all(planner, requests):
    """Drive concurrent plan() calls to completion; returns (entry, outcome) list."""

    async def go():
        return await asyncio.gather(
            *(planner.plan(w, order_of(w), slots) for w, slots in requests)
        )

    return asyncio.run(go())


class TestWindowValidation:
    def test_negative_window_rejected(self):
        with pytest.raises(ValueError):
            BatchingPlanner(PlanCache(), window=-0.001)


class TestOutcomes:
    def test_identical_concurrent_requests_fuse_to_one_build(self):
        cache = PlanCache()
        planner = BatchingPlanner(cache, window=0.0)
        w = diamond()
        results = plan_all(planner, [(w, 24)] * 4)
        outcomes = sorted(outcome for _entry, outcome in results)
        assert outcomes == ["fused", "fused", "fused", "miss"]
        assert cache.misses == 1 and len(cache) == 1
        entries = {id(entry[1]) for entry, _ in results}
        assert len(entries) == 1  # everyone got the same plan object

    def test_cache_hit_bypasses_the_window(self):
        cache = PlanCache()
        planner = BatchingPlanner(cache, window=60.0)  # a window nobody waits out
        w = diamond()

        async def first_and_second():
            # The first call *does* sit in the window, so flush manually.
            task = asyncio.ensure_future(planner.plan(w, order_of(w), 24))
            await asyncio.sleep(0)
            planner.flush_now()
            entry, outcome = await task
            assert outcome == "miss"
            return await planner.plan(w, order_of(w), 24)

        _entry, outcome = asyncio.run(first_and_second())
        assert outcome == "hit"
        assert (cache.hits, cache.misses) == (1, 1)

    def test_deadline_jittered_requests_share_one_problem(self):
        cache = PlanCache()
        tracer = DecisionTracer()
        planner = BatchingPlanner(cache, window=0.0, tracer=tracer)
        base = diamond()
        variants = [
            base.with_timing(0.0, 400.0 + k) for k in range(4)
        ]  # distinct relative deadlines -> distinct fingerprints
        results = plan_all(planner, [(w, 24) for w in variants])
        assert [outcome for _e, outcome in results] == ["miss"] * 4
        assert cache.misses == 4
        # One fusion group of four members -> three shared setups.
        assert planner.shared_setups == 3
        assert planner.fused == 0
        assert tracer.counter_table()["serve_batch"]["shared_setups"] == 3

    def test_different_structures_do_not_fuse(self):
        cache = PlanCache()
        planner = BatchingPlanner(cache, window=0.0)
        results = plan_all(planner, [(diamond(maps=8), 24), (diamond(maps=9), 24)])
        assert planner.shared_setups == 0
        assert cache.misses == 2

    def test_disabled_batching_builds_synchronously_per_request(self):
        # A synchronous build never yields, so the first task commits before
        # the others even start: miss + hits, no window, no batches.  (The
        # coalesced outcome needs an awaitable build; see
        # tests/core/test_plancache_async.py.)
        cache = PlanCache()
        planner = BatchingPlanner(cache, enabled=False)
        w = diamond()
        results = plan_all(planner, [(w, 24)] * 3)
        outcomes = sorted(outcome for _e, outcome in results)
        assert outcomes == ["hit", "hit", "miss"]
        assert cache.misses == 1
        assert planner.batches == 0  # the batch path never ran


class TestErrorPropagation:
    def test_planner_failure_reaches_every_fused_requester(self, monkeypatch):
        cache = PlanCache()
        planner = BatchingPlanner(cache, window=0.0)
        w = diamond()

        def boom(*args, **kwargs):
            raise RuntimeError("planner blew up")

        monkeypatch.setattr("repro.serve.batching._plan_entry", boom)

        async def go():
            return await asyncio.gather(
                planner.plan(w, order_of(w), 24),
                planner.plan(w, order_of(w), 24),
                return_exceptions=True,
            )

        results = asyncio.run(go())
        assert len(results) == 2
        assert all(isinstance(r, RuntimeError) for r in results)
        assert len(cache) == 0 and cache.misses == 0  # DT303: no phantom state


class TestAccounting:
    def test_counter_table_feeds_metrics_collector(self):
        cache = PlanCache()
        planner = BatchingPlanner(cache, window=0.0)
        w = diamond()
        plan_all(planner, [(w, 24)] * 3)
        collector = MetricsCollector(ClusterConfig(num_nodes=1))
        table = collector.aggregate_counters(planner)
        assert table["serve_batch"] == {
            "batched_requests": 3,
            "batches": 1,
            "fused": 2,
            "shared_setups": 0,
        }

    def test_mode_tuple_matches_make_planner(self):
        # Service-built entries must collide with standalone-planner entries.
        assert BatchingPlanner.planner_mode("pooled", True, 2 / 3) == ("pooled", True, 2 / 3)
