"""PlanServer tests over real sockets (ephemeral ports, keep-alive)."""

import asyncio
import json

from repro.core.progress import ProgressPlan
from repro.serve.api import PlanServer
from repro.serve.loadgen import _read_response, build_request
from repro.serve.service import PlanningService, ServiceConfig
from repro.workflow.builder import WorkflowBuilder
from repro.workflow.xmlconfig import workflow_to_xml


def diamond(name="wf", *, relative_deadline=400.0):
    return (
        WorkflowBuilder(name)
        .job("extract", maps=8, reduces=2, map_s=10.0, reduce_s=15.0)
        .job("left", maps=4, reduces=1, map_s=8.0, reduce_s=9.0, after=["extract"])
        .job("right", maps=6, reduces=0, map_s=12.0, after=["extract"])
        .job("load", maps=2, reduces=1, map_s=5.0, reduce_s=20.0, after=["left", "right"])
        .deadline(relative=relative_deadline)
        .build()
    )


def raw_request(method, target, body=b"", content_type="application/xml", extra=()):
    head = [f"{method} {target} HTTP/1.1", "Host: test", f"Content-Length: {len(body)}"]
    if body:
        head.append(f"Content-Type: {content_type}")
    head.extend(extra)
    return ("\r\n".join(head) + "\r\n\r\n").encode("latin-1") + body


def serve(test, config=None):
    """Start a server on an OS-picked port, run ``test(port, service)``."""

    async def go():
        service = PlanningService(config or ServiceConfig(total_slots=24))
        server = PlanServer(service, port=0)
        await server.start()
        try:
            return await test(server.port, service)
        finally:
            await server.stop()

    return asyncio.run(go())


async def roundtrip(port, *requests):
    """Send requests over ONE keep-alive connection; return the responses."""
    reader, writer = await asyncio.open_connection("127.0.0.1", port)
    try:
        responses = []
        for request in requests:
            writer.write(request)
            await writer.drain()
            responses.append(await _read_response(reader))
        return responses
    finally:
        writer.close()
        await writer.wait_closed()


class TestRoutes:
    def test_healthz(self):
        async def check(port, _service):
            [(status, _h, body)] = await roundtrip(port, raw_request("GET", "/healthz"))
            assert status == 200 and json.loads(body) == {"ok": True}

        serve(check)

    def test_plan_roundtrip_bytes_and_headers(self):
        w = diamond()

        async def check(port, service):
            request = build_request(w, tenant="t1")
            [(status, headers, body)] = await roundtrip(port, request)
            assert status == 200
            assert headers["content-type"] == "application/octet-stream"
            plan = ProgressPlan.from_bytes(body)
            assert plan.feasible and plan.to_bytes() == body
            assert headers["x-plan-feasible"] == "1"
            assert headers["x-plan-cap"] == str(plan.resource_cap)
            assert headers["x-plan-outcome"] == "miss"
            assert headers["x-request-id"] == "1"
            assert service.stats()["tenants"]["t1"] == {"miss": 1}

        serve(check)

    def test_keep_alive_second_request_is_warm(self):
        w = diamond()

        async def check(port, _service):
            request = build_request(w, tenant="t")
            responses = await roundtrip(port, request, request)
            outcomes = [headers["x-plan-outcome"] for _s, headers, _b in responses]
            assert outcomes == ["miss", "hit"]

        serve(check)

    def test_plan_accepts_xml_body(self):
        xml = workflow_to_xml(diamond()).encode()

        async def check(port, _service):
            [(status, headers, body)] = await roundtrip(
                port, raw_request("POST", "/v1/plan", xml)
            )
            assert status == 200
            assert ProgressPlan.from_bytes(body).feasible

        serve(check)

    def test_infeasible_plan_round_trips_with_zero_bit(self):
        doomed = diamond("doomed", relative_deadline=1.0)

        async def check(port, _service):
            [(status, headers, body)] = await roundtrip(port, build_request(doomed, "t"))
            assert status == 200 and headers["x-plan-feasible"] == "0"
            assert ProgressPlan.from_bytes(body).feasible is False

        serve(check)

    def test_admit_verdict(self):
        async def check(port, _service):
            good, bad = await roundtrip(
                port,
                build_request(diamond("ok"), "t", path="/v1/admit"),
                build_request(diamond("doomed", relative_deadline=1.0), "t", path="/v1/admit"),
            )
            assert json.loads(good[2])["admitted"] is True
            verdict = json.loads(bad[2])
            assert verdict["admitted"] is False and verdict["workflow"] == "doomed"

        serve(check)

    def test_malformed_xml_is_a_structured_400(self):
        async def check(port, _service):
            [(status, _h, body)] = await roundtrip(
                port, raw_request("POST", "/v1/plan", b"<workflow name='w'><job")
            )
            assert status == 400
            payload = json.loads(body)
            assert payload["ok"] is False and payload["errors"]

        serve(check)

    def test_trace_paging_over_http(self):
        w = diamond()

        async def check(port, _service):
            request = build_request(w, "t")
            await roundtrip(port, request, request)
            [(status, headers, body)] = await roundtrip(
                port, raw_request("GET", "/v1/trace?since=0&limit=1")
            )
            assert status == 200
            events = [json.loads(line) for line in body.decode().splitlines()]
            assert len(events) == 1 and events[0]["event"] == "plan_served"
            cursor = int(headers["x-trace-next"])
            [(_s2, h2, b2)] = await roundtrip(
                port, raw_request("GET", f"/v1/trace?since={cursor}&limit=50")
            )
            rest = [json.loads(line) for line in b2.decode().splitlines()]
            assert [e["outcome"] for e in rest] == ["hit"]

        serve(check)

    def test_stats_endpoint(self):
        async def check(port, _service):
            await roundtrip(port, build_request(diamond(), "alice"))
            [(status, _h, body)] = await roundtrip(port, raw_request("GET", "/v1/stats"))
            stats = json.loads(body)
            assert status == 200
            assert stats["requests"] == 1
            assert stats["tenants"] == {"alice": {"miss": 1}}
            assert stats["plan_cache"]["size"] == 1

        serve(check)


class TestProtocolEdges:
    def test_unknown_route_404(self):
        async def check(port, _service):
            [(status, _h, body)] = await roundtrip(port, raw_request("GET", "/nope"))
            assert status == 404 and "no route" in json.loads(body)["error"]

        serve(check)

    def test_wrong_method_405(self):
        async def check(port, _service):
            [(status, _h, _b)] = await roundtrip(port, raw_request("GET", "/v1/plan"))
            assert status == 405

        serve(check)

    def test_bad_trace_query_400(self):
        async def check(port, _service):
            [(status, _h, _b)] = await roundtrip(
                port, raw_request("GET", "/v1/trace?since=soon")
            )
            assert status == 400

        serve(check)

    def test_connection_close_honoured(self):
        async def check(port, _service):
            reader, writer = await asyncio.open_connection("127.0.0.1", port)
            writer.write(raw_request("GET", "/healthz", extra=["Connection: close"]))
            await writer.drain()
            status, headers, _body = await _read_response(reader)
            assert status == 200 and headers["connection"] == "close"
            assert await reader.read() == b""  # server closed its side
            writer.close()
            await writer.wait_closed()

        serve(check)

    def test_planner_fault_is_a_500_and_connection_survives(self, monkeypatch):
        async def boom(*args, **kwargs):
            raise RuntimeError("planner blew up")

        # Patch at the service level: parse succeeds, plan explodes.
        async def check(port, service):
            monkeypatch.setattr(service, "plan", boom)
            responses = await roundtrip(
                port, build_request(diamond(), "t"), raw_request("GET", "/healthz")
            )
            (status, _h, body), (ok_status, _h2, ok_body) = responses
            assert status == 500 and "planner blew up" in json.loads(body)["error"]
            assert ok_status == 200 and json.loads(ok_body) == {"ok": True}

        serve(check)
