"""Smoke tests: the fast example scripts run and print sensible output.

The heavyweight examples (scheduler_comparison, trace_replay,
render_figures) are exercised by the benches that share their code paths;
here we run the quick ones end to end.
"""

import importlib.util
import os
import sys

import pytest

EXAMPLES_DIR = os.path.join(os.path.dirname(__file__), os.pardir, "examples")


def run_example(name: str):
    path = os.path.abspath(os.path.join(EXAMPLES_DIR, f"{name}.py"))
    spec = importlib.util.spec_from_file_location(f"example_{name}", path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    module.main()
    return module


class TestExamples:
    def test_quickstart(self, capsys):
        run_example("quickstart")
        out = capsys.readouterr().out
        assert "met deadline  : True" in out

    def test_xml_workflow(self, capsys):
        run_example("xml_workflow")
        out = capsys.readouterr().out
        assert "met: True" in out
        assert "build-edges   <- parse-events" in out

    def test_ad_pipeline_shows_the_contrast(self, capsys):
        run_example("ad_pipeline")
        out = capsys.readouterr().out
        assert "MISSED" in out  # FIFO misses the placement deadline
        assert out.count("MET") >= 1  # WOHA meets it

    def test_fault_tolerance(self, capsys):
        run_example("fault_tolerance")
        out = capsys.readouterr().out
        assert out.count("MET") == 3  # resilient under every configuration
        assert "nodes lost" in out
