"""Unit tests for the WOHA XML configuration format."""

import pytest

from repro.workflow.model import WorkflowValidationError
from repro.workflow.xmlconfig import infer_prerequisites, parse_workflow_xml, workflow_to_xml
from repro.workflow.model import WJob


BASIC = """
<workflow name="pipe" deadline="3600" submit="10">
  <job name="extract" maps="20" reduces="4" map-duration="30" reduce-duration="120"
       jar="/user/x/extract.jar" main-class="com.x.Extract">
    <input>/logs/day</input>
    <output>/stage/extracted</output>
  </job>
  <job name="agg" maps="10" reduces="2" map-duration="20" reduce-duration="90">
    <input>/stage/extracted</input>
    <output>/stage/agg</output>
  </job>
</workflow>
"""


class TestParse:
    def test_basic_fields(self):
        w = parse_workflow_xml(BASIC)
        assert w.name == "pipe"
        assert w.submit_time == 10.0
        assert w.deadline == 10.0 + 3600.0  # plain number = relative deadline
        assert len(w) == 2

    def test_prerequisites_inferred_from_paths(self):
        w = parse_workflow_xml(BASIC)
        assert w.prerequisites("agg") == {"extract"}

    def test_absolute_deadline_with_at_prefix(self):
        xml = '<workflow name="w" deadline="@500"><job name="a" maps="1" reduces="0" map-duration="5"/></workflow>'
        assert parse_workflow_xml(xml).deadline == 500.0

    def test_no_deadline(self):
        xml = '<workflow name="w"><job name="a" maps="1" reduces="0" map-duration="5"/></workflow>'
        assert parse_workflow_xml(xml).deadline is None

    def test_explicit_after_overrides_inference(self):
        xml = """
        <workflow name="w">
          <job name="a" maps="1" reduces="0" map-duration="5"><output>/o</output></job>
          <job name="b" maps="1" reduces="0" map-duration="5"/>
          <job name="c" maps="1" reduces="0" map-duration="5">
            <input>/o</input><after>b</after>
          </job>
        </workflow>
        """
        w = parse_workflow_xml(xml)
        assert w.prerequisites("c") == {"b"}  # explicit wins; path not added

    def test_malformed_xml_rejected(self):
        with pytest.raises(WorkflowValidationError, match="malformed"):
            parse_workflow_xml("<workflow name='w'><job")

    def test_wrong_root_rejected(self):
        with pytest.raises(WorkflowValidationError, match="root element"):
            parse_workflow_xml("<job name='a'/>")

    def test_missing_name_rejected(self):
        with pytest.raises(WorkflowValidationError, match="name"):
            parse_workflow_xml("<workflow><job name='a' maps='1' reduces='0'/></workflow>")

    def test_missing_maps_rejected(self):
        with pytest.raises(WorkflowValidationError):
            parse_workflow_xml("<workflow name='w'><job name='a' reduces='0'/></workflow>")

    def test_bad_numeric_rejected(self):
        with pytest.raises(WorkflowValidationError, match="numeric"):
            parse_workflow_xml(
                "<workflow name='w'><job name='a' maps='lots' reduces='0' map-duration='5'/></workflow>"
            )

    def test_no_jobs_rejected(self):
        with pytest.raises(WorkflowValidationError, match="no jobs"):
            parse_workflow_xml("<workflow name='w'/>")


class TestRoundTrip:
    def test_roundtrip_preserves_structure(self):
        original = parse_workflow_xml(BASIC)
        clone = parse_workflow_xml(workflow_to_xml(original))
        assert clone.name == original.name
        assert clone.submit_time == original.submit_time
        assert clone.deadline == original.deadline
        assert clone.job_names() == original.job_names()
        for name in original.job_names():
            a, b = original.job(name), clone.job(name)
            assert (a.num_maps, a.num_reduces) == (b.num_maps, b.num_reduces)
            assert (a.map_duration, a.reduce_duration) == (b.map_duration, b.reduce_duration)
            assert a.prerequisites == b.prerequisites
            assert a.inputs == b.inputs and a.outputs == b.outputs


class TestInference:
    def _job(self, name, ins=(), outs=(), pre=()):
        return WJob(
            name=name,
            num_maps=1,
            num_reduces=0,
            map_duration=1.0,
            reduce_duration=0.0,
            prerequisites=frozenset(pre),
            inputs=tuple(ins),
            outputs=tuple(outs),
        )

    def test_duplicate_output_rejected(self):
        jobs = [self._job("a", outs=("/x",)), self._job("b", outs=("/x",))]
        with pytest.raises(WorkflowValidationError, match="produced by both"):
            infer_prerequisites(jobs)

    def test_diamond_inferred(self):
        jobs = [
            self._job("a", outs=("/a",)),
            self._job("b", ins=("/a",), outs=("/b",)),
            self._job("c", ins=("/a",), outs=("/c",)),
            self._job("d", ins=("/b", "/c",)),
        ]
        inferred = {j.name: j.prerequisites for j in infer_prerequisites(jobs)}
        assert inferred["b"] == {"a"}
        assert inferred["d"] == {"b", "c"}

    def test_external_inputs_ignored(self):
        jobs = [self._job("a", ins=("/external/data",))]
        assert infer_prerequisites(jobs)[0].prerequisites == frozenset()
