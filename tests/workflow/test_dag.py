"""Unit tests for DAG utilities (levels, longest paths, closures)."""

import pytest

from repro.workflow import dag
from repro.workflow.model import WJob, Workflow


def wjob(name, pre=(), map_s=10.0, reduce_s=20.0):
    return WJob(
        name=name,
        num_maps=1,
        num_reduces=1,
        map_duration=map_s,
        reduce_duration=reduce_s,
        prerequisites=frozenset(pre),
    )


@pytest.fixture
def chain():
    return Workflow("c", [wjob("a"), wjob("b", pre=("a",)), wjob("c", pre=("b",))])


@pytest.fixture
def diamond():
    return Workflow(
        "d",
        [wjob("a"), wjob("b", pre=("a",)), wjob("c", pre=("a",)), wjob("d", pre=("b", "c"))],
    )


class TestLevels:
    def test_chain_levels_count_down_to_sink(self, chain):
        assert dag.levels(chain) == {"a": 2, "b": 1, "c": 0}

    def test_diamond_levels(self, diamond):
        assert dag.levels(diamond) == {"a": 2, "b": 1, "c": 1, "d": 0}

    def test_height(self, chain, diamond):
        assert dag.height(chain) == 3
        assert dag.height(diamond) == 3

    def test_independent_jobs_all_level_zero(self):
        w = Workflow("w", [wjob("a"), wjob("b"), wjob("c")])
        assert set(dag.levels(w).values()) == {0}


class TestLongestPath:
    def test_chain_weights_accumulate(self, chain):
        weights = dag.longest_path_weights(chain)
        assert weights["c"] == 30.0
        assert weights["b"] == 60.0
        assert weights["a"] == 90.0

    def test_weight_picks_heavier_branch(self):
        w = Workflow(
            "w",
            [
                wjob("a"),
                wjob("heavy", pre=("a",), map_s=100.0, reduce_s=100.0),
                wjob("light", pre=("a",), map_s=1.0, reduce_s=1.0),
                wjob("z", pre=("heavy", "light")),
            ],
        )
        weights = dag.longest_path_weights(w)
        assert weights["a"] == 30.0 + 200.0 + 30.0

    def test_critical_path_follows_heavy_branch(self):
        w = Workflow(
            "w",
            [
                wjob("a"),
                wjob("heavy", pre=("a",), map_s=100.0, reduce_s=100.0),
                wjob("light", pre=("a",), map_s=1.0, reduce_s=1.0),
                wjob("z", pre=("heavy", "light")),
            ],
        )
        assert dag.critical_path(w) == ("a", "heavy", "z")

    def test_critical_path_length_is_max_weight(self, diamond):
        assert dag.critical_path_length(diamond) == 90.0

    def test_critical_path_is_a_real_path(self, diamond):
        path = dag.critical_path(diamond)
        for pre, job in zip(path, path[1:]):
            assert pre in diamond.prerequisites(job)


class TestClosures:
    def test_ancestors(self, diamond):
        assert dag.ancestors(diamond, "d") == {"a", "b", "c"}
        assert dag.ancestors(diamond, "a") == frozenset()

    def test_descendants(self, diamond):
        assert dag.descendants(diamond, "a") == {"b", "c", "d"}
        assert dag.descendants(diamond, "d") == frozenset()

    def test_closures_are_consistent(self, diamond):
        for job in diamond.job_names():
            for anc in dag.ancestors(diamond, job):
                assert job in dag.descendants(diamond, anc)


class TestShapePredicates:
    def test_is_chain(self, chain, diamond):
        assert dag.is_chain(chain)
        assert not dag.is_chain(diamond)

    def test_width_profile(self, diamond):
        # top (level 2) has 1 job, level 1 has 2, level 0 has 1
        assert dag.width_profile(diamond) == [1, 2, 1]

    def test_width_profile_sums_to_job_count(self, chain, diamond):
        assert sum(dag.width_profile(chain)) == len(chain)
        assert sum(dag.width_profile(diamond)) == len(diamond)
