"""Unit tests for the fluent WorkflowBuilder."""

import pytest

from repro.workflow.builder import WorkflowBuilder
from repro.workflow.model import WorkflowValidationError


class TestBuilder:
    def test_basic_build(self):
        w = (
            WorkflowBuilder("w")
            .job("a", maps=2, reduces=1, map_s=10, reduce_s=20)
            .job("b", maps=1, reduces=0, map_s=5, after=["a"])
            .build()
        )
        assert w.job_names() == ("a", "b")
        assert w.prerequisites("b") == {"a"}

    def test_after_unknown_job_rejected_eagerly(self):
        builder = WorkflowBuilder("w").job("a", maps=1, reduces=0, map_s=1)
        with pytest.raises(WorkflowValidationError, match="unknown job"):
            builder.job("b", maps=1, reduces=0, map_s=1, after=["ghost"])

    def test_duplicate_name_rejected(self):
        builder = WorkflowBuilder("w").job("a", maps=1, reduces=0, map_s=1)
        with pytest.raises(WorkflowValidationError, match="duplicate"):
            builder.job("a", maps=1, reduces=0, map_s=1)

    def test_chain_links_sequentially(self):
        w = (
            WorkflowBuilder("w")
            .job("root", maps=1, reduces=0, map_s=1)
            .chain(["c0", "c1", "c2"], maps=1, reduces=0, map_s=1, after=["root"])
            .build()
        )
        assert w.prerequisites("c0") == {"root"}
        assert w.prerequisites("c1") == {"c0"}
        assert w.prerequisites("c2") == {"c1"}

    def test_submit_and_relative_deadline(self):
        w = (
            WorkflowBuilder("w")
            .job("a", maps=1, reduces=0, map_s=1)
            .submit_at(100.0)
            .deadline(relative=50.0)
            .build()
        )
        assert w.submit_time == 100.0
        assert w.deadline == 150.0

    def test_absolute_deadline(self):
        w = (
            WorkflowBuilder("w")
            .job("a", maps=1, reduces=0, map_s=1)
            .deadline(absolute=77.0)
            .build()
        )
        assert w.deadline == 77.0

    def test_deadline_requires_exactly_one_form(self):
        builder = WorkflowBuilder("w").job("a", maps=1, reduces=0, map_s=1)
        with pytest.raises(WorkflowValidationError):
            builder.deadline()
        with pytest.raises(WorkflowValidationError):
            builder.deadline(absolute=1.0, relative=1.0)

    def test_no_deadline_is_best_effort(self):
        w = WorkflowBuilder("w").job("a", maps=1, reduces=0, map_s=1).build()
        assert w.deadline is None

    def test_job_metadata_passthrough(self):
        w = (
            WorkflowBuilder("w")
            .job(
                "a",
                maps=1,
                reduces=0,
                map_s=1,
                inputs=["/in"],
                outputs=["/out"],
                jar_path="/jars/a.jar",
                main_class="com.x.A",
            )
            .build()
        )
        job = w.job("a")
        assert job.inputs == ("/in",)
        assert job.outputs == ("/out",)
        assert job.jar_path == "/jars/a.jar"
        assert job.main_class == "com.x.A"
