"""Unit tests for the workflow model (paper §II)."""

import pytest

from repro.workflow.model import WJob, Workflow, WorkflowValidationError


def wjob(name, maps=1, reduces=1, pre=()):
    return WJob(
        name=name,
        num_maps=maps,
        num_reduces=reduces,
        map_duration=10.0 if maps else 0.0,
        reduce_duration=20.0 if reduces else 0.0,
        prerequisites=frozenset(pre),
    )


class TestWJobValidation:
    def test_valid_job(self):
        job = wjob("a", maps=3, reduces=2)
        assert job.total_tasks == 5
        assert job.serial_length == 30.0
        assert job.total_work == 3 * 10 + 2 * 20

    def test_map_only_job(self):
        job = WJob(name="m", num_maps=4, num_reduces=0, map_duration=5.0, reduce_duration=0.0)
        assert job.serial_length == 5.0
        assert job.total_work == 20.0

    def test_reduce_only_job(self):
        job = WJob(name="r", num_maps=0, num_reduces=2, map_duration=0.0, reduce_duration=7.0)
        assert job.serial_length == 7.0

    def test_empty_name_rejected(self):
        with pytest.raises(WorkflowValidationError):
            wjob("")

    def test_zero_tasks_rejected(self):
        with pytest.raises(WorkflowValidationError):
            WJob(name="x", num_maps=0, num_reduces=0, map_duration=1.0, reduce_duration=1.0)

    def test_negative_counts_rejected(self):
        with pytest.raises(WorkflowValidationError):
            WJob(name="x", num_maps=-1, num_reduces=1, map_duration=1.0, reduce_duration=1.0)

    def test_nonpositive_duration_rejected(self):
        with pytest.raises(WorkflowValidationError):
            WJob(name="x", num_maps=1, num_reduces=0, map_duration=0.0, reduce_duration=0.0)

    def test_self_dependency_rejected(self):
        with pytest.raises(WorkflowValidationError):
            wjob("x", pre=("x",))


class TestWorkflowValidation:
    def test_duplicate_job_names_rejected(self):
        with pytest.raises(WorkflowValidationError):
            Workflow("w", [wjob("a"), wjob("a")])

    def test_dangling_prerequisite_rejected(self):
        with pytest.raises(WorkflowValidationError):
            Workflow("w", [wjob("a", pre=("ghost",))])

    def test_cycle_rejected(self):
        jobs = [wjob("a", pre=("b",)), wjob("b", pre=("a",))]
        with pytest.raises(WorkflowValidationError, match="cycle"):
            Workflow("w", jobs)

    def test_three_cycle_rejected(self):
        jobs = [wjob("a", pre=("c",)), wjob("b", pre=("a",)), wjob("c", pre=("b",))]
        with pytest.raises(WorkflowValidationError, match="cycle"):
            Workflow("w", jobs)

    def test_empty_workflow_rejected(self):
        with pytest.raises(WorkflowValidationError):
            Workflow("w", [])

    def test_deadline_before_submit_rejected(self):
        with pytest.raises(WorkflowValidationError):
            Workflow("w", [wjob("a")], submit_time=100.0, deadline=50.0)


class TestWorkflowStructure:
    @pytest.fixture
    def diamond(self):
        return Workflow(
            "d",
            [wjob("a"), wjob("b", pre=("a",)), wjob("c", pre=("a",)), wjob("d", pre=("b", "c"))],
        )

    def test_dependents_inverts_prerequisites(self, diamond):
        assert diamond.dependents("a") == {"b", "c"}
        assert diamond.dependents("b") == {"d"}
        assert diamond.dependents("d") == frozenset()

    def test_roots_and_sinks(self, diamond):
        assert diamond.roots() == ("a",)
        assert diamond.sinks() == ("d",)

    def test_topological_order_respects_edges(self, diamond):
        order = diamond.topological_order()
        pos = {name: i for i, name in enumerate(order)}
        for job in diamond:
            for pre in job.prerequisites:
                assert pos[pre] < pos[job.name]

    def test_total_tasks_sums_jobs(self, diamond):
        assert diamond.total_tasks == 4 * 2

    def test_lookup_and_containment(self, diamond):
        assert "a" in diamond
        assert "zzz" not in diamond
        assert diamond.job("b").name == "b"
        assert len(diamond) == 4

    def test_relative_deadline(self):
        w = Workflow("w", [wjob("a")], submit_time=10.0, deadline=110.0)
        assert w.relative_deadline == 100.0
        assert Workflow("w", [wjob("a")]).relative_deadline is None

    def test_with_timing_copies(self, diamond):
        shifted = diamond.with_timing(submit_time=50.0, deadline=250.0)
        assert shifted.submit_time == 50.0
        assert shifted.deadline == 250.0
        assert diamond.submit_time == 0.0  # original untouched
        assert shifted.job_names() == diamond.job_names()

    def test_renamed_copies(self, diamond):
        clone = diamond.renamed("d2")
        assert clone.name == "d2"
        assert clone.total_tasks == diamond.total_tasks

    def test_iteration_yields_jobs(self, diamond):
        assert [j.name for j in diamond] == ["a", "b", "c", "d"]
