"""Behavioural tests for the ported baselines: FIFO, Fair, EDF (§V-B)."""

import pytest

from repro.cluster.config import ClusterConfig
from repro.cluster.simulation import ClusterSimulation
from repro.schedulers.edf import EdfScheduler
from repro.schedulers.fair import FairScheduler
from repro.schedulers.fifo import FifoScheduler
from repro.workflow.builder import WorkflowBuilder


def run(workflows, scheduler, nodes=1):
    config = ClusterConfig(
        num_nodes=nodes, map_slots_per_node=2, reduce_slots_per_node=1, heartbeat_interval=float("inf")
    )
    sim = ClusterSimulation(config, scheduler, submission="oozie")
    sim.add_workflows(workflows)
    return sim.run(), sim


def wide(name, maps, submit=0.0, deadline=None, map_s=10.0):
    b = WorkflowBuilder(name).job("j", maps=maps, reduces=0, map_s=map_s).submit_at(submit)
    if deadline is not None:
        b.deadline(relative=deadline)
    return b.build()


class TestFifo:
    def test_strict_submission_order(self):
        first = wide("first", maps=4, submit=0.0)
        second = wide("second", maps=4, submit=1.0)
        result, _sim = run([first, second], FifoScheduler())
        # 2 map slots: first takes 0-20, second 20-41ish.
        assert result.stats["first"].completion_time < result.stats["second"].completion_time
        assert result.stats["first"].completion_time == 20.0

    def test_head_of_line_blocking(self):
        """A giant first job delays a tiny later one — FIFO's signature."""
        giant = wide("giant", maps=20, submit=0.0)
        tiny = wide("tiny", maps=1, submit=1.0, deadline=30.0)
        result, _sim = run([giant, tiny], FifoScheduler())
        assert not result.stats["tiny"].met_deadline

    def test_ignores_deadlines_entirely(self):
        urgent = wide("urgent", maps=4, submit=1.0, deadline=15.0)
        lazy = wide("lazy", maps=4, submit=0.0, deadline=10_000.0)
        result, _sim = run([urgent, lazy], FifoScheduler())
        assert result.stats["lazy"].completion_time < result.stats["urgent"].completion_time


class TestFair:
    def test_even_split_between_jobs(self):
        a = wide("a", maps=10, map_s=10.0)
        b = wide("b", maps=10, map_s=10.0)
        result, _sim = run([a, b], FairScheduler())
        # Each gets ~1 of 2 map slots: both finish around 100s.
        ta, tb = result.stats["a"].completion_time, result.stats["b"].completion_time
        assert abs(ta - tb) <= 10.0
        assert max(ta, tb) == pytest.approx(100.0, abs=10.0)

    def test_small_job_not_starved(self):
        giant = wide("giant", maps=40)
        tiny = wide("tiny", maps=2, submit=1.0)
        result, _sim = run([giant, tiny], FairScheduler())
        # Fair shares a slot with tiny as soon as one frees (Facebook's
        # motivation): tiny finishes in ~3 waves, not after giant's 20.
        assert result.stats["tiny"].completion_time <= 30.0
        assert result.stats["tiny"].completion_time < result.stats["giant"].completion_time / 3

    def test_work_conserving_single_job(self):
        a = wide("a", maps=4)
        result, _sim = run([a], FairScheduler())
        assert result.stats["a"].completion_time == 20.0


class TestEdf:
    def test_earliest_deadline_wins(self):
        # Slots are non-preemptible: tight can only start once loose's
        # first wave (0-10s) drains, so its deadline must cover that.
        tight = wide("tight", maps=4, submit=1.0, deadline=35.0)
        loose = wide("loose", maps=4, submit=0.0, deadline=10_000.0)
        result, _sim = run([tight, loose], EdfScheduler())
        assert result.stats["tight"].met_deadline
        # loose waited: it can at most have grabbed the first wave.
        assert result.stats["loose"].completion_time > result.stats["tight"].completion_time

    def test_no_deadline_sorts_last(self):
        urgent = wide("urgent", maps=4, submit=1.0, deadline=30.0)
        best_effort = wide("be", maps=4, submit=0.0)
        result, _sim = run([urgent, best_effort], EdfScheduler())
        assert result.stats["urgent"].met_deadline

    def test_edf_starves_late_deadline_under_load(self):
        """The Fig 11/16 pathology: EDF gives everything to the earliest
        deadline even when the late workflow would only need a little."""
        hog = wide("hog", maps=20, submit=0.0, deadline=120.0)
        late = wide("late", maps=2, submit=1.0, deadline=200.0)
        result, _sim = run([hog, late], EdfScheduler())
        # late's 2 maps only run after hog's 20 (10 waves of 2).
        assert result.stats["late"].completion_time >= result.stats["hog"].completion_time

    def test_completed_workflows_leave_queue(self):
        scheduler = EdfScheduler()
        a = wide("a", maps=2, deadline=1000.0)
        b = wide("b", maps=2, submit=1.0, deadline=2000.0)
        run([a, b], scheduler)
        assert scheduler._order == []


class TestCrossSchedulerSanity:
    """All baselines complete all workflows (work conservation) and agree
    on total completed work."""

    @pytest.mark.parametrize("scheduler_cls", [FifoScheduler, FairScheduler, EdfScheduler])
    def test_everything_completes(self, scheduler_cls, small_workflow, chain3):
        wfs = [small_workflow, chain3.with_timing(3.0, None).renamed("chain")]
        result, sim = run(wfs, scheduler_cls(), nodes=2)
        assert all(s.completion_time < float("inf") for s in result.stats.values())
        assert result.metrics.tasks_completed == sum(w.total_tasks for w in wfs)
