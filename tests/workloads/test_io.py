"""Tests for workflow-set JSON (de)serialization."""

import pytest

from repro.workloads.io import (
    load_workflows,
    save_workflows,
    workflows_from_json,
    workflows_to_json,
)
from repro.workloads.yahoo import YahooTraceConfig, generate_yahoo_workflows


class TestRoundTrip:
    def test_yahoo_set_roundtrips(self):
        config = YahooTraceConfig(num_workflows=8, total_jobs=24, num_single_job=2, seed=5)
        original = generate_yahoo_workflows(config)
        restored = workflows_from_json(workflows_to_json(original))
        assert len(restored) == len(original)
        for a, b in zip(original, restored):
            assert a.name == b.name
            assert a.submit_time == b.submit_time
            assert a.deadline == b.deadline
            assert a.job_names() == b.job_names()
            for name in a.job_names():
                ja, jb = a.job(name), b.job(name)
                assert (ja.num_maps, ja.num_reduces) == (jb.num_maps, jb.num_reduces)
                assert (ja.map_duration, ja.reduce_duration) == (jb.map_duration, jb.reduce_duration)
                assert ja.prerequisites == jb.prerequisites

    def test_file_roundtrip(self, tmp_path, small_workflow):
        path = str(tmp_path / "set.json")
        save_workflows(path, [small_workflow])
        loaded = load_workflows(path)
        assert loaded[0].name == small_workflow.name
        assert loaded[0].deadline == small_workflow.deadline

    def test_best_effort_deadline_preserved(self, chain3):
        restored = workflows_from_json(workflows_to_json([chain3]))
        assert restored[0].deadline is None

    def test_metadata_fields_preserved(self):
        from repro.workflow.builder import WorkflowBuilder

        wf = (
            WorkflowBuilder("m")
            .job("a", maps=1, reduces=0, map_s=1, inputs=["/i"], outputs=["/o"], jar_path="/j.jar",
                 main_class="X")
            .build()
        )
        restored = workflows_from_json(workflows_to_json([wf]))[0]
        job = restored.job("a")
        assert job.inputs == ("/i",)
        assert job.outputs == ("/o",)
        assert job.jar_path == "/j.jar"
        assert job.main_class == "X"


class TestValidation:
    def test_wrong_format_rejected(self):
        with pytest.raises(ValueError, match="not a repro"):
            workflows_from_json('{"format": "something-else", "version": 1, "workflows": []}')

    def test_wrong_version_rejected(self):
        with pytest.raises(ValueError, match="version"):
            workflows_from_json('{"format": "repro-workflows", "version": 99, "workflows": []}')

    def test_invalid_workflow_inside_rejected(self):
        doc = (
            '{"format": "repro-workflows", "version": 1, "workflows": '
            '[{"name": "w", "submit": 0, "deadline": null, "jobs": '
            '[{"name": "a", "maps": 1, "reduces": 0, "map_duration": 1, '
            '"reduce_duration": 0, "after": ["ghost"]}]}]}'
        )
        from repro.workflow.model import WorkflowValidationError

        with pytest.raises(WorkflowValidationError):
            workflows_from_json(doc)
