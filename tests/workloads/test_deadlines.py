"""Unit tests for deadline assignment."""

import pytest

from repro.core.plangen import simulate_makespan
from repro.workflow.builder import WorkflowBuilder
from repro.workloads.deadlines import assign_deadlines, stretch_deadline


def wf(name="w", submit=0.0):
    return (
        WorkflowBuilder(name)
        .job("a", maps=4, reduces=2, map_s=10, reduce_s=20)
        .submit_at(submit)
        .build()
    )


class TestStretchDeadline:
    def test_deadline_is_stretched_makespan(self):
        w = wf(submit=100.0)
        stretched = stretch_deadline(w, reference_slots=4, stretch=2.0)
        expected = 100.0 + 2.0 * simulate_makespan(w, 4)
        assert stretched.deadline == pytest.approx(expected)
        assert stretched.submit_time == 100.0

    def test_stretch_one_is_exact_makespan(self):
        w = wf()
        stretched = stretch_deadline(w, reference_slots=8, stretch=1.0)
        assert stretched.relative_deadline == pytest.approx(simulate_makespan(w, 8))

    def test_nonpositive_stretch_rejected(self):
        with pytest.raises(ValueError):
            stretch_deadline(wf(), reference_slots=4, stretch=0.0)

    def test_original_untouched(self):
        w = wf()
        stretch_deadline(w, reference_slots=4, stretch=2.0)
        assert w.deadline is None


class TestAssignDeadlines:
    def test_all_get_deadlines_in_range(self):
        wfs = [wf(f"w{i}", submit=float(i)) for i in range(10)]
        out = assign_deadlines(wfs, reference_slots=4, stretch_range=(1.5, 2.5), seed=1)
        for original, assigned in zip(wfs, out):
            makespan = simulate_makespan(original, 4)
            rel = assigned.relative_deadline
            assert 1.5 * makespan - 1e-9 <= rel <= 2.5 * makespan + 1e-9

    def test_seeded_determinism(self):
        wfs = [wf(f"w{i}") for i in range(5)]
        a = assign_deadlines(wfs, 4, seed=3)
        b = assign_deadlines(wfs, 4, seed=3)
        assert [x.deadline for x in a] == [x.deadline for x in b]

    def test_bad_range_rejected(self):
        with pytest.raises(ValueError):
            assign_deadlines([wf()], 4, stretch_range=(2.0, 1.0))
        with pytest.raises(ValueError):
            assign_deadlines([wf()], 4, stretch_range=(0.0, 1.0))
