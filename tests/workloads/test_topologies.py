"""Unit tests for topology constructors."""

import numpy as np
import pytest

from repro.workflow import dag
from repro.workloads.distributions import TraceDistributions
from repro.workloads.topologies import (
    FIG11_DURATION_SCALE,
    chain_workflow,
    diamond_workflow,
    fanout_workflow,
    fig7_topology,
    fig11_workflows,
    random_dag_workflow,
)


class TestFig7:
    def test_exactly_33_jobs(self):
        assert len(fig7_topology()) == 33

    def test_single_source_single_sink(self):
        w = fig7_topology()
        assert w.roots() == ("src",)
        assert w.sinks() == ("sink",)

    def test_duration_scale_scales_work(self):
        base = fig7_topology("a", duration_scale=1.0)
        double = fig7_topology("b", duration_scale=2.0)
        assert double.total_work == pytest.approx(2 * base.total_work)
        assert double.total_tasks == base.total_tasks

    def test_deadline_attached(self):
        w = fig7_topology(submit_time=100.0, relative_deadline=500.0)
        assert w.deadline == 600.0

    def test_structure_has_forks_and_joins(self):
        w = fig7_topology()
        assert len(w.dependents("prep2")) == 4  # four branches
        assert len(w.prerequisites("sink")) == 5  # m1, m2 + 3 sides


class TestFig11Set:
    def test_three_workflows_paper_timing(self):
        wfs = fig11_workflows()
        assert [w.submit_time for w in wfs] == [0.0, 300.0, 600.0]
        assert [w.deadline - w.submit_time for w in wfs] == [4800.0, 4200.0, 3600.0]
        assert all(len(w) == 33 for w in wfs)

    def test_later_release_earlier_absolute_deadline_ordering(self):
        wfs = fig11_workflows()
        absolute = [w.deadline for w in wfs]
        assert absolute == sorted(absolute, reverse=True)

    def test_default_scale(self):
        wfs = fig11_workflows()
        reference = fig7_topology(duration_scale=FIG11_DURATION_SCALE)
        assert wfs[0].total_work == pytest.approx(reference.total_work)


class TestParametricFamilies:
    def test_chain(self):
        w = chain_workflow("c", length=5)
        assert len(w) == 5
        assert dag.is_chain(w)

    def test_chain_length_one(self):
        assert len(chain_workflow("c", length=1)) == 1

    def test_chain_invalid_length(self):
        with pytest.raises(ValueError):
            chain_workflow("c", length=0)

    def test_fanout(self):
        w = fanout_workflow("f", width=6)
        assert len(w) == 8
        assert len(w.dependents("src")) == 6
        assert len(w.prerequisites("sink")) == 6

    def test_diamond(self):
        w = diamond_workflow()
        assert len(w) == 4
        assert dag.height(w) == 3

    def test_random_dag_valid_and_seeded(self):
        rng1 = np.random.default_rng(5)
        rng2 = np.random.default_rng(5)
        dist1 = TraceDistributions(seed=1)
        dist2 = TraceDistributions(seed=1)
        w1 = random_dag_workflow("r", 10, rng1, dist1)
        w2 = random_dag_workflow("r", 10, rng2, dist2)
        assert [j.prerequisites for j in w1.jobs] == [j.prerequisites for j in w2.jobs]
        assert w1.total_tasks == w2.total_tasks

    def test_random_dag_respects_max_parents(self):
        rng = np.random.default_rng(5)
        w = random_dag_workflow("r", 30, rng, edge_prob=1.0, max_parents=2)
        assert all(len(j.prerequisites) <= 2 for j in w.jobs)

    def test_random_dag_single_job(self):
        rng = np.random.default_rng(5)
        assert len(random_dag_workflow("r", 1, rng)) == 1
