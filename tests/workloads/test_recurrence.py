"""Tests for recurrent workflow expansion."""

import pytest

from repro.cluster.config import ClusterConfig
from repro.cluster.simulation import ClusterSimulation
from repro.schedulers.fifo import FifoScheduler
from repro.workflow.builder import WorkflowBuilder
from repro.workloads.recurrence import Recurrence, expand_recurrences


@pytest.fixture
def template():
    return (
        WorkflowBuilder("hourly")
        .job("a", maps=2, reduces=1, map_s=10, reduce_s=20)
        .deadline(relative=200)
        .build()
    )


class TestExpansion:
    def test_instances_named_and_timed(self, template):
        instances = expand_recurrences(template, Recurrence(period=3600.0, count=3))
        assert [w.name for w in instances] == ["hourly@0", "hourly@1", "hourly@2"]
        assert [w.submit_time for w in instances] == [0.0, 3600.0, 7200.0]

    def test_deadlines_shift_with_release(self, template):
        instances = expand_recurrences(template, Recurrence(period=100.0, count=2))
        assert instances[0].deadline == 200.0
        assert instances[1].deadline == 300.0

    def test_override_relative_deadline(self, template):
        instances = expand_recurrences(
            template, Recurrence(period=100.0, count=2, relative_deadline=50.0)
        )
        assert instances[1].deadline == 150.0

    def test_best_effort_template_stays_best_effort(self):
        template = WorkflowBuilder("t").job("a", maps=1, reduces=0, map_s=1).build()
        instances = expand_recurrences(template, Recurrence(period=10.0, count=2))
        assert all(w.deadline is None for w in instances)

    def test_start_offset(self, template):
        instances = expand_recurrences(template, Recurrence(period=10.0, count=2, start=500.0))
        assert [w.submit_time for w in instances] == [500.0, 510.0]

    def test_topology_preserved(self, template):
        instances = expand_recurrences(template, Recurrence(period=10.0, count=2))
        assert all(w.job_names() == template.job_names() for w in instances)

    def test_validation(self):
        with pytest.raises(ValueError):
            Recurrence(period=0.0, count=1)
        with pytest.raises(ValueError):
            Recurrence(period=1.0, count=0)
        with pytest.raises(ValueError):
            Recurrence(period=1.0, count=1, relative_deadline=-5.0)


class TestRecurrentSimulation:
    def test_instances_run_independently(self, template):
        config = ClusterConfig(
            num_nodes=2, map_slots_per_node=2, reduce_slots_per_node=1, heartbeat_interval=float("inf")
        )
        sim = ClusterSimulation(config, FifoScheduler(), submission="oozie")
        sim.add_workflows(expand_recurrences(template, Recurrence(period=100.0, count=3)))
        result = sim.run()
        assert len(result.stats) == 3
        # Period (100 s) exceeds the instance makespan (30 s): no overlap,
        # identical workspans.
        spans = [result.stats[f"hourly@{k}"].workspan for k in range(3)]
        assert spans[0] == spans[1] == spans[2]
        assert result.miss_ratio == 0.0
