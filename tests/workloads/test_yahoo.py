"""Tests for the Yahoo!-like workflow-set generator."""

import numpy as np
import pytest

from repro.workloads.yahoo import (
    YahooTraceConfig,
    generate_job_trace,
    generate_yahoo_workflows,
    partition_jobs,
)


class TestComposition:
    """The paper's published numbers: 180 jobs, 61 workflows, 15 singletons,
    largest workflow 12 jobs."""

    def test_default_composition(self):
        wfs = generate_yahoo_workflows()
        assert len(wfs) == 61
        assert sum(len(w) for w in wfs) == 180
        assert sum(1 for w in wfs if len(w) == 1) == 15
        assert max(len(w) for w in wfs) <= 12

    def test_drop_single_job_filters_only_singletons(self):
        full = generate_yahoo_workflows(YahooTraceConfig())
        filtered = generate_yahoo_workflows(YahooTraceConfig(drop_single_job=True))
        assert len(filtered) == 46
        kept = {w.name for w in filtered}
        for w in full:
            assert (w.name in kept) == (len(w) > 1)

    def test_deterministic_by_seed(self):
        a = generate_yahoo_workflows(YahooTraceConfig(seed=5))
        b = generate_yahoo_workflows(YahooTraceConfig(seed=5))
        assert [(w.name, w.submit_time, w.deadline, w.total_tasks) for w in a] == [
            (w.name, w.submit_time, w.deadline, w.total_tasks) for w in b
        ]

    def test_different_seed_different_set(self):
        a = generate_yahoo_workflows(YahooTraceConfig(seed=5))
        b = generate_yahoo_workflows(YahooTraceConfig(seed=6))
        assert [w.total_tasks for w in a] != [w.total_tasks for w in b]

    def test_partition_infeasible_configs_rejected(self):
        rng = np.random.default_rng(0)
        with pytest.raises(ValueError):
            partition_jobs(YahooTraceConfig(num_workflows=10, total_jobs=9, num_single_job=10), rng)
        with pytest.raises(ValueError):
            partition_jobs(
                YahooTraceConfig(num_workflows=16, total_jobs=500, num_single_job=15, max_workflow_size=12),
                rng,
            )


class TestTiming:
    def test_submissions_within_window_and_sorted(self):
        config = YahooTraceConfig(submission_window=600.0)
        wfs = generate_yahoo_workflows(config)
        times = [w.submit_time for w in wfs]
        assert all(0.0 <= t <= 600.0 for t in times)
        assert times == sorted(times)

    def test_every_workflow_has_deadline(self):
        wfs = generate_yahoo_workflows()
        assert all(w.deadline is not None and w.deadline > w.submit_time for w in wfs)

    def test_stretch_range_bounds_deadlines(self):
        from repro.core.plangen import simulate_makespan

        config = YahooTraceConfig(stretch_range=(2.0, 2.0))  # fixed stretch
        wfs = generate_yahoo_workflows(config)
        for w in wfs[:8]:
            makespan = simulate_makespan(w, config.reference_slots)
            assert w.deadline == pytest.approx(w.submit_time + 2.0 * makespan)


class TestJobTrace:
    def test_size_and_determinism(self):
        a = generate_job_trace(num_jobs=100, seed=3)
        b = generate_job_trace(num_jobs=100, seed=3)
        assert len(a) == 100
        assert a == b

    def test_task_caps_applied(self):
        wfs = generate_yahoo_workflows(YahooTraceConfig(max_maps_per_job=40, max_reduces_per_job=4, task_scale=1.0))
        for w in wfs:
            for j in w.jobs:
                assert j.num_maps <= 40
                assert j.num_reduces <= 4
