"""Tests that the fitted distributions hit the paper's published anchors
(Figs 5-6)."""

import numpy as np
import pytest

from repro.workloads.distributions import TraceDistributions, cdf_points


@pytest.fixture(scope="module")
def big_sample():
    dist = TraceDistributions(seed=123)
    return dist.sample_jobs(4000)


class TestPaperAnchors:
    """Each anchor quotes §V-A's description of the WebScope marginals."""

    def test_most_mappers_between_10_and_100s(self, big_sample):
        durations = np.array([j.map_duration for j in big_sample])
        frac = np.mean((durations >= 10.0) & (durations <= 100.0))
        assert frac > 0.6

    def test_over_half_of_reducers_above_100s(self, big_sample):
        durations = np.array([j.reduce_duration for j in big_sample if j.num_reduces > 0])
        assert np.mean(durations > 100.0) > 0.5

    def test_about_ten_percent_reducers_above_1000s(self, big_sample):
        durations = np.array([j.reduce_duration for j in big_sample if j.num_reduces > 0])
        assert 0.04 < np.mean(durations > 1000.0) < 0.18

    def test_about_thirty_percent_jobs_over_100_mappers(self, big_sample):
        counts = np.array([j.num_maps for j in big_sample])
        assert 0.2 < np.mean(counts > 100) < 0.4

    def test_over_sixty_percent_jobs_under_10_reducers(self, big_sample):
        counts = np.array([j.num_reduces for j in big_sample])
        assert np.mean(counts < 10) > 0.6

    def test_mappers_usually_outnumber_reducers(self, big_sample):
        ratio_gt_one = np.mean([j.num_maps > j.num_reduces for j in big_sample])
        assert ratio_gt_one > 0.75

    def test_reducers_take_longer_than_mappers(self, big_sample):
        with_reduce = [j for j in big_sample if j.num_reduces > 0]
        frac = np.mean([j.reduce_duration > j.map_duration for j in with_reduce])
        assert frac > 0.7


class TestSampler:
    def test_seed_reproducibility(self):
        a = TraceDistributions(seed=7).sample_jobs(50)
        b = TraceDistributions(seed=7).sample_jobs(50)
        assert a == b

    def test_different_seeds_differ(self):
        a = TraceDistributions(seed=7).sample_jobs(50)
        b = TraceDistributions(seed=8).sample_jobs(50)
        assert a != b

    def test_scale_shrinks_counts_not_durations(self):
        full = TraceDistributions(seed=7).sample_jobs(200, scale=1.0)
        small = TraceDistributions(seed=7).sample_jobs(200, scale=0.25)
        assert sum(j.num_maps for j in small) < sum(j.num_maps for j in full)
        # Same RNG stream -> identical durations.
        assert [j.map_duration for j in small] == [j.map_duration for j in full]

    def test_clip_parameters_respected(self):
        dist = TraceDistributions(seed=7, max_maps=50, max_reduces=5)
        jobs = dist.sample_jobs(500)
        assert max(j.num_maps for j in jobs) <= 50
        assert max(j.num_reduces for j in jobs) <= 5

    def test_every_job_has_at_least_one_task(self):
        jobs = TraceDistributions(seed=9).sample_jobs(500)
        assert all(j.num_maps + j.num_reduces >= 1 for j in jobs)

    def test_map_only_jobs_have_zero_reduce_duration(self):
        jobs = TraceDistributions(seed=9).sample_jobs(500)
        for j in jobs:
            if j.num_reduces == 0:
                assert j.reduce_duration == 0.0


class TestCdfPoints:
    def test_cdf_basic(self):
        points = cdf_points([1.0, 2.0, 3.0, 4.0], [0.5, 2.0, 2.5, 10.0])
        assert points == [(0.5, 0.0), (2.0, 0.5), (2.5, 0.5), (10.0, 1.0)]

    def test_cdf_monotone(self):
        values = TraceDistributions(seed=5).sample_jobs(300)
        cdf = cdf_points([j.map_duration for j in values], [10, 30, 100, 300, 1000])
        fracs = [f for _, f in cdf]
        assert fracs == sorted(fracs)
