"""Shared hypothesis strategies for the test suite."""

from hypothesis import strategies as st

from repro.workflow.builder import WorkflowBuilder


@st.composite
def workflows(draw, max_jobs=8, max_tasks=6, max_duration=50.0, with_deadline=False):
    """Random valid workflows: layered DAGs with bounded fan-in."""
    n = draw(st.integers(1, max_jobs))
    builder = WorkflowBuilder("hw")
    names = []
    for k in range(n):
        parents = []
        for cand in names:
            if len(parents) < 2 and draw(st.booleans()):
                parents.append(cand)
        maps = draw(st.integers(0, max_tasks))
        reduces = draw(st.integers(0, max_tasks)) if maps else draw(st.integers(1, max_tasks))
        builder.job(
            f"j{k}",
            maps=maps,
            reduces=reduces,
            map_s=draw(st.floats(1.0, max_duration)),
            reduce_s=draw(st.floats(1.0, max_duration)),
            after=parents,
        )
        names.append(f"j{k}")
    if with_deadline:
        builder.deadline(relative=draw(st.floats(10.0, 10_000.0)))
    return builder.build()
