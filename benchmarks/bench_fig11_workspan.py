"""Fig 11: workspans of the three synthetic workflows, six schedulers.

Paper shape: Fair is worst; FIFO finishes W-1 early but creates huge
tardiness on W-3; EDF favours W-3 (far before its deadline) at the others'
expense; all three WOHA variants satisfy every deadline.
"""

from repro.metrics.report import format_table

from benchmarks._helpers import STACKS, emit, fig11_runs

DEADLINES = {"W-1": 4800.0, "W-2": 4200.0, "W-3": 3600.0}


def test_fig11_workspan(benchmark):
    runs = benchmark.pedantic(fig11_runs, rounds=1, iterations=1)
    rows = []
    for name, _f in STACKS:
        result = runs[name]
        rows.append(
            [name]
            + [result.stats[w].workspan for w in ("W-1", "W-2", "W-3")]
            + [sum(1 for s in result.stats.values() if not s.met_deadline)]
        )
    table = format_table(
        ["scheduler", "W-1", "W-2", "W-3", "misses"],
        rows,
        title=(
            "Fig 11: workspan (s) of three Fig-7-topology workflows, 32 slaves\n"
            "releases 0/300/600 s, relative deadlines 4800/4200/3600 s"
        ),
        float_fmt="{:.1f}",
    )
    emit("fig11_workspan", table)
    # Paper's headline: every WOHA variant meets all three deadlines...
    for variant in ("WOHA-HLF", "WOHA-LPF", "WOHA-MPF"):
        assert runs[variant].miss_ratio == 0.0
    # ...while FIFO and Fair do not.
    assert runs["FIFO"].miss_ratio > 0.0
    assert runs["Fair"].miss_ratio > 0.0
    # EDF's signature distortion: W-3 finishes earliest under EDF.
    w3 = {name: runs[name].stats["W-3"].workspan for name, _f in STACKS}
    assert min(w3, key=w3.get) == "EDF"