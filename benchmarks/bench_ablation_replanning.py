"""Ablation: mid-flight replanning (the paper's §VI-C future direction).

Submission-time plans go stale under duration-estimation error.  This
bench runs the Fig 11 experiment across noise levels comparing plain
WOHA-LPF against the replanning variant, which regenerates a workflow's
plan from its remaining work when the lag crosses a threshold.
"""

from repro import ClusterConfig, ClusterSimulation, LognormalNoise, make_planner
from repro.core.replanning import ReplanningWohaScheduler
from repro.core.scheduler import WohaScheduler
from repro.metrics.report import format_table
from repro.workloads.topologies import fig11_workflows

from benchmarks._helpers import emit

SIGMAS = (0.0, 0.2, 0.5)


def run(replan: bool, sigma: float):
    scheduler = (
        ReplanningWohaScheduler(min_lag=20, lag_fraction=0.05, cooldown=120.0)
        if replan
        else WohaScheduler()
    )
    config = ClusterConfig(
        num_nodes=32, map_slots_per_node=2, reduce_slots_per_node=1, heartbeat_interval=float("inf")
    )
    sim = ClusterSimulation(
        config,
        scheduler,
        submission="woha",
        planner=make_planner("lpf"),
        duration_sampler_factory=LognormalNoise(sigma, seed=9),
    )
    sim.add_workflows(fig11_workflows())
    return sim.run(), scheduler


def test_ablation_replanning(benchmark):
    def sweep():
        rows = []
        for sigma in SIGMAS:
            plain, _p = run(False, sigma)
            replanned, scheduler = run(True, sigma)
            rows.append(
                [
                    sigma,
                    sum(1 for s in plain.stats.values() if not s.met_deadline),
                    plain.max_tardiness,
                    sum(1 for s in replanned.stats.values() if not s.met_deadline),
                    replanned.max_tardiness,
                    scheduler.replans,
                ]
            )
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    table = format_table(
        ["sigma", "plain misses", "plain maxT", "replan misses", "replan maxT", "replans"],
        rows,
        title="Ablation: Fig 11 with and without mid-flight replanning (paired noise)",
        float_fmt="{:.1f}",
    )
    emit("ablation_replanning", table)
    by_sigma = {row[0]: row[1:] for row in rows}
    # Noise-free: replanning never triggers and decisions are identical.
    assert by_sigma[0.0][4] == 0
    assert by_sigma[0.0][0] == by_sigma[0.0][2] == 0
    # Under heavy noise replanning fires and never worsens max tardiness.
    assert by_sigma[0.5][4] > 0
    assert by_sigma[0.5][3] <= by_sigma[0.5][1]