"""The pre-fast-path planning pipeline, preserved as a reference oracle.

This module is a frozen copy of the planning path as it stood before the
fast-path rewrite: the Algorithm 1 kernel with an ``active`` list and an
O(|A|) candidate rescan per assignment, the cap binary search starting at
``lo = 1`` with no memoisation and no analytic seeding, and
``capped_plan`` re-running the simulation at the found cap instead of
reusing the search's final probe.

It exists for two consumers:

* ``tests/integration/test_plan_equivalence.py`` asserts the fast path
  emits byte-identical ``ProgressPlan``s over the evaluation corpus;
* ``benchmarks/bench_plan_throughput.py`` measures the speedup against it.

Do not "fix" or optimise this module — its value is staying exactly what
the old path computed.  The shared ``_batches_to_plan`` post-processing is
imported from ``repro.core.plangen`` because it was not changed by the
rewrite.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.capsearch import CapSearchResult, SplitCapSearchResult, _split_caps
from repro.core.plangen import _batches_to_plan
from repro.core.progress import ProgressPlan
from repro.workflow.model import Workflow

_FREE = 0
_ADD = 1


class _SimJob:
    """Mutable per-job counters for the plan simulation."""

    __slots__ = ("name", "maps_left", "reduces_left", "map_dur", "reduce_dur", "rank", "pending")

    def __init__(self, name: str, maps: int, reduces: int, map_dur: float, reduce_dur: float, rank: int, pending: int):
        self.name = name
        self.maps_left = maps
        self.reduces_left = reduces
        self.map_dur = map_dur
        self.reduce_dur = reduce_dur
        self.rank = rank
        self.pending = pending  # unfinished prerequisites


def _simulate(
    workflow: Workflow,
    cap: int,
    job_order: Sequence[str],
    pooled: bool,
    reduce_cap: int = 0,
) -> Tuple[List[Tuple[float, int]], float]:
    if cap < 1:
        raise ValueError("resource cap must be >= 1")
    rank = {name: i for i, name in enumerate(job_order)}
    missing = set(workflow.job_names()) - set(rank)
    if missing:
        raise ValueError(f"job_order missing jobs: {sorted(missing)}")

    jobs: Dict[str, _SimJob] = {}
    for wjob in workflow.jobs:
        jobs[wjob.name] = _SimJob(
            wjob.name,
            wjob.num_maps,
            wjob.num_reduces,
            wjob.map_duration,
            wjob.reduce_duration,
            rank[wjob.name],
            len(wjob.prerequisites),
        )

    active: List[_SimJob] = [jobs[name] for name in workflow.roots()]
    events: List[Tuple[float, int, int, object]] = []  # (time, seq, type, value)
    seq = itertools.count()
    free_maps = cap
    free_reduces = reduce_cap  # unused when pooled

    def push(time: float, etype: int, value) -> None:
        heapq.heappush(events, (time, next(seq), etype, value))

    batches: List[Tuple[float, int]] = []
    makespan = 0.0

    def assign(t: float) -> None:
        nonlocal free_maps, free_reduces
        while active:
            candidates = [
                job
                for job in active
                if (job.maps_left > 0 and free_maps > 0)
                or (
                    job.maps_left == 0
                    and job.reduces_left > 0
                    and ((free_maps if pooled else free_reduces) > 0)
                )
            ]
            if not candidates:
                break
            job = min(candidates, key=lambda j: j.rank)
            if job.maps_left > 0:
                batch = min(job.maps_left, free_maps)
                free_maps -= batch
                job.maps_left -= batch
                batches.append((t, batch))
                push(t + job.map_dur, _FREE, ("m", batch))
                if job.maps_left == 0:
                    active.remove(job)
                    push(t + job.map_dur, _ADD, job.name)
            else:
                avail = free_maps if pooled else free_reduces
                batch = min(job.reduces_left, avail)
                if pooled:
                    free_maps -= batch
                else:
                    free_reduces -= batch
                job.reduces_left -= batch
                batches.append((t, batch))
                push(t + job.reduce_dur, _FREE, ("r", batch))
                if job.reduces_left == 0:
                    active.remove(job)
                    push(t + job.reduce_dur, _ADD, job.name)

    assign(0.0)
    while events:
        t = events[0][0]
        while events and events[0][0] == t:
            _t, _s, etype, value = heapq.heappop(events)
            if etype == _FREE:
                kind, count = value
                if pooled or kind == "m":
                    free_maps += count
                else:
                    free_reduces += count
            else:
                job = jobs[value]
                if job.maps_left == 0 and job.reduces_left == 0:
                    makespan = max(makespan, t)
                    for dep in workflow.dependents(value):
                        dep_job = jobs[dep]
                        dep_job.pending -= 1
                        if dep_job.pending == 0:
                            active.append(dep_job)
                else:
                    active.append(job)
        assign(t)
    if active:
        raise RuntimeError("plan simulation stalled with active jobs and no events")
    unfinished = [j.name for j in jobs.values() if j.maps_left or j.reduces_left]
    if unfinished:
        raise RuntimeError(f"plan simulation left jobs unscheduled: {unfinished}")
    return batches, makespan


def reference_generate_requirements(
    workflow: Workflow,
    cap: int,
    job_order: Optional[Sequence[str]] = None,
    feasible: bool = True,
) -> ProgressPlan:
    order = tuple(job_order) if job_order is not None else workflow.topological_order()
    batches, makespan = _simulate(workflow, cap, order, pooled=True)
    return _batches_to_plan(batches, makespan, order, cap, workflow.total_tasks, feasible)


def reference_generate_requirements_split(
    workflow: Workflow,
    map_cap: int,
    reduce_cap: int,
    job_order: Optional[Sequence[str]] = None,
    feasible: bool = True,
) -> ProgressPlan:
    if reduce_cap < 1:
        raise ValueError("reduce cap must be >= 1")
    order = tuple(job_order) if job_order is not None else workflow.topological_order()
    batches, makespan = _simulate(workflow, map_cap, order, pooled=False, reduce_cap=reduce_cap)
    return _batches_to_plan(
        batches, makespan, order, map_cap + reduce_cap, workflow.total_tasks, feasible
    )


def _reference_makespan(workflow, cap, job_order):
    order = tuple(job_order) if job_order is not None else workflow.topological_order()
    return _simulate(workflow, cap, order, pooled=True)[1]


def reference_find_min_cap(
    workflow: Workflow,
    max_slots: int,
    relative_deadline: Optional[float] = None,
    job_order: Optional[Sequence[str]] = None,
) -> CapSearchResult:
    """The unseeded ``lo = 1`` binary search, one fresh simulation per probe."""
    if max_slots < 1:
        raise ValueError("max_slots must be >= 1")
    if relative_deadline is None:
        relative_deadline = workflow.relative_deadline
    probes = 0
    if relative_deadline is None:
        makespan = _reference_makespan(workflow, max_slots, job_order)
        return CapSearchResult(cap=max_slots, feasible=True, makespan=makespan, probes=1)

    makespan_at_max = _reference_makespan(workflow, max_slots, job_order)
    probes += 1
    if makespan_at_max > relative_deadline:
        return CapSearchResult(cap=max_slots, feasible=False, makespan=makespan_at_max, probes=probes)

    lo, hi = 1, max_slots  # invariant: hi is feasible
    best_makespan = makespan_at_max
    while lo < hi:
        mid = (lo + hi) // 2
        makespan = _reference_makespan(workflow, mid, job_order)
        probes += 1
        if makespan <= relative_deadline:
            hi = mid
            best_makespan = makespan
        else:
            lo = mid + 1
    return CapSearchResult(cap=hi, feasible=True, makespan=best_makespan, probes=probes)


def reference_capped_plan(
    workflow: Workflow,
    max_slots: int,
    job_order: Optional[Sequence[str]] = None,
    relative_deadline: Optional[float] = None,
) -> ProgressPlan:
    """Old behaviour: search, then re-simulate from scratch at the found cap."""
    result = reference_find_min_cap(workflow, max_slots, relative_deadline, job_order)
    return reference_generate_requirements(workflow, result.cap, job_order, feasible=result.feasible)


def reference_find_min_cap_split(
    workflow: Workflow,
    max_slots: int,
    map_fraction: float = 2.0 / 3.0,
    relative_deadline: Optional[float] = None,
    job_order: Optional[Sequence[str]] = None,
) -> SplitCapSearchResult:
    if max_slots < 2:
        raise ValueError("split cap search needs at least 2 slots")
    if not (0.0 < map_fraction < 1.0):
        raise ValueError("map_fraction must be in (0, 1)")
    if relative_deadline is None:
        relative_deadline = workflow.relative_deadline

    def makespan_at(k: int) -> float:
        mc, rc = _split_caps(k, max_slots, map_fraction)
        return reference_generate_requirements_split(workflow, mc, rc, job_order).makespan

    if relative_deadline is None:
        mc, rc = _split_caps(max_slots, max_slots, map_fraction)
        return SplitCapSearchResult(mc, rc, True, makespan_at(max_slots), probes=1)

    probes = 1
    top = makespan_at(max_slots)
    if top > relative_deadline:
        mc, rc = _split_caps(max_slots, max_slots, map_fraction)
        return SplitCapSearchResult(mc, rc, False, top, probes)
    lo, hi = 2, max_slots
    best = top
    while lo < hi:
        mid = (lo + hi) // 2
        makespan = makespan_at(mid)
        probes += 1
        if makespan <= relative_deadline:
            hi = mid
            best = makespan
        else:
            lo = mid + 1
    mc, rc = _split_caps(hi, max_slots, map_fraction)
    return SplitCapSearchResult(mc, rc, True, best, probes)


def reference_capped_plan_split(
    workflow: Workflow,
    max_slots: int,
    map_fraction: float = 2.0 / 3.0,
    job_order: Optional[Sequence[str]] = None,
    relative_deadline: Optional[float] = None,
) -> ProgressPlan:
    result = reference_find_min_cap_split(workflow, max_slots, map_fraction, relative_deadline, job_order)
    return reference_generate_requirements_split(
        workflow, result.map_cap, result.reduce_cap, job_order, feasible=result.feasible
    )


def reference_planner(prioritizer, cap_search: bool = True, pool: str = "pooled", map_fraction: float = 2.0 / 3.0):
    """``(workflow, total_slots) -> ProgressPlan`` on the old path — the
    shape :func:`repro.core.client.make_planner` returns, for side-by-side
    corpus runs."""
    from repro.core.priorities import PRIORITIZERS

    chosen = PRIORITIZERS[prioritizer] if isinstance(prioritizer, str) else prioritizer

    def planner(workflow: Workflow, total_slots: int) -> ProgressPlan:
        job_order = chosen(workflow)
        if pool == "split":
            if cap_search:
                return reference_capped_plan_split(workflow, total_slots, map_fraction, job_order)
            map_cap = max(1, round(total_slots * map_fraction))
            return reference_generate_requirements_split(
                workflow, map_cap, max(1, total_slots - map_cap), job_order
            )
        if cap_search:
            return reference_capped_plan(workflow, total_slots, job_order)
        return reference_generate_requirements(workflow, total_slots, job_order, feasible=True)

    return planner
