"""Full-tree determinism-lint latency.

The lint gate in ``tests/analysis/test_lint_gate.py`` runs on every tier-1
invocation, so its cost is part of the suite's fixed overhead and must stay
small.  This bench times a full walk of ``src/repro`` (parse + all six
rules + baseline reconciliation) and enforces the ISSUE's bar: a complete
run in **under 2 seconds** on the development corpus.

The measurement test is marked ``perf`` and therefore deselected by the
default ``-m "not perf"`` addopts; run it explicitly with
``pytest benchmarks/bench_lint_speed.py -m perf``.  The tier-1 shape guard
lives in ``tests/integration/test_bench_lint_guard.py``.
"""

from __future__ import annotations

import time
from pathlib import Path
from typing import Dict, Optional, Sequence

import pytest

import repro
from repro.analysis import lint_paths
from repro.metrics.report import format_table

from benchmarks._helpers import emit

PACKAGE_ROOT = Path(repro.__file__).parent
BASELINE = Path(__file__).resolve().parent.parent / "lint-baseline.txt"

#: The ISSUE's acceptance bar for a full-tree lint, in seconds.
BUDGET_SECONDS = 2.0


def run_bench(
    paths: Optional[Sequence[Path]] = None,
    baseline: Optional[Path] = None,
    repeats: int = 3,
) -> Dict[str, object]:
    """Best-of-``repeats`` full lint; returns timing + corpus stats."""
    paths = list(paths) if paths is not None else [PACKAGE_ROOT]
    baseline = baseline if baseline is not None else BASELINE
    best = float("inf")
    report = None
    for _ in range(repeats):
        start = time.perf_counter()
        report = lint_paths(paths, baseline_path=baseline)
        best = min(best, time.perf_counter() - start)
    return {
        "bench": "lint_speed",
        "files_checked": report.files_checked,
        "violations": len(report.violations),
        "best_seconds": round(best, 3),
        "files_per_sec": round(report.files_checked / best, 1),
        "budget_seconds": BUDGET_SECONDS,
    }


@pytest.mark.perf
def test_full_tree_lint_under_budget():
    payload = run_bench()
    table = format_table(
        ["files", "violations", "best (s)", "files/s", "budget (s)"],
        [[
            payload["files_checked"],
            payload["violations"],
            payload["best_seconds"],
            payload["files_per_sec"],
            payload["budget_seconds"],
        ]],
        title="Determinism lint, full src/repro walk",
        float_fmt="{:.3f}",
    )
    emit("lint_speed", table)
    assert payload["best_seconds"] < BUDGET_SECONDS


if __name__ == "__main__":
    print(run_bench())
