"""Full-tree determinism-lint latency.

The lint gate in ``tests/analysis/test_lint_gate.py`` runs on every tier-1
invocation, so its cost is part of the suite's fixed overhead and must stay
small.  This bench times a full walk of ``src/repro`` (parse + all intra
rules + baseline reconciliation) and enforces the ISSUE's bar: a complete
run in **under 2 seconds** on the development corpus.  A second row times
the whole-program pass (``--interproc``: call graph, DT2xx, and the DT3xx
dataflow summaries and fixpoints) against a **5 second** bar.

A third row times the **incremental** path (``--incremental``, DESIGN.md
§14): after one cold cache-filling run, a warm run over the unchanged
tree must replay the cached report in **under 0.5 seconds** and at least
**3x** faster than its own cold run — the edit-lint-edit loop's bar.

The measurement test is marked ``perf`` and therefore deselected by the
default ``-m "not perf"`` addopts; run it explicitly with
``pytest benchmarks/bench_lint_speed.py -m perf``.  The tier-1 shape guard
lives in ``tests/integration/test_bench_lint_guard.py``.
"""

from __future__ import annotations

import tempfile
import time
from pathlib import Path
from typing import Dict, Optional, Sequence

import pytest

import repro
from repro.analysis import lint_paths
from repro.metrics.report import format_table

from benchmarks._helpers import emit

PACKAGE_ROOT = Path(repro.__file__).parent
BASELINE = Path(__file__).resolve().parent.parent / "lint-baseline.txt"

#: The ISSUE's acceptance bar for a full-tree lint, in seconds.
BUDGET_SECONDS = 2.0

#: The bar for the whole-program pass (call graph + DT2xx + DT3xx
#: summaries/fixpoints on top of the intra rules), in seconds.
INTERPROC_BUDGET_SECONDS = 5.0

#: The bar for a warm incremental run over an unchanged tree, in seconds.
INCREMENTAL_BUDGET_SECONDS = 0.5

#: A warm replay must beat its own cold cache-filling run by this factor.
MIN_INCREMENTAL_SPEEDUP = 3.0


def run_bench(
    paths: Optional[Sequence[Path]] = None,
    baseline: Optional[Path] = None,
    repeats: int = 3,
    interproc: bool = False,
) -> Dict[str, object]:
    """Best-of-``repeats`` full lint; returns timing + corpus stats."""
    paths = list(paths) if paths is not None else [PACKAGE_ROOT]
    baseline = baseline if baseline is not None else BASELINE
    best = float("inf")
    report = None
    for _ in range(repeats):
        start = time.perf_counter()
        report = lint_paths(paths, baseline_path=baseline, interproc=interproc)
        best = min(best, time.perf_counter() - start)
    return {
        "bench": "lint_speed_interproc" if interproc else "lint_speed",
        "files_checked": report.files_checked,
        "violations": len(report.violations),
        "best_seconds": round(best, 3),
        "files_per_sec": round(report.files_checked / best, 1),
        "budget_seconds": INTERPROC_BUDGET_SECONDS if interproc else BUDGET_SECONDS,
    }


def run_incremental_bench(
    paths: Optional[Sequence[Path]] = None,
    baseline: Optional[Path] = None,
    repeats: int = 3,
) -> Dict[str, object]:
    """One cold cache-filling ``--interproc --incremental`` run, then
    best-of-``repeats`` warm replays over the unchanged tree."""
    paths = list(paths) if paths is not None else [PACKAGE_ROOT]
    baseline = baseline if baseline is not None else BASELINE
    with tempfile.TemporaryDirectory(prefix="repro-lint-cache-") as tmp:
        cache_dir = Path(tmp)
        start = time.perf_counter()
        lint_paths(
            paths, baseline_path=baseline, interproc=True,
            incremental=True, cache_dir=cache_dir,
        )
        cold = time.perf_counter() - start
        best = float("inf")
        warm = None
        for _ in range(repeats):
            start = time.perf_counter()
            warm = lint_paths(
                paths, baseline_path=baseline, interproc=True,
                incremental=True, cache_dir=cache_dir,
            )
            best = min(best, time.perf_counter() - start)
    return {
        "bench": "lint_speed_incremental",
        "files_checked": warm.files_checked,
        "violations": len(warm.violations),
        "cold_seconds": round(cold, 3),
        "warm_seconds": round(best, 3),
        "speedup": round(cold / best, 1),
        "warm_summaries_recomputed": warm.summaries_recomputed,
        "budget_seconds": INCREMENTAL_BUDGET_SECONDS,
        "min_speedup": MIN_INCREMENTAL_SPEEDUP,
    }


@pytest.mark.perf
def test_full_tree_lint_under_budget():
    intra = run_bench()
    interproc = run_bench(interproc=True)
    table = format_table(
        ["pass", "files", "violations", "best (s)", "files/s", "budget (s)"],
        [
            [
                payload["bench"],
                payload["files_checked"],
                payload["violations"],
                payload["best_seconds"],
                payload["files_per_sec"],
                payload["budget_seconds"],
            ]
            for payload in (intra, interproc)
        ],
        title="Determinism lint, full src/repro walk",
        float_fmt="{:.3f}",
    )
    emit("lint_speed", table)
    assert intra["best_seconds"] < BUDGET_SECONDS
    assert interproc["best_seconds"] < INTERPROC_BUDGET_SECONDS


@pytest.mark.perf
def test_incremental_lint_under_budget():
    payload = run_incremental_bench()
    table = format_table(
        ["pass", "files", "cold (s)", "warm (s)", "speedup", "budget (s)"],
        [[
            payload["bench"],
            payload["files_checked"],
            payload["cold_seconds"],
            payload["warm_seconds"],
            payload["speedup"],
            payload["budget_seconds"],
        ]],
        title="Incremental lint, warm replay over unchanged src/repro",
        float_fmt="{:.3f}",
    )
    emit("lint_speed_incremental", table)
    assert payload["warm_summaries_recomputed"] == 0
    assert payload["warm_seconds"] < INCREMENTAL_BUDGET_SECONDS
    assert payload["speedup"] >= MIN_INCREMENTAL_SPEEDUP


if __name__ == "__main__":
    print(run_bench())
    print(run_bench(interproc=True))
    print(run_incremental_bench())
