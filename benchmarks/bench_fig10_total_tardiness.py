"""Fig 10: total tardiness vs cluster size, six schedulers.

Paper shape: FIFO/Fair accumulate by far the most total tardiness; EDF's
total tardiness is "very close to WOHA schedulers' outcomes", sometimes
even less — reducing tardiness is explicitly *not* WOHA's objective.
"""

from repro.metrics.report import format_table

from benchmarks._helpers import CLUSTER_SIZES, STACKS, emit, fig8_sweep


def test_fig10_total_tardiness(benchmark):
    sweep = benchmark.pedantic(fig8_sweep, rounds=1, iterations=1)
    rows = []
    for name, _f in STACKS:
        row = [name]
        for size in CLUSTER_SIZES:
            row.append(sweep[(name, size)].total_tardiness)
        rows.append(row)
    headers = ["scheduler"] + [f"{m}m-{r}r" for m, r in CLUSTER_SIZES]
    table = format_table(headers, rows, title="Fig 10: total tardiness in seconds", float_fmt="{:.1f}")
    emit("fig10_total_tardiness", table)
    for size in CLUSTER_SIZES:
        fifo = sweep[("FIFO", size)].total_tardiness
        fair = sweep[("Fair", size)].total_tardiness
        woha = sweep[("WOHA-LPF", size)].total_tardiness
        edf = sweep[("EDF", size)].total_tardiness
        assert max(fifo, fair) >= woha, f"baselines should dominate total tardiness at {size}"
        # EDF and WOHA are in the same league (within an order of magnitude
        # of each other while FIFO/Fair are far above both).
        assert max(edf, woha) * 3 < max(fifo, fair) + 1e-9