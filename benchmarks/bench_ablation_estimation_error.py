"""Ablation: robustness to task-duration estimation error.

WOHA's plans are built from estimated task durations (§IV-A); the paper
argues the runtime lag mechanism absorbs prediction error.  This bench
injects multiplicative lognormal noise into *actual* durations (plans keep
seeing the estimates) and tracks the Fig 11 experiment's deadline outcomes
across noise levels, for WOHA-LPF and the deadline-aware baseline EDF.

Expected shape: both schedulers degrade as noise grows; WOHA keeps meeting
the deadlines it met noise-free for mild error (sigma <= 0.1, i.e. ~10%
typical misprediction) because plans are only used as relative pacing
hints.
"""

from repro import ClusterConfig, ClusterSimulation, EdfScheduler, WohaScheduler, make_planner
from repro.metrics.report import format_table
from repro.noise import LognormalNoise
from repro.workloads.topologies import fig11_workflows

from benchmarks._helpers import emit

SIGMAS = (0.0, 0.05, 0.1, 0.2, 0.4)


def run(scheduler_kind: str, sigma: float):
    config = ClusterConfig(
        num_nodes=32, map_slots_per_node=2, reduce_slots_per_node=1, heartbeat_interval=float("inf")
    )
    noise = LognormalNoise(sigma, seed=17)
    if scheduler_kind == "woha":
        sim = ClusterSimulation(
            config,
            WohaScheduler(),
            submission="woha",
            planner=make_planner("lpf"),
            duration_sampler_factory=noise,
        )
    else:
        sim = ClusterSimulation(
            config, EdfScheduler(), submission="oozie", duration_sampler_factory=noise
        )
    sim.add_workflows(fig11_workflows())
    return sim.run()


def test_ablation_estimation_error(benchmark):
    def sweep():
        rows = []
        for sigma in SIGMAS:
            woha = run("woha", sigma)
            edf = run("edf", sigma)
            rows.append(
                [
                    sigma,
                    sum(1 for s in woha.stats.values() if not s.met_deadline),
                    woha.max_tardiness,
                    sum(1 for s in edf.stats.values() if not s.met_deadline),
                    edf.max_tardiness,
                ]
            )
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    table = format_table(
        ["sigma", "WOHA misses", "WOHA maxT (s)", "EDF misses", "EDF maxT (s)"],
        rows,
        title="Ablation: Fig 11 outcomes under duration-estimation error (paired noise)",
        float_fmt="{:.1f}",
    )
    emit("ablation_estimation_error", table)
    by_sigma = {row[0]: row[1:] for row in rows}
    # Noise-free WOHA meets everything (the Fig 11 gate).
    assert by_sigma[0.0][0] == 0
    # Mild estimation error does not break WOHA's plans.
    assert by_sigma[0.05][0] == 0
    assert by_sigma[0.1][0] <= 1