"""Ablation: speculative execution under straggler-inducing noise.

Hadoop's backup-attempt mechanism matters to WOHA because one straggling
task at a workflow join point can stall the plan.  This bench runs the
Fig 11 experiment with heavy-tailed duration noise (lognormal sigma = 0.6,
i.e. ~10% of tasks take more than twice their estimate) and compares
WOHA-LPF with and without speculation, reporting deadline outcomes, max
tardiness and the backup economy (launched vs won).
"""

from repro import (
    ClusterConfig,
    ClusterSimulation,
    LognormalNoise,
    SpeculationManager,
    WohaScheduler,
    make_planner,
)
from repro.metrics.report import format_table
from repro.workloads.topologies import fig11_workflows

from benchmarks._helpers import emit

SIGMA = 0.6


def run(speculate: bool):
    config = ClusterConfig(
        num_nodes=32, map_slots_per_node=2, reduce_slots_per_node=1, heartbeat_interval=float("inf")
    )
    sim = ClusterSimulation(
        config,
        WohaScheduler(),
        submission="woha",
        planner=make_planner("lpf"),
        duration_sampler_factory=LognormalNoise(SIGMA, seed=23),
    )
    manager = None
    if speculate:
        manager = SpeculationManager(
            sim.sim, sim.jobtracker, slow_factor=1.5, min_runtime=15.0, check_interval=15.0
        )
    sim.add_workflows(fig11_workflows())
    result = sim.run()
    return result, manager


def test_ablation_speculation(benchmark):
    def experiment():
        return run(False), run(True)

    (plain, _none), (spec, manager) = benchmark.pedantic(experiment, rounds=1, iterations=1)
    rows = []
    for label, result in (("no speculation", plain), ("speculation", spec)):
        rows.append(
            [
                label,
                sum(1 for s in result.stats.values() if not s.met_deadline),
                result.max_tardiness,
                max(result.stats[w].workspan for w in ("W-1", "W-2", "W-3")),
                result.metrics.tasks_lost,
            ]
        )
    table = format_table(
        ["config", "misses", "max tardiness (s)", "max workspan (s)", "attempts retired"],
        rows,
        title=(
            f"Ablation: Fig 11 under lognormal(sigma={SIGMA}) duration noise, WOHA-LPF\n"
            f"backups launched: {manager.backups_launched}, backups won: {manager.backups_won}"
        ),
        float_fmt="{:.1f}",
    )
    emit("ablation_speculation", table)
    # Speculation must strictly help this straggler-heavy workload.
    assert manager.backups_launched > 0
    assert spec.max_tardiness <= plain.max_tardiness
    assert max(spec.stats[w].workspan for w in ("W-1", "W-2", "W-3")) <= max(
        plain.stats[w].workspan for w in ("W-1", "W-2", "W-3")
    )