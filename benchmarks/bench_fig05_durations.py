"""Fig 5: task-duration CDFs of the (synthetic) job trace.

(a) CDF of map/reduce task execution times; paper anchors: most mappers
finish in 10-100 s, >50 % of reducers take >100 s, ~10 % take >1000 s.
(b) CDF of the per-job reduce/map mean-duration ratio; reducers usually
take much longer.
"""

import numpy as np

from repro.metrics.report import format_table
from repro.workloads.yahoo import generate_job_trace

from benchmarks._helpers import emit

DURATION_POINTS = [3_000.0, 10_000.0, 30_000.0, 100_000.0, 300_000.0, 1_000_000.0, 10_000_000.0]  # ms
RATIO_POINTS = [0.01, 0.1, 1.0, 10.0, 100.0]


def test_fig05_task_durations(benchmark):
    trace = benchmark.pedantic(lambda: generate_job_trace(num_jobs=4000, seed=7), rounds=1, iterations=1)
    map_ms = np.array([j.map_duration * 1000.0 for j in trace])
    reduce_ms = np.array([j.reduce_duration * 1000.0 for j in trace if j.num_reduces > 0])

    rows_a = [
        [f"{int(p):>8d}", float(np.mean(map_ms <= p)), float(np.mean(reduce_ms <= p))]
        for p in DURATION_POINTS
    ]
    table_a = format_table(
        ["t (ms)", "P[map <= t]", "P[reduce <= t]"],
        rows_a,
        title="Fig 5a: CDF of task execution time (4000-job synthetic trace)",
    )

    ratios = np.array([j.reduce_duration / j.map_duration for j in trace if j.num_reduces > 0])
    rows_b = [[p, float(np.mean(ratios <= p))] for p in RATIO_POINTS]
    table_b = format_table(
        ["r", "P[reduce/map <= r]"],
        rows_b,
        title="Fig 5b: CDF of per-job reduce/map duration ratio",
    )
    emit("fig05_durations", table_a + "\n\n" + table_b)

    # Paper anchors.
    in_band = np.mean((map_ms >= 10_000.0) & (map_ms <= 100_000.0))
    assert in_band > 0.6, "most mappers finish between 10s and 100s"
    assert np.mean(reduce_ms > 100_000.0) > 0.5, ">50% of reducers exceed 100s"
    assert 0.04 < np.mean(reduce_ms > 1_000_000.0) < 0.18, "~10% of reducers exceed 1000s"
    assert np.mean(ratios > 1.0) > 0.7, "reducers usually outlast mappers"