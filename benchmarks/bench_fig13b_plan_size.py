"""Fig 13b: scheduling-plan size vs workflow task count, per prioritizer.

Paper shape: even a 1 400+-task workflow's plan stays around 7 KB, and most
plans stay within 2 KB — negligible network/memory load on the master.
"""

import numpy as np

from repro.core.capsearch import find_min_cap
from repro.core.plangen import generate_requirements
from repro.core.priorities import PRIORITIZERS
from repro.metrics.report import format_table
from repro.workloads.distributions import TraceDistributions
from repro.workloads.topologies import random_dag_workflow
from repro.workloads.deadlines import stretch_deadline

from benchmarks._helpers import emit


def build_workflows():
    """Yahoo!-like workflows across a range of sizes (up to ~1500 tasks)."""
    rng = np.random.default_rng(99)
    dist = TraceDistributions(seed=41, max_maps=200, max_reduces=30)
    workflows = []
    # Sizes span the paper's Fig 13b x-axis (up to ~1500-2000 tasks).
    shapes = [(2, 0.3), (3, 0.5), (4, 0.7), (5, 0.9), (6, 1.1), (8, 1.3), (10, 1.4), (12, 1.5), (12, 1.7)]
    for i, (jobs, scale) in enumerate(shapes):
        w = random_dag_workflow(f"pw{i}", jobs, rng, dist, task_scale=scale)
        workflows.append(stretch_deadline(w, reference_slots=64, stretch=1.8))
    return workflows


def test_fig13b_plan_size(benchmark):
    def sweep():
        rows = []
        for w in build_workflows():
            row = [w.total_tasks]
            for name in ("mpf", "lpf", "hlf"):
                order = PRIORITIZERS[name](w)
                result = find_min_cap(w, 400, job_order=order)
                plan = generate_requirements(w, result.cap, order, feasible=result.feasible)
                row.append(plan.size_bytes / 1024.0)
            rows.append(row)
        return sorted(rows)

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    table = format_table(
        ["tasks", "MPF (KB)", "LPF (KB)", "HLF (KB)"],
        rows,
        title="Fig 13b: resource-capped scheduling plan size",
    )
    emit("fig13b_plan_size", table)
    sizes = [kb for row in rows for kb in row[1:]]
    tasks = [row[0] for row in rows]
    assert max(tasks) > 1400, "the sweep must include a 1400+-task workflow"
    # Paper's claims: biggest plans stay single-digit KB; most are tiny.
    assert max(sizes) < 10.0
    assert np.median(sizes) < 3.0