"""Simulation-runtime throughput: quiescent fast path vs. reference path.

Two scenarios, matching how the runtime fast path (event-kernel tuples,
quiescent heartbeat parking, incremental JobTracker bookkeeping; DESIGN.md
§10) earns its keep:

* **yahoo_trace** — the full Yahoo! trace on the paper's 200m+200r cluster
  with a 3 s heartbeat: a busy cluster where launch/complete events
  dominate, so parking trims the tick tail but the win is modest.
* **periodic_200node** — 200 nodes polling every 3 s while a handful of
  long-task chains run: almost every tick is a no-op, so the reference
  path burns an order of magnitude more events than the fast path parks
  away.

Both scenarios run the *same* simulation twice, toggling the runtime fast
path — ``ClusterConfig.quiescent_heartbeats`` plus
``ClusterConfig.batched_assignment`` — as one switch.  The decision
streams are byte-identical by construction (enforced in tier-1 by
``tests/integration/test_heartbeat_equivalence.py`` and
``tests/integration/test_batched_equivalence.py``), so wall-clock and
event counts are directly comparable.

Besides the printed table, the run records a machine-readable
``BENCH_sim_throughput.json`` at the repo root so subsequent PRs have a
perf trajectory to compare against.  The JSON shape is pinned by
``tests/integration/test_bench_sim_throughput_guard.py``.

The measurement test is marked ``perf`` and therefore deselected by the
default ``-m "not perf"`` addopts; run it explicitly with
``pytest benchmarks/bench_sim_throughput.py -m perf``.
"""

from __future__ import annotations

import json
import os
import time
from typing import Callable, Dict, List, Optional, Sequence

import pytest

from repro.cluster.config import ClusterConfig
from repro.cluster.simulation import ClusterSimulation
from repro.metrics.report import format_table
from repro.schedulers.fifo import FifoScheduler
from repro.workflow.builder import WorkflowBuilder
from repro.workflow.model import Workflow

from benchmarks._helpers import emit, yahoo_trace

#: Trajectory file, kept at the repo root next to the other stock-taking docs.
JSON_PATH = os.path.join(os.path.dirname(__file__), os.pardir, "BENCH_sim_throughput.json")

#: Hadoop's classic 3-second TaskTracker poll.
HEARTBEAT_INTERVAL = 3.0

#: Keys the guard test pins so the trajectory file cannot silently rot.
SCENARIO_KEYS = ("yahoo_trace", "periodic_200node")
METRIC_KEYS = (
    "reference_wall_s",
    "fast_wall_s",
    "speedup",
    "reference_events",
    "fast_events",
    "reference_events_per_sec",
    "fast_events_per_sec",
    "reference_us_per_event",
    "fast_us_per_event",
)


def periodic_workflows(count: int = 6, task_s: float = 300.0) -> List[Workflow]:
    """Staggered long-task ETL chains: ticks dominate, so parking pays most."""
    workflows = []
    for i in range(count):
        workflows.append(
            WorkflowBuilder(f"chain{i}")
            .submit_at(float(5 * i))
            .job("extract", maps=8, reduces=4, map_s=task_s, reduce_s=task_s / 1.5)
            .job("transform", maps=6, reduces=2, map_s=task_s, reduce_s=task_s / 1.5,
                 after=["extract"])
            .job("load", maps=4, reduces=1, map_s=task_s / 1.5, reduce_s=task_s / 3,
                 after=["transform"])
            .deadline(relative=20 * task_s)
            .build()
        )
    return workflows


def _measure(
    make_config: Callable[[bool], ClusterConfig],
    workflows: Sequence[Workflow],
    repeats: int,
) -> Dict[str, float]:
    """Best-of-``repeats`` wall clock for one scenario, fast vs. reference.

    Event counts are deterministic across repeats (same seedless decision
    stream), so only the wall clock takes the best-of treatment.
    """
    walls: Dict[str, float] = {}
    events: Dict[str, int] = {}
    for label, fast in (("reference", False), ("fast", True)):
        best = float("inf")
        for _ in range(repeats):
            sim = ClusterSimulation(
                make_config(fast), FifoScheduler(), submission="oozie"
            )
            sim.add_workflows(workflows)
            start = time.perf_counter()
            result = sim.run()
            best = min(best, time.perf_counter() - start)
            events[label] = result.events_processed
        # Tiny scenarios on a coarse clock can measure 0.0 s; clamp so the
        # speedup and events/sec divisions below stay finite.
        walls[label] = max(best, 1e-9)
    return {
        "reference_wall_s": round(walls["reference"], 4),
        "fast_wall_s": round(walls["fast"], 4),
        "speedup": round(walls["reference"] / walls["fast"], 2),
        "reference_events": events["reference"],
        "fast_events": events["fast"],
        "reference_events_per_sec": round(events["reference"] / walls["reference"], 1),
        "fast_events_per_sec": round(events["fast"] / walls["fast"], 1),
        # Per-event cost makes "fewer but slower events" regressions visible:
        # a fast path can shed events yet still lose wall clock if each
        # surviving event pays more scheduler/structure overhead (the
        # ISSUE 7 starting point: 4x fewer events at ~2.7x the unit cost).
        "reference_us_per_event": round(1e6 * walls["reference"] / events["reference"], 3),
        "fast_us_per_event": round(1e6 * walls["fast"] / events["fast"], 3),
    }


def run_bench(
    trace: Optional[Sequence[Workflow]] = None,
    periodic: Optional[Sequence[Workflow]] = None,
    trace_slots: int = 200,
    trace_nodes: int = 40,
    periodic_nodes: int = 200,
    repeats: int = 3,
) -> Dict[str, object]:
    """Measure both scenarios and return the trajectory payload."""
    trace = list(trace) if trace is not None else list(yahoo_trace())
    periodic = list(periodic) if periodic is not None else periodic_workflows()

    def trace_config(fast: bool) -> ClusterConfig:
        return ClusterConfig.from_total_slots(
            trace_slots,
            trace_slots,
            nodes=trace_nodes,
            heartbeat_interval=HEARTBEAT_INTERVAL,
            quiescent_heartbeats=fast,
            batched_assignment=fast,
        )

    def periodic_config(fast: bool) -> ClusterConfig:
        return ClusterConfig(
            num_nodes=periodic_nodes,
            heartbeat_interval=HEARTBEAT_INTERVAL,
            quiescent_heartbeats=fast,
            batched_assignment=fast,
        )

    scenarios = {
        "yahoo_trace": _measure(trace_config, trace, repeats),
        "periodic_200node": _measure(periodic_config, periodic, repeats),
    }
    return {
        "bench": "sim_throughput",
        "heartbeat_interval": HEARTBEAT_INTERVAL,
        "repeats": repeats,
        "cluster": {"trace_nodes": trace_nodes, "periodic_nodes": periodic_nodes},
        "corpus": {
            "trace_workflows": len(trace),
            "periodic_workflows": len(periodic),
        },
        "scenarios": scenarios,
    }


def write_json(payload: Dict[str, object], path: str = JSON_PATH) -> None:
    with open(path, "w") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
        fh.write("\n")


@pytest.mark.perf
def test_sim_throughput():
    payload = run_bench()
    scenarios = payload["scenarios"]

    rows = [
        [
            name,
            scenarios[name]["reference_wall_s"],
            scenarios[name]["fast_wall_s"],
            scenarios[name]["speedup"],
            scenarios[name]["reference_events"],
            scenarios[name]["fast_events"],
        ]
        for name in SCENARIO_KEYS
    ]
    table = format_table(
        ["scenario", "ref wall s", "fast wall s", "speedup", "ref events", "fast events"],
        rows,
        title=f"Simulation runtime throughput (heartbeat {HEARTBEAT_INTERVAL}s)",
        float_fmt="{:.2f}",
    )
    emit("sim_throughput", table)
    write_json(payload)

    # The tentpole's acceptance bar (ISSUE 5): >=3x wall clock on the
    # 200-node periodic scenario; the busy trace must at least shed events.
    assert scenarios["periodic_200node"]["speedup"] >= 3.0
    assert scenarios["periodic_200node"]["fast_events"] < scenarios["periodic_200node"]["reference_events"]
    assert scenarios["yahoo_trace"]["fast_events"] < scenarios["yahoo_trace"]["reference_events"]
