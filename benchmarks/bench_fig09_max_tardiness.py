"""Fig 9: maximum tardiness vs cluster size, six schedulers.

Paper shape: tardiness shrinks with cluster size; FIFO/Fair produce the
largest maxima; the deadline-aware schedulers (EDF, WOHA-*) stay low.
"""

from repro.metrics.report import format_table

from benchmarks._helpers import CLUSTER_SIZES, STACKS, emit, fig8_sweep


def test_fig09_max_tardiness(benchmark):
    sweep = benchmark.pedantic(fig8_sweep, rounds=1, iterations=1)
    rows = []
    for name, _f in STACKS:
        row = [name]
        for size in CLUSTER_SIZES:
            row.append(sweep[(name, size)].max_tardiness)
        rows.append(row)
    headers = ["scheduler"] + [f"{m}m-{r}r" for m, r in CLUSTER_SIZES]
    table = format_table(headers, rows, title="Fig 9: max tardiness in seconds", float_fmt="{:.1f}")
    emit("fig09_max_tardiness", table)
    for name, _f in STACKS:
        series = [sweep[(name, size)].max_tardiness for size in CLUSTER_SIZES]
        # More resources never increase the worst lateness much.
        assert series[-1] <= series[0] + 60.0, name
    for size in CLUSTER_SIZES:
        assert sweep[("WOHA-LPF", size)].max_tardiness <= sweep[("FIFO", size)].max_tardiness