"""Trace smoke check: tracing must not perturb any scheduler's decisions.

Runs a contended mixed workload through every stack of the paper's
evaluation twice — decision tracing on and off — and asserts the full
assignment sequence (launch time, task id, tracker) is byte-identical.
This is the observability layer's CI gate: a tracer that changes even one
decision invalidates every conclusion drawn from its logs.

Run standalone (``python -m benchmarks.bench_trace_smoke``) or via pytest.
"""

from __future__ import annotations

import json
import sys
from typing import List, Tuple

from repro.cluster.config import ClusterConfig
from repro.cluster.simulation import ClusterSimulation
from repro.workflow.builder import WorkflowBuilder
from repro.workflow.model import Workflow

from benchmarks._helpers import STACKS, emit


def smoke_workflows() -> List[Workflow]:
    """A small but contended mix: staggered deadlines, a chain, a filler."""
    workflows = []
    for i in range(4):
        workflows.append(
            WorkflowBuilder(f"dl{i}")
            .job("a", maps=8, reduces=2, map_s=15, reduce_s=30)
            .deadline(relative=200.0 + 40.0 * i)
            .submit_at(6.0 * i)
            .build()
        )
    workflows.append(
        WorkflowBuilder("chain")
        .job("x", maps=4, reduces=1, map_s=10, reduce_s=20)
        .job("y", maps=4, reduces=1, map_s=10, reduce_s=20, after=["x"])
        .deadline(relative=400.0)
        .build()
    )
    workflows.append(
        WorkflowBuilder("filler").job("f", maps=24, reduces=0, map_s=12).build()
    )
    return workflows


def assignment_sequence(stack_name: str, trace: bool) -> Tuple[List, int]:
    """Run one stack; return (launch sequence, decision-event count)."""
    for name, factory in STACKS:
        if name == stack_name:
            scheduler, mode, planner = factory()
            break
    else:
        raise KeyError(stack_name)
    config = ClusterConfig(
        num_nodes=4, map_slots_per_node=2, reduce_slots_per_node=1,
        heartbeat_interval=float("inf"),
    )
    sim = ClusterSimulation(config, scheduler, submission=mode, planner=planner, trace=trace)
    launches: List = []

    class Log:
        def on_task_launch(self, task, now):
            launches.append((now, task.task_id))

    sim.jobtracker.add_listener(Log())
    sim.add_workflows(smoke_workflows())
    result = sim.run()
    decisions = len(result.tracer.events("decision")) if result.tracer else 0
    return launches, decisions


def check_all_stacks() -> List[List]:
    """Compare traced vs untraced sequences for every stack; returns rows."""
    rows = []
    for name, _factory in STACKS:
        plain, _ = assignment_sequence(name, trace=False)
        traced, decisions = assignment_sequence(name, trace=True)
        identical = json.dumps(traced).encode() == json.dumps(plain).encode()
        rows.append([name, len(plain), decisions, "ok" if identical else "DIVERGED"])
        if not identical:
            raise AssertionError(
                f"{name}: tracing changed the assignment sequence "
                f"({len(plain)} untraced vs {len(traced)} traced launches)"
            )
    return rows


def test_trace_smoke(benchmark):
    rows = benchmark.pedantic(check_all_stacks, rounds=1, iterations=1)
    from repro.metrics.report import format_table

    table = format_table(
        ["stack", "launches", "decisions", "invariant"],
        rows,
        title="trace smoke: assignment sequences with tracing on vs off",
    )
    emit("trace_smoke", table)
    assert all(row[3] == "ok" for row in rows)


def main() -> int:
    """Standalone entry point for CI: exit non-zero on any divergence."""
    rows = check_all_stacks()
    for name, launches, decisions, verdict in rows:
        print(f"{name:10s} launches={launches:4d} decisions={decisions:5d} {verdict}")
    print("trace smoke: all stacks replay identically under tracing")
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
