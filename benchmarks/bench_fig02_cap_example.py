"""Fig 2 (design section): the benefit of resource-capped scheduling plans.

The paper's example: three workflows with the same two-job topology
(each job: 3 maps + 3 reduces, one time-unit tasks) on a cluster with
3 map and 3 reduce slots; deadlines 9, 9 and 50.  With the cap set to the
full cluster (6 slots) every plan believes it can start as late as time 5
and still finish — the plans demand nothing early, and in the paper's
fair-share scenario a deadline is lost.  With the searched cap (2 slots)
plans demand steady progress from the start.

Our reproduction shows both halves: (a) the plan-shape property — the
uncapped plan's first requirement fires 5 time units later than the capped
plan's; (b) the runtime effect — capped plans finish every workflow
earlier.  (Under our deterministic work-conserving tie-break no deadline
is actually lost in the uncapped run; the paper's loss assumed fair
sharing among equal-priority workflows.  See EXPERIMENTS.md.)
"""

from repro import ClusterConfig, ClusterSimulation, WohaScheduler, WorkflowBuilder, make_planner
from repro.core.capsearch import find_min_cap
from repro.core.plangen import generate_requirements
from repro.metrics.report import format_table

from benchmarks._helpers import emit


def fig2_workflow(name, relative_deadline):
    return (
        WorkflowBuilder(name)
        .job("j1", maps=3, reduces=3, map_s=1.0, reduce_s=1.0)
        .job("j2", maps=3, reduces=3, map_s=1.0, reduce_s=1.0, after=["j1"])
        .deadline(relative=relative_deadline)
        .build()
    )


def run(cap_search: bool):
    config = ClusterConfig(
        num_nodes=3,
        map_slots_per_node=1,
        reduce_slots_per_node=1,
        heartbeat_interval=float("inf"),
        submit_task_duration=0.0,
    )
    sim = ClusterSimulation(
        config, WohaScheduler(), submission="woha", planner=make_planner("hlf", cap_search=cap_search)
    )
    sim.add_workflows([fig2_workflow("W-1", 9.0), fig2_workflow("W-2", 9.0), fig2_workflow("W-3", 50.0)])
    return sim.run()


def test_fig02_resource_cap(benchmark):
    def experiment():
        return run(cap_search=False), run(cap_search=True)

    uncapped_run, capped_run = benchmark.pedantic(experiment, rounds=1, iterations=1)

    w = fig2_workflow("probe", 9.0)
    uncapped = generate_requirements(w, cap=6)
    capped_at = find_min_cap(w, 6, relative_deadline=9.0)
    capped = generate_requirements(w, cap=capped_at.cap)

    rows = []
    for t in range(0, 10):
        ttd = 9.0 - t
        rows.append([t, uncapped.requirement_at(ttd), capped.requirement_at(ttd)])
    table_a = format_table(
        ["time (D=9)", "req, cap=6", f"req, cap={capped_at.cap}"],
        rows,
        title="Fig 2: cumulative progress requirement over time (one workflow)",
    )
    rows_b = [
        [name, uncapped_run.stats[name].completion_time, capped_run.stats[name].completion_time]
        for name in ("W-1", "W-2", "W-3")
    ]
    table_b = format_table(
        ["workflow", "finish, uncapped plans", "finish, capped plans"],
        rows_b,
        title="Runtime effect on the 3m-3r cluster (deadlines 9 / 9 / 50)",
    )
    emit("fig02_cap_example", table_a + "\n\n" + table_b)

    # The searched cap matches the paper's Fig 2b value.
    assert capped_at.cap == 2
    # Procrastination property: the uncapped plan demands nothing for the
    # first 5 time units; the capped plan demands progress from t=1.
    assert uncapped.requirement_at(9.0 - 4.9) == 0
    assert capped.requirement_at(9.0 - 1.0) > 0
    # Capped plans finish every workflow at least as early.
    for name in ("W-1", "W-2", "W-3"):
        assert capped_run.stats[name].completion_time <= uncapped_run.stats[name].completion_time
    assert capped_run.miss_ratio == 0.0