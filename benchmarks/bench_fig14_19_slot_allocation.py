"""Figs 14-19: per-scheduler slot-allocation time series.

Each paper figure is a pair of panels (map slots, reduce slots) showing how
many slots each of the three workflows holds over time; darker shading =
earlier release.  The bench regenerates the series on a 60-second grid and
prints a compact quantile summary per workflow plus a coarse timeline for
the map panel, and asserts the qualitative behaviours the paper highlights
with red rectangles.
"""

from repro.cluster.tasks import TaskKind
from repro.metrics.report import format_table

from benchmarks._helpers import STACKS, emit, fig11_runs

FIGURES = {
    "FIFO": "Fig 14",
    "EDF": "Fig 15",
    "Fair": "Fig 16",
    "WOHA-LPF": "Fig 17",
    "WOHA-HLF": "Fig 18",
    "WOHA-MPF": "Fig 19",
}
WORKFLOWS = ["W-1", "W-2", "W-3"]


def _sparkline(counts, peak):
    glyphs = " .:-=+*#%@"
    if peak <= 0:
        return ""
    out = []
    for c in counts:
        idx = min(len(glyphs) - 1, int(round(c / peak * (len(glyphs) - 1))))
        out.append(glyphs[idx])
    return "".join(out)


def test_fig14_19_slot_allocation(benchmark):
    runs = benchmark.pedantic(fig11_runs, rounds=1, iterations=1)
    sections = []
    for name, _f in STACKS:
        result = runs[name]
        metrics = result.metrics
        lines = [f"{FIGURES[name]}: {name} slot allocation (one glyph = 60 s, darkness = slots held)"]
        for kind, label, peak in ((TaskKind.MAP, "map", 64), (TaskKind.REDUCE, "reduce", 32)):
            times, counts = metrics.allocation_matrix(kind, WORKFLOWS, step=60.0)
            for wf in WORKFLOWS:
                lines.append(f"  {label:6s} {wf}: {_sparkline(counts[wf], peak)}")
        sections.append("\n".join(lines))
    emit("fig14_19_slot_allocation", "\n\n".join(sections))

    # Quantitative shape checks behind the paper's annotations:
    # FIFO: W-1/W-2 win early contention; W-3 gets almost nothing in the
    # first 20 minutes after its release (t=600..1800).
    fifo = runs["FIFO"].metrics
    times, counts = fifo.allocation_matrix(TaskKind.MAP, WORKFLOWS, step=60.0)
    window = [i for i, t in enumerate(times) if 660.0 <= t <= 1800.0]
    w3_share = sum(counts["W-3"][i] for i in window)
    w12_share = sum(counts["W-1"][i] + counts["W-2"][i] for i in window)
    assert w3_share < 0.25 * (w3_share + w12_share)

    # EDF: reversed — after W-3's release it dominates the map slots.
    edf = runs["EDF"].metrics
    times, counts = edf.allocation_matrix(TaskKind.MAP, WORKFLOWS, step=60.0)
    window = [i for i, t in enumerate(times) if 660.0 <= t <= 1800.0]
    w3_share = sum(counts["W-3"][i] for i in window)
    total = sum(counts[w][i] for w in WORKFLOWS for i in window)
    # W-3 takes well above an even third (its own chain phases keep it from
    # literally consuming every slot).
    assert w3_share > 0.4 * total

    # WOHA: no workflow monopolizes — every workflow holds slots in the
    # contended window under WOHA-LPF.
    woha = runs["WOHA-LPF"].metrics
    times, counts = woha.allocation_matrix(TaskKind.MAP, WORKFLOWS, step=60.0)
    window = [i for i, t in enumerate(times) if 660.0 <= t <= 1800.0]
    for wf in WORKFLOWS:
        assert sum(counts[wf][i] for i in window) > 0