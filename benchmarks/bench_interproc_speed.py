"""Whole-program analysis latency: call graph + DT201-DT204.

The interprocedural gate in ``tests/analysis/test_lint_gate.py`` runs on
every tier-1 invocation, so the graph build (two passes over every module)
plus taint propagation and budget DFS must stay cheap.  This bench times a
full ``src/repro`` run of ``lint_paths(..., interproc=True)`` — parse, all
intraprocedural rules, graph construction, the four interprocedural rules
and baseline reconciliation — and enforces the ISSUE's bar: a complete run
in **under 5 seconds** on the development corpus.

The measurement test is marked ``perf`` and therefore deselected by the
default ``-m "not perf"`` addopts; run it explicitly with
``pytest benchmarks/bench_interproc_speed.py -m perf``.  The tier-1 shape
guard lives in ``tests/integration/test_bench_interproc_guard.py``.
"""

from __future__ import annotations

import time
from pathlib import Path
from typing import Dict, Optional, Sequence

import pytest

import repro
from repro.analysis import lint_paths
from repro.analysis.callgraph import build_call_graph_from_paths
from repro.metrics.report import format_table

from benchmarks._helpers import emit

PACKAGE_ROOT = Path(repro.__file__).parent
BASELINE = Path(__file__).resolve().parent.parent / "lint-baseline.txt"

#: The ISSUE's acceptance bar for a full interprocedural run, in seconds.
BUDGET_SECONDS = 5.0


def run_bench(
    paths: Optional[Sequence[Path]] = None,
    baseline: Optional[Path] = None,
    repeats: int = 3,
) -> Dict[str, object]:
    """Best-of-``repeats`` interprocedural lint; timing + graph stats."""
    paths = list(paths) if paths is not None else [PACKAGE_ROOT]
    baseline = baseline if baseline is not None else BASELINE
    best = float("inf")
    report = None
    for _ in range(repeats):
        start = time.perf_counter()
        report = lint_paths(paths, baseline_path=baseline, interproc=True)
        best = min(best, time.perf_counter() - start)
    graph = build_call_graph_from_paths([str(p) for p in paths])
    return {
        "bench": "interproc_speed",
        "files_checked": report.files_checked,
        "functions": len(graph.functions),
        "edges": len(graph.edges),
        "violations": len(report.violations),
        "suppressed": len(report.suppressed),
        "best_seconds": round(best, 3),
        "files_per_sec": round(report.files_checked / best, 1),
        "budget_seconds": BUDGET_SECONDS,
    }


@pytest.mark.perf
def test_full_tree_interproc_under_budget():
    payload = run_bench()
    table = format_table(
        ["files", "functions", "edges", "best (s)", "files/s", "budget (s)"],
        [[
            payload["files_checked"],
            payload["functions"],
            payload["edges"],
            payload["best_seconds"],
            payload["files_per_sec"],
            payload["budget_seconds"],
        ]],
        title="Interprocedural pass, full src/repro walk",
        float_fmt="{:.3f}",
    )
    emit("interproc_speed", table)
    assert payload["best_seconds"] < BUDGET_SECONDS


if __name__ == "__main__":
    print(run_bench())
