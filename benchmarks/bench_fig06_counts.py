"""Fig 6: task-count CDFs of the (synthetic) job trace.

(a) CDF of mapper/reducer counts per job; paper anchors: ~30 % of jobs have
more than 100 mappers, >60 % of jobs have fewer than 10 reducers.
(b) CDF of the per-job map/reduce count ratio; mappers usually outnumber
reducers.
"""

import numpy as np

from repro.metrics.report import format_table
from repro.workloads.yahoo import generate_job_trace

from benchmarks._helpers import emit

COUNT_POINTS = [1, 3, 10, 30, 100, 300, 1000, 3000]
RATIO_POINTS = [0.01, 0.1, 1.0, 10.0, 100.0, 1000.0]


def test_fig06_task_counts(benchmark):
    trace = benchmark.pedantic(lambda: generate_job_trace(num_jobs=4000, seed=7), rounds=1, iterations=1)
    maps = np.array([j.num_maps for j in trace])
    reduces = np.array([j.num_reduces for j in trace])

    rows_a = [
        [p, float(np.mean(maps <= p)), float(np.mean(reduces <= p))] for p in COUNT_POINTS
    ]
    table_a = format_table(
        ["n", "P[#maps <= n]", "P[#reduces <= n]"],
        rows_a,
        title="Fig 6a: CDF of task counts per job (4000-job synthetic trace)",
    )

    with_reduce = reduces > 0
    ratios = maps[with_reduce] / reduces[with_reduce]
    rows_b = [[p, float(np.mean(ratios <= p))] for p in RATIO_POINTS]
    table_b = format_table(
        ["r", "P[#maps/#reduces <= r]"],
        rows_b,
        title="Fig 6b: CDF of per-job map/reduce count ratio",
    )
    emit("fig06_counts", table_a + "\n\n" + table_b)

    assert 0.2 < np.mean(maps > 100) < 0.4, "~30% of jobs exceed 100 mappers"
    assert np.mean(reduces < 10) > 0.6, ">60% of jobs have <10 reducers"
    assert np.mean(ratios > 1.0) > 0.75, "mappers usually outnumber reducers"