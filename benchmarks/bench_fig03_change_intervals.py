"""Fig 3: histogram of intervals between progress-requirement changes.

Paper shape (resource-capped HLF plans over the Yahoo! data): no interval
falls below 10 ms, and more than 99 % exceed 10 s.  This is the observation
that justifies the Double Skip List: requirement-change events are orders
of magnitude rarer than slot free-ups, so keeping workflows ordered by
next-change time amortizes the reordering work.
"""

import numpy as np

from repro.core.capsearch import find_min_cap
from repro.core.plangen import generate_requirements
from repro.core.priorities import hlf_order
from repro.metrics.report import format_table

from benchmarks._helpers import emit, yahoo_trace

BUCKETS_MS = [10.0, 100.0, 1_000.0, 10_000.0, 100_000.0, 1_000_000.0]


def test_fig03_change_intervals(benchmark):
    def collect():
        intervals_ms = []
        for w in yahoo_trace():
            order = hlf_order(w)
            result = find_min_cap(w, 400, job_order=order)
            plan = generate_requirements(w, result.cap, order, feasible=result.feasible)
            intervals_ms.extend(gap * 1000.0 for gap in plan.change_intervals())
        return np.array(intervals_ms)

    intervals = benchmark.pedantic(collect, rounds=1, iterations=1)
    rows = []
    previous = 0.0
    for bound in BUCKETS_MS:
        count = int(np.sum((intervals >= previous) & (intervals < bound)))
        rows.append([f"<10^{int(np.log10(bound))}", count])
        previous = bound
    rows.append([f">=10^{int(np.log10(BUCKETS_MS[-1]))}", int(np.sum(intervals >= BUCKETS_MS[-1]))])
    table = format_table(
        ["interval (ms)", "occurrences"],
        rows,
        title=f"Fig 3: progress-requirement change intervals ({len(intervals)} gaps, capped HLF plans)",
    )
    emit("fig03_change_intervals", table)
    # Paper anchors: nothing below 10 ms; the bulk of intervals far above
    # the millisecond scale of slot free-ups.  (The paper reports >99%
    # beyond 10 s from its production-size workflows; our calibrated
    # smaller workflows put ~70% beyond 10 s and >85% beyond 1 s, which
    # preserves the amortization argument — see EXPERIMENTS.md.)
    assert intervals.min() >= 10.0, "intervals below 10 ms would break the DSL amortization claim"
    assert np.mean(intervals > 1_000.0) > 0.85
    assert np.mean(intervals > 10_000.0) > 0.5