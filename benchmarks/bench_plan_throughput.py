"""Plan-generation throughput: fast path vs. the frozen reference path.

Two scenarios, matching how the planning fast path earns its keep:

* **cold** — every workflow of the Yahoo! trace planned once, nothing
  cached: isolates the heap kernel + memoised/seeded cap search + final-
  probe reuse (``benchmarks/_reference_plangen`` is the old path).
* **warm** — a 20-instance recurrent workload where the plan cache serves
  every dated instance after the first from one entry.

Besides the printed table, the run records a machine-readable
``BENCH_plan_throughput.json`` at the repo root so subsequent PRs have a
perf trajectory to compare against.  The JSON shape is pinned by
``tests/integration/test_bench_plan_throughput_guard.py``.

The measurement test is marked ``perf`` and therefore deselected by the
default ``-m "not perf"`` addopts; run it explicitly with
``pytest benchmarks/bench_plan_throughput.py -m perf``.
"""

from __future__ import annotations

import json
import os
import time
from typing import Dict, List, Optional, Sequence

import pytest

from repro.core.client import make_planner
from repro.core.plancache import PlanCache
from repro.metrics.report import format_table
from repro.workflow.builder import WorkflowBuilder
from repro.workflow.model import Workflow
from repro.workloads.recurrence import Recurrence, expand_recurrences

from benchmarks._helpers import emit, yahoo_trace
from benchmarks._reference_plangen import reference_planner

#: Trajectory file, kept at the repo root next to the other stock-taking docs.
JSON_PATH = os.path.join(os.path.dirname(__file__), os.pardir, "BENCH_plan_throughput.json")

#: Fig 8's 200m+200r cluster, the slot count the trace was sized for.
TOTAL_SLOTS = 400

#: Keys the guard test pins so the trajectory file cannot silently rot.
SCENARIO_KEYS = ("cold_pooled", "cold_split", "warm_recurrent")
RATE_KEYS = ("reference_plans_per_sec", "fast_plans_per_sec", "speedup")


def recurrent_instances(count: int = 20) -> List[Workflow]:
    """Dated instances of one periodic ETL-style pipeline (paper Fig 12)."""
    template = (
        WorkflowBuilder("hourly-etl")
        .job("ingest", maps=64, reduces=8, map_s=30.0, reduce_s=60.0)
        .job("clean", maps=32, reduces=4, map_s=20.0, reduce_s=45.0, after=["ingest"])
        .job("join", maps=48, reduces=12, map_s=25.0, reduce_s=90.0, after=["ingest"])
        .job("aggregate", maps=16, reduces=4, map_s=15.0, reduce_s=30.0, after=["clean", "join"])
        .job("publish", maps=4, reduces=1, map_s=10.0, reduce_s=20.0, after=["aggregate"])
        .deadline(relative=3000.0)
        .build()
    )
    return expand_recurrences(template, Recurrence(period=3600.0, count=count))


def _plans_per_sec(planner, workflows: Sequence[Workflow], total_slots: int, repeats: int) -> float:
    """Best-of-``repeats`` full-corpus planning rate."""
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        for workflow in workflows:
            planner(workflow, total_slots)
        best = min(best, time.perf_counter() - start)
    return len(workflows) / best


def run_bench(
    trace: Optional[Sequence[Workflow]] = None,
    instances: Optional[Sequence[Workflow]] = None,
    total_slots: int = TOTAL_SLOTS,
    repeats: int = 5,
) -> Dict[str, object]:
    """Measure all scenarios and return the trajectory payload."""
    trace = list(trace) if trace is not None else list(yahoo_trace())
    instances = list(instances) if instances is not None else recurrent_instances()

    scenarios: Dict[str, Dict[str, float]] = {}
    for scenario, pool in (("cold_pooled", "pooled"), ("cold_split", "split")):
        ref = _plans_per_sec(reference_planner("lpf", pool=pool), trace, total_slots, repeats)
        fast = _plans_per_sec(make_planner("lpf", pool=pool), trace, total_slots, repeats)
        scenarios[scenario] = {
            "reference_plans_per_sec": round(ref, 1),
            "fast_plans_per_sec": round(fast, 1),
            "speedup": round(fast / ref, 2),
        }

    ref = _plans_per_sec(reference_planner("lpf"), instances, total_slots, repeats)
    cached = make_planner("lpf", plan_cache=PlanCache())
    for workflow in instances:  # prime: the first instance builds the entry
        cached(workflow, total_slots)
    warm = _plans_per_sec(cached, instances, total_slots, repeats)
    scenarios["warm_recurrent"] = {
        "reference_plans_per_sec": round(ref, 1),
        "fast_plans_per_sec": round(warm, 1),
        "speedup": round(warm / ref, 2),
    }

    return {
        "bench": "plan_throughput",
        "total_slots": total_slots,
        "corpus": {"trace_workflows": len(trace), "recurrent_instances": len(instances)},
        "scenarios": scenarios,
    }


def write_json(payload: Dict[str, object], path: str = JSON_PATH) -> None:
    with open(path, "w") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
        fh.write("\n")


@pytest.mark.perf
def test_plan_throughput():
    payload = run_bench()
    scenarios = payload["scenarios"]

    rows = [
        [name] + [scenarios[name][key] for key in RATE_KEYS]
        for name in SCENARIO_KEYS
    ]
    table = format_table(
        ["scenario", "reference/s", "fast/s", "speedup"],
        rows,
        title=f"Plan generation throughput ({TOTAL_SLOTS} slots)",
        float_fmt="{:.1f}",
    )
    emit("plan_throughput", table)
    write_json(payload)

    # The tentpole's acceptance bars (ISSUE 2).
    assert scenarios["cold_pooled"]["speedup"] >= 3.0
    assert scenarios["warm_recurrent"]["speedup"] >= 10.0
