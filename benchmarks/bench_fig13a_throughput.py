"""Fig 13a: AssignTask throughput vs workflow queue length.

Paper shape: the Double Skip List sustains the highest call rate; two
balanced search trees are close behind; the naive
recompute-everything-and-resort scheduler collapses (it "cannot finish 2
invocations [per second] when the queue size increases to 10,000").

The harness builds a queue of N planned workflows with runnable tasks and
measures ``select_task`` + ``on_task_assigned`` round-trips per second for
each back-end.  Simulated time advances between calls so progress-
requirement change events keep firing, exercising the ct-list walk.
"""

import time

from repro.cluster.jobtracker import WorkflowInProgress
from repro.cluster.job import JobInProgress
from repro.cluster.tasks import TaskKind
from repro.core.plangen import generate_requirements
from repro.core.scheduler import NaiveWohaScheduler, WohaScheduler
from repro.metrics.report import format_table
from repro.workflow.builder import WorkflowBuilder

from benchmarks._helpers import emit

QUEUE_LENGTHS = [100, 1_000, 10_000, 100_000]
#: The naive scheduler at 100k would take minutes per data point; the paper
#: similarly stops plotting it once it falls below 2 calls/s.
NAIVE_MAX = 10_000


def build_queue(scheduler, count: int):
    """Register ``count`` planned workflows, each with abundant runnable
    map tasks and a progress plan whose steps fire over the coming hour."""
    template = (
        WorkflowBuilder("template")
        .job("work", maps=500, reduces=50, map_s=30.0, reduce_s=90.0)
        .deadline(relative=3600.0)
        .build()
    )
    plan = generate_requirements(template, cap=4)
    wips = {}
    for i in range(count):
        definition = template.renamed(f"wf{i:06d}").with_timing(
            submit_time=0.0, deadline=3600.0 + (i % 97)
        )
        wip = WorkflowInProgress(definition, f"id{i:06d}", submit_time=0.0)
        wip.plan = plan
        jip = JobInProgress(f"job{i:06d}", definition.job("work"), definition.name, 0.0)
        wip.jobs["work"] = jip
        scheduler.on_workflow_submitted(wip, now=0.0)
        wips[definition.name] = wip
    return wips


def measure(scheduler, wips, calls: int, start_now: float = 0.0) -> float:
    """AssignTask round-trips per second.

    Emulates the JobTracker's launch path: obtain a task, bump the owning
    workflow's true progress rho, notify the scheduler.  The launched task
    is recycled afterwards so the queue never drains of runnable work.
    """
    now = start_now
    start = time.perf_counter()
    for _ in range(calls):
        task = scheduler.select_task(TaskKind.MAP, now)
        assert task is not None
        wips[task.workflow_name].scheduled_tasks += 1
        scheduler.on_task_assigned(task, now)
        task.job.on_task_lost(task)  # recycle the attempt; keep maps plentiful
        # A busy master sees thousands of free-ups per second, so simulated
        # time advances ~10 ms per AssignTask call.
        now += 0.01
    elapsed = time.perf_counter() - start
    return calls / elapsed


def backend_factory(kind: str):
    if kind == "naive":
        return NaiveWohaScheduler()
    return WohaScheduler(queue_backend=kind)


def test_fig13a_throughput(benchmark):
    def sweep():
        rows = []
        for backend, label in (("dsl", "WOHA-DSL"), ("bst", "WOHA-BST"), ("naive", "WOHA-Naive")):
            row = [label]
            for n in QUEUE_LENGTHS:
                if backend == "naive" and n > NAIVE_MAX:
                    row.append(float("nan"))
                    continue
                scheduler = backend_factory(backend)
                wips = build_queue(scheduler, n)
                calls = 200 if backend != "naive" else max(10, 2000 // max(1, n // 10))
                measure(scheduler, wips, 20)  # warm-up
                row.append(measure(scheduler, wips, calls, start_now=1.0))
            rows.append(row)
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    headers = ["scheduler"] + [f"n={n}" for n in QUEUE_LENGTHS]
    table = format_table(
        headers, rows, title="Fig 13a: AssignTask calls per second vs queue length", float_fmt="{:.1f}"
    )
    emit("fig13a_throughput", table)

    by_label = {row[0]: row[1:] for row in rows}
    for idx, n in enumerate(QUEUE_LENGTHS):
        if n <= NAIVE_MAX:
            # DSL beats naive, increasingly so as the queue grows.
            assert by_label["WOHA-DSL"][idx] > by_label["WOHA-Naive"][idx]
    # The naive collapse: at 10k workflows its rate is a small fraction of
    # the DSL's (the paper's naive curve falls below 2 calls/s there).
    idx_10k = QUEUE_LENGTHS.index(10_000)
    assert by_label["WOHA-Naive"][idx_10k] < 0.15 * by_label["WOHA-DSL"][idx_10k]
    # DSL and BST stay usable even at 100k workflows ("scales up to tens of
    # thousands of concurrently running workflows").
    idx_100k = QUEUE_LENGTHS.index(100_000)
    assert by_label["WOHA-DSL"][idx_100k] > 20.0
    assert by_label["WOHA-BST"][idx_100k] > 20.0