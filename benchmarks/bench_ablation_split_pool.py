"""Ablation: pooled vs split-pool plan generation (DESIGN.md §6).

Algorithm 1 as published pools map and reduce slots into one cap ``n``,
so a plan can assume more reduce parallelism than the reduce pool offers;
the resulting makespan prediction is optimistic for reduce-heavy
workflows.  Our split-pool variant models the two pools separately.

The bench measures prediction fidelity: each workflow runs *alone* on the
paper's 32-slave cluster (64 map / 32 reduce slots) and we compare the
plan-predicted makespan against the observed completion, sweeping the
reduce share of the workload.
"""

from repro import ClusterConfig, ClusterSimulation, WohaScheduler, WorkflowBuilder
from repro.core.plangen import generate_requirements, generate_requirements_split
from repro.metrics.report import format_table

from benchmarks._helpers import emit


def workload(name: str, reduce_share: float):
    """A two-job workflow whose reduce work is ``reduce_share`` of total."""
    total_work = 40_000.0
    reduce_work = total_work * reduce_share
    map_work = total_work - reduce_work
    num_maps = max(1, round(map_work / 2 / 25.0))
    num_reduces = max(1, round(reduce_work / 2 / 100.0))
    builder = WorkflowBuilder(name)
    builder.job("a", maps=num_maps, reduces=num_reduces, map_s=25.0, reduce_s=100.0)
    builder.job("b", maps=num_maps, reduces=num_reduces, map_s=25.0, reduce_s=100.0, after=["a"])
    return builder.build()


def observed_makespan(workflow):
    config = ClusterConfig(
        num_nodes=32,
        map_slots_per_node=2,
        reduce_slots_per_node=1,
        heartbeat_interval=float("inf"),
        submit_task_duration=0.0,
    )
    sim = ClusterSimulation(config, WohaScheduler(), submission="woha", planner=lambda w, n: None)
    sim.add_workflow(workflow)
    return sim.run().stats[workflow.name].completion_time


def test_ablation_split_pool(benchmark):
    def sweep():
        rows = []
        for share in (0.1, 0.3, 0.5, 0.7):
            w = workload(f"rs{int(share * 100)}", share)
            pooled = generate_requirements(w, 96)
            split = generate_requirements_split(w, 64, 32)
            actual = observed_makespan(w)
            rows.append(
                [
                    f"{share:.0%}",
                    actual,
                    pooled.makespan,
                    (pooled.makespan - actual) / actual * 100,
                    split.makespan,
                    (split.makespan - actual) / actual * 100,
                ]
            )
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    table = format_table(
        ["reduce share", "actual (s)", "pooled pred", "err %", "split pred", "err %"],
        rows,
        title="Ablation: plan makespan prediction, pooled (Algorithm 1) vs split pools",
        float_fmt="{:.1f}",
    )
    emit("ablation_split_pool", table)
    for row in rows:
        pooled_err, split_err = abs(row[3]), abs(row[5])
        # The split model is never worse and is exact within task
        # granularity; pooled degrades with reduce share.
        assert split_err <= pooled_err + 1e-6
        assert split_err < 2.0
    # At 70% reduce work the pooled optimism is substantial.
    assert abs(rows[-1][3]) > 15.0