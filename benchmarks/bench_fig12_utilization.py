"""Fig 12: cluster utilization for the six schedulers (3 recurrences).

Paper shape: utilizations sit in the 0.6-0.8 band; the WOHA variants are
at the top of the band and Fair at the bottom — dynamic progress-based
priorities keep slots busier than static fair shares.

The paper labels the figure "with 3 recurrence": the experiment's three
staggered releases of the same topology (the Fig 11 input).
"""

from repro.metrics.report import format_table

from benchmarks._helpers import STACKS, emit, fig11_runs


def test_fig12_utilization(benchmark):
    runs = benchmark.pedantic(fig11_runs, rounds=1, iterations=1)
    rows = [[name, runs[name].utilization] for name, _f in STACKS]
    table = format_table(
        ["scheduler", "utilization"],
        rows,
        title="Fig 12: cluster utilization with 3 recurrences",
    )
    emit("fig12_utilization", table)
    utils = {name: runs[name].utilization for name, _f in STACKS}
    # Everyone lands in the paper's band.
    for name, value in utils.items():
        assert 0.5 < value < 0.85, (name, value)
    # WOHA at least matches Fair (the paper's side-benefit claim).
    assert max(utils[v] for v in ("WOHA-HLF", "WOHA-LPF", "WOHA-MPF")) >= utils["Fair"]