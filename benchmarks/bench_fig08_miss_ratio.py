"""Fig 8: deadline miss ratio vs cluster size, six schedulers.

Paper shape: FIFO and Fair behave terribly at every size; WOHA-HLF/LPF and
EDF are close, with all curves converging as the cluster grows to
280m-280r (adequate resources) — the differences live in the
less-than-adequate middle.  Our measured deviation from the paper (our
idealized EDF edges out WOHA at 200m-200r instead of trailing it) is
analysed in EXPERIMENTS.md.
"""

from repro.metrics.report import format_table

from benchmarks._helpers import CLUSTER_SIZES, STACKS, emit, fig8_sweep


def test_fig08_miss_ratio(benchmark):
    sweep = benchmark.pedantic(fig8_sweep, rounds=1, iterations=1)
    rows = []
    for name, _f in STACKS:
        row = [name]
        for size in CLUSTER_SIZES:
            row.append(sweep[(name, size)].miss_ratio)
        rows.append(row)
    headers = ["scheduler"] + [f"{m}m-{r}r" for m, r in CLUSTER_SIZES]
    table = format_table(
        headers, rows, title="Fig 8: deadline miss ratio (Yahoo!-like trace, 46 workflows)"
    )
    emit("fig08_miss_ratio", table)
    # Reproduction gates (paper shapes):
    for size in CLUSTER_SIZES:
        fifo = sweep[("FIFO", size)].miss_ratio
        woha = sweep[("WOHA-LPF", size)].miss_ratio
        assert fifo >= woha, f"FIFO should miss at least as much as WOHA at {size}"
    # Curves converge at the largest size.
    big = [sweep[(n, (280, 280))].miss_ratio for n, _ in STACKS if n not in ("FIFO", "Fair")]
    assert max(big) - min(big) <= 0.1
