"""Scale-out bench tier: cluster-size sweep and sharded-runner sweep.

Two sweeps, matching the two scale axes ISSUE 6 adds:

* **cluster sweep** — one 500+-workflow workload simulated on clusters of
  500, 1000 and 2000 TaskTrackers with the full runtime fast path on
  (quiescent heartbeats + batched assignment): events/sec and wall clock
  vs. cluster size.
* **worker sweep** — one experiment grid run through
  :func:`repro.experiments.runner.run_grid` at 0 (inline), 1, 2 and 4
  worker processes: wall clock vs. worker count, plus the hard invariant
  that every sharded payload is byte-identical to the sequential run.
  (This container may be single-core, so the sweep's claim is equality and
  overhead accounting, never a parallel speedup.)

Besides the printed tables the run records ``BENCH_scale.json`` at the
repo root; its shape is pinned in tier-1 by
``tests/integration/test_bench_scale_guard.py`` on a toy grid.

The measurement test is marked ``perf`` and deselected by the default
``-m "not perf"`` addopts; run it explicitly with
``pytest benchmarks/bench_scale.py -m perf``.
"""

from __future__ import annotations

import json
import os
import time
from typing import Dict, List, Sequence

import pytest

from repro.cluster.config import ClusterConfig
from repro.cluster.simulation import ClusterSimulation
from repro.experiments.runner import ExperimentCell, run_grid
from repro.experiments.scenarios import periodic_scenario
from repro.metrics.report import format_table
from repro.schedulers.fifo import FifoScheduler

from benchmarks._helpers import emit

JSON_PATH = os.path.join(os.path.dirname(__file__), os.pardir, "BENCH_scale.json")

#: Metric keys pinned per cluster-sweep entry.
CLUSTER_METRIC_KEYS = ("wall_s", "events", "events_per_sec", "makespan", "utilization")
#: Metric keys pinned per worker-sweep entry.
WORKER_METRIC_KEYS = ("wall_s", "cells", "matches_sequential")

#: The full tier's parameters (the guard runs a toy version of the same code).
FULL_NODE_SIZES = (500, 1000, 2000)
FULL_WORKFLOWS = 504
FULL_WORKER_COUNTS = (0, 1, 2, 4)


def scale_workload(count: int, seed: int = 11):
    """``count`` staggered ETL chains (the periodic scenario, scaled)."""
    workflows, _ = periodic_scenario(seed, scale=count / 6.0)
    return workflows


def cluster_sweep(
    node_sizes: Sequence[int],
    workflow_count: int,
    repeats: int,
) -> Dict[str, Dict[str, float]]:
    """Best-of-``repeats`` wall clock of one workload vs. cluster size."""
    workflows = scale_workload(workflow_count)
    sweep: Dict[str, Dict[str, float]] = {}
    for nodes in node_sizes:
        best = float("inf")
        result = None
        for _ in range(repeats):
            config = ClusterConfig(
                num_nodes=nodes,
                heartbeat_interval=float("inf"),
                quiescent_heartbeats=True,
                batched_assignment=True,
            )
            sim = ClusterSimulation(config, FifoScheduler())
            sim.add_workflows(workflows)
            start = time.perf_counter()
            result = sim.run()
            best = min(best, time.perf_counter() - start)
        best = max(best, 1e-9)
        sweep[f"nodes_{nodes}"] = {
            "wall_s": round(best, 4),
            "events": result.events_processed,
            "events_per_sec": round(result.events_processed / best, 1),
            "makespan": round(result.makespan, 1),
            "utilization": round(result.utilization, 4),
        }
    return sweep


def sweep_grid(seeds: Sequence[int] = (0, 1), scale: float = 0.5) -> List[ExperimentCell]:
    """The worker sweep's grid: scenarios x schedulers x seeds."""
    return [
        ExperimentCell(scenario, scheduler, seed=seed, nodes=32, scale=scale)
        for scenario in ("periodic", "yahoo")
        for scheduler in ("fifo", "woha-lpf")
        for seed in seeds
    ]


def worker_sweep(
    cells: Sequence[ExperimentCell],
    worker_counts: Sequence[int],
    repeats: int,
) -> Dict[str, Dict[str, object]]:
    """Wall clock of the same grid vs. worker count, checked against the
    sequential payload byte for byte."""
    reference = run_grid(cells, workers=0).dumps()
    sweep: Dict[str, Dict[str, object]] = {}
    for workers in worker_counts:
        best = float("inf")
        payload = None
        for _ in range(repeats):
            start = time.perf_counter()
            grid = run_grid(cells, workers=workers)
            best = min(best, time.perf_counter() - start)
            payload = grid.dumps()
        sweep[f"workers_{workers}"] = {
            "wall_s": round(max(best, 1e-9), 4),
            "cells": len(cells),
            "matches_sequential": payload == reference,
        }
    return sweep


def run_bench(
    node_sizes: Sequence[int] = FULL_NODE_SIZES,
    workflow_count: int = FULL_WORKFLOWS,
    worker_counts: Sequence[int] = FULL_WORKER_COUNTS,
    grid_cells: Sequence[ExperimentCell] = None,
    repeats: int = 2,
) -> Dict[str, object]:
    """Measure both sweeps and return the trajectory payload."""
    cells = list(grid_cells) if grid_cells is not None else sweep_grid()
    return {
        "bench": "scale",
        "repeats": repeats,
        "corpus": {
            "cluster_workflows": workflow_count,
            "grid_cells": len(cells),
        },
        "cluster_sweep": cluster_sweep(node_sizes, workflow_count, repeats),
        "worker_sweep": worker_sweep(cells, worker_counts, repeats),
    }


def write_json(payload: Dict[str, object], path: str = JSON_PATH) -> None:
    with open(path, "w") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
        fh.write("\n")


@pytest.mark.perf
def test_scale():
    payload = run_bench()

    cluster_rows = [
        [name] + [payload["cluster_sweep"][name][key] for key in CLUSTER_METRIC_KEYS]
        for name in sorted(payload["cluster_sweep"])
    ]
    emit(
        "scale:cluster",
        format_table(
            ["cluster"] + list(CLUSTER_METRIC_KEYS),
            cluster_rows,
            title=f"Cluster-size sweep ({payload['corpus']['cluster_workflows']} workflows)",
            float_fmt="{:.2f}",
        ),
    )
    worker_rows = [
        [name] + [payload["worker_sweep"][name][key] for key in WORKER_METRIC_KEYS]
        for name in sorted(payload["worker_sweep"])
    ]
    emit(
        "scale:workers",
        format_table(
            ["runner"] + list(WORKER_METRIC_KEYS),
            worker_rows,
            title=f"Worker sweep ({payload['corpus']['grid_cells']}-cell grid)",
            float_fmt="{:.2f}",
        ),
    )
    write_json(payload)

    # The tier's hard bar: sharding never changes results, at any width.
    assert all(
        entry["matches_sequential"] for entry in payload["worker_sweep"].values()
    )
    # And the 2000-node tier actually ran at scale.
    biggest = payload["cluster_sweep"][f"nodes_{max(FULL_NODE_SIZES)}"]
    assert biggest["events"] > 0 and biggest["events_per_sec"] > 0
