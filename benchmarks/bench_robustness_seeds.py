"""Robustness check: the Fig 8 shapes across trace seeds.

The Fig 8-10 tables come from one seeded synthetic trace.  This bench
regenerates the 200m-200r experiment for three different trace seeds and
verifies the ordering claims are not an artifact of one draw: WOHA-LPF
beats FIFO and Fair on deadline misses on every seed, and its max
tardiness stays below theirs.
"""

from repro.cluster.config import ClusterConfig
from repro.metrics.report import format_table
from repro.workloads.yahoo import YahooTraceConfig, generate_yahoo_workflows

from benchmarks._helpers import STACKS, emit, run_stack

SEEDS = (2014, 7, 42)
SCHEDULERS = ("FIFO", "Fair", "EDF", "WOHA-LPF")


def test_robustness_across_seeds(benchmark):
    def sweep():
        rows = []
        for seed in SEEDS:
            workflows = generate_yahoo_workflows(
                YahooTraceConfig(seed=seed, drop_single_job=True)
            )
            config = ClusterConfig.from_total_slots(200, 200, nodes=40, heartbeat_interval=float("inf"))
            per_seed = {}
            for name in SCHEDULERS:
                result = run_stack(name, workflows, config)
                per_seed[name] = result
            rows.append(
                [seed]
                + [per_seed[n].miss_ratio for n in SCHEDULERS]
                + [per_seed["WOHA-LPF"].max_tardiness, per_seed["FIFO"].max_tardiness]
            )
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    table = format_table(
        ["seed"] + [f"{n} miss" for n in SCHEDULERS] + ["WOHA maxT", "FIFO maxT"],
        rows,
        title="Robustness: 200m-200r miss ratios across trace seeds",
    )
    emit("robustness_seeds", table)
    # The max-tardiness claim is robust on every draw: lag-based pacing
    # spreads lateness thin even when a heavy draw pushes the 200m-200r
    # point into overload.
    for row in rows:
        seed, fifo, fair, edf, woha, woha_t, fifo_t = row
        assert woha_t <= fifo_t, f"seed {seed}: WOHA max tardiness above FIFO's"
    # The miss-ratio win holds on most draws; heavy draws that overload the
    # smallest cluster can invert it (absolute-task-count lag favours large
    # workflows under deep overload — see EXPERIMENTS.md, "overload
    # sensitivity").
    wins = sum(1 for row in rows if row[4] <= row[1])
    assert wins >= 2, f"WOHA beat FIFO on only {wins} of {len(rows)} seeds"