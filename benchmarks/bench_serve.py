"""Serve-tier latency/throughput bench: batching on vs off, per mix.

Runs the closed-loop load generator (:mod:`repro.serve.loadgen`) over the
full grid — request mix × micro-batching × concurrency — against a fresh
in-process service per cell, and records the trajectory payload as
``BENCH_serve.json`` at the repo root (shape pinned by
``tests/serve/test_bench_serve_guard.py``).

Acceptance bars asserted here (ISSUE 10):

* the recurrent mix is served ≥90% from the shared plan cache;
* at the highest concurrency, cold-mix p99 with batching on is strictly
  better than with batching off — the shared-setup fusion must buy more
  than the micro-batch window costs.

The measurement test is marked ``perf`` and deselected by the default
``-m "not perf"`` addopts; run it explicitly with
``pytest benchmarks/bench_serve.py -m perf``.
"""

from __future__ import annotations

import json
import os
from typing import Dict

import pytest

from repro.metrics.report import format_table
from repro.serve.loadgen import run_serve_bench

from benchmarks._helpers import emit

#: Trajectory file, kept at the repo root next to the other stock-taking docs.
JSON_PATH = os.path.join(os.path.dirname(__file__), os.pardir, "BENCH_serve.json")

#: Top-level payload keys the guard test pins.
PAYLOAD_KEYS = ("bench", "config", "cells", "summary")


def run_bench(
    concurrency_levels=(2, 8, 16),
    requests_per_client: int = 40,
    scale: float = 0.5,
) -> Dict[str, object]:
    """The full measurement grid; returns the trajectory payload."""
    return run_serve_bench(
        concurrency_levels=concurrency_levels,
        requests_per_client=requests_per_client,
        scale=scale,
    )


def write_json(payload: Dict[str, object], path: str = JSON_PATH) -> None:
    with open(path, "w") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
        fh.write("\n")


@pytest.mark.perf
def test_serve_latency():
    payload = run_bench()
    cells = payload["cells"]

    rows = [
        [
            cell["mix"],
            "on" if cell["batching"] else "off",
            cell["concurrency"],
            cell["plans_per_sec"],
            cell["latency_ms"]["p50"],
            cell["latency_ms"]["p99"],
            cell["latency_ms"]["p999"],
            f"{cell['hit_rate']:.2f}",
        ]
        for cell in cells
    ]
    table = format_table(
        ["mix", "batch", "conc", "plans/s", "p50 ms", "p99 ms", "p999 ms", "hits"],
        rows,
        title="Planning service latency (closed-loop, in-process HTTP)",
        float_fmt="{:.2f}",
    )
    emit("serve", table)
    write_json(payload)

    summary = payload["summary"]
    # Bar 1: the recurrent steady state is served from the shared cache.
    assert summary["recurrent_hit_rate"] >= 0.9
    # Bar 2: at the top concurrency, fusion beats per-request building.
    cold = summary["cold_p99_ms"]
    assert cold["batching_on"] < cold["batching_off"]
