"""Shared machinery for the figure benches.

The Fig 8/9/10 benches share one cluster-size sweep and the Fig 11/12/14-19
benches share one six-scheduler run; both are computed once per pytest
session and cached here.  Every bench prints its table (so it lands in
``bench_output.txt``) and also writes it under ``benchmarks/results/``.
"""

from __future__ import annotations

import functools
import os
from typing import Callable, Dict, List, Optional, Tuple

from repro.cluster.config import ClusterConfig
from repro.cluster.simulation import ClusterSimulation, SimulationResult
from repro.core.client import make_planner
from repro.core.plancache import PlanCache
from repro.core.scheduler import WohaScheduler
from repro.schedulers.edf import EdfScheduler
from repro.schedulers.fair import FairScheduler
from repro.schedulers.fifo import FifoScheduler
from repro.workflow.model import Workflow
from repro.workloads.topologies import fig11_workflows
from repro.workloads.yahoo import YahooTraceConfig, generate_yahoo_workflows

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")

#: One plan cache per WOHA stack, shared by every bench in the session.
#: Cached plans are byte-identical to freshly generated ones
#: (tests/integration/test_plan_equivalence.py), so this only removes the
#: repeated cap searches when several benches replan the same workloads.
PLAN_CACHES: Dict[str, PlanCache] = {
    name: PlanCache(capacity=1024) for name in ("WOHA-HLF", "WOHA-MPF", "WOHA-LPF")
}

#: The six stacks of the paper's evaluation, in its plotting order.
STACKS: List[Tuple[str, Callable[[], Tuple[object, str, Optional[Callable]]]]] = [
    ("EDF", lambda: (EdfScheduler(), "oozie", None)),
    ("FIFO", lambda: (FifoScheduler(), "oozie", None)),
    ("Fair", lambda: (FairScheduler(), "oozie", None)),
    ("WOHA-HLF", lambda: (WohaScheduler(), "woha", make_planner("hlf", plan_cache=PLAN_CACHES["WOHA-HLF"]))),
    ("WOHA-MPF", lambda: (WohaScheduler(), "woha", make_planner("mpf", plan_cache=PLAN_CACHES["WOHA-MPF"]))),
    ("WOHA-LPF", lambda: (WohaScheduler(), "woha", make_planner("lpf", plan_cache=PLAN_CACHES["WOHA-LPF"]))),
]

#: The paper's Fig 8-10 cluster sizes: "200m-200r" etc.
CLUSTER_SIZES: List[Tuple[int, int]] = [(200, 200), (240, 240), (280, 280)]


def run_stack(
    name: str,
    workflows: List[Workflow],
    config: ClusterConfig,
) -> SimulationResult:
    """Run one named scheduler stack over the workflows."""
    for stack_name, factory in STACKS:
        if stack_name == name:
            scheduler, mode, planner = factory()
            sim = ClusterSimulation(config, scheduler, submission=mode, planner=planner)
            sim.add_workflows(workflows)
            return sim.run()
    raise KeyError(name)


@functools.lru_cache(maxsize=None)
def yahoo_trace() -> Tuple[Workflow, ...]:
    """The Fig 8-10 input: singletons dropped, as in the paper."""
    return tuple(generate_yahoo_workflows(YahooTraceConfig(drop_single_job=True)))


@functools.lru_cache(maxsize=None)
def fig8_sweep() -> Dict[Tuple[str, Tuple[int, int]], SimulationResult]:
    """All 18 (scheduler x cluster-size) runs behind Figs 8, 9 and 10."""
    workflows = list(yahoo_trace())
    results: Dict[Tuple[str, Tuple[int, int]], SimulationResult] = {}
    for maps, reduces in CLUSTER_SIZES:
        config = ClusterConfig.from_total_slots(maps, reduces, nodes=40, heartbeat_interval=float("inf"))
        for name, _factory in STACKS:
            results[(name, (maps, reduces))] = run_stack(name, workflows, config)
    return results


@functools.lru_cache(maxsize=None)
def fig11_runs() -> Dict[str, SimulationResult]:
    """The six scheduler runs behind Figs 11, 12 and 14-19."""
    config = ClusterConfig(
        num_nodes=32, map_slots_per_node=2, reduce_slots_per_node=1, heartbeat_interval=float("inf")
    )
    return {name: run_stack(name, fig11_workflows(), config) for name, _f in STACKS}


def emit(figure: str, table: str) -> None:
    """Print a bench table and persist it under benchmarks/results/."""
    print(f"\n{table}\n")
    os.makedirs(RESULTS_DIR, exist_ok=True)
    with open(os.path.join(RESULTS_DIR, f"{figure}.txt"), "w") as fh:
        fh.write(table + "\n")
