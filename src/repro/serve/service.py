"""The multi-tenant planning service core (DESIGN.md §15).

:class:`PlanningService` is the transport-independent heart of ``repro
serve``: it owns the shared :class:`~repro.core.plancache.PlanCache`, the
:class:`~repro.serve.batching.BatchingPlanner`, and a
:class:`~repro.trace.DecisionTracer` that doubles as the per-tenant
accounting ledger (``tenant:<name>`` counter scopes) and the ``/v1/trace``
event stream.  :class:`~repro.serve.api.PlanServer` is one transport over
it; tests and the ``serve`` profile scenario drive it directly.

Admission (§III's deadline guarantee, turned into an API): a workflow is
*admitted* exactly when the cap search run by
:meth:`~repro.core.client.WohaClient.generate_plan` would mark its plan
feasible — same pipeline, same cache, so the verdict can never disagree
with the plan a tenant later fetches.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Any, Dict, Optional, Tuple, Union

from repro.core.client import ValidationError, ValidationReport, _resolve_prioritizer
from repro.core.plancache import PlanCache, PlanCacheEntry
from repro.core.priorities import PRIORITIZERS
from repro.core.progress import ProgressPlan
from repro.serve.batching import BatchingPlanner
from repro.trace import DecisionTracer
from repro.workflow.model import Workflow, WorkflowValidationError
from repro.workflow.xmlconfig import parse_workflow_xml
from repro.workloads.io import workflows_from_json

__all__ = ["PlanningService", "PlanOutcome", "ServiceConfig"]


@dataclass(frozen=True)
class ServiceConfig:
    """Tunables for one service instance.

    ``total_slots`` plays the role of the master's slot-count answer in the
    paper's step c — the one piece of cluster state planning needs.
    """

    total_slots: int = 64
    prioritizer: str = "lpf"
    cap_search: bool = True
    pool: str = "pooled"
    map_fraction: float = 2.0 / 3.0
    cache_capacity: int = 1024
    batching: bool = True
    window: float = 0.002
    trace_capacity: Optional[int] = 4096

    def __post_init__(self) -> None:
        if self.total_slots < 1:
            raise ValueError("total_slots must be >= 1")
        if self.pool not in ("pooled", "split"):
            raise ValueError(f"unknown pool mode {self.pool!r}; pick 'pooled' or 'split'")
        if self.prioritizer not in PRIORITIZERS:
            raise ValueError(
                f"unknown prioritizer {self.prioritizer!r}; pick from {sorted(PRIORITIZERS)}"
            )


@dataclass(frozen=True)
class PlanOutcome:
    """One served plan: the entry, how it was obtained, and its request id."""

    plan: ProgressPlan
    search: Optional[Any]
    outcome: str  # "hit" | "miss" | "fused" | "coalesced"
    request_id: int

    @property
    def admitted(self) -> bool:
        """The admission verdict: the plan's feasibility bit."""
        return self.plan.feasible


class PlanningService:
    """Shared planning state plus the plan/admit/trace operations."""

    def __init__(self, config: Optional[ServiceConfig] = None) -> None:
        self.config = config or ServiceConfig()
        self.tracer = DecisionTracer(capacity=self.config.trace_capacity)
        self.cache = PlanCache(capacity=self.config.cache_capacity, tracer=self.tracer)
        self.batcher = BatchingPlanner(
            self.cache,
            window=self.config.window,
            enabled=self.config.batching,
            tracer=self.tracer,
        )
        self._prioritizer = _resolve_prioritizer(self.config.prioritizer)
        self.requests = 0

    # -- request parsing ----------------------------------------------------

    def parse_workflow(self, body: bytes, content_type: str = "application/xml") -> Workflow:
        """Decode one workflow from a request body (XML or JSON).

        XML is the paper's native submission format; JSON accepts a
        single-workflow ``repro-workflows`` document
        (:mod:`repro.workloads.io`), the format the sweep corpus and the
        load generator already speak.

        Raises:
            ValidationError: malformed body; ``.report.errors`` says why.
        """
        try:
            text = body.decode("utf-8")
        except UnicodeDecodeError as exc:
            raise ValidationError(
                ValidationReport((), (), errors=(f"undecodable request body: {exc}",))
            ) from exc
        if "json" in content_type:
            try:
                workflows = workflows_from_json(text)
            except (ValueError, KeyError, TypeError) as exc:
                raise ValidationError(
                    ValidationReport((), (), errors=(f"bad workflow JSON: {exc}",))
                ) from exc
            if len(workflows) != 1:
                raise ValidationError(
                    ValidationReport(
                        (), (), errors=(f"expected exactly 1 workflow, got {len(workflows)}",)
                    )
                )
            return workflows[0]
        try:
            return parse_workflow_xml(text)
        except WorkflowValidationError as exc:
            raise ValidationError(ValidationReport((), (), errors=(str(exc),))) from exc

    # -- operations ---------------------------------------------------------

    async def plan(
        self,
        workflow: Workflow,
        tenant: str = "default",
        total_slots: Optional[int] = None,
    ) -> PlanOutcome:
        """Plan one workflow through the shared batcher/cache.

        The plan bytes are identical to what a direct
        ``WohaClient.generate_plan`` (or ``make_planner``) call produces
        for the same configuration — the service adds sharing, never
        different answers (pinned by ``tests/serve/test_wire_equivalence``).
        """
        cfg = self.config
        slots = cfg.total_slots if total_slots is None else total_slots
        order = self._prioritizer(workflow)  # repro: calls[repro.core.priorities.hlf_order, repro.core.priorities.lpf_order, repro.core.priorities.mpf_order]
        (search, plan), outcome = await self.batcher.plan(
            workflow, tuple(order), slots,
            cap_search=cfg.cap_search, pool=cfg.pool, map_fraction=cfg.map_fraction,
        )
        self.requests += 1
        request_id = self.requests
        self.tracer.incr(f"tenant:{tenant}", outcome)
        self.tracer.record(
            "plan_served",
            float(request_id),  # request ordinal, not wall time: stays deterministic
            workflow=workflow.name,
            tenant=tenant,
            outcome=outcome,
            cap=plan.resource_cap,
            feasible=plan.feasible,
        )
        return PlanOutcome(plan=plan, search=search, outcome=outcome, request_id=request_id)

    async def admit(
        self,
        workflow: Workflow,
        tenant: str = "default",
        total_slots: Optional[int] = None,
    ) -> Dict[str, Any]:
        """Deadline-admission check: plan (shared with /v1/plan) + verdict."""
        served = await self.plan(workflow, tenant=tenant, total_slots=total_slots)
        plan = served.plan
        verdict = {
            "admitted": served.admitted,
            "workflow": workflow.name,
            "relative_deadline": workflow.relative_deadline,
            "resource_cap": plan.resource_cap,
            "makespan": plan.makespan,
            "outcome": served.outcome,
            "request_id": served.request_id,
        }
        self.tracer.record(
            "admission",
            float(served.request_id),
            workflow=workflow.name,
            tenant=tenant,
            admitted=served.admitted,
        )
        return verdict

    # -- introspection ------------------------------------------------------

    def stats(self) -> Dict[str, Any]:
        """A JSON-ready snapshot: requests, cache, batching, tenants."""
        counters = self.tracer.counter_table()
        tenants = {
            scope[len("tenant:"):]: dict(table)
            for scope, table in counters.items()
            if scope.startswith("tenant:")
        }
        return {
            "requests": self.requests,
            "config": {
                "total_slots": self.config.total_slots,
                "prioritizer": self.config.prioritizer,
                "cap_search": self.config.cap_search,
                "pool": self.config.pool,
                "batching": self.config.batching,
                "window": self.config.window,
            },
            "plan_cache": {
                "size": len(self.cache),
                "capacity": self.cache.capacity,
                "hit_ratio": self.cache.hit_ratio,
                **self.cache.counter_table()[PlanCache.COUNTER_SCOPE],
            },
            "batch": dict(self.batcher.counter_table()[BatchingPlanner.COUNTER_SCOPE]),
            "tenants": tenants,
        }

    def trace_page(self, since: int = 0, limit: int = 256) -> Tuple[str, int]:
        """One ``/v1/trace`` page: JSONL body plus the next cursor."""
        events = self.tracer.events_since(since, limit=limit)
        body = "".join(json.dumps(e, sort_keys=True) + "\n" for e in events)
        next_cursor = (events[-1]["seq"] + 1) if events else max(since, 0)
        return body, next_cursor
