"""Micro-batched plan building with shared-setup fusion (DESIGN.md §15).

The planning pipeline splits into a per-*structure* part and a per-*request*
part.  ``_SimProblem`` (:mod:`repro.core.plangen`) precomputes everything
that depends only on the workflow DAG and the job order; a cap-search probe
at cap ``c`` is then a pure function of ``(problem, c)`` — the deadline only
decides *which* caps get probed.  So two concurrent requests for the same
structure with different deadlines (the multi-tenant cold-start pattern:
one template, per-tenant deadlines) can share one ``_SimProblem`` build and
one probe memo, and each search skips every cap the other already simulated.

:class:`BatchingPlanner` exploits that overlap with a micro-batch window:

1. A cache **hit** bypasses the window entirely — batching must never slow
   down the recurrent steady state.
2. A miss parks in the pending list; the first miss arms a flush timer
   (``window`` seconds of ``asyncio.sleep``).
3. The flush runs **synchronously** — no awaits between its cache reads and
   writes — so it is atomic with respect to the event loop: the cache is a
   single-writer structure and needs no locks (DESIGN.md §15.3).
4. Within a flush, requests with identical fingerprints collapse to one
   build (outcome ``"fused"``); distinct fingerprints sharing a fusion key
   (structure, job order, planner mode — everything *except* deadline and
   slot count) share a ``_SimProblem`` and a probe memo.

Plan bytes are unchanged by construction: a probe's outcome at a given cap
is deterministic, so memo-served probes return exactly what a fresh
simulation would; only the *count* of simulations drops.
``tests/serve/test_wire_equivalence.py`` pins this against the direct
:meth:`~repro.core.client.WohaClient.generate_plan` path.
"""

from __future__ import annotations

import asyncio
from typing import Any, Dict, List, Optional, Tuple, Union

from repro.core.client import _plan_entry
from repro.core.plancache import PlanCache, PlanCacheEntry
from repro.core.plangen import _SimProblem
from repro.trace import NULL_TRACER
from repro.workflow.model import Workflow

__all__ = ["BatchingPlanner"]


class _PendingRequest:
    """One parked cache miss awaiting the next flush."""

    __slots__ = ("workflow", "order", "total_slots", "cap_search", "pool",
                 "map_fraction", "mode", "future")

    def __init__(
        self,
        workflow: Workflow,
        order: Tuple[str, ...],
        total_slots: int,
        cap_search: bool,
        pool: str,
        map_fraction: float,
        mode: Tuple[Any, ...],
        future: "asyncio.Future[Tuple[PlanCacheEntry, str]]",
    ) -> None:
        self.workflow = workflow
        self.order = order
        self.total_slots = total_slots
        self.cap_search = cap_search
        self.pool = pool
        self.map_fraction = map_fraction
        self.mode = mode
        self.future = future


class BatchingPlanner:
    """Fuses concurrent plan requests into shared-setup batches.

    Args:
        cache: the shared :class:`~repro.core.plancache.PlanCache`; hits are
            served from it synchronously, batch builds commit into it.
        window: micro-batch window in seconds.  ``0.0`` still defers one
            event-loop tick, so requests arriving in the same ready-queue
            burst batch together.
        enabled: ``False`` degrades to per-request building through
            :meth:`PlanCache.get_or_build_async` (the bench baseline).
        tracer: mirrors batch counters into the ``serve_batch`` scope.
    """

    COUNTER_SCOPE = "serve_batch"

    def __init__(
        self,
        cache: PlanCache,
        window: float = 0.002,
        enabled: bool = True,
        tracer=NULL_TRACER,
    ) -> None:
        if window < 0:
            raise ValueError("window must be >= 0")
        self.cache = cache
        self.window = window
        self.enabled = enabled
        self.tracer = tracer
        self._pending: List[_PendingRequest] = []
        self._flush_task: Optional["asyncio.Task[None]"] = None
        self.batches = 0
        self.batched_requests = 0
        self.fused = 0
        self.shared_setups = 0

    @staticmethod
    def planner_mode(pool: str, cap_search: bool, map_fraction: float) -> Tuple[Any, ...]:
        """The cache ``mode`` tuple — same shape :func:`make_planner` uses,
        so service-built entries and standalone-planner entries collide."""
        return (pool, cap_search, map_fraction)

    async def plan(
        self,
        workflow: Workflow,
        job_order: Tuple[str, ...],
        total_slots: int,
        cap_search: bool = True,
        pool: str = "pooled",
        map_fraction: float = 2.0 / 3.0,
    ) -> Tuple[PlanCacheEntry, str]:
        """Resolve one plan request; returns ``(entry, outcome)``.

        Outcomes: ``"hit"`` (served from cache, no window), ``"miss"``
        (this request's batch built it), ``"fused"`` (an identical request
        in the same batch built it), ``"coalesced"`` (batching disabled:
        another task's in-flight build was awaited).
        """
        mode = self.planner_mode(pool, cap_search, map_fraction)
        if not self.enabled:
            return await self.cache.get_or_build_async(
                workflow, job_order, total_slots, mode,
                build=lambda: _plan_entry(
                    workflow, job_order, total_slots, cap_search, pool, map_fraction
                ),
            )
        entry = self.cache.lookup(workflow, job_order, total_slots, mode)
        if entry is not None:
            return entry, "hit"
        loop = asyncio.get_running_loop()
        future: "asyncio.Future[Tuple[PlanCacheEntry, str]]" = loop.create_future()
        self._pending.append(
            _PendingRequest(
                workflow, tuple(job_order), total_slots, cap_search, pool,
                map_fraction, mode, future,
            )
        )
        if self._flush_task is None or self._flush_task.done():
            self._flush_task = loop.create_task(self._flush_after_window())
        return await future

    async def _flush_after_window(self) -> None:
        """Sleep out the window, then drain every pending request."""
        await asyncio.sleep(self.window)
        while self._pending:
            self.flush_now()

    def flush_now(self) -> int:  # repro: budget O(n)
        """Drain the pending list in one synchronous batch; returns its size.

        Public so tests and the ``serve`` profile scenario can drive the
        batch path deterministically without a running window timer.
        """
        batch = self._pending
        if not batch:
            return 0
        self._pending = []
        self._flush(batch)
        return len(batch)

    def _flush(self, batch: List[_PendingRequest]) -> None:  # repro: budget O(n)
        # Stage 1 — collapse identical fingerprints: one build serves all
        # duplicate requests in the batch (outcome "fused" for the extras).
        by_key: Dict[Tuple[Any, ...], List[_PendingRequest]] = {}
        for req in batch:
            key = PlanCache.fingerprint(req.workflow, req.order, req.total_slots, req.mode)
            group = by_key.get(key)
            if group is None:
                by_key[key] = [req]  # repro: allow[DT401] - one accumulator per distinct fingerprint
            else:
                group.append(req)
        # Stage 2 — group distinct fingerprints by fusion key: everything
        # except the relative deadline and the slot count.  Members share a
        # _SimProblem and a probe memo.
        fusion: Dict[Tuple[Any, ...], List[List[_PendingRequest]]] = {}
        for key, group in by_key.items():
            fkey = (key[0], key[1], key[4])  # repro: allow[DT401] - (structure, order, mode) grouping key
            members = fusion.get(fkey)
            if members is None:
                fusion[fkey] = [group]  # repro: allow[DT401] - one accumulator per fusion group
            else:
                members.append(group)
        fused_here = len(batch) - len(by_key)
        shared_here = 0
        for members in fusion.values():
            shared_here += len(members) - 1
            first = members[0][0]
            # The shared setup: exactly what _plan_entry would build per
            # call, hoisted out of the member loop.  The memo carries probe
            # results across the members' cap searches.
            problem = _SimProblem(first.workflow, first.order)
            memo: Dict[Any, Any] = {}  # repro: allow[DT401] - one probe memo per fusion group
            for group in members:
                lead = group[0]
                try:
                    entry = self.cache.get_or_build(
                        lead.workflow, lead.order, lead.total_slots, lead.mode,
                        build=lambda r=lead, p=problem, m=memo: _plan_entry(
                            r.workflow, r.order, r.total_slots, r.cap_search,
                            r.pool, r.map_fraction, problem=p, memo=m,
                        ),
                    )
                except Exception as exc:  # repro: allow[DT303] - forwarded to each requester's future, never swallowed
                    for req in group:
                        future = req.future
                        if not future.done():
                            future.set_exception(exc)
                    continue
                outcome = "miss"
                for req in group:
                    future = req.future
                    if not future.done():
                        future.set_result((entry, outcome))  # repro: allow[DT401] - the per-request result pair
                    outcome = "fused"
        self.batches += 1
        self.batched_requests += len(batch)
        self.fused += fused_here
        self.shared_setups += shared_here
        if self.tracer.enabled:
            self.tracer.incr(self.COUNTER_SCOPE, "batches")
            self.tracer.incr(self.COUNTER_SCOPE, "batched_requests", len(batch))
            if fused_here:
                self.tracer.incr(self.COUNTER_SCOPE, "fused", fused_here)
            if shared_here:
                self.tracer.incr(self.COUNTER_SCOPE, "shared_setups", shared_here)

    def counter_table(self) -> Dict[str, Dict[str, Union[int, float]]]:
        """Batch stats in the ``counter_table`` duck-type, so
        ``MetricsCollector.aggregate_counters`` accepts the planner."""
        return {
            self.COUNTER_SCOPE: {
                "batched_requests": self.batched_requests,
                "batches": self.batches,
                "fused": self.fused,
                "shared_setups": self.shared_setups,
            }
        }
