"""Multi-tenant planning service tier (DESIGN.md §15).

The paper pushes all planning work to the client (§III-B); this package
packages that client-side pipeline as a long-running asyncio service so
many tenants share one :class:`~repro.core.plancache.PlanCache` and one
batching planner:

* :mod:`repro.serve.batching` — the micro-batch window that fuses
  concurrent cache misses sharing a workflow structure into one
  ``_SimProblem`` setup and one probe memo.
* :mod:`repro.serve.service` — :class:`PlanningService`, the transport-
  independent core (plan / admit / stats / trace).
* :mod:`repro.serve.api` — :class:`PlanServer`, a minimal HTTP/1.1 layer
  over asyncio streams (stdlib only).
* :mod:`repro.serve.loadgen` — the closed-loop load generator behind
  ``repro serve-bench``.
"""

from repro.serve.batching import BatchingPlanner
from repro.serve.service import PlanningService, ServiceConfig
from repro.serve.api import PlanServer

__all__ = ["BatchingPlanner", "PlanningService", "PlanServer", "ServiceConfig"]
