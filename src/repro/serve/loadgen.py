"""Closed-loop load generator for the planning service (``repro serve-bench``).

Measures end-to-end plan latency through the real wire path: for every
bench cell a **fresh** :class:`~repro.serve.service.PlanningService` +
:class:`~repro.serve.api.PlanServer` pair is started on an ephemeral port
inside the same event loop, ``concurrency`` closed-loop clients each hold
one keep-alive connection and fire ``requests_per_client`` ``POST
/v1/plan`` requests back-to-back, and the per-request wall latency feeds
p50/p99/p999.  Request bodies are pre-serialized before the clock starts,
so the measured path is socket → parse → plan → respond.

Two request mixes, matching the multi-tenant patterns DESIGN.md §15
optimises for:

``recurrent``
    Every client cycles through the same few workflow templates
    unchanged — the periodic-production steady state.  After the first
    builds, everything is a cache hit; the acceptance bar is a ≥90%
    hit-rate, and batching must not slow this mix down (hits bypass the
    micro-batch window entirely).
``cold``
    The same templates but every request carries a distinct relative
    deadline (deterministic jitter on the request ordinal), so every
    fingerprint misses.  This is where shared-setup fusion earns its
    keep: concurrent misses on one structure share a ``_SimProblem`` and
    a probe memo, and batching-on p99 must beat batching-off at the
    highest concurrency.

Workload templates come from the sweep scenario registry
(:data:`repro.experiments.scenarios.SCENARIOS`), so the bench plans the
same workflows the experiment tier schedules.
"""

from __future__ import annotations

import asyncio
import math
import time
from collections import Counter
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.experiments.scenarios import SCENARIOS
from repro.serve.api import PlanServer
from repro.serve.service import PlanningService, ServiceConfig
from repro.workflow.model import Workflow
from repro.workloads.io import workflows_to_json

__all__ = [
    "bench_templates",
    "build_request",
    "percentile",
    "run_cell",
    "run_serve_bench",
    "CELL_KEYS",
    "LATENCY_KEYS",
    "MIXES",
]

MIXES = ("recurrent", "cold")

#: Keys every bench cell carries (pinned by the tier-1 guard test).
CELL_KEYS = (
    "mix", "batching", "concurrency", "requests", "seconds",
    "plans_per_sec", "latency_ms", "outcomes", "hit_rate",
)
LATENCY_KEYS = ("p50", "p99", "p999")


def bench_templates(scenario: str = "serve", seed: int = 7, scale: float = 0.5) -> List[Workflow]:
    """Deadline-bearing workflow templates from the sweep scenario registry."""
    workflows, _outages = SCENARIOS[scenario](seed, scale)
    templates = [w for w in workflows if w.relative_deadline is not None]
    if not templates:
        raise ValueError(f"scenario {scenario!r} yields no deadline-bearing workflows")
    return templates


def _jittered(template: Workflow, ordinal: int) -> Workflow:
    """A copy whose *relative* deadline is unique to ``ordinal``.

    The jitter is a tiny deterministic stretch (0.01% per ordinal), enough
    to change the cache fingerprint without changing feasibility, so every
    cold-mix request is a genuine miss on a shared structure.
    """
    base = template.relative_deadline
    assert base is not None
    return template.with_timing(submit_time=0.0, deadline=base * (1.0 + ordinal * 1e-4))


def build_request(workflow: Workflow, tenant: str, path: str = "/v1/plan") -> bytes:
    """One pre-serialized HTTP request (JSON workflow body, keep-alive)."""
    body = workflows_to_json([workflow]).encode("utf-8")
    head = (
        f"POST {path} HTTP/1.1\r\n"
        f"Host: bench\r\n"
        f"Content-Type: application/json\r\n"
        f"X-Tenant: {tenant}\r\n"
        f"Content-Length: {len(body)}\r\n"
        f"\r\n"
    )
    return head.encode("latin-1") + body


async def _read_response(reader: asyncio.StreamReader) -> Tuple[int, Dict[str, str], bytes]:
    head = await reader.readuntil(b"\r\n\r\n")
    lines = head.decode("latin-1").split("\r\n")
    status = int(lines[0].split(" ")[1])
    headers: Dict[str, str] = {}
    for line in lines[1:]:
        if line:
            name, _sep, value = line.partition(":")
            headers[name.strip().lower()] = value.strip()
    body = await reader.readexactly(int(headers.get("content-length", "0")))
    return status, headers, body


async def _client_loop(
    port: int,
    requests: Sequence[bytes],
    latencies_ms: List[float],
    outcomes: "Counter[str]",
) -> None:
    """One closed-loop client: fire each request, wait for its response."""
    reader, writer = await asyncio.open_connection("127.0.0.1", port)
    try:
        for request in requests:
            start = time.perf_counter()  # repro: allow[DT102] - latency measurement, not a decision input
            writer.write(request)
            await writer.drain()
            status, headers, body = await _read_response(reader)
            latencies_ms.append((time.perf_counter() - start) * 1e3)  # repro: allow[DT102] - latency measurement, not a decision input
            if status != 200:
                raise RuntimeError(f"plan request failed: {status} {body[:200]!r}")
            outcomes[headers.get("x-plan-outcome", "unknown")] += 1
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionResetError, BrokenPipeError):
            pass


def percentile(sorted_values: Sequence[float], q: float) -> float:
    """Nearest-rank percentile over pre-sorted values (0 when empty)."""
    if not sorted_values:
        return 0.0
    index = max(0, math.ceil(q * len(sorted_values)) - 1)
    return sorted_values[min(index, len(sorted_values) - 1)]


def _cell_requests(
    mix: str,
    templates: Sequence[Workflow],
    concurrency: int,
    requests_per_client: int,
) -> List[List[bytes]]:
    """Pre-serialized request schedule, one list per client."""
    if mix not in MIXES:
        raise ValueError(f"unknown mix {mix!r}; pick from {MIXES}")
    schedule: List[List[bytes]] = []
    for client in range(concurrency):
        tenant = f"client{client:02d}"
        requests = []
        for i in range(requests_per_client):
            if mix == "cold":
                # All tenants plan the *same* template each round with a
                # per-request deadline: every fingerprint misses, but the
                # concurrent misses share one structure — the fusion case.
                template = _jittered(
                    templates[i % len(templates)], client * requests_per_client + i
                )
            else:
                template = templates[(client + i) % len(templates)]
            requests.append(build_request(template, tenant))
        schedule.append(requests)
    return schedule


async def _run_cell_async(
    mix: str,
    batching: bool,
    concurrency: int,
    requests_per_client: int,
    templates: Sequence[Workflow],
    total_slots: int,
    window: float,
) -> Dict[str, Any]:
    config = ServiceConfig(
        total_slots=total_slots, batching=batching, window=window, trace_capacity=64
    )
    service = PlanningService(config)
    server = PlanServer(service, host="127.0.0.1", port=0)
    await server.start()
    schedule = _cell_requests(mix, templates, concurrency, requests_per_client)
    latencies_ms: List[float] = []
    outcomes: "Counter[str]" = Counter()
    try:
        start = time.perf_counter()  # repro: allow[DT102] - throughput measurement, not a decision input
        await asyncio.gather(
            *(_client_loop(server.port, requests, latencies_ms, outcomes) for requests in schedule)
        )
        seconds = time.perf_counter() - start  # repro: allow[DT102] - throughput measurement, not a decision input
    finally:
        await server.stop()
    latencies_ms.sort()
    total = concurrency * requests_per_client
    return {
        "mix": mix,
        "batching": batching,
        "concurrency": concurrency,
        "requests": total,
        "seconds": round(seconds, 4),
        "plans_per_sec": round(total / seconds, 1) if seconds > 0 else 0.0,
        "latency_ms": {
            "p50": round(percentile(latencies_ms, 0.50), 3),
            "p99": round(percentile(latencies_ms, 0.99), 3),
            "p999": round(percentile(latencies_ms, 0.999), 3),
        },
        "outcomes": {name: outcomes[name] for name in sorted(outcomes)},
        "hit_rate": round(outcomes["hit"] / total, 4) if total else 0.0,
    }


def run_cell(
    mix: str,
    batching: bool,
    concurrency: int,
    requests_per_client: int,
    templates: Sequence[Workflow],
    total_slots: int = 64,
    window: float = 0.002,
) -> Dict[str, Any]:
    """One bench cell (fresh service + server; own event loop)."""
    return asyncio.run(
        _run_cell_async(
            mix, batching, concurrency, requests_per_client, templates, total_slots, window
        )
    )


def run_serve_bench(
    concurrency_levels: Sequence[int] = (2, 8, 16),
    requests_per_client: int = 25,
    scenario: str = "serve",
    seed: int = 7,
    scale: float = 0.5,
    total_slots: int = 200,
    window: float = 0.002,
    mixes: Sequence[str] = MIXES,
) -> Dict[str, Any]:
    """The full grid: mix × batching × concurrency; returns the payload.

    The ``summary`` block restates the two acceptance bars — the
    recurrent-mix hit rate and the cold-mix p99 comparison at the highest
    concurrency — so trajectory diffs need not scan the cell list.
    """
    templates = bench_templates(scenario, seed, scale)
    cells: List[Dict[str, Any]] = []
    for mix in mixes:
        for batching in (True, False):
            for concurrency in concurrency_levels:
                cells.append(
                    run_cell(
                        mix, batching, concurrency, requests_per_client,
                        templates, total_slots, window,
                    )
                )
    top = max(concurrency_levels)

    def _p99(mix: str, batching: bool) -> Optional[float]:
        for cell in cells:
            if (cell["mix"], cell["batching"], cell["concurrency"]) == (mix, batching, top):
                return cell["latency_ms"]["p99"]
        return None

    recurrent_hits = [c["hit_rate"] for c in cells if c["mix"] == "recurrent" and c["batching"]]
    summary: Dict[str, Any] = {
        "top_concurrency": top,
        "recurrent_hit_rate": min(recurrent_hits) if recurrent_hits else None,
        "cold_p99_ms": {"batching_on": _p99("cold", True), "batching_off": _p99("cold", False)},
    }
    return {
        "bench": "serve",
        "config": {
            "scenario": scenario,
            "seed": seed,
            "scale": scale,
            "total_slots": total_slots,
            "concurrency_levels": list(concurrency_levels),
            "requests_per_client": requests_per_client,
            "window": window,
            "templates": len(templates),
        },
        "cells": cells,
        "summary": summary,
    }
