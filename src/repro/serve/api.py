"""Minimal HTTP/1.1 transport for the planning service (DESIGN.md §15).

Stdlib only: ``asyncio.start_server`` streams plus a hand-rolled
request parser — no web framework ships with the image, and the protocol
surface is five routes.  Persistent connections (HTTP keep-alive) are
supported because the load generator runs closed-loop clients that reuse
one socket for thousands of requests; ``Connection: close`` is honoured.

Routes:

``GET /healthz``
    Liveness: ``{"ok": true}``.
``POST /v1/plan``
    Body: workflow XML (default) or a single-workflow JSON document
    (``Content-Type: application/json``).  Response: the serialized
    :class:`~repro.core.progress.ProgressPlan` wire bytes
    (``application/octet-stream``, feasibility bit included) with headers
    ``X-Plan-Cap``, ``X-Plan-Feasible``, ``X-Plan-Makespan``,
    ``X-Plan-Outcome`` (hit/miss/fused/coalesced) and ``X-Request-Id``.
    The tenant is taken from the ``X-Tenant`` header (default
    ``"default"``).
``POST /v1/admit``
    Same body; response is the JSON admission verdict (plan feasibility).
``GET /v1/trace?since=N&limit=M``
    JSONL page of retained tracer events with ``seq >= N``;
    ``X-Trace-Next`` carries the cursor for the next poll.
``GET /v1/stats``
    JSON snapshot: request count, cache counters, batch counters,
    per-tenant outcome counts.

Rejections use status 400 with the structured
:meth:`~repro.core.client.ValidationReport.to_payload` body, so clients
see *what* failed, not an exception string.
"""

from __future__ import annotations

import asyncio
import json
from typing import Any, Dict, Optional, Tuple
from urllib.parse import parse_qs, urlsplit

from repro.core.client import ValidationError
from repro.serve.service import PlanningService

__all__ = ["PlanServer"]

_MAX_HEADER_BYTES = 64 * 1024
_MAX_BODY_BYTES = 8 * 1024 * 1024

_STATUS_TEXT = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    413: "Payload Too Large",
    500: "Internal Server Error",
}


class _BadRequest(Exception):
    """A protocol-level parse failure (malformed request framing)."""


async def _read_request(
    reader: asyncio.StreamReader,
) -> Optional[Tuple[str, str, Dict[str, str], bytes]]:
    """Parse one request; ``None`` on a cleanly closed connection."""
    try:
        head = await reader.readuntil(b"\r\n\r\n")
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            return None  # client closed between requests: normal keep-alive end
        raise _BadRequest("truncated request head") from exc
    except asyncio.LimitOverrunError as exc:
        raise _BadRequest("request head too large") from exc
    if len(head) > _MAX_HEADER_BYTES:
        raise _BadRequest("request head too large")
    lines = head.decode("latin-1").split("\r\n")
    parts = lines[0].split(" ")
    if len(parts) != 3:
        raise _BadRequest(f"malformed request line {lines[0]!r}")
    method, target, _version = parts
    headers: Dict[str, str] = {}
    for line in lines[1:]:
        if not line:
            continue
        name, sep, value = line.partition(":")
        if not sep:
            raise _BadRequest(f"malformed header line {line!r}")
        headers[name.strip().lower()] = value.strip()
    length_text = headers.get("content-length", "0")
    try:
        length = int(length_text)
    except ValueError:
        raise _BadRequest(f"bad Content-Length {length_text!r}") from None
    if length < 0 or length > _MAX_BODY_BYTES:
        raise _BadRequest(f"unacceptable Content-Length {length}")
    body = await reader.readexactly(length) if length else b""
    return method, target, headers, body


def _response(
    status: int,
    body: bytes,
    content_type: str,
    extra: Optional[Dict[str, str]] = None,
    close: bool = False,
) -> bytes:
    lines = [
        f"HTTP/1.1 {status} {_STATUS_TEXT.get(status, 'Unknown')}",
        f"Content-Type: {content_type}",
        f"Content-Length: {len(body)}",
        f"Connection: {'close' if close else 'keep-alive'}",
    ]
    if extra:
        for name, value in extra.items():
            lines.append(f"{name}: {value}")
    lines.append("\r\n")
    return "\r\n".join(lines).encode("latin-1") + body


def _json_response(status: int, payload: Any, close: bool = False,
                   extra: Optional[Dict[str, str]] = None) -> bytes:
    body = (json.dumps(payload, sort_keys=True) + "\n").encode("utf-8")
    return _response(status, body, "application/json", extra=extra, close=close)


class PlanServer:
    """``repro serve``: the HTTP face of a :class:`PlanningService`.

    Args:
        service: the shared service core (one per process).
        host/port: bind address; port 0 lets the OS pick (tests, CI smoke).
    """

    def __init__(self, service: PlanningService, host: str = "127.0.0.1", port: int = 8080) -> None:
        self.service = service
        self.host = host
        self.port = port
        self._server: Optional[asyncio.base_events.Server] = None

    async def start(self) -> None:
        """Bind and start accepting; updates :attr:`port` when it was 0."""
        self._server = await asyncio.start_server(self._handle, self.host, self.port)
        self.port = self._server.sockets[0].getsockname()[1]

    async def serve_forever(self) -> None:
        if self._server is None:
            await self.start()
        assert self._server is not None
        async with self._server:
            await self._server.serve_forever()

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None

    # -- connection handling ------------------------------------------------

    # repro: entrypoint[service]
    async def _handle(self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter) -> None:
        """One client connection: serve requests until close (keep-alive)."""
        try:
            while True:
                try:
                    request = await _read_request(reader)
                except _BadRequest as exc:
                    writer.write(_json_response(400, {"error": str(exc)}, close=True))
                    await writer.drain()
                    break
                if request is None:
                    break
                method, target, headers, body = request
                close = headers.get("connection", "").lower() == "close"
                response = await self._dispatch(method, target, headers, body, close)
                writer.write(response)
                await writer.drain()
                if close:
                    break
        except (ConnectionResetError, BrokenPipeError, asyncio.IncompleteReadError):
            pass  # client went away mid-request; nothing to answer
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError, asyncio.CancelledError):
                pass  # CancelledError: event-loop teardown racing the close handshake

    async def _dispatch(
        self, method: str, target: str, headers: Dict[str, str], body: bytes, close: bool
    ) -> bytes:
        split = urlsplit(target)
        path = split.path
        query = parse_qs(split.query)
        try:
            if path == "/healthz":
                if method != "GET":
                    return _json_response(405, {"error": "use GET"}, close=close)
                return _json_response(200, {"ok": True}, close=close)
            if path == "/v1/stats":
                if method != "GET":
                    return _json_response(405, {"error": "use GET"}, close=close)
                return _json_response(200, self.service.stats(), close=close)
            if path == "/v1/trace":
                if method != "GET":
                    return _json_response(405, {"error": "use GET"}, close=close)
                return self._trace(query, close)
            if path == "/v1/plan":
                if method != "POST":
                    return _json_response(405, {"error": "use POST"}, close=close)
                return await self._plan(headers, body, close)
            if path == "/v1/admit":
                if method != "POST":
                    return _json_response(405, {"error": "use POST"}, close=close)
                return await self._admit(headers, body, close)
            return _json_response(404, {"error": f"no route {path!r}"}, close=close)
        except ValidationError as exc:
            return _json_response(400, exc.report.to_payload(), close=close)
        except Exception as exc:  # surface planner faults as 500, keep serving
            return _json_response(500, {"error": f"{type(exc).__name__}: {exc}"}, close=close)

    def _trace(self, query: Dict[str, Any], close: bool) -> bytes:
        try:
            since = int(query.get("since", ["0"])[0])
            limit = int(query.get("limit", ["256"])[0])
        except ValueError:
            return _json_response(400, {"error": "since/limit must be integers"}, close=close)
        if limit < 1:
            return _json_response(400, {"error": "limit must be >= 1"}, close=close)
        page, next_cursor = self.service.trace_page(since=since, limit=limit)
        return _response(
            200,
            page.encode("utf-8"),
            "application/x-ndjson",
            extra={"X-Trace-Next": str(next_cursor)},
            close=close,
        )

    async def _plan(self, headers: Dict[str, str], body: bytes, close: bool) -> bytes:
        workflow = self.service.parse_workflow(
            body, headers.get("content-type", "application/xml")
        )
        served = await self.service.plan(workflow, tenant=headers.get("x-tenant", "default"))
        plan = served.plan
        return _response(
            200,
            plan.to_bytes(),
            "application/octet-stream",
            extra={
                "X-Plan-Cap": str(plan.resource_cap),
                "X-Plan-Feasible": "1" if plan.feasible else "0",
                "X-Plan-Makespan": repr(plan.makespan),
                "X-Plan-Outcome": served.outcome,
                "X-Request-Id": str(served.request_id),
            },
            close=close,
        )

    async def _admit(self, headers: Dict[str, str], body: bytes, close: bool) -> bytes:
        workflow = self.service.parse_workflow(
            body, headers.get("content-type", "application/xml")
        )
        verdict = await self.service.admit(
            workflow, tenant=headers.get("x-tenant", "default")
        )
        return _json_response(200, verdict, close=close)
