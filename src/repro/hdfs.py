"""HDFS-lite: a minimal namespace model.

WOHA's Configuration Validator (paper §III-B step b) checks that the jar
files and input datasets a workflow names actually exist, copying them into
HDFS if necessary, and infers job dependencies from dataset paths.  The
simulator only needs the namespace-level behaviour: which paths exist, which
job produced them, and when.  No block placement or replication is modelled
— data locality is outside the paper's evaluation (its scheduling decisions
are slot-level).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Tuple

__all__ = ["HdfsNamespace", "HdfsError", "FileMeta"]


class HdfsError(KeyError):
    """Raised for namespace violations (missing path, double-create)."""


def _normalize(path: str) -> str:
    if not path.startswith("/"):
        raise HdfsError(f"HDFS paths are absolute; got {path!r}")
    parts = [p for p in path.split("/") if p]
    return "/" + "/".join(parts)


@dataclass(frozen=True)
class FileMeta:
    """Metadata for one namespace entry."""

    path: str
    created_at: float
    producer: Optional[str]  # "workflow/job" that wrote it, None for pre-loaded data
    size_bytes: int = 0


class HdfsNamespace:
    """A flat(ish) path -> :class:`FileMeta` map with prefix semantics.

    ``exists(p)`` is true if ``p`` itself or any file under the directory
    ``p`` exists, mirroring how Map-Reduce jobs treat an input *directory*.
    """

    def __init__(self) -> None:
        self._files: Dict[str, FileMeta] = {}

    def preload(self, paths: Iterable[str], size_bytes: int = 0) -> None:
        """Register pre-existing datasets (cluster inputs, jar files)."""
        for path in paths:
            self.create(path, created_at=0.0, producer=None, size_bytes=size_bytes)

    def create(
        self,
        path: str,
        created_at: float,
        producer: Optional[str] = None,
        size_bytes: int = 0,
    ) -> FileMeta:
        """Create a path; refuses to overwrite (Hadoop output semantics)."""
        path = _normalize(path)
        if path in self._files:
            raise HdfsError(f"output path already exists: {path!r}")
        meta = FileMeta(path=path, created_at=created_at, producer=producer, size_bytes=size_bytes)
        self._files[path] = meta
        return meta

    def delete(self, path: str) -> None:
        """Remove a path and everything under it."""
        path = _normalize(path)
        doomed = [p for p in self._files if p == path or p.startswith(path + "/")]
        if not doomed:
            raise HdfsError(f"no such path: {path!r}")
        for p in doomed:
            del self._files[p]

    def exists(self, path: str) -> bool:
        """True if the path, or anything under it, exists."""
        path = _normalize(path)
        if path in self._files:
            return True
        prefix = path + "/"
        return any(p.startswith(prefix) for p in self._files)

    def stat(self, path: str) -> FileMeta:
        path = _normalize(path)
        try:
            return self._files[path]
        except KeyError:
            raise HdfsError(f"no such path: {path!r}") from None

    def listing(self, prefix: str = "/") -> List[FileMeta]:
        """All entries at or under ``prefix``, sorted by path."""
        prefix = _normalize(prefix)
        if prefix == "/":
            keys = sorted(self._files)
        else:
            keys = sorted(
                p for p in self._files if p == prefix or p.startswith(prefix + "/")
            )
        return [self._files[p] for p in keys]

    def missing(self, paths: Iterable[str]) -> Tuple[str, ...]:
        """Subset of ``paths`` that do not exist — validator helper."""
        return tuple(p for p in paths if not self.exists(p))

    def __len__(self) -> int:
        return len(self._files)
