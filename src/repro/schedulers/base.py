"""The Workflow Scheduler interface the JobTracker consults.

In WOHA (paper §III-B) the JobTracker delegates every task-assignment
decision triggered by a heartbeat to a pluggable *Workflow Scheduler*; users
swap implementations by editing ``workflow-scheduler.xml``.  Here the
equivalent is passing a different :class:`WorkflowScheduler` to the
simulation.
"""

from __future__ import annotations

import abc
from typing import TYPE_CHECKING, Callable, Optional, Union

from repro.analysis.contracts import NULL_CONTRACTS
from repro.cluster.tasks import Task, TaskKind
from repro.trace import NULL_TRACER, DecisionTracer, NullTracer

if TYPE_CHECKING:  # pragma: no cover
    from repro.cluster.job import JobInProgress
    from repro.cluster.jobtracker import JobTracker, WorkflowInProgress

__all__ = ["WorkflowScheduler"]


class WorkflowScheduler(abc.ABC):
    """Task-assignment policy plugged into the JobTracker.

    Lifecycle callbacks keep the scheduler's internal queues in sync with
    the cluster; :meth:`select_task` answers "which task should the next
    free slot of this kind run?" and is called once per assignment, exactly
    like Hadoop-1's ``TaskScheduler.assignTasks`` loop.

    Implementations hold a :mod:`repro.trace` tracer (the no-op
    :data:`~repro.trace.NULL_TRACER` until one is attached) and emit one
    ``decision`` event per ``select_task`` call when it is enabled.
    Instrumentation must be strictly observational: attaching a tracer may
    never change which task a call returns.
    """

    #: Display name used in traces and counter tables; subclasses override.
    name = "scheduler"

    def __init__(self) -> None:
        self.jobtracker: Optional["JobTracker"] = None
        self.tracer: Union[DecisionTracer, NullTracer] = NULL_TRACER
        self.contracts = NULL_CONTRACTS
        # Conservative per-kind runnability hints for the JobTracker's
        # quiescent-heartbeat fast path (see DESIGN.md §10).  ``False``
        # only ever means "a select_task call returned None and no state
        # change has been observed since" — a proven-idle answer the
        # JobTracker may reuse without consulting the (stateful)
        # select_task again.  ``True`` means "maybe"; false positives
        # cost one select_task call, false negatives would change
        # decisions and are therefore impossible by construction.
        # Flat booleans, not an enum-keyed dict: the quiescence test and
        # the parked-timer wake scan read them once per tracker per event,
        # and an enum-keyed lookup pays enum ``__hash__`` dispatch per read.
        self.maybe_map = True
        self.maybe_reduce = True

    def bind(self, jobtracker: "JobTracker") -> None:
        """Called once by the JobTracker before any other callback."""
        self.jobtracker = jobtracker

    def attach_tracer(self, tracer: Union[DecisionTracer, NullTracer]) -> None:
        """Start emitting decision events into ``tracer``."""
        self.tracer = tracer

    def attach_contracts(self, checker) -> None:
        """Enable runtime invariant checks (:mod:`repro.analysis.contracts`).

        The base implementation only stores the checker; schedulers with
        checkable internal structures (e.g. :class:`WohaScheduler`'s Double
        Skip List queue) override this to forward it.  Like tracing,
        contract checking is strictly observational.
        """
        self.contracts = checker

    # -- runnability hints (quiescent-heartbeat fast path) -----------------

    # repro: budget O(1)
    def has_runnable(self, kind: TaskKind) -> bool:
        """Cheap hint: may :meth:`select_task` return a task of ``kind``?

        ``False`` is authoritative (a prior ``select_task`` proved idle and
        nothing changed since); ``True`` merely permits asking.  The
        JobTracker maintains the flag via :meth:`note_idle` /
        :meth:`note_state_change`; schedulers never flip it themselves.
        """
        return self.maybe_map if kind is not TaskKind.REDUCE else self.maybe_reduce

    # repro: budget O(1)
    def note_idle(self, kind: TaskKind) -> None:
        """Record that ``select_task(kind, ...)`` just returned ``None``."""
        if kind is not TaskKind.REDUCE:
            self.maybe_map = False
        else:
            self.maybe_reduce = False

    # repro: budget O(1)
    def note_state_change(self) -> None:
        """Invalidate idle hints: cluster state changed in a way that could
        make ``select_task`` answer differently (submission, completion,
        plan install, tracker death/revival)."""
        self.maybe_map = True
        self.maybe_reduce = True

    # -- lifecycle notifications (default: ignore) -----------------------

    def on_workflow_submitted(self, wip: "WorkflowInProgress", now: float) -> None:
        """A workflow's configuration arrived at the master."""

    def on_wjob_submitted(self, jip: "JobInProgress", now: float) -> None:
        """A runnable job (wjob or submitter) was registered."""

    def on_job_completed(self, jip: "JobInProgress", now: float) -> None:
        """A job finished all of its tasks."""

    def on_workflow_completed(self, wip: "WorkflowInProgress", now: float) -> None:
        """Every wjob of the workflow finished."""

    def on_task_assigned(self, task: Task, now: float) -> None:
        """A task this scheduler returned was launched (progress hook)."""

    # -- the decision ------------------------------------------------------

    @abc.abstractmethod
    def select_task(self, kind: TaskKind, now: float) -> Optional[Task]:
        """Return the next task to run on a free slot of ``kind``.

        ``kind`` is MAP or REDUCE (a map slot may receive a SUBMIT task).
        Return ``None`` when nothing runnable exists — the JobTracker stops
        asking until the next scheduling event.  Implementations must be
        work-conserving unless they explicitly document otherwise.
        """

    # repro: budget O(n)
    def select_tasks(
        self, kind: TaskKind, now: float, limit: int, launch: Callable[[Task], None]
    ) -> int:
        """Batched assignment: fill up to ``limit`` slots of ``kind`` in
        one round (``ClusterConfig.batched_assignment``, DESIGN.md §11).

        ``launch`` must be invoked once per selected task, *after* that
        task's decision event is recorded — it launches the task on the
        JobTracker, emitting the matching ``assign`` event, so the trace
        interleaving (decision, assign, decision, assign, ...) is the same
        as the unbatched path's.  Returns the number of tasks launched; a
        return value below ``limit`` is a proven-idle answer (the caller
        records it via :meth:`note_idle`) and must be accompanied by the
        same trailing idle ``decision`` event the unbatched path emits.

        This default replays the one-launch-per-call loop and is therefore
        byte-identical to the unbatched path for every scheduler.
        Schedulers whose selection is incremental over a stable queue
        (FIFO's walk, Fair's deficit argmin) override it with a
        single-walk batch that amortises the per-launch queue scans; every
        override must preserve the decision stream exactly
        (tests/integration/test_batched_equivalence.py).
        """
        launched = 0
        while launched < limit:
            task = self.select_task(kind, now)
            if task is None:
                return launched
            launch(task)  # repro: calls[repro.cluster.jobtracker.JobTracker._launch]
            launched += 1
        return launched
