"""Workflow schedulers: the WOHA-ported baselines of paper §V-B.

The WOHA progress-based scheduler itself lives in :mod:`repro.core.scheduler`;
everything here implements the same :class:`~repro.schedulers.base.WorkflowScheduler`
interface the JobTracker drives.
"""

from repro.schedulers.base import WorkflowScheduler
from repro.schedulers.fifo import FifoScheduler
from repro.schedulers.fair import FairScheduler
from repro.schedulers.edf import EdfScheduler

__all__ = ["WorkflowScheduler", "FifoScheduler", "FairScheduler", "EdfScheduler"]
