"""Earliest Deadline First over workflows (paper §V-B).

Verma et al. [10] brought EDF to Hadoop *job* scheduling; the paper ports
it to workflows by giving the whole workflow the priority of its deadline.
Within a workflow, submitted jobs run in submission (FIFO) order.
Workflows without deadlines sort last; ties break on submission time, then
name, so runs are deterministic.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List, Optional, Tuple

from repro.cluster.job import JobInProgress
from repro.cluster.tasks import Task, TaskKind
from repro.schedulers.base import WorkflowScheduler

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type hints
    from repro.cluster.jobtracker import WorkflowInProgress

__all__ = ["EdfScheduler"]


class EdfScheduler(WorkflowScheduler):
    """Static workflow priority: earlier deadline wins."""

    name = "EDF"

    def __init__(self) -> None:
        super().__init__()
        # Kept sorted by (deadline, submit, name); workflow counts here are
        # small enough (paper: <= 61) that insertion sort is the clear choice
        # over a tree.  The DSL experiments (Fig 13a) stress the WOHA
        # scheduler, not EDF.
        self._order: List[Tuple[float, float, str, "WorkflowInProgress"]] = []
        self._standalone: List[JobInProgress] = []

    def on_workflow_submitted(self, wip: "WorkflowInProgress", now: float) -> None:
        deadline = wip.deadline if wip.deadline is not None else float("inf")
        self._order.append((deadline, wip.submit_time, wip.name, wip))
        self._order.sort(key=lambda entry: entry[:3])

    def on_workflow_completed(self, wip: "WorkflowInProgress", now: float) -> None:
        self._order = [entry for entry in self._order if entry[3] is not wip]

    def on_wjob_submitted(self, jip: JobInProgress, now: float) -> None:
        if jip.workflow_name is None:
            self._standalone.append(jip)

    def select_task(self, kind: TaskKind, now: float) -> Optional[Task]:
        tracing = self.tracer.enabled
        skipped = [] if tracing else None
        for position, (deadline, _submit, _name, wip) in enumerate(self._order):
            task = None
            if wip.submitter is not None and not wip.submitter.completed:
                task = wip.submitter.obtain(kind) if kind.uses_map_slot else None
            if task is None:
                for jip in wip.jobs.values():
                    if jip.completed:
                        continue
                    task = jip.obtain(kind)
                    if task is not None:
                        break
            if task is not None:
                if tracing:
                    self._trace_decision(kind, now, wip.name, task, position, skipped)
                return task
            if tracing:
                skipped.append(wip.name)
        for jip in self._standalone:
            if not jip.completed:
                task = jip.obtain(kind)
                if task is not None:
                    if tracing:
                        self._trace_decision(
                            kind, now, jip.workflow_name, task, len(self._order), skipped
                        )
                    return task
        if tracing:
            self.tracer.incr(self.name, "idle_decisions")
            self._trace_decision(kind, now, None, None, None, skipped)
        return None

    def _trace_decision(self, kind, now, workflow, task, position, skipped) -> None:
        """Emit one ``decision`` event (EDF has no plan, so ``lag`` is None)."""
        if task is not None:
            self.tracer.incr(self.name, "decisions")
        self.tracer.record(
            "decision",
            now,
            scheduler=self.name,
            slot_kind=kind.value,
            workflow=workflow,
            task=None if task is None else task.task_id,
            lag=None,
            queue_len=len(self._order),
            position=position,
            skipped=skipped,
            ct_advances=0,
        )
