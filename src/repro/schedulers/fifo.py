"""Oozie + FIFO (paper §V-B): Hadoop's default JobQueueTaskScheduler.

Jobs are held in submission order; to fill a slot the scheduler walks the
ordered list until it finds a job with an available task of the right kind.
Workflow structure and deadlines are invisible — exactly the information
separation the paper criticises.
"""

from __future__ import annotations

from typing import Callable, List, Optional

from repro.cluster.job import JobInProgress
from repro.cluster.tasks import Task, TaskKind
from repro.schedulers.base import WorkflowScheduler

__all__ = ["FifoScheduler"]


class FifoScheduler(WorkflowScheduler):
    """First-in, first-out over submitted jobs."""

    name = "FIFO"

    def __init__(self) -> None:
        super().__init__()
        self._queue: List[JobInProgress] = []

    def on_wjob_submitted(self, jip: JobInProgress, now: float) -> None:
        self._queue.append(jip)

    def on_job_completed(self, jip: JobInProgress, now: float) -> None:
        # Lazy removal also happens in select_task; eager removal here keeps
        # the queue short for long runs.
        try:
            self._queue.remove(jip)
        except ValueError:
            pass

    # repro: budget O(n)
    def select_task(self, kind: TaskKind, now: float) -> Optional[Task]:
        tracing = self.tracer.enabled
        queue = self._queue
        if not tracing:
            # Untraced micro-kernel: same walk, same decisions, but no
            # skipped-list bookkeeping and no per-job property chains —
            # the reduce probe reads the maintained plain flags directly
            # (obtain_reduce re-checks them, so a hit stays correct).
            if kind.uses_map_slot:
                for jip in queue:
                    if jip.completed or not jip.has_pending_maps:
                        continue
                    task = jip.obtain_map()
                    if task is not None:
                        return task
            else:
                for jip in queue:
                    if jip.completed or not jip.map_phase_done or not jip._pending_reduces:
                        continue
                    task = jip.obtain_reduce()
                    if task is not None:
                        return task
            return None
        skipped = []
        for position, jip in enumerate(queue):
            if jip.completed:
                continue
            task = jip.obtain(kind)
            if task is not None:
                if tracing:
                    self.tracer.incr(self.name, "decisions")
                    self.tracer.record(
                        "decision",
                        now,
                        scheduler=self.name,
                        slot_kind=kind.value,
                        workflow=jip.workflow_name,
                        task=task.task_id,
                        lag=None,
                        queue_len=len(queue),
                        position=position,
                        skipped=skipped,
                        ct_advances=0,
                    )
                return task
            if tracing:
                # FIFO queues jobs, not workflows; skipped entries are job ids.
                skipped.append(jip.job_id)
        if tracing:
            self.tracer.incr(self.name, "idle_decisions")
            self.tracer.record(
                "decision",
                now,
                scheduler=self.name,
                slot_kind=kind.value,
                workflow=None,
                task=None,
                lag=None,
                queue_len=len(queue),
                position=None,
                skipped=skipped,
                ct_advances=0,
            )
        return None

    # repro: budget O(n)
    def select_tasks(
        self, kind: TaskKind, now: float, limit: int, launch: Callable[[Task], None]
    ) -> int:
        """One queue walk fills up to ``limit`` slots (DESIGN.md §11).

        Byte-identical to repeated :meth:`select_task` calls: between
        launches of one round no job completes and no job earlier in the
        queue can become runnable, so every re-walk the unbatched path
        makes would re-skip exactly the prefix this walk has already
        proven non-runnable.  Decision events are emitted with the same
        ``position``/``queue_len``/``skipped`` fields the re-walks would
        record (snapshot copies, since the walk keeps appending), and the
        trailing idle decision fires only when the walk exhausts the queue
        with slots left over — the case where the unbatched path would
        have made one final, fruitless full walk.
        """
        tracing = self.tracer.enabled
        use_map = kind.uses_map_slot
        queue = self._queue
        if not tracing:
            # Untraced micro-kernel of the same single walk (see
            # select_task): identical launch sequence, no trace payloads.
            launched = 0
            if use_map:
                for jip in queue:
                    if jip.completed or not jip.has_pending_maps:
                        continue
                    while launched < limit:
                        task = jip.obtain_map()
                        if task is None:
                            break
                        launch(task)  # repro: calls[repro.cluster.jobtracker.JobTracker._launch]
                        launched += 1
                    if launched >= limit:
                        return launched
            else:
                for jip in queue:
                    if jip.completed or not jip.map_phase_done or not jip._pending_reduces:
                        continue
                    while launched < limit:
                        task = jip.obtain_reduce()
                        if task is None:
                            break
                        launch(task)  # repro: calls[repro.cluster.jobtracker.JobTracker._launch]
                        launched += 1
                    if launched >= limit:
                        return launched
            return launched
        skipped: List[str] = []
        launched = 0
        queue_len = len(queue)
        for position, jip in enumerate(queue):
            if jip.completed:
                continue
            while launched < limit:
                task = jip.obtain_map() if use_map else jip.obtain_reduce()
                if task is None:
                    break
                if tracing:
                    self.tracer.incr(self.name, "decisions")
                    self.tracer.record(
                        "decision",
                        now,
                        scheduler=self.name,
                        slot_kind=kind.value,
                        workflow=jip.workflow_name,
                        task=task.task_id,
                        lag=None,
                        queue_len=queue_len,
                        position=position,
                        skipped=list(skipped),
                        ct_advances=0,
                    )
                launch(task)  # repro: calls[repro.cluster.jobtracker.JobTracker._launch]
                launched += 1
            if launched >= limit:
                return launched
            if tracing:
                # FIFO queues jobs, not workflows; skipped entries are job
                # ids (including jobs this very walk just drained).
                skipped.append(jip.job_id)
        if tracing:
            self.tracer.incr(self.name, "idle_decisions")
            self.tracer.record(
                "decision",
                now,
                scheduler=self.name,
                slot_kind=kind.value,
                workflow=None,
                task=None,
                lag=None,
                queue_len=queue_len,
                position=None,
                skipped=skipped,
                ct_advances=0,
            )
        return launched
