"""Oozie + FIFO (paper §V-B): Hadoop's default JobQueueTaskScheduler.

Jobs are held in submission order; to fill a slot the scheduler walks the
ordered list until it finds a job with an available task of the right kind.
Workflow structure and deadlines are invisible — exactly the information
separation the paper criticises.
"""

from __future__ import annotations

from typing import List, Optional

from repro.cluster.job import JobInProgress
from repro.cluster.tasks import Task, TaskKind
from repro.schedulers.base import WorkflowScheduler

__all__ = ["FifoScheduler"]


class FifoScheduler(WorkflowScheduler):
    """First-in, first-out over submitted jobs."""

    name = "FIFO"

    def __init__(self) -> None:
        super().__init__()
        self._queue: List[JobInProgress] = []

    def on_wjob_submitted(self, jip: JobInProgress, now: float) -> None:
        self._queue.append(jip)

    def on_job_completed(self, jip: JobInProgress, now: float) -> None:
        # Lazy removal also happens in select_task; eager removal here keeps
        # the queue short for long runs.
        try:
            self._queue.remove(jip)
        except ValueError:
            pass

    def select_task(self, kind: TaskKind, now: float) -> Optional[Task]:
        tracing = self.tracer.enabled
        skipped = [] if tracing else None
        for position, jip in enumerate(self._queue):
            if jip.completed:
                continue
            task = jip.obtain(kind)
            if task is not None:
                if tracing:
                    self.tracer.incr(self.name, "decisions")
                    self.tracer.record(
                        "decision",
                        now,
                        scheduler=self.name,
                        slot_kind=kind.value,
                        workflow=jip.workflow_name,
                        task=task.task_id,
                        lag=None,
                        queue_len=len(self._queue),
                        position=position,
                        skipped=skipped,
                        ct_advances=0,
                    )
                return task
            if tracing:
                # FIFO queues jobs, not workflows; skipped entries are job ids.
                skipped.append(jip.job_id)
        if tracing:
            self.tracer.incr(self.name, "idle_decisions")
            self.tracer.record(
                "decision",
                now,
                scheduler=self.name,
                slot_kind=kind.value,
                workflow=None,
                task=None,
                lag=None,
                queue_len=len(self._queue),
                position=None,
                skipped=skipped,
                ct_advances=0,
            )
        return None
