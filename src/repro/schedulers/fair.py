"""Oozie + Fair (paper §V-B): the Facebook FairScheduler behaviour.

"All running jobs evenly share the resources of the Hadoop cluster in a
work conserving way."  We implement the classic deficit form: a free slot
of a kind goes to the runnable job currently occupying the fewest slots of
that kind (ties broken by submission time, then job id), which converges to
an even split while never idling a slot a job could use.
"""

from __future__ import annotations

from typing import List, Optional

from repro.cluster.job import JobInProgress
from repro.cluster.tasks import Task, TaskKind
from repro.schedulers.base import WorkflowScheduler

__all__ = ["FairScheduler"]


class FairScheduler(WorkflowScheduler):
    """Even slot sharing across running jobs."""

    name = "Fair"

    def __init__(self) -> None:
        super().__init__()
        self._jobs: List[JobInProgress] = []

    def on_wjob_submitted(self, jip: JobInProgress, now: float) -> None:
        self._jobs.append(jip)

    def on_job_completed(self, jip: JobInProgress, now: float) -> None:
        try:
            self._jobs.remove(jip)
        except ValueError:
            pass

    def select_task(self, kind: TaskKind, now: float) -> Optional[Task]:
        best: Optional[JobInProgress] = None
        best_key = None
        for jip in self._jobs:
            if jip.completed or not jip.has_runnable(kind):
                continue
            occupancy = jip.running_maps if kind.uses_map_slot else jip.running_reduces
            key = (occupancy, jip.submit_time, jip.job_id)
            if best_key is None or key < best_key:
                best, best_key = jip, key
        if best is None:
            return None
        return best.obtain(kind)
