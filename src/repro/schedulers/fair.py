"""Oozie + Fair (paper §V-B): the Facebook FairScheduler behaviour.

"All running jobs evenly share the resources of the Hadoop cluster in a
work conserving way."  We implement the classic deficit form: a free slot
of a kind goes to the runnable job currently occupying the fewest slots of
that kind (ties broken by submission time, then job id), which converges to
an even split while never idling a slot a job could use.
"""

from __future__ import annotations

from typing import List, Optional

from repro.cluster.job import JobInProgress
from repro.cluster.tasks import Task, TaskKind
from repro.schedulers.base import WorkflowScheduler

__all__ = ["FairScheduler"]


class FairScheduler(WorkflowScheduler):
    """Even slot sharing across running jobs."""

    name = "Fair"

    def __init__(self) -> None:
        super().__init__()
        self._jobs: List[JobInProgress] = []

    def on_wjob_submitted(self, jip: JobInProgress, now: float) -> None:
        self._jobs.append(jip)

    def on_job_completed(self, jip: JobInProgress, now: float) -> None:
        try:
            self._jobs.remove(jip)
        except ValueError:
            pass

    def select_task(self, kind: TaskKind, now: float) -> Optional[Task]:
        tracing = self.tracer.enabled
        skipped = [] if tracing else None
        best: Optional[JobInProgress] = None
        best_key = None
        best_position = None
        for position, jip in enumerate(self._jobs):
            if jip.completed or not jip.has_runnable(kind):
                if tracing and not jip.completed:
                    # Fair shares across jobs; skipped entries are job ids.
                    skipped.append(jip.job_id)
                continue
            occupancy = jip.running_maps if kind.uses_map_slot else jip.running_reduces
            key = (occupancy, jip.submit_time, jip.job_id)
            if best_key is None or key < best_key:
                best, best_key, best_position = jip, key, position
        if best is None:
            if tracing:
                self.tracer.incr(self.name, "idle_decisions")
                self.tracer.record(
                    "decision",
                    now,
                    scheduler=self.name,
                    slot_kind=kind.value,
                    workflow=None,
                    task=None,
                    lag=None,
                    queue_len=len(self._jobs),
                    position=None,
                    skipped=skipped,
                    ct_advances=0,
                )
            return None
        task = best.obtain(kind)
        if tracing:
            self.tracer.incr(self.name, "decisions")
            self.tracer.record(
                "decision",
                now,
                scheduler=self.name,
                slot_kind=kind.value,
                workflow=best.workflow_name,
                task=None if task is None else task.task_id,
                lag=None,
                queue_len=len(self._jobs),
                position=best_position,
                skipped=skipped,
                ct_advances=0,
            )
        return task
