"""Oozie + Fair (paper §V-B): the Facebook FairScheduler behaviour.

"All running jobs evenly share the resources of the Hadoop cluster in a
work conserving way."  We implement the classic deficit form: a free slot
of a kind goes to the runnable job currently occupying the fewest slots of
that kind (ties broken by submission time, then job id), which converges to
an even split while never idling a slot a job could use.
"""

from __future__ import annotations

import heapq
from bisect import insort
from typing import Callable, List, Optional, Tuple

from repro.cluster.job import JobInProgress
from repro.cluster.tasks import Task, TaskKind
from repro.schedulers.base import WorkflowScheduler

__all__ = ["FairScheduler"]


class FairScheduler(WorkflowScheduler):
    """Even slot sharing across running jobs."""

    name = "Fair"

    def __init__(self) -> None:
        super().__init__()
        self._jobs: List[JobInProgress] = []

    def on_wjob_submitted(self, jip: JobInProgress, now: float) -> None:
        self._jobs.append(jip)

    def on_job_completed(self, jip: JobInProgress, now: float) -> None:
        try:
            self._jobs.remove(jip)
        except ValueError:
            pass

    def select_task(self, kind: TaskKind, now: float) -> Optional[Task]:
        tracing = self.tracer.enabled
        skipped = [] if tracing else None
        best: Optional[JobInProgress] = None
        best_key = None
        best_position = None
        for position, jip in enumerate(self._jobs):
            if jip.completed or not jip.has_runnable(kind):
                if tracing and not jip.completed:
                    # Fair shares across jobs; skipped entries are job ids.
                    skipped.append(jip.job_id)
                continue
            occupancy = jip.running_maps if kind.uses_map_slot else jip.running_reduces
            key = (occupancy, jip.submit_time, jip.job_id)
            if best_key is None or key < best_key:
                best, best_key, best_position = jip, key, position
        if best is None:
            if tracing:
                self.tracer.incr(self.name, "idle_decisions")
                self.tracer.record(
                    "decision",
                    now,
                    scheduler=self.name,
                    slot_kind=kind.value,
                    workflow=None,
                    task=None,
                    lag=None,
                    queue_len=len(self._jobs),
                    position=None,
                    skipped=skipped,
                    ct_advances=0,
                )
            return None
        task = best.obtain(kind)
        if tracing:
            self.tracer.incr(self.name, "decisions")
            self.tracer.record(
                "decision",
                now,
                scheduler=self.name,
                slot_kind=kind.value,
                workflow=best.workflow_name,
                task=None if task is None else task.task_id,
                lag=None,
                queue_len=len(self._jobs),
                position=best_position,
                skipped=skipped,
                ct_advances=0,
            )
        return task

    # repro: budget O(n)
    def select_tasks(
        self, kind: TaskKind, now: float, limit: int, launch: Callable[[Task], None]
    ) -> int:
        """One scan plus a heap fills up to ``limit`` slots (DESIGN.md §11).

        Byte-identical to repeated :meth:`select_task` calls: between
        launches of one round only the launched job's occupancy changes,
        so the argmin sequence over ``(occupancy, submit_time, job_id)``
        is exactly what popping a heap — re-pushing the launched job with
        its new occupancy — produces.  Keys are unique (job ids are), so
        heap order equals the linear scan's strict-``<`` first-wins order.
        The ``skipped`` list of every decision is the position-ordered set
        of non-runnable, non-completed jobs at that instant, matching the
        full scan each unbatched call would make; the trailing idle
        decision fires only when the heap empties before ``limit``.
        """
        tracing = self.tracer.enabled
        use_map = kind.uses_map_slot
        jobs = self._jobs
        queue_len = len(jobs)
        heap: List[Tuple[int, float, str, int, JobInProgress]] = []
        # (position, job_id), kept sorted by position — the scan order the
        # unbatched path's skipped lists follow.
        nonrunnable: List[Tuple[int, str]] = []
        # The heap/skipped entries ARE this round's working set: one tuple
        # per job per batched round (not per event), bounded by the job
        # count — the DT401 bounded-accumulator bargain.
        for position, jip in enumerate(jobs):
            if jip.completed:
                continue
            job_id = jip.job_id
            if not jip.has_runnable(kind):
                nonrunnable.append((position, job_id))  # repro: allow[DT401]
                continue
            occupancy = jip.running_maps if use_map else jip.running_reduces
            heap.append((occupancy, jip.submit_time, job_id, position, jip))  # repro: allow[DT401]
        heapq.heapify(heap)
        launched = 0
        while launched < limit and heap:
            occupancy, submit_time, job_id, position, jip = heapq.heappop(heap)
            task = jip.obtain_map() if use_map else jip.obtain_reduce()
            if tracing:
                self.tracer.incr(self.name, "decisions")
                self.tracer.record(
                    "decision",
                    now,
                    scheduler=self.name,
                    slot_kind=kind.value,
                    workflow=jip.workflow_name,
                    task=None if task is None else task.task_id,
                    lag=None,
                    queue_len=queue_len,
                    position=position,
                    skipped=[jid for _, jid in nonrunnable],
                    ct_advances=0,
                )
            if task is None:
                # has_runnable lied (defensive; mirrors select_task's
                # task=None decision, after which the caller goes idle
                # without a second, trailing idle decision).
                return launched
            launch(task)  # repro: calls[repro.cluster.jobtracker.JobTracker._launch]
            launched += 1
            if jip.has_runnable(kind):
                occupancy = jip.running_maps if use_map else jip.running_reduces
                # Re-queue entries are one tuple per launch, not per event
                # (same bounded-accumulator bargain as the heap build).
                heapq.heappush(heap, (occupancy, submit_time, job_id, position, jip))  # repro: allow[DT401]
            else:
                insort(nonrunnable, (position, job_id))  # repro: allow[DT401]
        if launched < limit and tracing:
            self.tracer.incr(self.name, "idle_decisions")
            self.tracer.record(
                "decision",
                now,
                scheduler=self.name,
                slot_kind=kind.value,
                workflow=None,
                task=None,
                lag=None,
                queue_len=queue_len,
                position=None,
                skipped=[jid for _, jid in nonrunnable],
                ct_advances=0,
            )
        return launched
