"""A deterministic 1-2-3 skip list (Munro, Papadakis & Sedgewick, SODA '92).

The invariant: at every level ``l >= 1``, the *gap* between two horizontally
consecutive level-``l`` nodes — the number of level-``l-1`` nodes strictly
between their towers — never exceeds 3.  Searches therefore take at most 3
rightward steps per level, giving worst-case O(log n) search/insert/delete,
which is why the paper picks this structure over Pugh's probabilistic lists
for the master node's scheduler.

Implementation notes (documented deviations, none visible through the API):

* Insertion is the textbook top-down pass: before descending into a gap of
  size 3, raise the gap's middle element one level, exactly like top-down
  2-3-4-tree splitting.  The upper bound (<= 3) can then never break.
* Deletion unlinks the key's whole tower, then repairs *oversized* merged
  gaps bottom-up by raising middle elements.  Undersized (even empty) gaps
  are tolerated: an empty gap costs searches nothing — only the upper bound
  matters for the O(log) walk — at the price of the height being
  O(log n_max) in the maximum historical size rather than the live size.
  This keeps deletion simple (no borrow/merge cascade) while preserving
  every bound the scheduler relies on.
* **Head deletion is O(tower height) with no repair at all**: the head
  element's left gap is empty at every level, so removing its tower can
  only shrink gaps.  This is the cheap ``D^h`` operation the Double Skip
  List's complexity analysis (paper §IV-B) counts as O(1).
"""

from __future__ import annotations

from typing import Any, Iterator, List, Optional, Tuple

from repro.structures.base import OrderedMap

__all__ = ["DeterministicSkipList"]


class _PosInf:
    """Sentinel key greater than every real key."""

    __slots__ = ()

    def __lt__(self, other: Any) -> bool:
        return False

    def __le__(self, other: Any) -> bool:
        return other is self

    def __gt__(self, other: Any) -> bool:
        return other is not self

    def __ge__(self, other: Any) -> bool:
        return True

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return "+inf"


_POS_INF = _PosInf()


class _Node:
    __slots__ = ("key", "value", "right", "down")

    def __init__(self, key: Any, value: Any = None, right: "_Node" = None, down: "_Node" = None):
        self.key = key
        self.value = value
        self.right = right
        self.down = down

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"_Node({self.key!r})"


class DeterministicSkipList(OrderedMap):
    """1-2-3 deterministic skip list implementing :class:`OrderedMap`."""

    def __init__(self) -> None:
        self._tail = _Node(_POS_INF)
        self._tail.right = self._tail
        self._tail.down = self._tail
        # One head node per level, bottom (level 0) first.  The top level is
        # kept empty (head.right is tail) so raises at the current top have
        # somewhere to land.
        bottom = _Node(None, right=self._tail)
        self._heads: List[_Node] = [bottom]
        self._len = 0

    # -- internals ---------------------------------------------------------

    def _grow_if_needed(self) -> None:
        """Keep the invariant that the topmost level is empty."""
        while self._heads[-1].right is not self._tail:
            new_head = _Node(None, right=self._tail, down=self._heads[-1])
            self._heads.append(new_head)

    def _gap_size(self, upper: _Node, bound_key: Any, cap: int) -> int:
        """Count level-below nodes strictly between ``upper``'s tower and the
        tower keyed ``bound_key``, stopping at ``cap + 1`` — callers only ask
        "at least / more than ``cap``", so no node list is materialised."""
        count = 0
        node = upper.down.right
        while node.key != bound_key:
            count += 1
            if count > cap:
                break
            node = node.right
        return count

    def _raise_middle(self, upper: _Node) -> _Node:
        """Raise the 2nd element of the gap right of ``upper`` one level up.

        Returns the newly created upper-level node.
        """
        first = upper.down.right
        second = first.right
        new_node = _Node(second.key, right=upper.right, down=second)
        upper.right = new_node
        return new_node

    # -- OrderedMap API ------------------------------------------------------

    # repro: budget O(log n)
    def insert(self, key: Any, value: Any) -> None:
        if key is None:
            raise TypeError("None is not a valid key")
        # A duplicate key may only be detected after the top-down pass has
        # already split a gap; splits are always structurally safe, but the
        # empty-top invariant must be restored even on the error path.
        heads = self._heads
        try:
            # Pre-bound level-walk: ``right`` shadows ``x.right`` so the
            # rightward scan pays one attribute load per step, not two.
            x = heads[-1]
            level = len(heads) - 1
            while level > 0:
                right = x.right
                while right.key < key:
                    x = right
                    right = x.right
                if right.key == key:
                    raise KeyError(f"duplicate key {key!r}")
                # Top-down split: never descend into a full gap.
                if self._gap_size(x, right.key, cap=2) >= 3:
                    raised = self._raise_middle(x)
                    if raised.key < key:
                        x = raised
                    elif raised.key == key:
                        raise KeyError(f"duplicate key {key!r}")
                x = x.down
                level -= 1
            right = x.right
            while right.key < key:
                x = right
                right = x.right
            if right.key == key:
                raise KeyError(f"duplicate key {key!r}")
            x.right = _Node(key, value=value, right=right)
            self._len += 1
        finally:
            self._grow_if_needed()

    # repro: budget O(log n)
    def delete(self, key: Any) -> Any:
        preds = self._find_preds(key)
        victim = preds[0].right
        if victim.key != key:
            raise KeyError(key)
        value = victim.value
        # Unlink the whole tower.
        tower_top = 0
        # Loop over the tower height, which is O(log n_max), not O(n).
        for level, pred in enumerate(preds):  # repro: allow[DT203]
            if pred.right.key == key:
                pred.right = pred.right.right
                tower_top = level
        self._len -= 1
        # Repair oversized merged gaps bottom-up.  Level l's repair can grow
        # the gap at l+1, so keep going while changes happen below.
        level = 1
        dirty_below = True
        heads = self._heads  # grown/shrunk in place, never rebound
        grow_if_needed = self._grow_if_needed
        while level <= tower_top + 1 or dirty_below:
            if level >= len(heads):
                grow_if_needed()
                if level >= len(heads):
                    break
            pred = preds[level] if level < len(preds) else heads[level]
            dirty_below = False
            while True:
                if self._gap_size(pred, pred.right.key, cap=3) <= 3:
                    break
                pred = self._raise_middle(pred)
                dirty_below = True
            level += 1
        self._shrink()
        grow_if_needed()
        return value

    def _find_preds(self, key: Any) -> List[_Node]:
        """Per-level strict predecessors of ``key``, bottom first."""
        heads = self._heads
        preds: List[_Node] = [None] * len(heads)
        x = heads[-1]
        # Descends one level per iteration: O(log n_max) iterations.
        for level in range(len(heads) - 1, -1, -1):  # repro: allow[DT203]
            right = x.right
            while right.key < key:
                x = right
                right = x.right
            preds[level] = x
            if level > 0:
                x = x.down
        return preds

    def _shrink(self) -> None:
        """Drop empty levels above the first (keeping one empty top)."""
        while len(self._heads) > 1 and self._heads[-1].right is self._tail and self._heads[-2].right is self._tail:
            self._heads.pop()

    # repro: budget O(1)
    def peek_head(self) -> Optional[Tuple[Any, Any]]:
        first = self._heads[0].right
        if first is self._tail:
            return None
        return first.key, first.value

    # repro: budget O(log n)
    def pop_head(self) -> Tuple[Any, Any]:
        heads = self._heads
        first = heads[0].right
        if first is self._tail:
            raise KeyError("pop_head from empty skip list")
        key, value = first.key, first.value
        # The head tower is head.right at every level it reaches; its left
        # gaps are all empty, so unlinking cannot oversize anything.  One
        # step per level: O(log n_max) iterations.
        for head in heads:  # repro: allow[DT203]
            if head.right.key == key:
                head.right = head.right.right
            else:
                break
        self._len -= 1
        self._shrink()
        return key, value

    # repro: budget O(log n)
    def find(self, key: Any) -> Any:
        heads = self._heads
        x = heads[-1]
        # Descends one level per iteration: O(log n_max) iterations.
        for level in range(len(heads) - 1, -1, -1):  # repro: allow[DT203]
            right = x.right
            while right.key < key:
                x = right
                right = x.right
            if right.key == key and level == 0:
                return right.value
            if level > 0:
                x = x.down
        raise KeyError(key)

    def __len__(self) -> int:
        return self._len

    def items(self) -> Iterator[Tuple[Any, Any]]:
        node = self._heads[0].right
        while node is not self._tail:
            yield node.key, node.value
            node = node.right

    # -- verification (used heavily by tests) --------------------------------

    @property
    def height(self) -> int:
        """Number of levels, including the empty top."""
        return len(self._heads)

    def check_invariants(self) -> None:
        """Assert structural soundness; raises ``AssertionError`` on breakage.

        Checks: ascending unique keys at level 0; every upper-level node has
        a down pointer to a same-keyed node one level below; every gap at
        levels >= 1 has at most 3 elements; the recorded length matches.
        """
        # Level 0 ordering.
        keys = [key for key, _ in self.items()]
        assert len(keys) == self._len, f"len mismatch: {len(keys)} vs {self._len}"
        for a, b in zip(keys, keys[1:]):
            assert a < b, f"level 0 not strictly ascending at {a!r} >= {b!r}"
        # Tower consistency + gap bound per level.
        for level in range(1, len(self._heads)):
            node = self._heads[level].right
            below_keys = self._level_keys(level - 1)
            prev_key = None
            while node is not self._tail:
                assert node.down.key == node.key, f"tower broken at {node.key!r}"
                node = node.right
            # Gap bound: walk upper level, counting lower-level keys between.
            upper_keys = self._level_keys(level)
            bounds = [None] + upper_keys + [None]
            idx = 0
            for i in range(len(bounds) - 1):
                lo, hi = bounds[i], bounds[i + 1]
                count = 0
                while idx < len(below_keys) and (hi is None or below_keys[idx] < hi):
                    if below_keys[idx] != lo:
                        count += 1
                    idx += 1
                assert count <= 3, f"gap of {count} at level {level} below ({lo!r}, {hi!r})"
        assert self._heads[-1].right is self._tail, "top level is not empty"

    def _level_keys(self, level: int) -> List[Any]:
        node = self._heads[level].right
        keys = []
        while node is not self._tail:
            keys.append(node.key)
            node = node.right
        return keys
