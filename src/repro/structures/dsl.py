"""The Double Skip List of paper §IV-B.

Two cross-linked ordered lists over the same set of workflows:

* the **ct list**, ordered by each workflow's next progress-requirement
  change time (``W_h.t``), ascending — the scheduler walks its head to find
  workflows whose requirement just changed;
* the **priority list**, ordered by current inter-workflow priority
  (``W_h.p = F_h(ttd) - rho_h``, the progress *lag*), highest first — its
  head is the workflow to serve next.

The cross-link is the shared :class:`DoubleEntry`: deleting a workflow from
one list hands you everything needed to find it in the other in O(1), which
is what makes Algorithm 2's head-walk cheap.  Both constituent lists default
to :class:`~repro.structures.skiplist.DeterministicSkipList` (the "DSL" of
Fig 13a) but accept any :class:`~repro.structures.base.OrderedMap` factory,
giving the BST variant of the same figure for free.

Key layout: ct keys are ``(ct, item_id)`` and priority keys
``(-priority, item_id)`` — the id component breaks ties deterministically,
and negation turns "largest lag first" into the maps' ascending order.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Iterator, Optional, Tuple

from repro.analysis.contracts import NULL_CONTRACTS
from repro.structures.base import OrderedMap
from repro.structures.skiplist import DeterministicSkipList

__all__ = ["DoubleEntry", "DoubleSkipList"]


class DoubleEntry:
    """One workflow's node pair, shared by both lists.

    ``ct_key``/``priority_key`` are *cached* tuples, not derived per read:
    every comparison inside a skip-list walk touches them, so the hot path
    pays a slot load instead of a property call plus tuple allocation.  The
    ``ct``/``priority`` setters keep the caches coherent — which also
    preserves the contract layer's corruption story: a test that assigns
    ``entry.ct = x`` behind the list's back refreshes ``ct_key`` while the
    list still files the entry under the old tuple, and the very next
    ``check_dsl`` sees the mismatch.
    """

    __slots__ = ("item_id", "payload", "_ct", "_priority", "ct_key", "priority_key")

    def __init__(self, item_id: Any, ct: float, priority: float, payload: Any = None) -> None:
        self.item_id = item_id
        self.payload = payload
        self._ct = ct
        self._priority = priority
        self.ct_key: Tuple[float, Any] = (ct, item_id)
        self.priority_key: Tuple[float, Any] = (-priority, item_id)

    @property
    def ct(self) -> float:
        return self._ct

    @ct.setter
    def ct(self, value: float) -> None:
        self._ct = value
        self.ct_key = (value, self.item_id)

    @property
    def priority(self) -> float:
        return self._priority

    @priority.setter
    def priority(self, value: float) -> None:
        self._priority = value
        self.priority_key = (-value, self.item_id)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"DoubleEntry({self.item_id!r}, ct={self._ct!r}, priority={self._priority!r})"
        )


class DoubleSkipList:
    """The two-index workflow queue of §IV-B."""

    def __init__(
        self,
        map_factory: Callable[[], OrderedMap] = DeterministicSkipList,
        elide_noops: bool = True,
    ) -> None:
        self._ct_list = map_factory()  # repro: calls[DeterministicSkipList, repro.structures.avl.AvlTree, repro.structures.naive.SortedListMap]
        self._priority_list = map_factory()  # repro: calls[DeterministicSkipList, repro.structures.avl.AvlTree, repro.structures.naive.SortedListMap]
        self._entries: Dict[Any, DoubleEntry] = {}
        # With elision on (the default), the update paths skip the
        # remove+reinsert churn when the new key equals the old one: the
        # entry's position cannot change, so the structural dance is a
        # provable no-op.  The flag exists so equivalence tests can run the
        # same op sequence both ways and assert identical orders/traces.
        self._elide = elide_noops
        # Runtime contract checker (repro.analysis.contracts); the null
        # singleton until one is attached, so every mutation pays exactly
        # one attribute read + branch when contracts are off.
        self.contracts = NULL_CONTRACTS

    def attach_contracts(self, checker) -> None:
        """Verify cross-link consistency after every mutating operation."""
        self.contracts = checker

    # -- basic operations ----------------------------------------------------

    # repro: budget O(log n)
    def insert(self, item_id: Any, ct: float, priority: float, payload: Any = None) -> DoubleEntry:
        """Add a workflow under both orderings."""
        entries = self._entries
        if item_id in entries:
            raise KeyError(f"item {item_id!r} already present")
        entry = DoubleEntry(item_id=item_id, ct=ct, priority=priority, payload=payload)
        self._ct_list.insert(entry.ct_key, entry)
        self._priority_list.insert(entry.priority_key, entry)
        entries[item_id] = entry
        if self.contracts.enabled:
            self.contracts.check_dsl(self)
        return entry

    # repro: budget O(log n)
    def remove(self, item_id: Any) -> DoubleEntry:
        """Remove a workflow from both lists (e.g. on completion)."""
        entry = self._entries.pop(item_id)
        self._ct_list.delete(entry.ct_key)
        self._priority_list.delete(entry.priority_key)
        if self.contracts.enabled:
            self.contracts.check_dsl(self)
        return entry

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, item_id: Any) -> bool:
        return item_id in self._entries

    # repro: budget O(1)
    def get(self, item_id: Any) -> DoubleEntry:
        """Look an entry up by its id (the O(1) cross-link access)."""
        return self._entries[item_id]

    # -- heads ----------------------------------------------------------------

    # repro: budget O(1)
    def head_by_ct(self) -> Optional[DoubleEntry]:
        """The workflow whose progress requirement changes soonest."""
        head = self._ct_list.peek_head()
        return None if head is None else head[1]

    # repro: budget O(1)
    def head_by_priority(self) -> Optional[DoubleEntry]:
        """The workflow with the largest progress lag."""
        head = self._priority_list.peek_head()
        return None if head is None else head[1]

    def iter_by_priority(self) -> Iterator[DoubleEntry]:
        """All workflows, largest lag first (used for work-conserving scans).

        Lazy: the generator costs O(1) to create; consumers pay per element
        drawn.  The only budgeted caller (``WohaScheduler.select_task``)
        stops at the first runnable workflow — the work-conservation
        exception justified at its loop.
        """
        return (entry for _key, entry in self._priority_list.items())  # repro: allow[DT203]

    def iter_by_ct(self) -> Iterator[DoubleEntry]:
        """All workflows, soonest requirement change first."""
        return (entry for _key, entry in self._ct_list.items())

    # -- the two update paths of Algorithm 2 ----------------------------------

    # repro: budget O(log n)
    def update_head_ct(self, new_ct: float, new_priority: float) -> DoubleEntry:
        """Reposition the ct-head after its requirement change fired.

        This is the paper's cheap path: the ct deletion is a head deletion
        (O(1)); the reinsertion and the priority-list move are O(log n).
        With elision on, each list is touched only when its key actually
        changes — an unchanged key means an identical position, so the
        remove+reinsert would be a structural no-op.
        """
        ct_list = self._ct_list
        priority_list = self._priority_list
        if self._elide:
            head = ct_list.peek_head()
            if head is None:
                raise KeyError("update_head_ct on empty DoubleSkipList")
            entry: DoubleEntry = head[1]
            ct_same = new_ct == entry._ct
            priority_same = new_priority == entry._priority
            if ct_same and priority_same:
                return entry  # nothing moved: no churn, nothing to re-check
            if not ct_same:
                ct_list.pop_head()
                entry.ct = new_ct
                ct_list.insert(entry.ct_key, entry)
            if not priority_same:
                priority_list.delete(entry.priority_key)
                entry.priority = new_priority
                priority_list.insert(entry.priority_key, entry)
            if self.contracts.enabled:
                self.contracts.check_dsl(self)
            return entry
        key, entry = ct_list.pop_head()
        assert key == entry.ct_key
        priority_list.delete(entry.priority_key)
        entry.ct = new_ct
        entry.priority = new_priority
        ct_list.insert(entry.ct_key, entry)
        priority_list.insert(entry.priority_key, entry)
        if self.contracts.enabled:
            self.contracts.check_dsl(self)
        return entry

    # repro: budget O(log n)
    def update_priority(self, item_id: Any, new_priority: float) -> DoubleEntry:
        """Reposition one workflow in the priority list only.

        Used after a task assignment (``rho += 1`` so the lag drops by one).
        When the workflow is the current priority head — the common case,
        since assignments go to the head — the deletion is O(1).  With
        elision on, an unchanged priority returns immediately (the common
        case for unplanned workflows, whose lag is pinned at -inf).
        """
        entry = self._entries[item_id]
        if self._elide and new_priority == entry._priority:
            return entry
        priority_list = self._priority_list
        head = priority_list.peek_head()
        if head is not None and head[0] == entry.priority_key:
            priority_list.pop_head()
        else:
            priority_list.delete(entry.priority_key)
        entry.priority = new_priority
        priority_list.insert(entry.priority_key, entry)
        if self.contracts.enabled:
            self.contracts.check_dsl(self)
        return entry

    # repro: budget O(log n)
    def update_ct(self, item_id: Any, new_ct: float) -> DoubleEntry:
        """Reposition one workflow in the ct list only."""
        entry = self._entries[item_id]
        if self._elide and new_ct == entry._ct:
            return entry
        ct_list = self._ct_list
        ct_list.delete(entry.ct_key)
        entry.ct = new_ct
        ct_list.insert(entry.ct_key, entry)
        if self.contracts.enabled:
            self.contracts.check_dsl(self)
        return entry

    # -- verification -----------------------------------------------------------

    def check_invariants(self) -> None:
        """Both lists contain exactly the registered entries, consistently keyed."""
        assert len(self._ct_list) == len(self._entries)
        assert len(self._priority_list) == len(self._entries)
        for key, entry in self._ct_list.items():
            assert key == entry.ct_key
            assert self._entries[entry.item_id] is entry
        for key, entry in self._priority_list.items():
            assert key == entry.priority_key
            assert self._entries[entry.item_id] is entry
        for checkable in (self._ct_list, self._priority_list):
            check = getattr(checkable, "check_invariants", None)
            if check is not None:
                check()  # repro: calls[DeterministicSkipList.check_invariants, repro.structures.avl.AvlTree.check_invariants]
