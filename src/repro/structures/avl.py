"""AVL tree: the "BST" comparison point of the paper's Fig 13a.

A balanced search tree supports the same O(log n) insert/delete as the
deterministic skip list, but head (minimum) deletion also costs O(log n)
rebalancing — the cost the Double Skip List avoids, which is exactly the
difference Fig 13a visualises.
"""

from __future__ import annotations

from typing import Any, Iterator, List, Optional, Tuple

from repro.structures.base import OrderedMap

__all__ = ["AvlTree"]


class _AvlNode:
    __slots__ = ("key", "value", "left", "right", "height")

    def __init__(self, key: Any, value: Any):
        self.key = key
        self.value = value
        self.left: Optional["_AvlNode"] = None
        self.right: Optional["_AvlNode"] = None
        self.height = 1


def _h(node: Optional[_AvlNode]) -> int:
    return node.height if node is not None else 0


def _update(node: _AvlNode) -> None:
    node.height = 1 + max(_h(node.left), _h(node.right))


def _balance_factor(node: _AvlNode) -> int:
    return _h(node.left) - _h(node.right)


def _rotate_right(y: _AvlNode) -> _AvlNode:
    x = y.left
    y.left = x.right
    x.right = y
    _update(y)
    _update(x)
    return x


def _rotate_left(x: _AvlNode) -> _AvlNode:
    y = x.right
    x.right = y.left
    y.left = x
    _update(x)
    _update(y)
    return y


def _rebalance(node: _AvlNode) -> _AvlNode:
    _update(node)
    bf = _balance_factor(node)
    if bf > 1:
        if _balance_factor(node.left) < 0:
            node.left = _rotate_left(node.left)
        return _rotate_right(node)
    if bf < -1:
        if _balance_factor(node.right) > 0:
            node.right = _rotate_right(node.right)
        return _rotate_left(node)
    return node


class AvlTree(OrderedMap):
    """A classic AVL tree implementing :class:`OrderedMap`."""

    def __init__(self) -> None:
        self._root: Optional[_AvlNode] = None
        self._len = 0

    # -- OrderedMap API ------------------------------------------------------

    def insert(self, key: Any, value: Any) -> None:
        self._root = self._insert(self._root, key, value)
        self._len += 1

    def _insert(self, node: Optional[_AvlNode], key: Any, value: Any) -> _AvlNode:
        if node is None:
            return _AvlNode(key, value)
        if key < node.key:
            node.left = self._insert(node.left, key, value)
        elif key > node.key:
            node.right = self._insert(node.right, key, value)
        else:
            raise KeyError(f"duplicate key {key!r}")
        return _rebalance(node)

    def delete(self, key: Any) -> Any:
        holder: List[Any] = []
        self._root = self._delete(self._root, key, holder)
        self._len -= 1
        return holder[0]

    def _delete(self, node: Optional[_AvlNode], key: Any, holder: List[Any]) -> Optional[_AvlNode]:
        if node is None:
            raise KeyError(key)
        if key < node.key:
            node.left = self._delete(node.left, key, holder)
        elif key > node.key:
            node.right = self._delete(node.right, key, holder)
        else:
            holder.append(node.value)
            if node.left is None:
                return node.right
            if node.right is None:
                return node.left
            # Two children: splice in the in-order successor.
            succ = node.right
            while succ.left is not None:
                succ = succ.left
            node.key, node.value = succ.key, succ.value
            scrap: List[Any] = []
            node.right = self._delete(node.right, succ.key, scrap)
        return _rebalance(node)

    def peek_head(self) -> Optional[Tuple[Any, Any]]:
        node = self._root
        if node is None:
            return None
        while node.left is not None:
            node = node.left
        return node.key, node.value

    def pop_head(self) -> Tuple[Any, Any]:
        head = self.peek_head()
        if head is None:
            raise KeyError("pop_head from empty tree")
        self.delete(head[0])
        return head

    def find(self, key: Any) -> Any:
        node = self._root
        while node is not None:
            if key < node.key:
                node = node.left
            elif key > node.key:
                node = node.right
            else:
                return node.value
        raise KeyError(key)

    def __len__(self) -> int:
        return self._len

    def items(self) -> Iterator[Tuple[Any, Any]]:
        stack: List[_AvlNode] = []
        node = self._root
        while stack or node is not None:
            while node is not None:
                stack.append(node)
                node = node.left
            node = stack.pop()
            yield node.key, node.value
            node = node.right

    # -- verification ---------------------------------------------------------

    def check_invariants(self) -> None:
        """Assert AVL balance, ordering and size; used by tests."""
        keys = [key for key, _ in self.items()]
        assert len(keys) == self._len
        for a, b in zip(keys, keys[1:]):
            assert a < b, f"not strictly ascending at {a!r} >= {b!r}"
        self._check(self._root)

    def _check(self, node: Optional[_AvlNode]) -> int:
        if node is None:
            return 0
        lh = self._check(node.left)
        rh = self._check(node.right)
        assert abs(lh - rh) <= 1, f"unbalanced at {node.key!r}"
        assert node.height == 1 + max(lh, rh), f"stale height at {node.key!r}"
        return node.height
