"""Ordered-queue data structures for the Workflow Scheduler (paper §IV-B).

All three back-ends implement the same :class:`~repro.structures.base.OrderedMap`
interface so the scheduler and the Fig 13a throughput bench can swap them:

* :class:`~repro.structures.skiplist.DeterministicSkipList` — the paper's
  choice, a 1-2-3 deterministic skip list with O(1) head deletion;
* :class:`~repro.structures.avl.AvlTree` — the "BST" comparison point;
* :class:`~repro.structures.naive.SortedListMap` — a plain re-sorted list.

:class:`~repro.structures.dsl.DoubleSkipList` combines two ordered maps into
the paper's cross-linked ct/priority structure.
"""

from repro.structures.base import OrderedMap
from repro.structures.skiplist import DeterministicSkipList
from repro.structures.avl import AvlTree
from repro.structures.naive import SortedListMap
from repro.structures.dsl import DoubleSkipList, DoubleEntry

__all__ = [
    "OrderedMap",
    "DeterministicSkipList",
    "AvlTree",
    "SortedListMap",
    "DoubleSkipList",
    "DoubleEntry",
]
