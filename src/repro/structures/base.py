"""The ordered-map interface shared by the scheduler's queue back-ends."""

from __future__ import annotations

import abc
from typing import Any, Iterator, Optional, Tuple

__all__ = ["OrderedMap"]


class OrderedMap(abc.ABC):
    """A key-ordered map with cheap access to the minimum.

    Keys must be unique and mutually comparable (the scheduler uses tuples
    with a tie-breaking id component).  The operations named in the paper's
    complexity analysis map as: ``A^h``/``D^h`` = :meth:`peek_head` /
    :meth:`pop_head`, ``I^a``/``D^a`` = :meth:`insert` / :meth:`delete`.
    """

    @abc.abstractmethod
    def insert(self, key: Any, value: Any) -> None:
        """Insert a new key.  Raises ``KeyError`` if the key already exists."""

    @abc.abstractmethod
    def delete(self, key: Any) -> Any:
        """Remove a key, returning its value.  Raises ``KeyError`` if absent."""

    @abc.abstractmethod
    def peek_head(self) -> Optional[Tuple[Any, Any]]:
        """The (key, value) with the smallest key, or ``None`` when empty."""

    @abc.abstractmethod
    def pop_head(self) -> Tuple[Any, Any]:
        """Remove and return the smallest entry.  Raises ``KeyError`` if empty."""

    @abc.abstractmethod
    def find(self, key: Any) -> Any:
        """Return the value stored under ``key``.  Raises ``KeyError`` if absent."""

    @abc.abstractmethod
    def __len__(self) -> int: ...

    @abc.abstractmethod
    def items(self) -> Iterator[Tuple[Any, Any]]:
        """All entries in ascending key order."""

    def __contains__(self, key: Any) -> bool:
        try:
            self.find(key)
            return True
        except KeyError:
            return False

    def __iter__(self) -> Iterator[Any]:
        return (key for key, _ in self.items())
