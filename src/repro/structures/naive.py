"""The naive baseline: a sorted Python list.

Deletion and insertion are O(n) memory moves; this back-end exists so the
Fig 13a throughput bench has the paper's "naive" lower bound.  (The paper's
naive *scheduler* additionally recomputes every workflow's priority per
call; that part lives in
:class:`repro.core.scheduler.NaiveWohaScheduler`.)
"""

from __future__ import annotations

import bisect
from typing import Any, Iterator, List, Optional, Tuple

from repro.structures.base import OrderedMap

__all__ = ["SortedListMap"]


class SortedListMap(OrderedMap):
    """Keys kept in a sorted list; values in a parallel list."""

    def __init__(self) -> None:
        self._keys: List[Any] = []
        self._values: List[Any] = []

    def insert(self, key: Any, value: Any) -> None:
        idx = bisect.bisect_left(self._keys, key)
        if idx < len(self._keys) and self._keys[idx] == key:
            raise KeyError(f"duplicate key {key!r}")
        self._keys.insert(idx, key)
        self._values.insert(idx, value)

    def delete(self, key: Any) -> Any:
        idx = bisect.bisect_left(self._keys, key)
        if idx >= len(self._keys) or self._keys[idx] != key:
            raise KeyError(key)
        self._keys.pop(idx)
        return self._values.pop(idx)

    def peek_head(self) -> Optional[Tuple[Any, Any]]:
        if not self._keys:
            return None
        return self._keys[0], self._values[0]

    def pop_head(self) -> Tuple[Any, Any]:
        if not self._keys:
            raise KeyError("pop_head from empty list")
        return self._keys.pop(0), self._values.pop(0)

    def find(self, key: Any) -> Any:
        idx = bisect.bisect_left(self._keys, key)
        if idx >= len(self._keys) or self._keys[idx] != key:
            raise KeyError(key)
        return self._values[idx]

    def __len__(self) -> int:
        return len(self._keys)

    def items(self) -> Iterator[Tuple[Any, Any]]:
        return iter(zip(list(self._keys), list(self._values)))
