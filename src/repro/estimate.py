"""Task execution-time estimation (paper §IV-A).

"Estimations of task execution times can be acquired from logs of
historical executions [17] or by using models based on task properties
[9]."  The paper treats estimation as an input; WOHA consumes whatever the
estimator produces.  This module provides the two families the citation
points at, so examples and the estimation-error ablation have something
real to drive:

* :class:`HistoryEstimator` — per-(job-name, phase) trailing statistics
  from completed runs, with exponential decay across runs;
* :class:`SizeModelEstimator` — a least-squares linear model
  ``duration ~ a * input_size + b`` fitted per phase (the
  "models based on task properties" approach).
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

__all__ = ["TaskObservation", "HistoryEstimator", "SizeModelEstimator"]


@dataclass(frozen=True)
class TaskObservation:
    """One historical task execution."""

    job_name: str
    phase: str  # "map" or "reduce"
    duration: float
    input_bytes: int = 0


class HistoryEstimator:
    """Exponentially-decayed mean of past durations per (job, phase).

    Args:
        decay: weight multiplier per *older* observation batch; 1.0 is a
            plain mean, smaller values favour recent runs.
        default: estimate returned for never-seen (job, phase) pairs.
    """

    def __init__(self, decay: float = 0.7, default: float = 60.0) -> None:
        if not (0.0 < decay <= 1.0):
            raise ValueError("decay must be in (0, 1]")
        self.decay = decay
        self.default = default
        self._state: Dict[Tuple[str, str], Tuple[float, float]] = {}  # (weighted sum, weight)

    def observe(self, observation: TaskObservation) -> None:
        key = (observation.job_name, observation.phase)
        wsum, weight = self._state.get(key, (0.0, 0.0))
        self._state[key] = (wsum * self.decay + observation.duration, weight * self.decay + 1.0)

    def observe_all(self, observations: Sequence[TaskObservation]) -> None:
        for obs in observations:
            self.observe(obs)

    def estimate(self, job_name: str, phase: str) -> float:
        """Estimated seconds for the next task of this (job, phase)."""
        state = self._state.get((job_name, phase))
        if state is None or state[1] == 0.0:
            return self.default
        return state[0] / state[1]

    def known(self, job_name: str, phase: str) -> bool:
        return (job_name, phase) in self._state


class SizeModelEstimator:
    """Linear duration model per phase: ``duration ~ a * input_bytes + b``.

    Fit with ordinary least squares over all observations of a phase; jobs
    are not distinguished, which is the right bias when job names recur
    rarely but input sizes explain runtime (the [9] modelling approach).
    """

    def __init__(self, default: float = 60.0) -> None:
        self.default = default
        self._observations: Dict[str, List[Tuple[float, float]]] = defaultdict(list)
        self._models: Dict[str, Tuple[float, float]] = {}

    def observe(self, observation: TaskObservation) -> None:
        self._observations[observation.phase].append(
            (float(observation.input_bytes), observation.duration)
        )
        self._models.pop(observation.phase, None)  # refit lazily

    def observe_all(self, observations: Sequence[TaskObservation]) -> None:
        for obs in observations:
            self.observe(obs)

    def _fit(self, phase: str) -> Optional[Tuple[float, float]]:
        data = self._observations.get(phase, [])
        if len(data) < 2:
            return None
        xs = np.array([d[0] for d in data])
        ys = np.array([d[1] for d in data])
        if np.allclose(xs, xs[0]):
            return (0.0, float(ys.mean()))
        design = np.vstack([xs, np.ones_like(xs)]).T
        (a, b), *_ = np.linalg.lstsq(design, ys, rcond=None)
        return (float(a), float(b))

    def estimate(self, phase: str, input_bytes: int) -> float:
        """Estimated seconds for a task of ``phase`` over ``input_bytes``."""
        model = self._models.get(phase)
        if model is None:
            model = self._fit(phase)
            if model is None:
                return self.default
            self._models[phase] = model
        a, b = model
        return max(1.0, a * float(input_bytes) + b)
