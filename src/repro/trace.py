"""Structured decision tracing for the scheduler stack.

The paper's evaluation (§V, Figs 12-19) explains *why* the Workflow
Scheduler served workflow A before B at a given instant; the metrics
collector alone cannot answer that — it only sees task launches.  This
module records the decisions themselves: every ``select_task`` call emits
one ``decision`` event carrying the chosen workflow, its current lag
``F_h(ttd) - rho_h``, its position in the priority queue, the workflows
that were skipped because they had nothing runnable of the requested kind,
and how many ct-head advances (Algorithm 2 lines 4-19) preceded the pick.
The JobTracker adds ``assign`` and ``slot_free`` events so slot idle gaps
are attributable.

Design constraints:

* **Zero cost when disabled.**  Schedulers hold :data:`NULL_TRACER` by
  default and guard instrumentation with ``tracer.enabled`` — an attribute
  read and a branch, nothing else.  Tracing must never change a scheduling
  decision; ``tests/integration/test_trace_invariance.py`` and
  ``benchmarks/bench_trace_smoke.py`` assert the assignment sequence is
  byte-identical with and without a tracer attached.
* **Bounded memory.**  Events live in a ring buffer (``capacity=None`` for
  unbounded); overwritten events are counted in :attr:`DecisionTracer.dropped`
  so a truncated trace is never mistaken for a complete one.
* **Replayable.**  Events are plain dicts, dumped one-JSON-object-per-line
  (JSONL).  :func:`read_jsonl` loads them back for post-mortem analysis
  (:func:`repro.metrics.postmortem.explain_miss`).

Event vocabulary (``event`` field):

``decision``
    One ``select_task`` call.  Fields: ``scheduler``, ``slot_kind``,
    ``workflow``/``task`` (``None`` when the scheduler had nothing to
    assign), ``lag`` (``None`` for unplanned or best-effort workflows),
    ``queue_len``, ``position`` (0-based rank of the served workflow in the
    scheduler's own order), ``skipped`` (workflow or job names examined
    before the winner and found non-runnable), ``ct_advances``.
``ct_advance``
    One ct-head advance inside Algorithm 2: ``workflow``, ``index``
    (the new ``W_h.i``), ``lag`` (the recomputed priority).
``assign``
    A selected task was launched on a tracker: ``workflow``, ``task``,
    ``slot_kind``, ``tracker``, ``wait`` (seconds the consumed slot sat
    free, when known).
``slot_free``
    A slot returned to the pool: ``slot_kind``, ``workflow`` (whose task
    released it), ``free`` (cluster-wide free count of that kind after).
``workflow_submitted`` / ``workflow_completed``
    Lifecycle markers with ``workflow``, ``deadline``, ``total_tasks`` /
    ``met`` — recorded because the tracer doubles as a JobTracker listener.
"""

from __future__ import annotations

import json
import math
from collections import Counter, deque
from typing import IO, Any, Dict, Iterable, Iterator, List, Optional, Tuple, Union

__all__ = ["NullTracer", "NULL_TRACER", "DecisionTracer", "read_jsonl"]


class NullTracer:
    """The disabled tracer: every operation is a no-op.

    Schedulers and the JobTracker hold this singleton until a real
    :class:`DecisionTracer` is attached, so the hot path pays one
    ``enabled`` attribute read per guarded block and nothing more.
    """

    enabled = False

    def record(self, event: str, time: float, **fields: Any) -> None:
        """Discard the event."""

    def incr(self, scheduler: str, counter: str, amount: Union[int, float] = 1) -> None:
        """Discard the counter increment."""


NULL_TRACER = NullTracer()


def _jsonable(value: Any) -> Any:
    """Map non-JSON floats to ``None`` so dumps stay standard-compliant."""
    if isinstance(value, float) and not math.isfinite(value):
        return None
    return value


class DecisionTracer:
    """Ring-buffer recorder of scheduler decisions and counters.

    Args:
        capacity: maximum events retained (oldest dropped first);
            ``None`` keeps everything.

    The tracer is also a JobTracker listener: registering it via
    ``JobTracker.add_listener`` (done by ``attach_tracer``) records
    workflow lifecycle events alongside the decisions, which makes a dumped
    trace self-contained for post-mortem queries.
    """

    enabled = True

    def __init__(self, capacity: Optional[int] = None) -> None:
        if capacity is not None and capacity < 1:
            raise ValueError("capacity must be >= 1 or None")
        self.capacity = capacity
        self._events: "deque[Dict[str, Any]]" = deque(maxlen=capacity)
        self._seq = 0
        self.dropped = 0
        # (scheduler name, counter name) -> value.  Counters survive ring
        # eviction: they aggregate the whole run, not the retained window.
        self.counters: "Counter[Tuple[str, str]]" = Counter()

    # -- recording ----------------------------------------------------------

    def record(self, event: str, time: float, **fields: Any) -> None:
        """Append one event to the ring buffer."""
        if self.capacity is not None and len(self._events) == self.capacity:
            self.dropped += 1
        payload = {"seq": self._seq, "event": event, "time": time}
        for key, value in fields.items():
            payload[key] = _jsonable(value)
        self._seq += 1
        self._events.append(payload)

    def incr(self, scheduler: str, counter: str, amount: Union[int, float] = 1) -> None:
        """Bump a per-scheduler counter (kept outside the ring buffer)."""
        self.counters[(scheduler, counter)] += amount

    # -- JobTracker listener hooks ------------------------------------------

    def on_workflow_submitted(self, wip, now: float) -> None:
        """Record a workflow's arrival (with deadline and task count)."""
        self.record(
            "workflow_submitted",
            now,
            workflow=wip.name,
            deadline=wip.deadline,
            total_tasks=wip.total_tasks,
        )

    def on_workflow_completed(self, wip, now: float) -> None:
        """Record a workflow finishing (and whether it met its deadline)."""
        self.record(
            "workflow_completed",
            now,
            workflow=wip.name,
            deadline=wip.deadline,
            met=wip.deadline is None or now <= wip.deadline,
        )

    # -- access -------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self) -> Iterator[Dict[str, Any]]:
        return iter(self._events)

    def events(self, event: Optional[str] = None) -> List[Dict[str, Any]]:
        """Retained events, optionally filtered by ``event`` type."""
        if event is None:
            return list(self._events)
        return [e for e in self._events if e["event"] == event]

    @property
    def next_seq(self) -> int:
        """Sequence number the next recorded event will carry."""
        return self._seq

    def events_since(self, seq: int, limit: Optional[int] = None) -> List[Dict[str, Any]]:
        """Retained events with ``seq >= seq``, oldest first.

        The incremental-consumer primitive behind the serve tier's
        ``GET /v1/trace`` stream: a client holds the last sequence number
        it has seen and re-polls from there.  Ring eviction can drop events
        between polls; comparing the first returned ``seq`` against the
        requested one detects the gap (``dropped`` counts it globally).
        """
        if limit is not None and limit < 1:
            raise ValueError("limit must be >= 1 or None")
        # Events are appended in sequence order, so the deque is sorted by
        # seq; skip the prefix below the cursor and take up to ``limit``.
        out: List[Dict[str, Any]] = []
        for event in self._events:
            if event["seq"] < seq:
                continue
            out.append(event)
            if limit is not None and len(out) == limit:
                break
        return out

    def counter_table(self) -> Dict[str, Dict[str, Union[int, float]]]:
        """Counters grouped by scheduler name: ``{scheduler: {name: value}}``."""
        table: Dict[str, Dict[str, Union[int, float]]] = {}
        for (scheduler, name), value in sorted(self.counters.items()):
            table.setdefault(scheduler, {})[name] = value
        return table

    def clear(self) -> None:
        """Drop retained events and counters (sequence numbers keep rising)."""
        self._events.clear()
        self.counters.clear()
        self.dropped = 0

    # -- (de)serialisation ---------------------------------------------------

    def to_jsonl(self, fh: IO[str]) -> int:
        """Write the retained events as JSON Lines; returns the line count."""
        count = 0
        for event in self._events:
            fh.write(json.dumps(event, sort_keys=True))
            fh.write("\n")
            count += 1
        return count

    def dumps_jsonl(self) -> str:
        """The retained events as one JSONL string."""
        return "".join(json.dumps(e, sort_keys=True) + "\n" for e in self._events)


def read_jsonl(source: Union[str, IO[str], Iterable[str]]) -> List[Dict[str, Any]]:
    """Load a JSONL decision log (path, open file, or iterable of lines)."""
    if isinstance(source, str):
        with open(source) as fh:
            return [json.loads(line) for line in fh if line.strip()]
    return [json.loads(line) for line in source if line.strip()]
