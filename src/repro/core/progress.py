"""The progress-requirement plan ``F_i`` (paper §IV).

A plan is a step function over *time-to-deadline* (ttd): ``F_i(ttd)`` is the
number of tasks that must already have been scheduled when ``ttd`` seconds
remain before the workflow's deadline.  Algorithm 1 emits one entry per
scheduling batch of its client-side simulation; entries are stored here in
firing order — **descending ttd, ascending cumulative requirement** — which
is exactly the index order Algorithm 2 walks (``F_h[W_h.i]``).

The plan also carries the intra-workflow job priority order the Workflow
Scheduler uses to pick a job once the workflow is chosen, and enough
provenance (cap, simulated makespan) for the benches and ablations.
"""

from __future__ import annotations

import bisect
import struct
import zlib
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

__all__ = ["ProgressEntry", "ProgressPlan"]


@dataclass(frozen=True)
class ProgressEntry:
    """One step of ``F_i``: by ``ttd`` before the deadline, ``cum_req``
    tasks must have been scheduled."""

    ttd: float
    cum_req: int


@dataclass(frozen=True)
class ProgressPlan:
    """The scheduling plan a WOHA client ships to the master.

    Attributes:
        entries: steps in firing order (ttd strictly descending, cum_req
            strictly ascending).  The final entry's ``cum_req`` equals
            ``total_tasks``.
        job_order: wjob names, highest intra-workflow priority first.
        resource_cap: the slot cap ``n`` the plan was generated with.
        makespan: the client simulation's completion time under that cap.
        total_tasks: map+reduce task count of the workflow.
        feasible: whether ``makespan`` fits within the relative deadline the
            cap search targeted (``True`` when no deadline was given).
    """

    entries: Tuple[ProgressEntry, ...]
    job_order: Tuple[str, ...]
    resource_cap: int
    makespan: float
    total_tasks: int
    feasible: bool = True
    # ttds ascending (reversed entry order) for bisect lookups.
    _ttds_asc: Tuple[float, ...] = field(init=False, repr=False, compare=False)

    def __post_init__(self) -> None:
        for a, b in zip(self.entries, self.entries[1:]):
            if not (a.ttd > b.ttd and a.cum_req < b.cum_req):
                raise ValueError(
                    f"plan entries out of order: ({a.ttd}, {a.cum_req}) then ({b.ttd}, {b.cum_req})"
                )
        if self.entries and self.entries[-1].cum_req != self.total_tasks:
            raise ValueError(
                f"plan requires {self.entries[-1].cum_req} tasks but workflow has {self.total_tasks}"
            )
        object.__setattr__(self, "_ttds_asc", tuple(e.ttd for e in reversed(self.entries)))

    def __len__(self) -> int:
        return len(self.entries)

    def requirement_at(self, ttd: float) -> int:
        """``F_i(ttd)``: tasks required scheduled with ``ttd`` time left.

        Entries with ``entry.ttd >= ttd`` have fired (they lie at or before
        this moment); the requirement in force is the largest such
        ``cum_req``, or 0 before the first entry fires.
        """
        # _ttds_asc is ascending; count entries with ttd_entry >= ttd.
        idx = bisect.bisect_left(self._ttds_asc, ttd)
        fired = len(self._ttds_asc) - idx
        if fired == 0:
            return 0
        return self.entries[fired - 1].cum_req

    def first_index_after(self, deadline: float, now: float) -> int:
        """Index of the first entry that has *not* fired by ``now``.

        Entry ``i`` fires at absolute time ``deadline - entries[i].ttd``;
        this returns ``len(entries)`` when every entry has fired.  It is the
        loop on lines 8-10 of Algorithm 2, done with one bisect.
        """
        ttd_now = deadline - now
        idx = bisect.bisect_left(self._ttds_asc, ttd_now)
        # entries with ttd >= ttd_now have fired; they are the tail of
        # _ttds_asc, i.e. the head of `entries`.
        return len(self._ttds_asc) - idx

    def change_time(self, deadline: float, index: int) -> float:
        """Absolute firing time of entry ``index``; +inf past the last entry."""
        if index >= len(self.entries):
            return float("inf")
        return deadline - self.entries[index].ttd

    def requirement_before(self, index: int) -> int:
        """``F_h[index - 1].req`` with the paper's convention that the
        requirement before any entry fires is 0."""
        if index <= 0:
            return 0
        return self.entries[min(index, len(self.entries)) - 1].cum_req

    # -- wire size (Fig 13b) ----------------------------------------------------

    # High bit of the header's cap field flags an *infeasible* plan.  Caps
    # are slot counts (the paper's clusters top out in the hundreds), so the
    # bit is always free; stealing it keeps feasible plans byte-identical to
    # the original wire format and costs infeasible plans nothing.
    _INFEASIBLE_BIT = 0x8000_0000

    def to_bytes(self) -> bytes:
        """Serialise the plan as the client would ship it to the master.

        Layout: header (cap+flags, makespan, entry/job counts), then one
        ``<d I`` (float64 ttd, uint32 cum_req) record per entry, then the
        job order as length-prefixed UTF-8 names — all zlib-compressed.
        The cap field's high bit encodes ``feasible=False`` (the scheduler
        demotes infeasible plans, so the flag must survive the wire);
        feasible plans serialise byte-identically to the flagless format.
        Plan batches are highly regular (same-duration waves), so the
        records compress several-fold; Fig 13b plots
        ``len(plan.to_bytes())``.
        """
        if self.resource_cap >= self._INFEASIBLE_BIT:
            raise ValueError(f"resource cap {self.resource_cap} too large to serialise")
        cap_field = self.resource_cap | (0 if self.feasible else self._INFEASIBLE_BIT)
        blob = [struct.pack("<IdII", cap_field, self.makespan, len(self.entries), len(self.job_order))]
        for entry in self.entries:
            blob.append(struct.pack("<dI", entry.ttd, entry.cum_req))
        for name in self.job_order:
            encoded = name.encode("utf-8")
            blob.append(struct.pack("<H", len(encoded)))
            blob.append(encoded)
        return zlib.compress(b"".join(blob), level=6)

    @property
    def size_bytes(self) -> int:
        return len(self.to_bytes())

    @classmethod
    def from_bytes(cls, data: bytes) -> "ProgressPlan":
        """Inverse of :meth:`to_bytes` (round-trip tested)."""
        data = zlib.decompress(data)
        cap_field, makespan, n_entries, n_jobs = struct.unpack_from("<IdII", data, 0)
        feasible = not (cap_field & cls._INFEASIBLE_BIT)
        cap = cap_field & ~cls._INFEASIBLE_BIT
        offset = struct.calcsize("<IdII")
        entries: List[ProgressEntry] = []
        for _ in range(n_entries):
            ttd, req = struct.unpack_from("<dI", data, offset)
            offset += struct.calcsize("<dI")
            entries.append(ProgressEntry(ttd=ttd, cum_req=req))
        jobs: List[str] = []
        for _ in range(n_jobs):
            (length,) = struct.unpack_from("<H", data, offset)
            offset += 2
            jobs.append(data[offset : offset + length].decode("utf-8"))
            offset += length
        total = entries[-1].cum_req if entries else 0
        return cls(
            entries=tuple(entries),
            job_order=tuple(jobs),
            resource_cap=cap,
            makespan=makespan,
            total_tasks=total,
            feasible=feasible,
        )

    def requirement_at_time(self, deadline: float, t: float) -> int:
        """``F_i`` expressed in absolute time: tasks required scheduled by
        instant ``t`` for a workflow with absolute ``deadline``."""
        return self.requirement_at(deadline - t)

    def change_intervals(self) -> List[float]:
        """Gaps between consecutive requirement-change times (Fig 3 data)."""
        times = [e.ttd for e in self.entries]
        return [a - b for a, b in zip(times, times[1:])]
