"""Resource-capped plan generation (paper §IV-A, "An improvement").

An uncapped plan assumes the workflow owns the whole cluster, so its
progress requirements stay at zero until shortly before the deadline and
then demand a burst of slots — by the time the workflow falls behind, it is
too late (the paper's Fig 2a).  Capping the simulated slots makes the plan
demand steady progress.  The paper proposes a binary search for the
*minimum* cap under which the simulated makespan still meets the deadline:
the least optimistic plan that is still feasible.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from repro.core.plangen import (
    generate_requirements,
    generate_requirements_split,
    simulate_makespan,
)
from repro.core.progress import ProgressPlan
from repro.workflow.model import Workflow

__all__ = [
    "CapSearchResult",
    "SplitCapSearchResult",
    "find_min_cap",
    "find_min_cap_split",
    "capped_plan",
    "capped_plan_split",
]


@dataclass(frozen=True)
class CapSearchResult:
    """Outcome of the binary search."""

    cap: int
    feasible: bool
    makespan: float
    probes: int  # number of Algorithm 1 simulations performed


def find_min_cap(
    workflow: Workflow,
    max_slots: int,
    relative_deadline: Optional[float] = None,
    job_order: Optional[Sequence[str]] = None,
) -> CapSearchResult:
    """Binary-search the minimum cap whose simulated makespan meets the
    relative deadline.

    Args:
        workflow: the workflow to plan.
        max_slots: the system slot count ``n`` reported by the master.
        relative_deadline: ``D_i - S_i``; defaults to the workflow's own.
        job_order: intra-workflow priority order fed to Algorithm 1.

    Returns:
        The minimal feasible cap, or ``cap == max_slots`` with
        ``feasible=False`` when even the whole cluster cannot meet the
        deadline in simulation (the plan is then the most optimistic one
        available, which is all a best-effort scheduler can do).

    The paper relies on makespan being non-increasing in the cap.  Our
    greedy list simulation can in principle exhibit Graham anomalies; the
    binary search matches the paper, and the final plan is regenerated at
    the returned cap, so any anomaly costs only plan quality, never
    correctness.
    """
    if max_slots < 1:
        raise ValueError("max_slots must be >= 1")
    if relative_deadline is None:
        relative_deadline = workflow.relative_deadline
    probes = 0
    if relative_deadline is None:
        # Best-effort workflow: no deadline to honour; plan at full size.
        makespan = simulate_makespan(workflow, max_slots, job_order)
        return CapSearchResult(cap=max_slots, feasible=True, makespan=makespan, probes=1)

    makespan_at_max = simulate_makespan(workflow, max_slots, job_order)
    probes += 1
    if makespan_at_max > relative_deadline:
        return CapSearchResult(cap=max_slots, feasible=False, makespan=makespan_at_max, probes=probes)

    lo, hi = 1, max_slots  # invariant: hi is feasible
    best_makespan = makespan_at_max
    while lo < hi:
        mid = (lo + hi) // 2
        makespan = simulate_makespan(workflow, mid, job_order)
        probes += 1
        if makespan <= relative_deadline:
            hi = mid
            best_makespan = makespan
        else:
            lo = mid + 1
    return CapSearchResult(cap=hi, feasible=True, makespan=best_makespan, probes=probes)


def capped_plan(
    workflow: Workflow,
    max_slots: int,
    job_order: Optional[Sequence[str]] = None,
    relative_deadline: Optional[float] = None,
) -> ProgressPlan:
    """Convenience: cap search + final plan generation at the found cap."""
    result = find_min_cap(workflow, max_slots, relative_deadline, job_order)
    return generate_requirements(workflow, result.cap, job_order, feasible=result.feasible)


@dataclass(frozen=True)
class SplitCapSearchResult:
    """Outcome of the split-pool binary search."""

    map_cap: int
    reduce_cap: int
    feasible: bool
    makespan: float
    probes: int


def _split_caps(k: int, total: int, map_fraction: float) -> "tuple[int, int]":
    """Scale the cluster's map/reduce pool mix down to ``k`` total slots.

    ``total`` is the cluster's full slot count; the returned caps are
    clamped to the pool sizes it implies, so rounding (or the ``max(1, ..)``
    floors) can never hand a plan more map or reduce parallelism of either
    kind than the modelled cluster actually has.
    """
    pool_maps = max(1, round(total * map_fraction))
    pool_reduces = max(1, total - pool_maps)
    map_cap = min(pool_maps, max(1, round(k * map_fraction)))
    reduce_cap = min(pool_reduces, max(1, k - map_cap))
    return map_cap, reduce_cap


def find_min_cap_split(
    workflow: Workflow,
    max_slots: int,
    map_fraction: float = 2.0 / 3.0,
    relative_deadline: Optional[float] = None,
    job_order: Optional[Sequence[str]] = None,
) -> SplitCapSearchResult:
    """Split-pool variant of :func:`find_min_cap` (our ablation, DESIGN.md §6).

    The paper's Algorithm 1 pools map and reduce slots into a single cap,
    which lets a plan assume more reduce parallelism than the reduce pool
    can deliver; in tight regimes the workflow then slips behind a plan it
    is nominally following.  This search scales a (map, reduce) cap pair in
    the cluster's own pool ratio (``map_fraction``) and finds the smallest
    total that still meets the deadline under the split model.
    """
    if max_slots < 2:
        raise ValueError("split cap search needs at least 2 slots")
    if not (0.0 < map_fraction < 1.0):
        raise ValueError("map_fraction must be in (0, 1)")
    if relative_deadline is None:
        relative_deadline = workflow.relative_deadline

    def makespan_at(k: int) -> float:
        mc, rc = _split_caps(k, max_slots, map_fraction)
        return generate_requirements_split(workflow, mc, rc, job_order).makespan

    if relative_deadline is None:
        # Best-effort workflow: no deadline to honour; plan at full size
        # (mirrors find_min_cap's early return, one probe).
        mc, rc = _split_caps(max_slots, max_slots, map_fraction)
        return SplitCapSearchResult(mc, rc, True, makespan_at(max_slots), probes=1)

    probes = 1
    top = makespan_at(max_slots)
    if top > relative_deadline:
        mc, rc = _split_caps(max_slots, max_slots, map_fraction)
        return SplitCapSearchResult(mc, rc, False, top, probes)
    lo, hi = 2, max_slots
    best = top
    while lo < hi:
        mid = (lo + hi) // 2
        makespan = makespan_at(mid)
        probes += 1
        if makespan <= relative_deadline:
            hi = mid
            best = makespan
        else:
            lo = mid + 1
    mc, rc = _split_caps(hi, max_slots, map_fraction)
    return SplitCapSearchResult(mc, rc, True, best, probes)


def capped_plan_split(
    workflow: Workflow,
    max_slots: int,
    map_fraction: float = 2.0 / 3.0,
    job_order: Optional[Sequence[str]] = None,
    relative_deadline: Optional[float] = None,
) -> ProgressPlan:
    """Split-pool cap search + plan generation at the found caps."""
    result = find_min_cap_split(workflow, max_slots, map_fraction, relative_deadline, job_order)
    return generate_requirements_split(
        workflow, result.map_cap, result.reduce_cap, job_order, feasible=result.feasible
    )
