"""Resource-capped plan generation (paper §IV-A, "An improvement").

An uncapped plan assumes the workflow owns the whole cluster, so its
progress requirements stay at zero until shortly before the deadline and
then demand a burst of slots — by the time the workflow falls behind, it is
too late (the paper's Fig 2a).  Capping the simulated slots makes the plan
demand steady progress.  The paper proposes a binary search for the
*minimum* cap under which the simulated makespan still meets the deadline:
the least optimistic plan that is still feasible.

Beyond the paper (probe reuse, DESIGN.md §6): every probe within a search
is memoised, midpoints below an analytic floor are branched on without
simulating — two lower bounds hold for *any* schedule the simulator can
produce (the work-area bound ``makespan >= total_work / cap`` and a
critical-path bound summing each chain job's phase spans at the probed
cap), so a midpoint under the floor is infeasible with certainty — and the
batches of the final feasible probe are retained on the result so
``capped_plan`` / ``capped_plan_split`` build the :class:`ProgressPlan`
directly instead of re-running Algorithm 1 at the found cap.  The
bisection trajectory itself is the naive lo=1 search's, so the returned
cap is identical by construction; the bounds are applied with a
conservative epsilon so floating-point drift can only lower the floor
(costing probes, never a different answer); ``probes`` keeps counting
actual simulations, so the Fig 13b accounting stays honest.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.core.plangen import (
    _batches_to_plan,
    _SimProblem,
    generate_requirements,
    generate_requirements_split,
)
from repro.core.progress import ProgressPlan
from repro.workflow.dag import critical_path
from repro.workflow.model import Workflow

__all__ = [
    "CapSearchResult",
    "SplitCapSearchResult",
    "find_min_cap",
    "find_min_cap_split",
    "capped_plan",
    "capped_plan_split",
    "plan_from_search",
]

# Relative slack applied to the analytic bounds: a cap is ruled out only
# when its bound exceeds the deadline by more than this margin, so the
# seeding can never disagree with the simulated verdict over float noise.
_BOUND_EPS = 1e-9

_Batches = List[Tuple[float, int]]


@dataclass(frozen=True)
class CapSearchResult:
    """Outcome of the binary search."""

    cap: int
    feasible: bool
    makespan: float
    probes: int  # number of Algorithm 1 simulations performed
    # Batches of the simulation at ``cap``, retained so the caller can
    # build the plan without re-simulating.  Excluded from equality/repr:
    # it is derived state, fully determined by the other fields.
    batches: Optional[_Batches] = field(default=None, repr=False, compare=False)


@dataclass(frozen=True)
class SplitCapSearchResult:
    """Outcome of the split-pool binary search."""

    map_cap: int
    reduce_cap: int
    feasible: bool
    makespan: float
    probes: int
    batches: Optional[_Batches] = field(default=None, repr=False, compare=False)


def _resolve_order(workflow: Workflow, job_order: Optional[Sequence[str]]) -> Tuple[str, ...]:
    return tuple(job_order) if job_order is not None else workflow.topological_order()


def _chain_time(
    jobs: Sequence,  # WJob along the critical path
    map_cap: int,
    reduce_cap: int,
) -> float:
    """Lower bound on the makespan contributed by one dependency chain.

    Chain jobs run strictly in sequence (a dependent unlocks only on
    completion, and a reduce phase opens only when its map phase drains),
    and a phase with ``m`` tasks on ``c`` slots spans at least
    ``max(duration, m * duration / c)`` by the slot-area argument.  No
    ceil(): concurrent batches of one phase can overlap once other jobs
    free slots mid-phase, so the wave count is not a sound bound — the
    area is.
    """
    total = 0.0
    for job in jobs:
        if job.num_maps:
            span = job.num_maps * job.map_duration / map_cap
            total += span if span > job.map_duration else job.map_duration
        if job.num_reduces:
            span = job.num_reduces * job.reduce_duration / reduce_cap
            total += span if span > job.reduce_duration else job.reduce_duration
    return total


def _seed_lo_pooled(workflow: Workflow, deadline: float, max_slots: int) -> int:
    """Smallest cap the analytic bounds cannot rule out (pooled slots)."""
    lo = 1
    if deadline <= 0:
        return lo
    total_work = workflow.total_work
    if total_work > 0:
        # Work-area bound: cap * makespan >= total_work.
        ratio = total_work / deadline
        lo = max(lo, math.ceil(ratio - _BOUND_EPS * (ratio if ratio > 1.0 else 1.0)))
    if lo >= max_slots:
        return max_slots
    chain_jobs = [workflow.job(name) for name in critical_path(workflow)]
    slack = deadline + _BOUND_EPS * (abs(deadline) if abs(deadline) > 1.0 else 1.0)
    if _chain_time(chain_jobs, lo, lo) > slack:
        # Chain time is non-increasing in the cap; find the smallest cap
        # the chain bound admits.  max_slots always qualifies (the caller
        # only seeds after probing it feasible, and the bound is a lower
        # bound on the simulated makespan).
        low, high = lo, max_slots
        while low < high:
            mid = (low + high) // 2
            if _chain_time(chain_jobs, mid, mid) > slack:
                low = mid + 1
            else:
                high = mid
        lo = low
    return min(lo, max_slots)


def find_min_cap(
    workflow: Workflow,
    max_slots: int,
    relative_deadline: Optional[float] = None,
    job_order: Optional[Sequence[str]] = None,
    problem: Optional[_SimProblem] = None,
    memo: Optional[Dict[int, Tuple[Optional[_Batches], float]]] = None,
) -> CapSearchResult:
    """Binary-search the minimum cap whose simulated makespan meets the
    relative deadline.

    Args:
        workflow: the workflow to plan.
        max_slots: the system slot count ``n`` reported by the master.
        relative_deadline: ``D_i - S_i``; defaults to the workflow's own.
        job_order: intra-workflow priority order fed to Algorithm 1.
        problem: pre-built :class:`_SimProblem` for ``(workflow, order)``;
            fused searches over structurally identical workflows share one
            setup instead of rebuilding it per search.
        memo: external probe memo ``{cap: (batches, makespan)}`` shared
            *across* searches on the same problem.  A probe at a given cap
            is a pure function of the problem, never of the deadline, so
            searches that differ only in deadline or slot count reuse each
            other's simulations (the serve-tier batch fusion); ``probes``
            still counts only the simulations this call performed.

    Returns:
        The minimal feasible cap, or ``cap == max_slots`` with
        ``feasible=False`` when even the whole cluster cannot meet the
        deadline in simulation (the plan is then the most optimistic one
        available, which is all a best-effort scheduler can do).  The
        result retains the batches of the simulation at the returned cap.

    The paper relies on makespan being non-increasing in the cap.  Our
    greedy list simulation can in principle exhibit Graham anomalies; the
    binary search matches the paper, and the final plan is built from the
    probe at the returned cap, so any anomaly costs only plan quality,
    never correctness.  The analytic floor only suppresses simulations
    whose infeasible verdict is already certain, so the search visits the
    same midpoints and returns the same cap as the unpruned search —
    anomalies or not.
    """
    if max_slots < 1:
        raise ValueError("max_slots must be >= 1")
    if relative_deadline is None:
        relative_deadline = workflow.relative_deadline
    order = _resolve_order(workflow, job_order)
    if problem is None:
        problem = _SimProblem(workflow, order)  # setup shared by every probe
    elif problem.order != order:
        raise ValueError("shared _SimProblem was built for a different job order")
    if memo is None:
        memo = {}
    probes = 0

    def probe(cap: int) -> Tuple[Optional[_Batches], float]:
        nonlocal probes
        cached = memo.get(cap)
        if cached is None:
            probes += 1
            cached = problem.run(cap, pooled=True)
            memo[cap] = cached
        return cached

    if relative_deadline is None:
        # Best-effort workflow: no deadline to honour; plan at full size.
        batches, makespan = probe(max_slots)
        return CapSearchResult(
            cap=max_slots, feasible=True, makespan=makespan, probes=probes, batches=batches
        )

    batches_at_max, makespan_at_max = probe(max_slots)
    if makespan_at_max > relative_deadline:
        return CapSearchResult(
            cap=max_slots,
            feasible=False,
            makespan=makespan_at_max,
            probes=probes,
            batches=batches_at_max,
        )

    # Invariant: hi is feasible.  The bisection trajectory is the naive
    # lo=1 search's, unchanged — but any midpoint below the analytic floor
    # is provably infeasible (the bounds lower-bound the simulated
    # makespan), so its branch is taken without running Algorithm 1.
    floor = _seed_lo_pooled(workflow, relative_deadline, max_slots)
    lo, hi = 1, max_slots
    while lo < hi:
        mid = (lo + hi) // 2
        if mid < floor:
            lo = mid + 1
            continue
        _batches, makespan = probe(mid)
        if makespan <= relative_deadline:
            hi = mid
        else:
            lo = mid + 1
    batches, best_makespan = memo[hi]
    return CapSearchResult(
        cap=hi, feasible=True, makespan=best_makespan, probes=probes, batches=batches
    )


def plan_from_search(
    workflow: Workflow,
    job_order: Sequence[str],
    result: "CapSearchResult | SplitCapSearchResult",
) -> ProgressPlan:
    """Build the :class:`ProgressPlan` a search result stands for.

    Uses the batches retained from the search's final probe when present
    (no re-simulation); otherwise falls back to re-running Algorithm 1 at
    the found cap(s) — e.g. for a hand-constructed result.  ``job_order``
    must be the order the search ran with.
    """
    order = tuple(job_order)
    if isinstance(result, CapSearchResult):
        cap = result.cap
    else:
        cap = result.map_cap + result.reduce_cap
    if result.batches is not None:
        return _batches_to_plan(
            result.batches, result.makespan, order, cap, workflow.total_tasks, result.feasible
        )
    if isinstance(result, CapSearchResult):
        return generate_requirements(workflow, cap, order, feasible=result.feasible)
    return generate_requirements_split(
        workflow, result.map_cap, result.reduce_cap, order, feasible=result.feasible
    )


def capped_plan(
    workflow: Workflow,
    max_slots: int,
    job_order: Optional[Sequence[str]] = None,
    relative_deadline: Optional[float] = None,
) -> ProgressPlan:
    """Convenience: cap search + plan built from the search's final probe."""
    order = _resolve_order(workflow, job_order)
    result = find_min_cap(workflow, max_slots, relative_deadline, order)
    return plan_from_search(workflow, order, result)


def _split_caps(k: int, total: int, map_fraction: float) -> "tuple[int, int]":
    """Scale the cluster's map/reduce pool mix down to ``k`` total slots.

    ``total`` is the cluster's full slot count; the returned caps are
    clamped to the pool sizes it implies, so rounding (or the ``max(1, ..)``
    floors) can never hand a plan more map or reduce parallelism of either
    kind than the modelled cluster actually has.
    """
    pool_maps = max(1, round(total * map_fraction))
    pool_reduces = max(1, total - pool_maps)
    map_cap = min(pool_maps, max(1, round(k * map_fraction)))
    reduce_cap = min(pool_reduces, max(1, k - map_cap))
    return map_cap, reduce_cap


def _seed_lo_split(
    workflow: Workflow,
    deadline: float,
    max_slots: int,
    map_fraction: float,
    floor: int,
) -> int:
    """Smallest total ``k`` the analytic bounds cannot rule out (split pools)."""
    lo = floor
    if deadline <= 0:
        return lo
    total_work = workflow.total_work
    if total_work > 0:
        # ``_split_caps`` yields at most k + 1 slots in total, so the
        # work-area bound on k is one looser than the pooled one.
        ratio = total_work / deadline
        lo = max(lo, math.ceil(ratio - _BOUND_EPS * (ratio if ratio > 1.0 else 1.0)) - 1)
    lo = max(floor, min(lo, max_slots))
    if lo >= max_slots:
        return max_slots
    chain_jobs = [workflow.job(name) for name in critical_path(workflow)]
    slack = deadline + _BOUND_EPS * (abs(deadline) if abs(deadline) > 1.0 else 1.0)

    def chain_at(k: int) -> float:
        mc, rc = _split_caps(k, max_slots, map_fraction)
        return _chain_time(chain_jobs, mc, rc)

    # Both caps are non-decreasing in k, so chain_at is non-increasing.
    if chain_at(lo) > slack:
        low, high = lo, max_slots
        while low < high:
            mid = (low + high) // 2
            if chain_at(mid) > slack:
                low = mid + 1
            else:
                high = mid
        lo = low
    return min(lo, max_slots)


def find_min_cap_split(
    workflow: Workflow,
    max_slots: int,
    map_fraction: float = 2.0 / 3.0,
    relative_deadline: Optional[float] = None,
    job_order: Optional[Sequence[str]] = None,
    problem: Optional[_SimProblem] = None,
    memo: Optional[Dict[Tuple[int, int], Tuple[Optional[_Batches], float]]] = None,
) -> SplitCapSearchResult:
    """Split-pool variant of :func:`find_min_cap` (our ablation, DESIGN.md §6).

    The paper's Algorithm 1 pools map and reduce slots into a single cap,
    which lets a plan assume more reduce parallelism than the reduce pool
    can deliver; in tight regimes the workflow then slips behind a plan it
    is nominally following.  This search scales a (map, reduce) cap pair in
    the cluster's own pool ratio (``map_fraction``) and finds the smallest
    total that still meets the deadline under the split model.

    A one-slot cluster degrades gracefully (the search floor clamps to the
    slot count and ``_split_caps`` floors both pools at one), mirroring the
    pooled search rather than rejecting the configuration.  Distinct totals
    ``k`` can scale to the same ``(map_cap, reduce_cap)`` pair; the probe
    memo collapses them, so ``probes`` counts distinct simulations.

    ``problem`` and ``memo`` mirror :func:`find_min_cap`'s fusion seams:
    the memo is keyed by the scaled ``(map_cap, reduce_cap)`` pair, which
    is a complete description of one probe on a given problem, so it is
    shareable across deadlines and slot counts alike.
    """
    if max_slots < 1:
        raise ValueError("max_slots must be >= 1")
    if not (0.0 < map_fraction < 1.0):
        raise ValueError("map_fraction must be in (0, 1)")
    if relative_deadline is None:
        relative_deadline = workflow.relative_deadline
    order = _resolve_order(workflow, job_order)
    if problem is None:
        problem = _SimProblem(workflow, order)  # setup shared by every probe
    elif problem.order != order:
        raise ValueError("shared _SimProblem was built for a different job order")
    if memo is None:
        memo = {}
    probes = 0

    def probe(k: int) -> Tuple[Optional[_Batches], float]:
        nonlocal probes
        key = _split_caps(k, max_slots, map_fraction)
        cached = memo.get(key)
        if cached is None:
            probes += 1
            mc, rc = key
            cached = problem.run(mc, pooled=False, reduce_cap=rc)
            memo[key] = cached
        return cached

    if relative_deadline is None:
        # Best-effort workflow: no deadline to honour; plan at full size
        # (mirrors find_min_cap's early return, one probe).
        mc, rc = _split_caps(max_slots, max_slots, map_fraction)
        batches, makespan = probe(max_slots)
        return SplitCapSearchResult(mc, rc, True, makespan, probes, batches)

    batches_at_max, top = probe(max_slots)
    if top > relative_deadline:
        mc, rc = _split_caps(max_slots, max_slots, map_fraction)
        return SplitCapSearchResult(mc, rc, False, top, probes, batches_at_max)

    start = min(2, max_slots)
    floor = _seed_lo_split(workflow, relative_deadline, max_slots, map_fraction, start)
    lo, hi = start, max_slots
    while lo < hi:
        mid = (lo + hi) // 2
        if mid < floor:
            lo = mid + 1
            continue
        _batches, makespan = probe(mid)
        if makespan <= relative_deadline:
            hi = mid
        else:
            lo = mid + 1
    mc, rc = _split_caps(hi, max_slots, map_fraction)
    batches, best = memo[(mc, rc)]
    return SplitCapSearchResult(mc, rc, True, best, probes, batches)


def capped_plan_split(
    workflow: Workflow,
    max_slots: int,
    map_fraction: float = 2.0 / 3.0,
    job_order: Optional[Sequence[str]] = None,
    relative_deadline: Optional[float] = None,
) -> ProgressPlan:
    """Split-pool cap search + plan built from the search's final probe."""
    order = _resolve_order(workflow, job_order)
    result = find_min_cap_split(workflow, max_slots, map_fraction, relative_deadline, order)
    return plan_from_search(workflow, order, result)
