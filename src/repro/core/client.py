"""The WOHA client (paper §III-B, steps a-h).

``hadoop dag /path/to/W_i.xml`` runs, on the client machine:

1. the **Configuration Validator** — parse the XML, check jar files and
   input datasets against HDFS, infer the prerequisite sets ``P_i``;
2. the **Scheduling Plan Generator** — query the master for the system slot
   count, binary-search the resource cap, run Algorithm 1;
3. the **Coordinator / Submitter Job Generator** — ship configuration +
   plan to the JobTracker, which creates the map-only submitter job.

All of the expensive analysis happens here, off the master — that is the
framework's central design decision.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence, Tuple, Union

from repro.cluster.jobtracker import JobTracker, WorkflowInProgress
from repro.core.capsearch import find_min_cap, plan_from_search
from repro.core.plancache import PlanCache, PlanCacheEntry
from repro.core.plangen import generate_requirements
from repro.core.priorities import PRIORITIZERS, Prioritizer
from repro.core.progress import ProgressPlan
from repro.hdfs import HdfsNamespace
from repro.workflow.model import Workflow, WorkflowValidationError
from repro.workflow.xmlconfig import parse_workflow_xml

__all__ = ["ValidationError", "ValidationReport", "WohaClient", "make_planner"]


def _plan_entry(
    workflow: Workflow,
    job_order: Sequence[str],
    total_slots: int,
    cap_search: bool,
    pool: str = "pooled",
    map_fraction: float = 2.0 / 3.0,
    problem=None,
    memo=None,
) -> PlanCacheEntry:
    """One full planning run: ``(cap-search result, plan)``.

    The unit both :class:`WohaClient` and :func:`make_planner` compute, and
    the unit :class:`~repro.core.plancache.PlanCache` stores.  The search
    result is ``None`` when cap search is off.

    ``problem``/``memo`` are the batch-fusion seams
    (:mod:`repro.serve.batching`): a shared pre-built ``_SimProblem`` and a
    cross-search probe memo for requests that differ only in deadline or
    slot count.  Both default to per-call state, which is the plain
    client-side path.
    """
    order = tuple(job_order)
    if pool == "split":
        from repro.core.capsearch import find_min_cap_split
        from repro.core.plangen import generate_requirements_split

        if cap_search:
            result = find_min_cap_split(
                workflow, total_slots, map_fraction, job_order=order,
                problem=problem, memo=memo,
            )
            return result, plan_from_search(workflow, order, result)
        map_cap = max(1, round(total_slots * map_fraction))
        return None, generate_requirements_split(
            workflow, map_cap, max(1, total_slots - map_cap), order, problem=problem
        )
    if cap_search:
        result = find_min_cap(workflow, total_slots, job_order=order, problem=problem, memo=memo)
        return result, plan_from_search(workflow, order, result)
    return None, generate_requirements(workflow, total_slots, order, feasible=True, problem=problem)


@dataclass(frozen=True)
class ValidationReport:
    """Outcome of the Configuration Validator.

    ``errors`` carries structural failures that precede the HDFS checks —
    malformed XML, bad attributes, dependency cycles — so a single report
    type describes every way a submission can be rejected.
    """

    missing_inputs: Tuple[str, ...]
    missing_jars: Tuple[str, ...]
    errors: Tuple[str, ...] = ()

    @property
    def ok(self) -> bool:
        return not self.missing_inputs and not self.missing_jars and not self.errors

    def to_payload(self) -> dict:
        """JSON-ready dict (the serve tier's 400-response body)."""
        return {
            "ok": self.ok,
            "missing_inputs": list(self.missing_inputs),
            "missing_jars": list(self.missing_jars),
            "errors": list(self.errors),
        }


class ValidationError(WorkflowValidationError):
    """A submission the Configuration Validator rejected.

    Unlike a bare :class:`~repro.workflow.model.WorkflowValidationError`
    (which it subclasses, so existing handlers keep working), it carries
    the structured :class:`ValidationReport`, so callers — the serve tier's
    400 responses in particular — can show *what* failed instead of parsing
    an exception string.
    """

    def __init__(self, report: ValidationReport, message: Optional[str] = None) -> None:
        if message is None:
            parts = []
            if report.errors:
                parts.append("errors " + "; ".join(report.errors))
            if report.missing_inputs:
                parts.append(f"missing inputs {list(report.missing_inputs)}")
            if report.missing_jars:
                parts.append(f"missing jars {list(report.missing_jars)}")
            message = ", ".join(parts) or "validation failed"
        super().__init__(message)
        self.report = report


def _resolve_prioritizer(prioritizer: Union[str, Prioritizer]) -> Prioritizer:
    if callable(prioritizer):
        return prioritizer
    try:
        return PRIORITIZERS[prioritizer]
    except KeyError:
        raise ValueError(
            f"unknown prioritizer {prioritizer!r}; pick from {sorted(PRIORITIZERS)}"
        ) from None


class WohaClient:
    """A client node submitting workflows to a JobTracker.

    Args:
        jobtracker: the master to submit to.
        hdfs: the namespace used for configuration validation; ``None``
            skips dataset/jar existence checks (pure-simulation runs).
        prioritizer: intra-workflow job priority policy — ``"hlf"``,
            ``"lpf"``, ``"mpf"`` or a callable.
        cap_search: when False, plans are generated at the full system slot
            count (the paper's pre-improvement behaviour, kept for the
            Fig 2 ablation).
        plan_cache: optional :class:`~repro.core.plancache.PlanCache`;
            recurrent instances of one template then share a single cap
            search + Algorithm 1 run.
    """

    def __init__(
        self,
        jobtracker: JobTracker,
        hdfs: Optional[HdfsNamespace] = None,
        prioritizer: Union[str, Prioritizer] = "lpf",
        cap_search: bool = True,
        plan_cache: Optional[PlanCache] = None,
    ) -> None:
        self.jobtracker = jobtracker
        self.hdfs = hdfs
        self.prioritizer = _resolve_prioritizer(prioritizer)
        self.cap_search = cap_search
        self.plan_cache = plan_cache

    # -- Configuration Validator -------------------------------------------------

    def validate(self, workflow: Workflow) -> ValidationReport:
        """Check jar files and input datasets exist (step b).

        Inputs produced by another wjob of the same workflow are exempt:
        they will exist by the time the consumer runs.
        """
        if self.hdfs is None:
            return ValidationReport(missing_inputs=(), missing_jars=())
        produced = {path for job in workflow.jobs for path in job.outputs}
        missing_inputs = tuple(
            path
            for job in workflow.jobs
            for path in job.inputs
            if path not in produced and not self.hdfs.exists(path)
        )
        missing_jars = tuple(
            job.jar_path
            for job in workflow.jobs
            if job.jar_path is not None and not self.hdfs.exists(job.jar_path)
        )
        return ValidationReport(missing_inputs=missing_inputs, missing_jars=missing_jars)

    # -- Scheduling Plan Generator -------------------------------------------------

    def generate_plan(self, workflow: Workflow, total_slots: Optional[int] = None) -> ProgressPlan:
        """Cap search + Algorithm 1 (steps c-d), entirely client-side."""
        if total_slots is None:
            total_slots = self.jobtracker.total_slots  # the one master query
        job_order = self.prioritizer(workflow)  # repro: calls[repro.core.priorities.hlf_order, repro.core.priorities.lpf_order, repro.core.priorities.mpf_order]
        if self.plan_cache is not None:
            _result, plan = self.plan_cache.get_or_build(
                workflow,
                job_order,
                total_slots,
                mode=("pooled", self.cap_search),
                build=lambda: _plan_entry(workflow, job_order, total_slots, self.cap_search),
            )
            return plan
        return _plan_entry(workflow, job_order, total_slots, self.cap_search)[1]

    # -- submission -------------------------------------------------------------------

    def submit(self, workflow: Workflow) -> WorkflowInProgress:
        """Validate, plan and submit (steps b-h).

        Raises:
            ValidationError: when the Configuration Validator rejects the
                workflow; ``.report`` holds the structured findings.
        """
        report = self.validate(workflow)
        if not report.ok:
            raise ValidationError(
                report,
                f"workflow {workflow.name!r}: missing inputs {list(report.missing_inputs)}, "
                f"missing jars {list(report.missing_jars)}",
            )
        plan = self.generate_plan(workflow)
        return self.jobtracker.submit_workflow(workflow, plan=plan, use_submitter=True)

    def submit_xml(self, xml_text: str) -> WorkflowInProgress:
        """The ``hadoop dag W_i.xml`` entry point (step a).

        Malformed or structurally invalid XML raises the same typed
        :class:`ValidationError` as a failed HDFS check — the parse failure
        lands in ``report.errors`` — so callers handle one exception shape
        for every rejection path.
        """
        try:
            workflow = parse_workflow_xml(xml_text)
        except ValidationError:
            raise
        except WorkflowValidationError as exc:
            raise ValidationError(
                ValidationReport(missing_inputs=(), missing_jars=(), errors=(str(exc),))
            ) from exc
        return self.submit(workflow)


def make_planner(
    prioritizer: Union[str, Prioritizer] = "lpf",
    cap_search: bool = True,
    pool: str = "pooled",
    map_fraction: float = 2.0 / 3.0,
    plan_cache: Optional[PlanCache] = None,
) -> Callable[[Workflow, int], ProgressPlan]:
    """A standalone planner for :class:`~repro.cluster.simulation.ClusterSimulation`.

    Returns a ``(workflow, total_slots) -> ProgressPlan`` callable that does
    exactly what :meth:`WohaClient.generate_plan` does.

    Args:
        pool: ``"pooled"`` runs the paper's Algorithm 1 (one slot pool);
            ``"split"`` runs the split-pool ablation, modelling map and
            reduce slots separately in the cluster's ``map_fraction`` mix.
        plan_cache: optional :class:`~repro.core.plancache.PlanCache`
            shared across the planner's invocations (and, if desired,
            across planners); recurrent workflow instances then plan once.
    """
    chosen = _resolve_prioritizer(prioritizer)
    if pool not in ("pooled", "split"):
        raise ValueError(f"unknown pool mode {pool!r}; pick 'pooled' or 'split'")

    def planner(workflow: Workflow, total_slots: int) -> ProgressPlan:
        job_order = chosen(workflow)
        if plan_cache is not None:
            _result, plan = plan_cache.get_or_build(
                workflow,
                job_order,
                total_slots,
                mode=(pool, cap_search, map_fraction),
                build=lambda: _plan_entry(
                    workflow, job_order, total_slots, cap_search, pool, map_fraction
                ),
            )
            return plan
        return _plan_entry(workflow, job_order, total_slots, cap_search, pool, map_fraction)[1]

    return planner
