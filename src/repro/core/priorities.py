"""Intra-workflow job prioritization (paper §V-C): HLF, LPF, MPF.

Each function returns the workflow's job names **highest priority first**;
Algorithm 1 and the Workflow Scheduler both consume this order.  Ties are
broken by the job's position in the workflow definition ("job IDs in the
workflow"), keeping every run deterministic.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Tuple

from repro.workflow import dag
from repro.workflow.model import Workflow

__all__ = ["hlf_order", "lpf_order", "mpf_order", "PRIORITIZERS"]

Prioritizer = Callable[[Workflow], Tuple[str, ...]]


def _indexed(workflow: Workflow) -> Dict[str, int]:
    return {job.name: i for i, job in enumerate(workflow.jobs)}


def hlf_order(workflow: Workflow) -> Tuple[str, ...]:
    """Highest Level First: jobs heading longer chains of dependents run
    first.  Level 0 holds jobs with no dependents; higher levels feed them."""
    level = dag.levels(workflow)
    index = _indexed(workflow)
    return tuple(sorted(workflow.job_names(), key=lambda n: (-level[n], index[n])))


def lpf_order(workflow: Workflow) -> Tuple[str, ...]:
    """Longest Path First: like HLF but weighting each job by its estimated
    serial length (map time + reduce time), so heavy chains outrank long
    thin ones."""
    weight = dag.longest_path_weights(workflow)
    index = _indexed(workflow)
    return tuple(sorted(workflow.job_names(), key=lambda n: (-weight[n], index[n])))


def mpf_order(workflow: Workflow) -> Tuple[str, ...]:
    """Maximum Parallelism First: jobs with the most direct dependents run
    first, maximising the chance the workflow has runnable tasks whenever
    it holds the highest priority."""
    index = _indexed(workflow)
    return tuple(
        sorted(workflow.job_names(), key=lambda n: (-len(workflow.dependents(n)), index[n]))
    )


PRIORITIZERS: Dict[str, Prioritizer] = {
    "hlf": hlf_order,
    "lpf": lpf_order,
    "mpf": mpf_order,
}
