"""Algorithm 1: client-side generation of progress requirements.

``generate_requirements`` simulates the workflow's execution on ``cap``
pooled slots, honouring the given intra-workflow job priority order, and
records how many tasks a deadline-meeting execution has scheduled at every
instant.  The recorded batches, re-expressed in time-to-deadline, are the
progress requirement list ``F_i``.

Faithfulness notes (two places where the printed pseudo-code is abbreviated
and we implement the evident intent):

* The paper's listing never emits FREE events for completed task batches —
  taken literally, slots would leak and any job with more tasks than slots
  would deadlock.  We emit ``FREE(t + duration, batch)`` per batch, which is
  the only reading under which the algorithm's own Fig 2 example works out.
* The listing assigns slots to a single job per event.  We keep assigning
  while slots and active jobs remain at the same instant (work-conserving),
  matching both the Workflow Scheduler's runtime behaviour and Fig 2.

As in the paper, map and reduce slots are pooled into the single cap ``n``;
``generate_requirements_split`` is our split-pool ablation (DESIGN.md §6).
"""

from __future__ import annotations

import heapq
import itertools
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.progress import ProgressEntry, ProgressPlan
from repro.workflow.model import Workflow

__all__ = ["generate_requirements", "generate_requirements_split", "simulate_makespan"]

_FREE = 0
_ADD = 1


class _SimJob:
    """Mutable per-job counters for the plan simulation."""

    __slots__ = ("name", "maps_left", "reduces_left", "map_dur", "reduce_dur", "rank", "pending")

    def __init__(self, name: str, maps: int, reduces: int, map_dur: float, reduce_dur: float, rank: int, pending: int):
        self.name = name
        self.maps_left = maps
        self.reduces_left = reduces
        self.map_dur = map_dur
        self.reduce_dur = reduce_dur
        self.rank = rank
        self.pending = pending  # unfinished prerequisites


def _simulate(
    workflow: Workflow,
    cap: int,
    job_order: Sequence[str],
    pooled: bool,
    reduce_cap: int = 0,
) -> Tuple[List[Tuple[float, int]], float]:
    """Run the Algorithm 1 simulation.

    Returns ``(batches, makespan)`` where each batch is ``(time, count)``.
    With ``pooled`` False, ``cap`` bounds map slots and ``reduce_cap``
    reduce slots (the split-pool ablation).
    """
    if cap < 1:
        raise ValueError("resource cap must be >= 1")
    rank = {name: i for i, name in enumerate(job_order)}
    missing = set(workflow.job_names()) - set(rank)
    if missing:
        raise ValueError(f"job_order missing jobs: {sorted(missing)}")

    jobs: Dict[str, _SimJob] = {}
    for wjob in workflow.jobs:
        jobs[wjob.name] = _SimJob(
            wjob.name,
            wjob.num_maps,
            wjob.num_reduces,
            wjob.map_duration,
            wjob.reduce_duration,
            rank[wjob.name],
            len(wjob.prerequisites),
        )

    # Active queue: jobs with an open phase.  Sorted scan per pick is fine —
    # |A| <= jobs in the workflow and the client runs this off-master.
    active: List[_SimJob] = [jobs[name] for name in workflow.roots()]
    events: List[Tuple[float, int, int, object]] = []  # (time, seq, type, value)
    seq = itertools.count()
    free_maps = cap
    free_reduces = reduce_cap  # unused when pooled

    def push(time: float, etype: int, value) -> None:
        heapq.heappush(events, (time, next(seq), etype, value))

    batches: List[Tuple[float, int]] = []
    makespan = 0.0

    def assign(t: float) -> None:
        """Work-conserving assignment at instant ``t``."""
        nonlocal free_maps, free_reduces
        while active:
            candidates = [
                job
                for job in active
                if (job.maps_left > 0 and free_maps > 0)
                or (
                    job.maps_left == 0
                    and job.reduces_left > 0
                    and ((free_maps if pooled else free_reduces) > 0)
                )
            ]
            if not candidates:
                break
            job = min(candidates, key=lambda j: j.rank)
            if job.maps_left > 0:
                batch = min(job.maps_left, free_maps)
                free_maps -= batch
                job.maps_left -= batch
                batches.append((t, batch))
                push(t + job.map_dur, _FREE, ("m", batch))
                if job.maps_left == 0:
                    active.remove(job)
                    # The job reappears (for its reduce phase) or completes
                    # when its last map batch finishes.
                    push(t + job.map_dur, _ADD, job.name)
            else:
                avail = free_maps if pooled else free_reduces
                batch = min(job.reduces_left, avail)
                if pooled:
                    free_maps -= batch
                else:
                    free_reduces -= batch
                job.reduces_left -= batch
                batches.append((t, batch))
                push(t + job.reduce_dur, _FREE, ("r", batch))
                if job.reduces_left == 0:
                    active.remove(job)
                    push(t + job.reduce_dur, _ADD, job.name)

    assign(0.0)
    while events:
        t = events[0][0]
        # Drain every event at this instant before assigning.
        while events and events[0][0] == t:
            _t, _s, etype, value = heapq.heappop(events)
            if etype == _FREE:
                kind, count = value
                if pooled or kind == "m":
                    free_maps += count
                else:
                    free_reduces += count
            else:  # _ADD: a job finished a phase or got unlocked
                job = jobs[value]
                if job.maps_left == 0 and job.reduces_left == 0:
                    # Last phase finished: record completion, unlock deps.
                    makespan = max(makespan, t)
                    for dep in workflow.dependents(value):
                        dep_job = jobs[dep]
                        dep_job.pending -= 1
                        if dep_job.pending == 0:
                            active.append(dep_job)
                else:
                    # Map phase done; reduce phase opens.
                    active.append(job)
        assign(t)
    if active:
        raise RuntimeError(
            "plan simulation stalled with active jobs and no events — "
            "this indicates a slot-accounting bug"
        )

    unfinished = [j.name for j in jobs.values() if j.maps_left or j.reduces_left]
    if unfinished:
        raise RuntimeError(f"plan simulation left jobs unscheduled: {unfinished}")
    return batches, makespan


def _batches_to_plan(
    batches: List[Tuple[float, int]],
    makespan: float,
    job_order: Sequence[str],
    cap: int,
    total_tasks: int,
    feasible: bool,
) -> ProgressPlan:
    """Merge same-instant batches, accumulate, convert times to ttd."""
    merged: List[Tuple[float, int]] = []
    for time, count in batches:
        if count <= 0:
            continue
        if merged and merged[-1][0] == time:
            merged[-1] = (time, merged[-1][1] + count)
        else:
            merged.append((time, count))
    entries: List[ProgressEntry] = []
    cumulative = 0
    for time, count in merged:
        cumulative += count
        ttd = makespan - time
        if entries and entries[-1].ttd <= ttd:
            # Distinct batch times can collapse to one ttd in floating
            # point; keep a single entry with the stronger requirement.
            entries[-1] = ProgressEntry(ttd=entries[-1].ttd, cum_req=cumulative)
        else:
            entries.append(ProgressEntry(ttd=ttd, cum_req=cumulative))
    return ProgressPlan(
        entries=tuple(entries),
        job_order=tuple(job_order),
        resource_cap=cap,
        makespan=makespan,
        total_tasks=total_tasks,
        feasible=feasible,
    )


def generate_requirements(
    workflow: Workflow,
    cap: int,
    job_order: Optional[Sequence[str]] = None,
    feasible: bool = True,
) -> ProgressPlan:
    """Algorithm 1: simulate ``workflow`` on ``cap`` pooled slots.

    Args:
        workflow: the workflow configuration ``W_i``.
        cap: the resource consumption cap ``n``.
        job_order: intra-workflow priority order (best first); defaults to
            the workflow's topological order.
        feasible: recorded on the plan (set by the cap search).

    Returns:
        The progress requirement plan ``F_i``.
    """
    order = tuple(job_order) if job_order is not None else workflow.topological_order()
    batches, makespan = _simulate(workflow, cap, order, pooled=True)
    return _batches_to_plan(batches, makespan, order, cap, workflow.total_tasks, feasible)


def generate_requirements_split(
    workflow: Workflow,
    map_cap: int,
    reduce_cap: int,
    job_order: Optional[Sequence[str]] = None,
    feasible: bool = True,
) -> ProgressPlan:
    """Split-pool ablation: separate map and reduce slot caps.

    The paper pools both slot kinds into one ``n``; this variant models
    them separately, which matches the real cluster more closely.  Compared
    in ``benchmarks/bench_ablation_split_pool.py``.
    """
    if reduce_cap < 1:
        raise ValueError("reduce cap must be >= 1")
    order = tuple(job_order) if job_order is not None else workflow.topological_order()
    batches, makespan = _simulate(workflow, map_cap, order, pooled=False, reduce_cap=reduce_cap)
    return _batches_to_plan(
        batches, makespan, order, map_cap + reduce_cap, workflow.total_tasks, feasible
    )


def simulate_makespan(workflow: Workflow, cap: int, job_order: Optional[Sequence[str]] = None) -> float:
    """Makespan of the Algorithm 1 simulation at ``cap`` slots (cap search
    subroutine)."""
    order = tuple(job_order) if job_order is not None else workflow.topological_order()
    _batches, makespan = _simulate(workflow, cap, order, pooled=True)
    return makespan
