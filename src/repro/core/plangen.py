"""Algorithm 1: client-side generation of progress requirements.

``generate_requirements`` simulates the workflow's execution on ``cap``
pooled slots, honouring the given intra-workflow job priority order, and
records how many tasks a deadline-meeting execution has scheduled at every
instant.  The recorded batches, re-expressed in time-to-deadline, are the
progress requirement list ``F_i``.

Faithfulness notes (two places where the printed pseudo-code is abbreviated
and we implement the evident intent):

* The paper's listing never emits FREE events for completed task batches —
  taken literally, slots would leak and any job with more tasks than slots
  would deadlock.  We emit ``FREE(t + duration, batch)`` per batch, which is
  the only reading under which the algorithm's own Fig 2 example works out.
* The listing assigns slots to a single job per event.  We keep assigning
  while slots and active jobs remain at the same instant (work-conserving),
  matching both the Workflow Scheduler's runtime behaviour and Fig 2.

As in the paper, map and reduce slots are pooled into the single cap ``n``;
``generate_requirements_split`` is our split-pool ablation (DESIGN.md §6).

Performance: planning throughput *is* WOHA's scalability story — all the
expensive analysis runs client-side (§III-B), so the kernel below is the
hot loop of every cap-search probe.  Runnable jobs live in rank-keyed
binary heaps (one pooled heap, or separate map-/reduce-phase heaps in split
mode) so each assignment is an O(log |A|) pop instead of an O(|A|)
candidate rescan, and ``collect_batches=False`` lets makespan-only probes
skip materialising batch lists entirely.  Job ranks are unique (positions
in ``job_order``), so heap selection reproduces the previous
min-over-candidates scan decision-for-decision: same batches, same event
times, same makespan, bit-for-bit.
"""

from __future__ import annotations

from heapq import heapify, heappop, heappush
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.progress import ProgressEntry, ProgressPlan
from repro.workflow.model import Workflow

__all__ = ["generate_requirements", "generate_requirements_split", "simulate_makespan"]

# Event codes; ``seq`` is unique, so tuple comparison never reaches the
# code or payload.  Plain FREE events are (time, seq, code, count);
# FREE+ADD events are (time, seq, code, count, rank).  A phase's last
# batch frees its slots *and* re-activates the job at the same instant
# with consecutive sequence numbers — nothing can drain between the two —
# so the pair is fused into one event.
_FREE_MAP = 0
_FREE_REDUCE = 1
_FREE_MAP_ADD = 2
_FREE_REDUCE_ADD = 3


class _SimProblem:
    """The per-(workflow, job_order) setup of the Algorithm 1 simulation.

    Building the rank index, the per-job counter arrays and the
    rank-resolved dependency lists costs as much as simulating a small
    workflow — and the cap search runs ~log(n) simulations over the *same*
    workflow and order.  This class does that setup once; :meth:`run`
    copies the mutable counters and executes the event loop for one cap.
    """

    __slots__ = (
        "workflow",
        "order",
        "size",
        "maps0",
        "reduces0",
        "map_dur",
        "reduce_dur",
        "pending0",
        "name_of",
        "dependents",
        "root_ranks",
    )

    def __init__(self, workflow: Workflow, job_order: Sequence[str]) -> None:
        rank: Dict[str, int] = {name: i for i, name in enumerate(job_order)}
        missing = [name for name in workflow.job_names() if name not in rank]
        if missing:
            raise ValueError(f"job_order missing jobs: {sorted(missing)}")
        self.workflow = workflow
        self.order = tuple(job_order)
        size = len(rank)
        self.size = size
        # Per-job state, indexed by rank (= priority: lower runs first).
        self.maps0 = [0] * size
        self.reduces0 = [0] * size
        self.map_dur = [0.0] * size
        self.reduce_dur = [0.0] * size
        self.pending0 = [0] * size  # unfinished prerequisites
        self.name_of: List[Optional[str]] = [None] * size
        self.dependents: List[Tuple[int, ...]] = [()] * size
        for wjob in workflow.jobs:
            r = rank[wjob.name]
            self.maps0[r] = wjob.num_maps
            self.reduces0[r] = wjob.num_reduces
            self.map_dur[r] = wjob.map_duration
            self.reduce_dur[r] = wjob.reduce_duration
            self.pending0[r] = len(wjob.prerequisites)
            self.name_of[r] = wjob.name
            # sorted: dependents() is a frozenset, so bare iteration here
            # would bake hash order into the tuple.  Rank heaps pop by
            # value, so the push order cannot change any decision — but the
            # stored tuple must still be process-independent for the plan
            # cache and the byte-equivalence oracle.
            self.dependents[r] = tuple(rank[d] for d in sorted(workflow.dependents(wjob.name)))
        self.root_ranks = tuple(rank[root] for root in workflow.roots())

    def run(
        self,
        cap: int,
        pooled: bool,
        reduce_cap: int = 0,
        collect_batches: bool = True,
    ) -> Tuple[Optional[List[Tuple[float, int]]], float]:
        """Simulate at one cap; see :func:`_simulate` for the contract."""
        if cap < 1:
            raise ValueError("resource cap must be >= 1")
        maps_left = self.maps0.copy()
        reduces_left = self.reduces0.copy()
        map_dur = self.map_dur
        reduce_dur = self.reduce_dur
        pending = self.pending0.copy()
        dependents = self.dependents

        # Runnable heaps keyed by rank.  Pooled mode keeps one heap (both
        # phases draw from the same slot pool); split mode keeps map-phase
        # and reduce-phase eligibility apart so the min-rank pick only
        # considers jobs whose pool actually has a free slot.
        map_heap: List[int] = []
        reduce_heap: List[int] = []
        for r in self.root_ranks:
            if pooled or maps_left[r] > 0:
                map_heap.append(r)
            else:
                reduce_heap.append(r)
        heapify(map_heap)
        heapify(reduce_heap)

        events: List[Tuple[float, int, int, int]] = []
        seq = 0
        free_maps = cap
        free_reduces = reduce_cap  # unused when pooled
        batches: Optional[List[Tuple[float, int]]] = [] if collect_batches else None
        makespan = 0.0
        t = 0.0
        push = heappush
        pop = heappop

        while True:
            # Work-conserving assignment at instant ``t``.  All batches of
            # one instant are recorded as a single (t, count) entry: time
            # strictly increases between rounds (durations are positive),
            # so this is exactly the adjacent same-time merge
            # ``_batches_to_plan`` would perform anyway.
            made = 0
            if pooled:
                while free_maps > 0 and map_heap:
                    r = pop(map_heap)
                    m = maps_left[r]
                    if m > 0:
                        batch = m if m <= free_maps else free_maps
                        free_maps -= batch
                        maps_left[r] = m - batch
                        finish = t + map_dur[r]
                    else:
                        m = reduces_left[r]
                        batch = m if m <= free_maps else free_maps
                        free_maps -= batch
                        reduces_left[r] = m - batch
                        finish = t + reduce_dur[r]
                    made += batch
                    if m == batch:
                        # Phase exhausted: free the slots and re-activate
                        # (reduce phase or completion) in one fused event.
                        push(events, (finish, seq, _FREE_MAP_ADD, batch, r))
                    else:
                        push(events, (finish, seq, _FREE_MAP, batch))
                        push(map_heap, r)  # partial batch: pool is now dry
                    seq += 1
            else:
                while True:
                    take_map = free_maps > 0 and bool(map_heap)
                    take_reduce = free_reduces > 0 and bool(reduce_heap)
                    if take_map and take_reduce:
                        if map_heap[0] < reduce_heap[0]:
                            take_reduce = False
                        else:
                            take_map = False
                    if take_map:
                        r = pop(map_heap)
                        m = maps_left[r]
                        batch = m if m <= free_maps else free_maps
                        free_maps -= batch
                        maps_left[r] = m - batch
                        finish = t + map_dur[r]
                        made += batch
                        if m == batch:
                            push(events, (finish, seq, _FREE_MAP_ADD, batch, r))
                        else:
                            push(events, (finish, seq, _FREE_MAP, batch))
                            push(map_heap, r)
                        seq += 1
                    elif take_reduce:
                        r = pop(reduce_heap)
                        m = reduces_left[r]
                        batch = m if m <= free_reduces else free_reduces
                        free_reduces -= batch
                        reduces_left[r] = m - batch
                        finish = t + reduce_dur[r]
                        made += batch
                        if m == batch:
                            push(events, (finish, seq, _FREE_REDUCE_ADD, batch, r))
                        else:
                            push(events, (finish, seq, _FREE_REDUCE, batch))
                            push(reduce_heap, r)
                        seq += 1
                    else:
                        break
            if made and batches is not None:
                batches.append((t, made))
            if not events:
                break
            t = events[0][0]
            # Drain every event at this instant before assigning.
            while events:
                head = events[0]
                if head[0] != t:
                    break
                code = head[2]
                pop(events)
                if code == _FREE_MAP:
                    free_maps += head[3]
                    continue
                if code == _FREE_REDUCE:
                    free_reduces += head[3]
                    continue
                if code == _FREE_MAP_ADD:
                    free_maps += head[3]
                else:
                    free_reduces += head[3]
                value = head[4]
                if maps_left[value] == 0 and reduces_left[value] == 0:
                    # Last phase finished: record completion, unlock deps.
                    if t > makespan:
                        makespan = t
                    for dep in dependents[value]:
                        pending[dep] -= 1
                        if pending[dep] == 0:
                            if pooled or maps_left[dep] > 0:
                                push(map_heap, dep)
                            else:
                                push(reduce_heap, dep)
                else:
                    # Map phase done; reduce phase opens.
                    if pooled or maps_left[value] > 0:
                        push(map_heap, value)
                    else:
                        push(reduce_heap, value)

        if map_heap or reduce_heap:
            raise RuntimeError(
                "plan simulation stalled with active jobs and no events — "
                "this indicates a slot-accounting bug"
            )
        name_of = self.name_of
        unfinished = [
            name_of[r]
            for r in range(self.size)
            if name_of[r] is not None and (maps_left[r] or reduces_left[r])
        ]
        if unfinished:
            raise RuntimeError(f"plan simulation left jobs unscheduled: {unfinished}")
        return batches, makespan


def _simulate(
    workflow: Workflow,
    cap: int,
    job_order: Sequence[str],
    pooled: bool,
    reduce_cap: int = 0,
    collect_batches: bool = True,
) -> Tuple[Optional[List[Tuple[float, int]]], float]:
    """Run the Algorithm 1 simulation (one-shot entry point).

    Returns ``(batches, makespan)`` where each batch is ``(time, count)``;
    ``batches`` is ``None`` when ``collect_batches`` is False (the
    makespan-only fast path used by external makespan queries).  With
    ``pooled`` False, ``cap`` bounds map slots and ``reduce_cap`` reduce
    slots (the split-pool ablation).  Callers probing several caps over one
    workflow should build a :class:`_SimProblem` and call :meth:`run`.
    """
    if cap < 1:
        raise ValueError("resource cap must be >= 1")
    return _SimProblem(workflow, job_order).run(
        cap, pooled, reduce_cap=reduce_cap, collect_batches=collect_batches
    )


def _batches_to_plan(
    batches: List[Tuple[float, int]],
    makespan: float,
    job_order: Sequence[str],
    cap: int,
    total_tasks: int,
    feasible: bool,
) -> ProgressPlan:
    """Merge same-instant batches, accumulate, convert times to ttd."""
    merged: List[Tuple[float, int]] = []
    for time, count in batches:
        if count <= 0:
            continue
        if merged and merged[-1][0] == time:
            merged[-1] = (time, merged[-1][1] + count)
        else:
            merged.append((time, count))
    entries: List[ProgressEntry] = []
    cumulative = 0
    for time, count in merged:
        cumulative += count
        ttd = makespan - time
        if entries and entries[-1].ttd <= ttd:
            # Distinct batch times can collapse to one ttd in floating
            # point; keep a single entry with the stronger requirement.
            entries[-1] = ProgressEntry(ttd=entries[-1].ttd, cum_req=cumulative)
        else:
            entries.append(ProgressEntry(ttd=ttd, cum_req=cumulative))
    return ProgressPlan(
        entries=tuple(entries),
        job_order=tuple(job_order),
        resource_cap=cap,
        makespan=makespan,
        total_tasks=total_tasks,
        feasible=feasible,
    )


def generate_requirements(
    workflow: Workflow,
    cap: int,
    job_order: Optional[Sequence[str]] = None,
    feasible: bool = True,
    problem: Optional[_SimProblem] = None,
) -> ProgressPlan:
    """Algorithm 1: simulate ``workflow`` on ``cap`` pooled slots.

    Args:
        workflow: the workflow configuration ``W_i``.
        cap: the resource consumption cap ``n``.
        job_order: intra-workflow priority order (best first); defaults to
            the workflow's topological order.
        feasible: recorded on the plan (set by the cap search).
        problem: pre-built :class:`_SimProblem` for ``(workflow, order)``;
            callers planning many structurally identical workflows (the
            serve-tier batch fusion) pass one shared setup instead of
            paying the rank-index build per plan.

    Returns:
        The progress requirement plan ``F_i``.
    """
    order = tuple(job_order) if job_order is not None else workflow.topological_order()
    if problem is not None:
        if problem.order != order:
            raise ValueError("shared _SimProblem was built for a different job order")
        batches, makespan = problem.run(cap, pooled=True)
    else:
        batches, makespan = _simulate(workflow, cap, order, pooled=True)
    return _batches_to_plan(batches, makespan, order, cap, workflow.total_tasks, feasible)


def generate_requirements_split(
    workflow: Workflow,
    map_cap: int,
    reduce_cap: int,
    job_order: Optional[Sequence[str]] = None,
    feasible: bool = True,
    problem: Optional[_SimProblem] = None,
) -> ProgressPlan:
    """Split-pool ablation: separate map and reduce slot caps.

    The paper pools both slot kinds into one ``n``; this variant models
    them separately, which matches the real cluster more closely.  Compared
    in ``benchmarks/bench_ablation_split_pool.py``.  ``problem`` shares a
    pre-built setup exactly as in :func:`generate_requirements`.
    """
    if reduce_cap < 1:
        raise ValueError("reduce cap must be >= 1")
    order = tuple(job_order) if job_order is not None else workflow.topological_order()
    if problem is not None:
        if problem.order != order:
            raise ValueError("shared _SimProblem was built for a different job order")
        batches, makespan = problem.run(map_cap, pooled=False, reduce_cap=reduce_cap)
    else:
        batches, makespan = _simulate(workflow, map_cap, order, pooled=False, reduce_cap=reduce_cap)
    return _batches_to_plan(
        batches, makespan, order, map_cap + reduce_cap, workflow.total_tasks, feasible
    )


def simulate_makespan(workflow: Workflow, cap: int, job_order: Optional[Sequence[str]] = None) -> float:
    """Makespan of the Algorithm 1 simulation at ``cap`` slots (cap search
    subroutine).  Uses the no-batch fast path: nothing is materialised
    beyond the event queue."""
    order = tuple(job_order) if job_order is not None else workflow.topological_order()
    _batches, makespan = _simulate(workflow, cap, order, pooled=True, collect_batches=False)
    return makespan
