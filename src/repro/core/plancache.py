"""Recurrence-aware scheduling-plan cache (beyond the paper; DESIGN.md §6).

Algorithm 1 and the cap search are pure functions of the workflow's
*structure* — per-job task counts, durations and the prerequisite DAG —
plus the job priority order, the relative deadline ``D_i - S_i`` and the
system slot count.  Absolute submission time never enters the computation:
a plan is expressed in time-to-deadline.  Production workflows are
overwhelmingly periodic (``repro.workloads.recurrence``, paper Fig 12), so
the dated instances ``wf@0``, ``wf@1``, ... of a recurrent template all
map to the same fingerprint and can share one cached
``(CapSearchResult, ProgressPlan)`` pair instead of re-running the full
binary search per release.

Sharing is safe because :class:`~repro.core.progress.ProgressPlan` is
immutable; the master tracks per-workflow progress in
``WorkflowInProgress``, never in the plan.

The cache is a bounded LRU.  Hit/miss/eviction counts are kept on the
cache itself and exposed through :meth:`PlanCache.counter_table` — the
same duck-typed interface :class:`~repro.trace.DecisionTracer` offers — so
``MetricsCollector.aggregate_counters(cache)`` folds them into a run's
scheduler counters; attaching a tracer mirrors each event into its
``(plan_cache, ...)`` counters as well.
"""

from __future__ import annotations

import asyncio
import inspect
from collections import OrderedDict
from typing import Any, Callable, Dict, Iterable, Optional, Sequence, Tuple, Union

from repro.core.progress import ProgressPlan
from repro.trace import NULL_TRACER
from repro.workflow.model import Workflow

__all__ = ["PlanCache", "PlanCacheEntry"]

#: What one cache slot holds: the cap-search outcome (``None`` when the
#: planner ran without cap search) and the finished plan.
PlanCacheEntry = Tuple[Optional[Any], ProgressPlan]

_Key = Tuple[Any, ...]


class PlanCache:
    """Bounded LRU cache of ``(cap search result, ProgressPlan)`` entries.

    Args:
        capacity: maximum retained entries; least-recently-used entries are
            evicted beyond it.
        tracer: optional :class:`~repro.trace.DecisionTracer`; every
            hit/miss/eviction is mirrored into its ``plan_cache`` counters.
    """

    #: Scheduler-counter namespace used in ``counter_table``/tracer incrs.
    COUNTER_SCOPE = "plan_cache"

    def __init__(self, capacity: int = 256, tracer=NULL_TRACER) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = capacity
        self.tracer = tracer
        self._entries: "OrderedDict[_Key, PlanCacheEntry]" = OrderedDict()
        # Per-key in-flight guard for the async path: key -> future the
        # current builder resolves (with None, never an exception) once its
        # build attempt is over, successful or not.
        self._inflight: Dict[_Key, "asyncio.Future[None]"] = {}
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.coalesced = 0

    # -- keying -------------------------------------------------------------

    @staticmethod
    def fingerprint(
        workflow: Workflow,
        job_order: Sequence[str],
        total_slots: int,
        mode: Iterable[Any] = (),
    ) -> _Key:
        """The cache key for planning ``workflow`` on ``total_slots`` slots.

        Captures everything the planning pipeline reads — per-job structure
        in definition order, the priority order, the *relative* deadline,
        the slot count, and the planner configuration ``mode`` (pool shape,
        cap-search flag, ...) — and nothing it does not: neither the
        workflow name nor its absolute submit time / deadline, so recurrent
        instances of one template collide by construction.
        """
        structure = tuple(
            (
                job.name,
                job.num_maps,
                job.num_reduces,
                job.map_duration,
                job.reduce_duration,
                tuple(sorted(job.prerequisites)),
            )
            for job in workflow.jobs
        )
        return (
            structure,
            tuple(job_order),
            workflow.relative_deadline,
            total_slots,
            tuple(mode),
        )

    # -- lookup -------------------------------------------------------------

    def get_or_build(
        self,
        workflow: Workflow,
        job_order: Sequence[str],
        total_slots: int,
        mode: Iterable[Any],
        build: Callable[[], PlanCacheEntry],
    ) -> PlanCacheEntry:
        """Return the cached entry for this planning problem, or build it.

        ``build`` runs only on a miss; its result is stored before being
        returned, evicting the least-recently-used entry when full.
        """
        key = self.fingerprint(workflow, job_order, total_slots, mode)
        entry = self._entries.get(key)
        if entry is not None:
            self._entries.move_to_end(key)
            self.hits += 1
            self.tracer.incr(self.COUNTER_SCOPE, "hits")
            return entry
        # Build *before* touching counters or the table (DT303): if
        # ``build`` raises, the cache must look exactly as it did before
        # the lookup — no phantom miss, no dangling entry.
        entry = build()  # repro: calls[repro.core.client._plan_entry]
        self._commit(key, entry)
        return entry

    def lookup(  # repro: budget O(n)
        self,
        workflow: Workflow,
        job_order: Sequence[str],
        total_slots: int,
        mode: Iterable[Any] = (),
    ) -> Optional[PlanCacheEntry]:
        """Return the cached entry (counted as a hit) or ``None``.

        An absent key is *not* counted as a miss — miss accounting belongs
        to whoever performs the build (:meth:`get_or_build` or the serve
        tier's batch flush), so a lookup-then-build sequence records
        exactly one event per request.
        """
        key = self.fingerprint(workflow, job_order, total_slots, mode)
        entries = self._entries
        entry = entries.get(key)
        if entry is None:
            return None
        entries.move_to_end(key)
        self.hits += 1
        if self.tracer.enabled:
            self.tracer.incr(self.COUNTER_SCOPE, "hits")
        return entry

    def _commit(self, key: _Key, entry: PlanCacheEntry) -> None:  # repro: budget O(1)
        """Record a completed build: miss accounting, insert, LRU evict."""
        tracer = self.tracer
        entries = self._entries
        scope = self.COUNTER_SCOPE
        self.misses += 1
        if tracer.enabled:
            tracer.incr(scope, "misses")
        entries[key] = entry
        if len(entries) > self.capacity:
            entries.popitem(last=False)
            self.evictions += 1
            if tracer.enabled:
                tracer.incr(scope, "evictions")

    async def get_or_build_async(
        self,
        workflow: Workflow,
        job_order: Sequence[str],
        total_slots: int,
        mode: Iterable[Any],
        build: Callable[[], Any],
    ) -> Tuple[PlanCacheEntry, str]:
        """Async :meth:`get_or_build` safe under interleaved task access.

        :meth:`get_or_build` is a read-then-write sequence; two asyncio
        tasks missing on the same key with an awaiting ``build`` would both
        run the planner and the second would clobber the first.  This
        variant keeps a per-key in-flight guard: the first misser becomes
        the *builder*, later missers await its future and are served the
        committed entry without building (outcome ``"coalesced"``).  If the
        build raises, the guard is released, the exception propagates to
        the builder only, and exactly one waiter takes over as the next
        builder — the cache itself is untouched (the DT303 discipline of
        the sync path).

        ``build`` may return the entry directly or an awaitable of it.

        Returns:
            ``(entry, outcome)`` with outcome ``"hit"``, ``"miss"`` (this
            call built the entry) or ``"coalesced"`` (another task's build
            was awaited).
        """
        key = self.fingerprint(workflow, job_order, total_slots, mode)
        waited = False
        while True:
            entry = self._entries.get(key)
            if entry is not None:
                self._entries.move_to_end(key)
                if waited:
                    self.coalesced += 1
                    self.tracer.incr(self.COUNTER_SCOPE, "coalesced")
                    return entry, "coalesced"
                self.hits += 1
                self.tracer.incr(self.COUNTER_SCOPE, "hits")
                return entry, "hit"
            pending = self._inflight.get(key)
            if pending is None:
                break
            waited = True
            await pending
        guard: "asyncio.Future[None]" = asyncio.get_running_loop().create_future()
        self._inflight[key] = guard
        try:
            entry = build()  # repro: calls[repro.core.client._plan_entry]
            if inspect.isawaitable(entry):
                entry = await entry
        finally:
            # Release the guard before committing: the commit below runs
            # without awaiting, so waiters (which resume on a later loop
            # cycle) always observe the finished entry — or, when the
            # build raised, an empty slot one of them will rebuild.
            del self._inflight[key]
            guard.set_result(None)
        self._commit(key, entry)
        return entry, "miss"

    # -- introspection ------------------------------------------------------

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def hit_ratio(self) -> float:
        """Hits over lookups; 0.0 before the first lookup."""
        lookups = self.hits + self.misses
        return self.hits / lookups if lookups else 0.0

    def counter_table(self) -> Dict[str, Dict[str, Union[int, float]]]:
        """Stats in :meth:`repro.trace.DecisionTracer.counter_table` shape,
        so ``MetricsCollector.aggregate_counters`` accepts the cache
        directly."""
        return {
            self.COUNTER_SCOPE: {
                "coalesced": self.coalesced,
                "evictions": self.evictions,
                "hits": self.hits,
                "misses": self.misses,
            }
        }

    def clear(self) -> None:
        """Drop all entries and reset the stats (in-flight guards remain:
        a builder mid-flight commits into the freshly cleared table)."""
        self._entries.clear()
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.coalesced = 0
