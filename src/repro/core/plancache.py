"""Recurrence-aware scheduling-plan cache (beyond the paper; DESIGN.md §6).

Algorithm 1 and the cap search are pure functions of the workflow's
*structure* — per-job task counts, durations and the prerequisite DAG —
plus the job priority order, the relative deadline ``D_i - S_i`` and the
system slot count.  Absolute submission time never enters the computation:
a plan is expressed in time-to-deadline.  Production workflows are
overwhelmingly periodic (``repro.workloads.recurrence``, paper Fig 12), so
the dated instances ``wf@0``, ``wf@1``, ... of a recurrent template all
map to the same fingerprint and can share one cached
``(CapSearchResult, ProgressPlan)`` pair instead of re-running the full
binary search per release.

Sharing is safe because :class:`~repro.core.progress.ProgressPlan` is
immutable; the master tracks per-workflow progress in
``WorkflowInProgress``, never in the plan.

The cache is a bounded LRU.  Hit/miss/eviction counts are kept on the
cache itself and exposed through :meth:`PlanCache.counter_table` — the
same duck-typed interface :class:`~repro.trace.DecisionTracer` offers — so
``MetricsCollector.aggregate_counters(cache)`` folds them into a run's
scheduler counters; attaching a tracer mirrors each event into its
``(plan_cache, ...)`` counters as well.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Any, Callable, Dict, Iterable, Optional, Sequence, Tuple, Union

from repro.core.progress import ProgressPlan
from repro.trace import NULL_TRACER
from repro.workflow.model import Workflow

__all__ = ["PlanCache", "PlanCacheEntry"]

#: What one cache slot holds: the cap-search outcome (``None`` when the
#: planner ran without cap search) and the finished plan.
PlanCacheEntry = Tuple[Optional[Any], ProgressPlan]

_Key = Tuple[Any, ...]


class PlanCache:
    """Bounded LRU cache of ``(cap search result, ProgressPlan)`` entries.

    Args:
        capacity: maximum retained entries; least-recently-used entries are
            evicted beyond it.
        tracer: optional :class:`~repro.trace.DecisionTracer`; every
            hit/miss/eviction is mirrored into its ``plan_cache`` counters.
    """

    #: Scheduler-counter namespace used in ``counter_table``/tracer incrs.
    COUNTER_SCOPE = "plan_cache"

    def __init__(self, capacity: int = 256, tracer=NULL_TRACER) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = capacity
        self.tracer = tracer
        self._entries: "OrderedDict[_Key, PlanCacheEntry]" = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    # -- keying -------------------------------------------------------------

    @staticmethod
    def fingerprint(
        workflow: Workflow,
        job_order: Sequence[str],
        total_slots: int,
        mode: Iterable[Any] = (),
    ) -> _Key:
        """The cache key for planning ``workflow`` on ``total_slots`` slots.

        Captures everything the planning pipeline reads — per-job structure
        in definition order, the priority order, the *relative* deadline,
        the slot count, and the planner configuration ``mode`` (pool shape,
        cap-search flag, ...) — and nothing it does not: neither the
        workflow name nor its absolute submit time / deadline, so recurrent
        instances of one template collide by construction.
        """
        structure = tuple(
            (
                job.name,
                job.num_maps,
                job.num_reduces,
                job.map_duration,
                job.reduce_duration,
                tuple(sorted(job.prerequisites)),
            )
            for job in workflow.jobs
        )
        return (
            structure,
            tuple(job_order),
            workflow.relative_deadline,
            total_slots,
            tuple(mode),
        )

    # -- lookup -------------------------------------------------------------

    def get_or_build(
        self,
        workflow: Workflow,
        job_order: Sequence[str],
        total_slots: int,
        mode: Iterable[Any],
        build: Callable[[], PlanCacheEntry],
    ) -> PlanCacheEntry:
        """Return the cached entry for this planning problem, or build it.

        ``build`` runs only on a miss; its result is stored before being
        returned, evicting the least-recently-used entry when full.
        """
        key = self.fingerprint(workflow, job_order, total_slots, mode)
        entry = self._entries.get(key)
        if entry is not None:
            self._entries.move_to_end(key)
            self.hits += 1
            self.tracer.incr(self.COUNTER_SCOPE, "hits")
            return entry
        # Build *before* touching counters or the table (DT303): if
        # ``build`` raises, the cache must look exactly as it did before
        # the lookup — no phantom miss, no dangling entry.
        entry = build()  # repro: calls[repro.core.client._plan_entry]
        self.misses += 1
        self.tracer.incr(self.COUNTER_SCOPE, "misses")
        self._entries[key] = entry
        if len(self._entries) > self.capacity:
            self._entries.popitem(last=False)
            self.evictions += 1
            self.tracer.incr(self.COUNTER_SCOPE, "evictions")
        return entry

    # -- introspection ------------------------------------------------------

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def hit_ratio(self) -> float:
        """Hits over lookups; 0.0 before the first lookup."""
        lookups = self.hits + self.misses
        return self.hits / lookups if lookups else 0.0

    def counter_table(self) -> Dict[str, Dict[str, Union[int, float]]]:
        """Stats in :meth:`repro.trace.DecisionTracer.counter_table` shape,
        so ``MetricsCollector.aggregate_counters`` accepts the cache
        directly."""
        return {
            self.COUNTER_SCOPE: {
                "evictions": self.evictions,
                "hits": self.hits,
                "misses": self.misses,
            }
        }

    def clear(self) -> None:
        """Drop all entries and reset the stats."""
        self._entries.clear()
        self.hits = 0
        self.misses = 0
        self.evictions = 0
