"""The WOHA Workflow Scheduler: Algorithm 2 on the Double Skip List.

Runtime behaviour (paper §IV-B):

1. On every slot free-up the scheduler first walks the head of the **ct
   list**: workflows whose next progress-requirement change time has passed
   get their index ``W_h.i`` advanced, their next change time recomputed,
   and their priority updated to the current lag
   ``F_h[W_h.i - 1].req - rho_h`` — both list positions move.
2. It then serves the head of the **priority list**: the workflow with the
   largest lag that has a runnable task of the requested kind.  Within the
   workflow, the plan's job order picks the job (submitter tasks go first —
   they unlock everything else and cost one short map slot).
3. After an assignment, ``rho_h`` grows by one so the workflow's priority
   drops by one and it is repositioned — a head deletion plus an ordered
   insertion.

Workflows without a plan or deadline sort behind every planned workflow
(they have no progress requirement to fall behind of) and are served FIFO
among themselves.  Workflows whose plan is *infeasible* (the cap search
could not meet the deadline even with the whole cluster) are demoted the
same way: their plan's requirements are unattainable by construction, so
honouring its aggressive lag would let a hopeless workflow starve feasible
ones.  The plan's job order still guides intra-workflow picks.

With a :mod:`repro.trace` tracer attached, every ``select_task`` emits a
``decision`` event (chosen workflow, its lag, queue position, skipped
workflows, ct advances); tracing is strictly observational.

:class:`NaiveWohaScheduler` is the paper's strawman for Fig 13a: same
decisions, but every call recomputes every workflow's lag and re-sorts.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Dict, Iterable, List, Optional, Tuple

from repro.cluster.job import JobInProgress, SubmitterJob
from repro.cluster.tasks import Task, TaskKind
from repro.core.progress import ProgressPlan
from repro.schedulers.base import WorkflowScheduler
from repro.structures.avl import AvlTree
from repro.structures.base import OrderedMap
from repro.structures.dsl import DoubleSkipList
from repro.structures.naive import SortedListMap
from repro.structures.skiplist import DeterministicSkipList

if TYPE_CHECKING:  # pragma: no cover
    from repro.cluster.jobtracker import WorkflowInProgress

__all__ = ["WohaScheduler", "NaiveWohaScheduler", "QUEUE_BACKENDS"]

QUEUE_BACKENDS: Dict[str, Callable[[], OrderedMap]] = {
    "dsl": DeterministicSkipList,
    "bst": AvlTree,
    "list": SortedListMap,
}


class _WorkflowRecord:
    """Scheduler-private state for one workflow (the ``W_h`` fields of
    Algorithm 2)."""

    __slots__ = ("wip", "plan", "rank", "index", "rho_base", "deadline", "planned")

    def __init__(self, wip: "WorkflowInProgress", plan: Optional[ProgressPlan]):
        self.wip = wip
        self.plan = plan
        self.rank: Dict[str, int] = (
            {name: i for i, name in enumerate(plan.job_order)} if plan is not None else {}
        )
        self.index = 0  # W_h.i: next progress-requirement change entry
        # Progress already accounted when the current plan was installed.
        # 0 for submission-time plans; replanning (see
        # repro.core.replanning) rebases so the fresh plan's requirements
        # compare against progress made after the replan.
        self.rho_base = 0
        # Deadlines are immutable after submission; cache the property
        # chain's result.  ``planned`` is the has_plan predicate evaluated
        # once per plan install instead of once per priority read — the
        # per-decision hot path only pays a slot load.
        self.deadline = wip.deadline
        self.planned = (
            plan is not None
            and self.deadline is not None
            and len(plan) > 0
            and plan.feasible
        )

    @property
    def has_plan(self) -> bool:
        # Infeasible plans are demoted to best-effort: their requirements
        # cannot be met by construction, so following them would starve
        # feasible workflows (the flag must therefore survive plan
        # serialization — see ProgressPlan.to_bytes).  Maintained at
        # construction and plan install; see ``planned``.
        return self.planned

    @property
    def rho(self) -> int:
        """Progress against the *current* plan."""
        return self.wip.scheduled_tasks - self.rho_base

    def next_change_time(self) -> float:
        if not self.planned:
            return float("inf")
        return self.plan.change_time(self.deadline, self.index)

    def current_priority(self) -> float:
        """The lag ``F_h[W_h.i - 1].req - rho_h``.

        Unplanned workflows get -inf-like priority so planned workflows
        always outrank them; their FIFO tie-break is the item id.
        """
        if not self.planned:
            return float("-inf")
        return self.plan.requirement_before(self.index) - (
            self.wip.scheduled_tasks - self.rho_base
        )

    def install_plan(self, plan: ProgressPlan, now: float) -> None:
        """Swap in a fresh plan, rebasing progress accounting."""
        self.plan = plan
        self.rank = {name: i for i, name in enumerate(plan.job_order)}
        self.rho_base = self.wip.scheduled_tasks
        self.planned = self.deadline is not None and len(plan) > 0 and plan.feasible
        self.index = plan.first_index_after(self.deadline, now) if self.planned else 0


# repro: budget O(n)
def _pick_task_in_workflow(record: _WorkflowRecord, kind: TaskKind) -> Optional[Task]:
    """Pick the highest-priority runnable job inside the workflow.

    Submitter tasks go first on map slots; then the plan's job order (jobs
    absent from the plan sort last, FIFO).  The walk covers only the
    workflow's *active* (submitted, unfinished) jobs — completed jobs can
    never be picked, and the active dict preserves submission order, so the
    FIFO tie-break among unplanned jobs is unchanged."""
    wip = record.wip
    uses_map = kind is not TaskKind.REDUCE
    if uses_map:
        submitter = wip.submitter
        if submitter is not None and submitter.has_pending_maps:
            task = submitter.obtain_map()
            if task is not None:
                return task
    best: Optional[JobInProgress] = None
    best_rank = None
    rank_of = record.rank
    default_rank = len(rank_of)
    # Bounded by the job count of ONE workflow (paper's n per-workflow
    # topology size), not by the queue length n_w the budgets govern.
    if uses_map:
        for name, jip in wip._active_jobs.items():
            if not jip.has_pending_maps:
                continue
            rank = rank_of.get(name, default_rank)
            if best_rank is None or rank < best_rank:
                best, best_rank = jip, rank
        if best is None:
            return None
        return best.obtain_map()
    for name, jip in wip._active_jobs.items():
        if not jip.map_phase_done or not jip._pending_reduces:
            continue
        rank = rank_of.get(name, default_rank)
        if best_rank is None or rank < best_rank:
            best, best_rank = jip, rank
    if best is None:
        return None
    return best.obtain_reduce()


class WohaScheduler(WorkflowScheduler):
    """Progress-based workflow scheduling over a pluggable ordered queue.

    Args:
        queue_backend: ``"dsl"`` (deterministic skip lists — the paper's
            choice), ``"bst"`` (AVL trees) or ``"list"`` (sorted lists).
            All give identical scheduling decisions; they differ only in
            the cost profile measured by the Fig 13a bench.
    """

    name = "WOHA"

    def __init__(self, queue_backend: str = "dsl") -> None:
        super().__init__()
        try:
            factory = QUEUE_BACKENDS[queue_backend]
        except KeyError:
            raise ValueError(
                f"unknown queue backend {queue_backend!r}; pick from {sorted(QUEUE_BACKENDS)}"
            ) from None
        self.queue_backend = queue_backend
        self._queue = DoubleSkipList(map_factory=factory)
        self._records: Dict[str, _WorkflowRecord] = {}
        self.assign_calls = 0

    def attach_contracts(self, checker) -> None:
        """Check the DSL's cross-link consistency after every queue mutation."""
        super().attach_contracts(checker)
        self._queue.attach_contracts(checker)

    # -- lifecycle -----------------------------------------------------------

    def on_workflow_submitted(self, wip: "WorkflowInProgress", now: float) -> None:
        record = _WorkflowRecord(wip, wip.plan if isinstance(wip.plan, ProgressPlan) else None)
        if record.has_plan:
            # Skip entries that already fired (a workflow submitted after
            # deadline - makespan starts behind its plan).
            record.index = record.plan.first_index_after(wip.deadline, now)
        self._records[wip.name] = record
        self._queue.insert(
            item_id=wip.name,
            ct=record.next_change_time(),
            priority=record.current_priority(),
            payload=record,
        )

    def on_workflow_completed(self, wip: "WorkflowInProgress", now: float) -> None:
        if wip.name in self._queue:
            self._queue.remove(wip.name)
        self._records.pop(wip.name, None)

    # -- Algorithm 2 -----------------------------------------------------------

    # repro: budget O(log n)
    def _advance_ct_heads(self, now: float) -> int:
        """Lines 4-19: update every workflow whose requirement changed.

        Returns the number of head advances performed (traced as
        ``ct_advance`` events).
        """
        advanced = 0
        queue = self._queue
        # One peek per iteration plus one trailing peek; ``_ct`` is the
        # entry's slot behind the ``ct`` property (setter exists only to
        # keep the cached key coherent — reads don't need the dispatch).
        head = queue.head_by_ct()
        while head is not None and head._ct <= now:
            record: _WorkflowRecord = head.payload
            record.index = record.plan.first_index_after(record.deadline, now)
            queue.update_head_ct(record.next_change_time(), record.current_priority())
            advanced += 1
            if self.tracer.enabled:
                self.tracer.incr(self.name, "ct_advances")
                self.tracer.record(
                    "ct_advance",
                    now,
                    scheduler=self.name,
                    workflow=record.wip.name,
                    index=record.index,
                    lag=record.current_priority(),
                )
            head = queue.head_by_ct()
        return advanced

    # repro: budget O(log n)
    def select_task(self, kind: TaskKind, now: float) -> Optional[Task]:
        self.assign_calls += 1
        advanced = self._advance_ct_heads(now)
        tracing = self.tracer.enabled
        queue = self._queue
        if not tracing:
            # Untraced micro-kernel: the identical head-first walk and the
            # identical decisions, minus the enumerate/skipped-list
            # bookkeeping that exists only to populate decision events.
            # Head first without building the generator — the common case
            # is that the priority head has a runnable task.
            head = queue.head_by_priority()
            if head is None:
                return None
            # Per-workflow scan is bounded by the workflow's job count — the
            # same §IV-B work-conservation exception the traced path claims.
            task = _pick_task_in_workflow(head.payload, kind)  # repro: allow[DT203]
            if task is not None:
                return task
            first = True
            for entry in queue.iter_by_priority():  # repro: allow[DT203]
                if first:  # the head was already probed (and proved empty)
                    first = False
                    continue
                task = _pick_task_in_workflow(entry.payload, kind)  # repro: allow[DT203]
                if task is not None:
                    return task
            return None
        skipped: List[str] = []
        # Serve the largest lag first; skip workflows with nothing runnable
        # of this kind (work conservation).  The scan is O(1) on the common
        # path (the priority head is runnable); it only walks past a prefix
        # of workflows with no runnable task of this kind — the §IV-B
        # work-conservation exception to the O(log n_w) claim.
        for position, entry in enumerate(queue.iter_by_priority()):  # repro: allow[DT203]
            record: _WorkflowRecord = entry.payload
            task = _pick_task_in_workflow(record, kind)  # repro: allow[DT203]
            if task is not None:
                if tracing:
                    self.tracer.incr(self.name, "decisions")
                    self.tracer.record(
                        "decision",
                        now,
                        scheduler=self.name,
                        slot_kind=kind.value,
                        workflow=record.wip.name,
                        task=task.task_id,
                        lag=record.current_priority() if record.has_plan else None,
                        queue_len=len(self._queue),
                        position=position,
                        skipped=skipped,
                        ct_advances=advanced,
                    )
                return task
            if tracing:
                skipped.append(record.wip.name)
        if tracing:
            self.tracer.incr(self.name, "idle_decisions")
            self.tracer.record(
                "decision",
                now,
                scheduler=self.name,
                slot_kind=kind.value,
                workflow=None,
                task=None,
                lag=None,
                queue_len=len(self._queue),
                position=None,
                skipped=skipped,
                ct_advances=advanced,
            )
        return None

    def on_task_assigned(self, task: Task, now: float) -> None:
        """Lines 20-23: the served workflow's rho grew, so its lag shrank."""
        if task.kind is TaskKind.SUBMIT:
            return  # submitter tasks are not part of the plan's population
        wf_name = task.workflow_name
        if wf_name is None or wf_name not in self._queue:
            return
        record = self._records[wf_name]
        self._queue.update_priority(wf_name, record.current_priority())

    # -- introspection for tests/benches ---------------------------------------

    def queue_length(self) -> int:
        """Workflows currently queued (both DSL lists hold this many)."""
        return len(self._queue)

    def check_invariants(self) -> None:
        """Assert the queue's structural invariants (test hook)."""
        self._queue.check_invariants()


class NaiveWohaScheduler(WorkflowScheduler):
    """The strawman of Fig 13a: recompute every lag and re-sort per call.

    Produces the same assignments as :class:`WohaScheduler` (ties included)
    but costs O(n_w log n_w) on *every* AssignTask call instead of only on
    requirement changes.
    """

    name = "WOHA-naive"

    def __init__(self) -> None:
        super().__init__()
        self._records: Dict[str, _WorkflowRecord] = {}
        self.assign_calls = 0

    def on_workflow_submitted(self, wip: "WorkflowInProgress", now: float) -> None:
        self._records[wip.name] = _WorkflowRecord(
            wip, wip.plan if isinstance(wip.plan, ProgressPlan) else None
        )

    def on_workflow_completed(self, wip: "WorkflowInProgress", now: float) -> None:
        self._records.pop(wip.name, None)

    def _lag(self, record: _WorkflowRecord, now: float) -> float:
        if not record.has_plan:
            return float("-inf")
        ttd = record.wip.deadline - now
        return record.plan.requirement_at(ttd) - record.rho

    def select_task(self, kind: TaskKind, now: float) -> Optional[Task]:
        self.assign_calls += 1
        tracing = self.tracer.enabled
        skipped: Optional[List[str]] = [] if tracing else None
        ordered = sorted(
            self._records.values(),
            key=lambda r: (-self._lag(r, now), r.wip.name),
        )
        for position, record in enumerate(ordered):
            task = _pick_task_in_workflow(record, kind)
            if task is not None:
                if tracing:
                    lag = self._lag(record, now)
                    self.tracer.incr(self.name, "decisions")
                    self.tracer.record(
                        "decision",
                        now,
                        scheduler=self.name,
                        slot_kind=kind.value,
                        workflow=record.wip.name,
                        task=task.task_id,
                        lag=lag if lag != float("-inf") else None,
                        queue_len=len(ordered),
                        position=position,
                        skipped=skipped,
                        ct_advances=0,
                    )
                return task
            if tracing:
                skipped.append(record.wip.name)
        if tracing:
            self.tracer.incr(self.name, "idle_decisions")
            self.tracer.record(
                "decision",
                now,
                scheduler=self.name,
                slot_kind=kind.value,
                workflow=None,
                task=None,
                lag=None,
                queue_len=len(ordered),
                position=None,
                skipped=skipped,
                ct_advances=0,
            )
        return None
