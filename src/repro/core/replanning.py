"""Mid-flight replanning: a WOHA extension the paper leaves as future work.

Submission-time plans go stale: estimation error, contention and failures
can push a workflow so far behind its plan that the plan's remaining steps
no longer describe a feasible trajectory.  The paper closes §VI-C noting
"an interesting future direction will be to study what is the best we can
do under WOHA framework"; this module implements the obvious candidate —
when a workflow's lag crosses a threshold, regenerate its plan from the
*remaining* work and the *remaining* time, exactly as a client would do
for a freshly submitted workflow of that shape.

Residual-workflow construction is deliberately the same rough-estimation
philosophy as Algorithm 1 itself:

* finished jobs disappear;
* unscheduled tasks of submitted jobs carry over with their counts;
* in-flight tasks (scheduled, unfinished) are treated as done — they will
  finish without further scheduling decisions;
* dependency edges survive only between jobs that both still have
  schedulable work.

:class:`ReplanningWohaScheduler` drops in anywhere :class:`WohaScheduler`
does; the replan itself would run client-side in a real deployment (the
master only swaps the stored plan), so master-side cost stays at the swap.
A regenerated plan that is infeasible even at full cluster size is
declined: feasibility survives installation, so swapping it in would
demote the workflow to best-effort priority — a strictly worse outcome
than keeping the stale plan's scheduling pressure.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List, Optional, Union

from repro.cluster.tasks import Task, TaskKind
from repro.core.capsearch import capped_plan
from repro.core.priorities import PRIORITIZERS, Prioritizer
from repro.core.scheduler import WohaScheduler, _WorkflowRecord
from repro.workflow.model import WJob, Workflow

if TYPE_CHECKING:  # pragma: no cover
    from repro.cluster.jobtracker import WorkflowInProgress

__all__ = ["residual_workflow", "ReplanningWohaScheduler"]


def residual_workflow(wip: "WorkflowInProgress") -> Optional[Workflow]:
    """The unscheduled remainder of a running workflow, or ``None`` when
    every task has already been handed out."""
    definition = wip.definition
    remaining: dict = {}
    for wjob in definition.jobs:
        if wjob.name in wip.completed:
            continue
        jip = wip.jobs.get(wjob.name)
        if jip is None:
            maps, reduces = wjob.num_maps, wjob.num_reduces
        else:
            maps = wjob.num_maps - jip.maps_scheduled
            reduces = wjob.num_reduces - jip.reduces_scheduled
        if maps <= 0 and reduces <= 0:
            continue
        remaining[wjob.name] = (maps, reduces)
    if not remaining:
        return None
    jobs: List[WJob] = []
    for wjob in definition.jobs:
        if wjob.name not in remaining:
            continue
        maps, reduces = remaining[wjob.name]
        jobs.append(
            WJob(
                name=wjob.name,
                num_maps=maps,
                num_reduces=reduces,
                map_duration=wjob.map_duration if maps else 0.0,
                reduce_duration=wjob.reduce_duration if reduces else 0.0,
                # Iterating the prerequisites frozenset is safe here: the
                # consumer is another frozenset, so no ordering escapes.
                prerequisites=frozenset(p for p in wjob.prerequisites if p in remaining),
            )
        )
    return Workflow(f"{definition.name}#residual", jobs, submit_time=0.0, deadline=None)


class ReplanningWohaScheduler(WohaScheduler):
    """WOHA's progress scheduler with lag-triggered replanning.

    Args:
        queue_backend: as for :class:`WohaScheduler`.
        prioritizer: intra-workflow order used for regenerated plans.
        lag_fraction: replan once a workflow's lag exceeds this fraction of
            its total task count (and ``min_lag`` tasks).
        min_lag: absolute lag floor before replanning triggers.
        cooldown: minimum simulated seconds between replans of the same
            workflow.
    """

    name = "WOHA-replan"

    def __init__(
        self,
        queue_backend: str = "dsl",
        prioritizer: Union[str, Prioritizer] = "lpf",
        lag_fraction: float = 0.15,
        min_lag: int = 10,
        cooldown: float = 60.0,
    ) -> None:
        super().__init__(queue_backend=queue_backend)
        self.prioritizer = PRIORITIZERS[prioritizer] if isinstance(prioritizer, str) else prioritizer
        if not (0.0 < lag_fraction <= 1.0):
            raise ValueError("lag_fraction must be in (0, 1]")
        self.lag_fraction = lag_fraction
        self.min_lag = min_lag
        self.cooldown = cooldown
        self.replans = 0
        self._last_replan: dict = {}

    def _threshold(self, record: _WorkflowRecord) -> float:
        return max(self.min_lag, self.lag_fraction * record.wip.total_tasks)

    def _maybe_replan(self, now: float) -> None:
        head = self._queue.head_by_priority()
        if head is None:
            return
        record: _WorkflowRecord = head.payload
        if not record.has_plan:
            return
        lag = record.current_priority()
        if lag < self._threshold(record):
            return
        name = record.wip.name
        if now - self._last_replan.get(name, float("-inf")) < self.cooldown:
            return
        remaining_time = record.wip.deadline - now
        residual = residual_workflow(record.wip)
        if residual is None or remaining_time <= 0:
            self._last_replan[name] = now
            return
        # What a client would compute for this shape with this much time.
        total_slots = self.jobtracker.total_slots if self.jobtracker is not None else 1
        plan = capped_plan(
            residual,
            max_slots=max(1, total_slots),
            job_order=self.prioritizer(residual),  # repro: calls[repro.core.priorities.hlf_order, repro.core.priorities.lpf_order, repro.core.priorities.mpf_order]
            relative_deadline=remaining_time,
        )
        if not plan.feasible:
            # Even the whole cluster cannot finish the remainder in time.
            # Installing this plan would demote the workflow to best-effort
            # (infeasible plans carry -inf lag priority), guaranteeing it
            # misses by more than if it keeps pushing on its stale plan —
            # so keep the stale plan's scheduling pressure.  The cooldown
            # stamp still spaces out re-evaluations.
            self._last_replan[name] = now
            return
        record.install_plan(plan, now)
        # All may-raise work (residual extraction, planning, install) is
        # done; commit the scheduler-side bookkeeping as one unit (DT303).
        self._last_replan[name] = now
        self.replans += 1
        # Reposition under the new keys.
        self._queue.remove(name)
        self._queue.insert(
            item_id=name,
            ct=record.next_change_time(),
            priority=record.current_priority(),
            payload=record,
        )
        if self.jobtracker is not None:
            # A plan install is a quiescence wake condition: parked
            # heartbeat timers must re-check the scheduler (DESIGN.md §10).
            self.jobtracker.notify_plan_installed()

    def select_task(self, kind: TaskKind, now: float) -> Optional[Task]:
        self._advance_ct_heads(now)
        self._maybe_replan(now)
        return super().select_task(kind, now)
