"""WOHA's contribution: progress-based deadline-aware workflow scheduling.

* :mod:`repro.core.progress` — the progress-requirement plan ``F_i``;
* :mod:`repro.core.plangen` — Algorithm 1 (client-side plan generation);
* :mod:`repro.core.capsearch` — the resource-cap binary search (§IV-A);
* :mod:`repro.core.plancache` — recurrence-aware plan cache (beyond the paper);
* :mod:`repro.core.priorities` — HLF / LPF / MPF intra-workflow orders;
* :mod:`repro.core.scheduler` — Algorithm 2 on the Double Skip List;
* :mod:`repro.core.client` — the WOHA client (validate → plan → submit).
"""

from repro.core.progress import ProgressEntry, ProgressPlan
from repro.core.plangen import generate_requirements, simulate_makespan
from repro.core.capsearch import find_min_cap, CapSearchResult
from repro.core.plancache import PlanCache
from repro.core.priorities import hlf_order, lpf_order, mpf_order, PRIORITIZERS
from repro.core.scheduler import WohaScheduler, NaiveWohaScheduler
from repro.core.client import WohaClient, make_planner

__all__ = [
    "ProgressEntry",
    "ProgressPlan",
    "generate_requirements",
    "simulate_makespan",
    "find_min_cap",
    "CapSearchResult",
    "PlanCache",
    "hlf_order",
    "lpf_order",
    "mpf_order",
    "PRIORITIZERS",
    "WohaScheduler",
    "NaiveWohaScheduler",
    "WohaClient",
    "make_planner",
]
