"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``plan`` — the WOHA client's view: parse a workflow XML, run the cap
  search and Algorithm 1, print the plan (the ``hadoop dag`` analogue,
  minus the submission).
* ``simulate`` — run workflows (XML files and/or a JSON trace) on a
  simulated cluster under a chosen scheduler and print the evaluation
  metrics.
* ``trace`` — generate the Yahoo!-like workflow set to a JSON file for
  later replay.
* ``trace-decisions`` — run a scenario with decision tracing on and dump
  the scheduler's decision log as JSONL (optionally explaining one
  workflow's deadline miss from it).
* ``profile`` — cProfile one deterministic scenario
  (:mod:`repro.experiments.profiling`) and print the top-N hot functions
  with per-event costs; the workflow behind the per-event micro-kernel.
* ``sweep`` — run a sharded experiment grid
  (:mod:`repro.experiments.runner`): scenarios x schedulers x seeds,
  optionally fanned over worker processes, with per-cell and merged
  metrics printed and the deterministic grid payload written as JSON.
* ``serve`` — run the multi-tenant planning/admission HTTP service
  (:mod:`repro.serve`): submit workflows, fetch wire-format plans, check
  deadline admission, stream the decision trace.
* ``serve-bench`` — closed-loop load generator against an in-process
  service (:mod:`repro.serve.loadgen`): p50/p99/p999 plan latency and
  throughput across request mixes × batching on/off × concurrency.
* ``lint`` — run the determinism lint (:mod:`repro.analysis`) over source
  trees; exits 1 on violations or a stale baseline, 2 on usage errors.
  ``--interproc`` adds the whole-program taint/budget pass (DT201-DT204);
  ``--diff REF`` restricts reporting to files changed versus a git ref.
* ``callgraph`` — build the interprocedural call graph and export it as
  DOT or JSON for inspection.

Scenario subcommands accept ``--contracts`` to enable the runtime
invariant checks of :mod:`repro.analysis.contracts` during the run.
"""

from __future__ import annotations

import argparse
import json
import subprocess
import sys
from pathlib import Path
from typing import List, Optional, Sequence, Set

import repro
from repro.analysis import RULES, LintError, lint_paths, module_key
from repro.cluster.config import ClusterConfig
from repro.cluster.simulation import ClusterSimulation
from repro.core.client import make_planner
from repro.core.scheduler import NaiveWohaScheduler, WohaScheduler
from repro.experiments.runner import ExperimentCell, run_grid
from repro.experiments.scenarios import SCENARIOS as SWEEP_SCENARIOS
from repro.metrics.postmortem import explain_miss
from repro.metrics.report import format_table
from repro.schedulers.edf import EdfScheduler
from repro.schedulers.fair import FairScheduler
from repro.schedulers.fifo import FifoScheduler
from repro.workflow.model import Workflow
from repro.workflow.xmlconfig import parse_workflow_xml
from repro.workloads.io import load_workflows, save_workflows
from repro.workloads.yahoo import YahooTraceConfig, generate_yahoo_workflows

__all__ = ["main", "build_parser"]

SCHEDULERS = ("fifo", "fair", "edf", "woha-hlf", "woha-lpf", "woha-mpf")


def _add_scenario_args(parser: argparse.ArgumentParser) -> None:
    """Arguments shared by every subcommand that runs a simulation."""
    parser.add_argument("inputs", nargs="*", help="workflow XML files")
    parser.add_argument("--trace", help="JSON workflow-set file (repro trace command output)")
    parser.add_argument("--scheduler", choices=SCHEDULERS, default="woha-lpf")
    parser.add_argument("--nodes", type=int, default=32)
    parser.add_argument("--map-slots", type=int, default=2, help="map slots per node")
    parser.add_argument("--reduce-slots", type=int, default=1, help="reduce slots per node")
    parser.add_argument("--heartbeat", type=float, default=0.0,
                        help="heartbeat interval in seconds; 0 = event-driven (default)")
    parser.add_argument("--pool", choices=("pooled", "split"), default="pooled")
    parser.add_argument("--contracts", action="store_true",
                        help="enable runtime invariant checks (repro.analysis.contracts)")


def _load_scenario(args: argparse.Namespace) -> List[Workflow]:
    """Collect the scenario's workflows from XML files and/or a JSON set."""
    workflows: List[Workflow] = []
    for path in args.inputs:
        with open(path) as fh:
            workflows.append(parse_workflow_xml(fh.read()))
    if args.trace:
        workflows.extend(load_workflows(args.trace))
    return workflows


def _build_simulation(args: argparse.Namespace, trace=False) -> ClusterSimulation:
    """Construct the ClusterSimulation a scenario subcommand describes."""
    heartbeat = args.heartbeat if args.heartbeat > 0 else float("inf")
    config = ClusterConfig(
        num_nodes=args.nodes,
        map_slots_per_node=args.map_slots,
        reduce_slots_per_node=args.reduce_slots,
        heartbeat_interval=heartbeat,
    )
    scheduler, mode, planner = _make_scheduler(args.scheduler, args.pool)
    return ClusterSimulation(
        config, scheduler, submission=mode, planner=planner, trace=trace,
        contracts=getattr(args, "contracts", False),
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="WOHA reproduction: deadline-aware Map-Reduce workflow scheduling",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    plan = sub.add_parser("plan", help="generate a workflow's scheduling plan (client side)")
    plan.add_argument("workflow_xml", help="WOHA workflow configuration file")
    plan.add_argument("--slots", type=int, default=240, help="system slot count n (default 240)")
    plan.add_argument("--prioritizer", choices=("hlf", "lpf", "mpf"), default="lpf")
    plan.add_argument("--no-cap-search", action="store_true", help="plan at the full slot count")
    plan.add_argument(
        "--pool", choices=("pooled", "split"), default="pooled",
        help="pooled = the paper's Algorithm 1; split = map/reduce-aware ablation",
    )
    plan.add_argument("--entries", type=int, default=10, help="how many plan steps to print")

    simulate = sub.add_parser("simulate", help="run workflows on a simulated cluster")
    _add_scenario_args(simulate)

    decisions = sub.add_parser(
        "trace-decisions",
        help="replay a scenario with decision tracing and dump the log as JSONL",
    )
    _add_scenario_args(decisions)
    decisions.add_argument("--out", help="JSONL output path (default: stdout)")
    decisions.add_argument("--ring", type=int, default=0,
                           help="ring-buffer capacity; 0 = keep every event (default)")
    decisions.add_argument("--explain", metavar="WORKFLOW",
                           help="attribute WORKFLOW's deadline miss from the trace")
    decisions.add_argument("--counters", action="store_true",
                           help="print the per-scheduler decision counters")

    serve = sub.add_parser(
        "serve", help="run the multi-tenant planning/admission HTTP service"
    )
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=8080,
                       help="bind port; 0 lets the OS pick (printed on startup)")
    serve.add_argument("--slots", type=int, default=200,
                       help="system slot count n the plans are searched against")
    serve.add_argument("--prioritizer", choices=("hlf", "lpf", "mpf"), default="lpf")
    serve.add_argument("--no-cap-search", action="store_true",
                       help="plan at the full slot count (Fig 2 ablation)")
    serve.add_argument("--pool", choices=("pooled", "split"), default="pooled")
    serve.add_argument("--cache-capacity", type=int, default=1024,
                       help="shared plan-cache entries (LRU beyond this)")
    serve.add_argument("--no-batching", action="store_true",
                       help="disable micro-batch fusion; misses build individually")
    serve.add_argument("--window", type=float, default=0.002,
                       help="micro-batch window in seconds (default 2ms)")

    serve_bench = sub.add_parser(
        "serve-bench",
        help="closed-loop latency/throughput bench against the planning service",
    )
    serve_bench.add_argument("--concurrency", type=int, action="append",
                             help="closed-loop client count; repeatable "
                                  "(default: 2, 8, 16)")
    serve_bench.add_argument("--requests", type=int, default=25,
                             help="requests per client per cell (default 25)")
    serve_bench.add_argument("--mix", action="append", choices=("recurrent", "cold"),
                             help="request mix(es) to run; repeatable (default: both)")
    serve_bench.add_argument("--scenario", choices=sorted(SWEEP_SCENARIOS), default="serve",
                             help="workload template source (default: serve)")
    serve_bench.add_argument("--seed", type=int, default=7)
    serve_bench.add_argument("--scale", type=float, default=0.5,
                             help="template-count scale factor")
    serve_bench.add_argument("--slots", type=int, default=200)
    serve_bench.add_argument("--window", type=float, default=0.002)
    serve_bench.add_argument("--json", dest="json_out",
                             help="write the BENCH payload to this path")

    lint = sub.add_parser("lint", help="run the determinism lint over source trees")
    lint.add_argument("paths", nargs="*",
                      help="files or directories to lint (default: the installed repro package)")
    lint.add_argument("--baseline", help="known-violation budget file (module:RULE:count lines)")
    lint.add_argument("--list-rules", action="store_true", help="print the rule catalog and exit")
    lint.add_argument("--verbose", action="store_true",
                      help="also list suppressed and baselined violations")
    lint.add_argument("--interproc", action="store_true",
                      help="also run the whole-program taint/budget/dataflow/"
                           "perf passes (DT201-DT204, DT301-DT305, DT401-DT405)")
    lint.add_argument("--incremental", action="store_true",
                      help="reuse content-hashed summaries from the lint cache; "
                           "an unchanged tree replays the previous report, a "
                           "changed one re-summarizes only the changed modules")
    lint.add_argument("--cache-dir", metavar="DIR",
                      help="cache location for --incremental "
                           "(default: .repro-lint-cache)")
    lint.add_argument("--format", choices=("text", "json"), default="text",
                      help="report format; json emits stable sort-keyed records "
                           "for CI and --diff consumers (default: text)")
    lint.add_argument("--diff", metavar="REF",
                      help="report only files changed versus the given git ref "
                           "(the whole tree is still parsed; falls back to a "
                           "full report when git is unavailable)")

    callgraph = sub.add_parser(
        "callgraph", help="build the interprocedural call graph and export it"
    )
    callgraph.add_argument("paths", nargs="*",
                           help="files or directories to analyze "
                                "(default: the installed repro package)")
    callgraph.add_argument("--format", choices=("dot", "json"), default="dot",
                           help="output format (default: dot)")
    callgraph.add_argument("--out", help="output path (default: stdout)")

    trace = sub.add_parser("trace", help="generate the Yahoo!-like workflow set")
    trace.add_argument("--out", required=True, help="output JSON path")
    trace.add_argument("--workflows", type=int, default=61)
    trace.add_argument("--jobs", type=int, default=180)
    trace.add_argument("--single-job", type=int, default=15)
    trace.add_argument("--seed", type=int, default=2014)
    trace.add_argument("--task-scale", type=float, default=0.8)
    trace.add_argument("--drop-single-job", action="store_true",
                       help="remove single-job workflows, as the paper's Fig 8-10 do")

    profile = sub.add_parser(
        "profile",
        help="cProfile one deterministic scenario and print the hot functions",
    )
    profile.add_argument("--scenario", choices=sorted(SWEEP_SCENARIOS), default="yahoo",
                         help="scenario to profile (default: yahoo)")
    profile.add_argument("--scheduler", choices=SCHEDULERS, default="woha-lpf")
    profile.add_argument("--seed", type=int, default=0)
    profile.add_argument("--scale", type=float, default=0.25,
                         help="workload scale factor (1.0 = the bench-tier size)")
    profile.add_argument("--nodes", type=int, default=8)
    profile.add_argument("--heartbeat", type=float, default=3.0,
                         help="heartbeat interval in seconds; 0 = event-driven")
    profile.add_argument("--reference", action="store_true",
                         help="profile the reference path (fast path off)")
    profile.add_argument("--top", type=int, default=15,
                         help="how many functions to print (default 15)")
    profile.add_argument("--sort", choices=("cumulative", "tottime"), default="cumulative")

    sweep = sub.add_parser("sweep", help="run a sharded experiment grid")
    sweep.add_argument("--scenario", action="append", choices=sorted(SWEEP_SCENARIOS),
                       help="scenario(s) to include; repeatable (default: all)")
    sweep.add_argument("--scheduler", dest="schedulers", action="append",
                       choices=SCHEDULERS,
                       help="scheduler(s) to include; repeatable "
                            "(default: fifo and woha-lpf)")
    sweep.add_argument("--seeds", type=int, default=1,
                       help="replications per (scenario, scheduler): grid seeds 0..N-1")
    sweep.add_argument("--nodes", type=int, default=8, help="TaskTrackers per cell")
    sweep.add_argument("--scale", type=float, default=0.25,
                       help="workload scale factor (1.0 = the bench-tier size)")
    sweep.add_argument("--workers", type=int, default=0,
                       help="worker processes; 0 = run inline (default)")
    sweep.add_argument("--batched", action="store_true",
                       help="enable the batched-assignment fast path")
    sweep.add_argument("--json", dest="json_out",
                       help="write the deterministic grid payload to this path")

    return parser


def _make_scheduler(name: str, pool: str):
    """Resolve a scheduler name to (scheduler, submission mode, planner)."""
    if name == "fifo":
        return FifoScheduler(), "oozie", None
    if name == "fair":
        return FairScheduler(), "oozie", None
    if name == "edf":
        return EdfScheduler(), "oozie", None
    prioritizer = name.split("-", 1)[1]
    return WohaScheduler(), "woha", make_planner(prioritizer, pool=pool)


def _cmd_plan(args: argparse.Namespace) -> int:
    with open(args.workflow_xml) as fh:
        workflow = parse_workflow_xml(fh.read())
    planner = make_planner(args.prioritizer, cap_search=not args.no_cap_search, pool=args.pool)
    plan = planner(workflow, args.slots)
    print(f"workflow      : {workflow.name} ({len(workflow)} jobs, {workflow.total_tasks} tasks)")
    deadline = workflow.relative_deadline
    print(f"deadline      : {'best effort' if deadline is None else f'{deadline:g} s relative'}")
    print(f"resource cap  : {plan.resource_cap} of {args.slots} slots ({args.pool})")
    print(f"sim makespan  : {plan.makespan:g} s (feasible: {plan.feasible})")
    print(f"plan size     : {plan.size_bytes} bytes, {len(plan)} steps")
    print(f"job order     : {' > '.join(plan.job_order)}")
    shown = plan.entries[: args.entries]
    print(format_table(
        ["ttd (s)", "tasks required"],
        [[e.ttd, e.cum_req] for e in shown],
        title=f"first {len(shown)} progress requirements",
        float_fmt="{:.1f}",
    ))
    return 0


def _cmd_simulate(args: argparse.Namespace) -> int:
    workflows = _load_scenario(args)
    if not workflows:
        print("no workflows given (pass XML files and/or --trace)", file=sys.stderr)
        return 2
    sim = _build_simulation(args)
    sim.add_workflows(workflows)
    result = sim.run()
    rows = [
        [s.name, s.submit_time, s.completion_time, s.workspan,
         "-" if s.deadline is None else f"{s.deadline:g}",
         "yes" if s.met_deadline else f"late {s.tardiness:g}s"]
        for s in sorted(result.stats.values(), key=lambda s: s.submit_time)
    ]
    print(format_table(
        ["workflow", "submit", "finish", "workspan", "deadline", "met"],
        rows,
        title=f"{args.scheduler} on {sim.config.total_map_slots}m-{sim.config.total_reduce_slots}r",
        float_fmt="{:.1f}",
    ))
    print(
        f"\nmiss ratio {result.miss_ratio:.3f} | max tardiness {result.max_tardiness:.1f}s | "
        f"total tardiness {result.total_tardiness:.1f}s | utilization {result.utilization:.2f}"
    )
    if result.contracts is not None:
        print(f"contracts: {result.contracts.counters['assertions']} assertions evaluated")
    return 0


def _changed_module_keys(ref: str) -> Optional[Set[str]]:
    """Module keys of files changed versus ``ref``, or ``None`` when git
    is unavailable (caller falls back to a full-tree report)."""
    try:
        proc = subprocess.run(
            ["git", "diff", "--name-only", ref, "--", "*.py"],
            capture_output=True, text=True, timeout=30,
        )
    except (OSError, subprocess.TimeoutExpired):
        return None
    if proc.returncode != 0:
        print(f"lint: git diff {ref!r} failed ({proc.stderr.strip()}); "
              "reporting the full tree", file=sys.stderr)
        return None
    return {module_key(line) for line in proc.stdout.splitlines() if line.strip()}


def _cmd_lint(args: argparse.Namespace) -> int:
    if args.list_rules:
        for rule_id, description in sorted(RULES.items()):
            print(f"{rule_id}  {description}")
        return 0
    paths = args.paths or [str(Path(repro.__file__).parent)]
    only_keys: Optional[Set[str]] = None
    if args.diff:
        only_keys = _changed_module_keys(args.diff)
        if only_keys is not None and not only_keys:
            print(f"lint: no Python files changed versus {args.diff}")
            return 0
    try:
        report = lint_paths(
            paths, baseline_path=args.baseline,
            interproc=args.interproc, only_keys=only_keys,
            incremental=args.incremental, cache_dir=args.cache_dir,
        )
    except (LintError, OSError) as exc:
        print(f"lint: {exc}", file=sys.stderr)
        return 2
    if args.format == "json":
        payload = report.to_json_payload(verbose=args.verbose)
        print(json.dumps(payload, indent=2, sort_keys=True))
    else:
        output = report.render(verbose=args.verbose)
        if output:
            print(output)
    # A stale baseline also fails: entries must be deleted as code gets
    # fixed, so the budget only ever shrinks.
    return 0 if report.clean and not report.stale_baseline else 1


def _cmd_callgraph(args: argparse.Namespace) -> int:
    from repro.analysis.callgraph import build_call_graph_from_paths

    paths = args.paths or [str(Path(repro.__file__).parent)]
    try:
        graph = build_call_graph_from_paths(paths)
    except (SyntaxError, OSError) as exc:
        print(f"callgraph: {exc}", file=sys.stderr)
        return 2
    if args.format == "dot":
        rendered = graph.to_dot()
    else:
        rendered = json.dumps(graph.to_json(), indent=2, sort_keys=True) + "\n"
    if args.out:
        with open(args.out, "w") as fh:
            fh.write(rendered)
        print(
            f"wrote {len(graph.functions)} functions / {len(set(graph.edges))} edges "
            f"to {args.out}", file=sys.stderr,
        )
    else:
        sys.stdout.write(rendered)
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    config = YahooTraceConfig(
        num_workflows=args.workflows,
        total_jobs=args.jobs,
        num_single_job=args.single_job,
        seed=args.seed,
        task_scale=args.task_scale,
        drop_single_job=args.drop_single_job,
    )
    workflows = generate_yahoo_workflows(config)
    save_workflows(args.out, workflows)
    print(
        f"wrote {len(workflows)} workflows / {sum(len(w) for w in workflows)} jobs / "
        f"{sum(w.total_tasks for w in workflows)} tasks to {args.out}"
    )
    return 0


def _cmd_trace_decisions(args: argparse.Namespace) -> int:
    workflows = _load_scenario(args)
    if not workflows:
        print("no workflows given (pass XML files and/or --trace)", file=sys.stderr)
        return 2
    if args.ring < 0:
        print(f"--ring must be >= 0, got {args.ring}", file=sys.stderr)
        return 2
    capacity = args.ring if args.ring > 0 else True
    sim = _build_simulation(args, trace=capacity)
    sim.add_workflows(workflows)
    result = sim.run()
    tracer = result.tracer
    if args.out:
        with open(args.out, "w") as fh:
            written = tracer.to_jsonl(fh)
        print(f"wrote {written} events to {args.out}"
              + (f" ({tracer.dropped} dropped by the ring)" if tracer.dropped else ""),
              file=sys.stderr)
    else:
        sys.stdout.write(tracer.dumps_jsonl())
    if args.counters:
        for scheduler, counters in sorted(result.metrics.scheduler_counters.items()):
            print(f"\ncounters [{scheduler}]:", file=sys.stderr)
            for name, value in sorted(counters.items()):
                print(f"  {name:22s} {value:g}", file=sys.stderr)
    if args.explain:
        if args.explain not in result.stats:
            print(f"unknown workflow {args.explain!r}", file=sys.stderr)
            return 2
        print(file=sys.stderr)
        print(explain_miss(tracer, args.explain).summary(), file=sys.stderr)
    return 0


def _cmd_profile(args: argparse.Namespace) -> int:
    from repro.experiments.profiling import profile_scenario

    if args.top <= 0:
        print(f"--top must be positive, got {args.top}", file=sys.stderr)
        return 2
    report = profile_scenario(
        args.scenario,
        scheduler=args.scheduler,
        seed=args.seed,
        scale=args.scale,
        nodes=args.nodes,
        heartbeat=args.heartbeat,
        fast=not args.reference,
        top=args.top,
        sort=args.sort,
    )
    print(report.render())
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    import asyncio

    from repro.serve import PlanServer, PlanningService, ServiceConfig

    if args.slots < 1:
        print(f"--slots must be >= 1, got {args.slots}", file=sys.stderr)
        return 2
    config = ServiceConfig(
        total_slots=args.slots,
        prioritizer=args.prioritizer,
        cap_search=not args.no_cap_search,
        pool=args.pool,
        cache_capacity=args.cache_capacity,
        batching=not args.no_batching,
        window=args.window,
    )
    service = PlanningService(config)
    server = PlanServer(service, host=args.host, port=args.port)

    async def run() -> None:
        await server.start()
        batching = "off" if args.no_batching else f"window {args.window * 1e3:g}ms"
        print(
            f"serving on http://{server.host}:{server.port} "
            f"({args.slots} slots, {args.prioritizer}/{args.pool}, batching {batching})",
            flush=True,
        )
        await server.serve_forever()

    try:
        asyncio.run(run())
    except KeyboardInterrupt:
        pass
    return 0


def _cmd_serve_bench(args: argparse.Namespace) -> int:
    from repro.serve.loadgen import MIXES, run_serve_bench

    if args.requests < 1:
        print(f"--requests must be >= 1, got {args.requests}", file=sys.stderr)
        return 2
    levels = tuple(args.concurrency) if args.concurrency else (2, 8, 16)
    if any(level < 1 for level in levels):
        print(f"--concurrency values must be >= 1, got {levels}", file=sys.stderr)
        return 2
    payload = run_serve_bench(
        concurrency_levels=levels,
        requests_per_client=args.requests,
        scenario=args.scenario,
        seed=args.seed,
        scale=args.scale,
        total_slots=args.slots,
        window=args.window,
        mixes=tuple(args.mix) if args.mix else MIXES,
    )
    rows = [
        [
            cell["mix"],
            "on" if cell["batching"] else "off",
            cell["concurrency"],
            cell["plans_per_sec"],
            cell["latency_ms"]["p50"],
            cell["latency_ms"]["p99"],
            cell["latency_ms"]["p999"],
            f"{cell['hit_rate']:.2f}",
        ]
        for cell in payload["cells"]
    ]
    print(format_table(
        ["mix", "batch", "conc", "plans/s", "p50 ms", "p99 ms", "p999 ms", "hits"],
        rows,
        title=f"serve bench ({args.slots} slots, {args.requests} req/client)",
        float_fmt="{:.2f}",
    ))
    summary = payload["summary"]
    cold = summary["cold_p99_ms"]
    print(
        f"\nsummary @ concurrency {summary['top_concurrency']}: "
        f"recurrent hit-rate {summary['recurrent_hit_rate']} | "
        f"cold p99 batching-on {cold['batching_on']}ms vs off {cold['batching_off']}ms"
    )
    if args.json_out:
        with open(args.json_out, "w") as fh:
            json.dump(payload, fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"wrote bench payload to {args.json_out}", file=sys.stderr)
    return 0


def _cmd_sweep(args: argparse.Namespace) -> int:
    if args.seeds <= 0:
        print(f"--seeds must be positive, got {args.seeds}", file=sys.stderr)
        return 2
    if args.workers < 0:
        print(f"--workers must be >= 0, got {args.workers}", file=sys.stderr)
        return 2
    scenarios = args.scenario or sorted(SWEEP_SCENARIOS)
    schedulers = args.schedulers or ["fifo", "woha-lpf"]
    cells = [
        ExperimentCell(scenario, scheduler, seed=seed, nodes=args.nodes, scale=args.scale)
        for scenario in scenarios
        for scheduler in schedulers
        for seed in range(args.seeds)
    ]
    grid = run_grid(cells, workers=args.workers, batched_assignment=args.batched)
    rows = [
        [
            cell.key,
            len(cell.stats),
            cell.metrics.tasks_launched,
            cell.makespan,
            f"{cell.metrics.utilization():.2f}",
        ]
        for cell in grid.cells
    ]
    print(format_table(
        ["cell", "workflows", "launched", "makespan", "util"],
        rows,
        title=f"{len(grid.cells)}-cell sweep "
              f"({'inline' if args.workers == 0 else f'{args.workers} workers'})",
        float_fmt="{:.1f}",
    ))
    merged = grid.merged
    print(
        f"\nmerged: {merged.tasks_launched} launched | {merged.tasks_completed} completed | "
        f"{merged.tasks_lost} lost | window {merged.window:.1f}s | "
        f"utilization {merged.utilization():.2f}"
    )
    if args.json_out:
        with open(args.json_out, "w") as fh:
            json.dump(grid.to_payload(), fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"wrote grid payload to {args.json_out}", file=sys.stderr)
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.command == "plan":
        return _cmd_plan(args)
    if args.command == "simulate":
        return _cmd_simulate(args)
    if args.command == "trace":
        return _cmd_trace(args)
    if args.command == "trace-decisions":
        return _cmd_trace_decisions(args)
    if args.command == "lint":
        return _cmd_lint(args)
    if args.command == "callgraph":
        return _cmd_callgraph(args)
    if args.command == "profile":
        return _cmd_profile(args)
    if args.command == "serve":
        return _cmd_serve(args)
    if args.command == "serve-bench":
        return _cmd_serve_bench(args)
    if args.command == "sweep":
        return _cmd_sweep(args)
    raise AssertionError(f"unhandled command {args.command!r}")


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
