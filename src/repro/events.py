"""Deterministic discrete-event simulation engine.

Every simulated component in :mod:`repro` (the cluster, Oozie-lite, the
metric collectors) runs on top of this engine.  It is a classic
calendar-queue-on-a-binary-heap design with two properties the rest of the
code base relies on:

* **Determinism.**  Events scheduled for the same simulated time fire in the
  order they were scheduled (FIFO tie-break via a monotonically increasing
  sequence number).  Replaying the same workload with the same seeds yields
  byte-identical traces, and :meth:`Simulator.reset` restarts the sequence
  counter so a reset simulator replays with identical tie-break ordering.
* **Cancellation.**  :meth:`EventHandle.cancel` lazily marks an event dead;
  the heap skips dead entries on pop.  This keeps cancellation O(1) and is
  used for e.g. retracting periodic heartbeats when a tracker is killed.

Heap entries are plain ``(time, seq, handle)`` tuples: tuple comparison
stops at ``seq`` (unique), so handles are never compared and pushes/pops
avoid dataclass ``__lt__`` dispatch on the hot path.  A live-event counter
maintained on schedule/cancel/fire makes :attr:`Simulator.pending_events`
O(1) instead of a queue scan.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, List, Optional, Tuple

__all__ = ["EventHandle", "Simulator", "SimulationError"]


class SimulationError(RuntimeError):
    """Raised when the engine is used inconsistently.

    Examples: scheduling an event in the past, or re-running a simulator
    that already finished without resetting it.
    """


class EventHandle:
    """A scheduled callback; returned by :meth:`Simulator.schedule`.

    The handle can be cancelled before it fires.  After firing (or after
    cancellation) it is inert.
    """

    __slots__ = ("time", "callback", "args", "_cancelled", "_fired", "_sim")

    def __init__(self, time: float, callback: Callable[..., Any], args: tuple):
        self.time = time
        self.callback = callback
        self.args = args
        self._cancelled = False
        self._fired = False
        self._sim: Optional["Simulator"] = None

    @property
    def cancelled(self) -> bool:
        return self._cancelled

    @property
    def fired(self) -> bool:
        return self._fired

    @property
    def pending(self) -> bool:
        return not (self._cancelled or self._fired)

    def cancel(self) -> bool:
        """Mark this event dead.  Returns ``True`` if it was still pending."""
        if self.pending:
            self._cancelled = True
            if self._sim is not None:
                self._sim._live -= 1
            return True
        return False

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "cancelled" if self._cancelled else ("fired" if self._fired else "pending")
        return f"EventHandle(t={self.time:.3f}, {getattr(self.callback, '__name__', self.callback)}, {state})"


class Simulator:
    """A deterministic discrete-event simulator.

    Usage::

        sim = Simulator()
        sim.schedule(5.0, on_timer)          # absolute simulated time
        sim.schedule_after(1.0, tick)        # relative to ``sim.now``
        sim.run()                            # drain the event queue
    """

    def __init__(self) -> None:
        self._queue: List[Tuple[float, int, EventHandle]] = []
        self._seq = 0
        self._live = 0
        self._now = 0.0
        self._running = False
        self._processed = 0
        self._stop = False

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    @property
    def processed_events(self) -> int:
        """Number of events that have fired so far."""
        return self._processed

    @property
    def pending_events(self) -> int:
        """Number of live (not cancelled) events still queued (O(1))."""
        return self._live

    # repro: budget O(log n)
    def schedule(self, time: float, callback: Callable[..., Any], *args: Any) -> EventHandle:
        """Schedule ``callback(*args)`` at absolute simulated ``time``."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule event at t={time:.6f} before current time t={self._now:.6f}"
            )
        handle = EventHandle(time, callback, args)
        handle._sim = self
        seq = self._seq
        self._seq = seq + 1
        heapq.heappush(self._queue, (time, seq, handle))
        self._live += 1
        return handle

    def schedule_after(self, delay: float, callback: Callable[..., Any], *args: Any) -> EventHandle:
        """Schedule ``callback(*args)`` after ``delay`` seconds of simulated time."""
        if delay < 0:
            raise SimulationError(f"negative delay {delay!r}")
        return self.schedule(self._now + delay, callback, *args)

    def peek_time(self) -> Optional[float]:
        """Time of the next live event, or ``None`` if the queue is drained.

        Dead (cancelled) heap heads are pruned as a side effect, so a
        subsequent :meth:`step` pops a live entry directly.
        """
        queue = self._queue
        while queue and queue[0][2]._cancelled:
            heapq.heappop(queue)
        return queue[0][0] if queue else None

    def advance_to(self, time: float) -> None:
        """Move the clock forward to ``time`` without firing anything.

        Used by run loops that stop at a horizon between events; moving
        backwards is a no-op (the clock is monotonic).
        """
        if time > self._now:
            self._now = time

    def step(self) -> bool:
        """Fire the next live event.  Returns ``False`` when the queue is empty."""
        while self._queue:
            time, _seq, handle = heapq.heappop(self._queue)
            if handle._cancelled:
                continue
            self._now = time
            handle._fired = True
            self._live -= 1
            self._processed += 1
            handle.callback(*handle.args)
            return True
        return False

    def request_stop(self) -> None:
        """Ask an in-flight :meth:`run` to return after the current event.

        Callbacks use this to end a run early on a semantic condition the
        engine cannot see (e.g. "every workflow completed") without the
        driver paying a per-event Python-level peek/step round trip.  Inert
        outside :meth:`run`; each run starts with the flag cleared.
        """
        self._stop = True

    # One pass over all n scheduled events, O(log n) heap work per event;
    # the budget grammar tops out at O(n), which the loop bound matches.
    # repro: budget O(n)
    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> float:
        """Drain the event queue.

        Args:
            until: stop (without firing) once the next event would be after
                this simulated time; the clock is advanced to ``until``.
            max_events: safety valve — raise :class:`SimulationError` as soon
                as a live event would exceed this many firings (guards
                against runaway feedback loops in scheduler bugs).  Exactly
                ``max_events`` queued events drain without error.

        Returns:
            The simulated time when the run stopped.
        """
        if self._running:
            raise SimulationError("Simulator.run() is not reentrant")
        self._running = True
        self._stop = False
        # Fused kernel: the peek/step pair is inlined into one loop over a
        # pre-bound heap alias — one tuple unpack and no method dispatch per
        # event.  Equivalent to ``while peek_time() ... step()``: cancelled
        # heads are pruned before the horizon test, FIFO tie-break order is
        # untouched (heap order is unchanged), and counters update exactly
        # as in :meth:`step`.
        queue = self._queue
        pop = heapq.heappop
        fired = 0
        try:
            while queue:
                time, _seq, handle = queue[0]
                if handle._cancelled:
                    pop(queue)
                    continue
                if until is not None and time > until:
                    break
                if max_events is not None and fired >= max_events:
                    raise SimulationError(f"exceeded max_events={max_events}; runaway simulation?")
                pop(queue)
                self._now = time
                handle._fired = True
                self._live -= 1
                self._processed += 1
                handle.callback(*handle.args)
                fired += 1
                if self._stop:
                    break
        finally:
            self._running = False
        if until is not None:
            self._now = max(self._now, until)
        return self._now

    def reset(self) -> None:
        """Drop all pending events and rewind the clock to zero.

        The sequence counter restarts too, so a reset simulator replays the
        same workload with byte-identical FIFO tie-break ordering.  Handles
        still queued at reset time become cancelled.
        """
        for _time, _seq, handle in self._queue:
            handle._cancelled = True
        self._queue.clear()
        self._seq = 0
        self._live = 0
        self._now = 0.0
        self._processed = 0
        self._stop = False
