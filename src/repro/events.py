"""Deterministic discrete-event simulation engine.

Every simulated component in :mod:`repro` (the cluster, Oozie-lite, the
metric collectors) runs on top of this engine.  It is a classic
calendar-queue-on-a-binary-heap design with two properties the rest of the
code base relies on:

* **Determinism.**  Events scheduled for the same simulated time fire in the
  order they were scheduled (FIFO tie-break via a monotonically increasing
  sequence number).  Replaying the same workload with the same seeds yields
  byte-identical traces.
* **Cancellation.**  :meth:`EventHandle.cancel` lazily marks an event dead;
  the heap skips dead entries on pop.  This keeps cancellation O(1) and is
  used for e.g. retracting periodic heartbeats when a tracker is killed.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Any, Callable, List, Optional

__all__ = ["EventHandle", "Simulator", "SimulationError"]


class SimulationError(RuntimeError):
    """Raised when the engine is used inconsistently.

    Examples: scheduling an event in the past, or re-running a simulator
    that already finished without resetting it.
    """


@dataclass(order=True)
class _QueueEntry:
    time: float
    seq: int
    handle: "EventHandle" = field(compare=False)


class EventHandle:
    """A scheduled callback; returned by :meth:`Simulator.schedule`.

    The handle can be cancelled before it fires.  After firing (or after
    cancellation) it is inert.
    """

    __slots__ = ("time", "callback", "args", "_cancelled", "_fired")

    def __init__(self, time: float, callback: Callable[..., Any], args: tuple):
        self.time = time
        self.callback = callback
        self.args = args
        self._cancelled = False
        self._fired = False

    @property
    def cancelled(self) -> bool:
        return self._cancelled

    @property
    def fired(self) -> bool:
        return self._fired

    @property
    def pending(self) -> bool:
        return not (self._cancelled or self._fired)

    def cancel(self) -> bool:
        """Mark this event dead.  Returns ``True`` if it was still pending."""
        if self.pending:
            self._cancelled = True
            return True
        return False

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "cancelled" if self._cancelled else ("fired" if self._fired else "pending")
        return f"EventHandle(t={self.time:.3f}, {getattr(self.callback, '__name__', self.callback)}, {state})"


class Simulator:
    """A deterministic discrete-event simulator.

    Usage::

        sim = Simulator()
        sim.schedule(5.0, on_timer)          # absolute simulated time
        sim.schedule_after(1.0, tick)        # relative to ``sim.now``
        sim.run()                            # drain the event queue
    """

    def __init__(self) -> None:
        self._queue: List[_QueueEntry] = []
        self._seq = itertools.count()
        self._now = 0.0
        self._running = False
        self._processed = 0

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    @property
    def processed_events(self) -> int:
        """Number of events that have fired so far."""
        return self._processed

    @property
    def pending_events(self) -> int:
        """Number of live (not cancelled) events still queued."""
        return sum(1 for entry in self._queue if entry.handle.pending)

    def schedule(self, time: float, callback: Callable[..., Any], *args: Any) -> EventHandle:
        """Schedule ``callback(*args)`` at absolute simulated ``time``."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule event at t={time:.6f} before current time t={self._now:.6f}"
            )
        handle = EventHandle(time, callback, args)
        heapq.heappush(self._queue, _QueueEntry(time, next(self._seq), handle))
        return handle

    def schedule_after(self, delay: float, callback: Callable[..., Any], *args: Any) -> EventHandle:
        """Schedule ``callback(*args)`` after ``delay`` seconds of simulated time."""
        if delay < 0:
            raise SimulationError(f"negative delay {delay!r}")
        return self.schedule(self._now + delay, callback, *args)

    def step(self) -> bool:
        """Fire the next live event.  Returns ``False`` when the queue is empty."""
        while self._queue:
            entry = heapq.heappop(self._queue)
            handle = entry.handle
            if handle.cancelled:
                continue
            self._now = entry.time
            handle._fired = True
            self._processed += 1
            handle.callback(*handle.args)
            return True
        return False

    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> float:
        """Drain the event queue.

        Args:
            until: stop (without firing) once the next event would be after
                this simulated time; the clock is advanced to ``until``.
            max_events: safety valve — raise :class:`SimulationError` if more
                than this many events fire (guards against runaway feedback
                loops in scheduler bugs).

        Returns:
            The simulated time when the run stopped.
        """
        if self._running:
            raise SimulationError("Simulator.run() is not reentrant")
        self._running = True
        fired = 0
        try:
            while self._queue:
                # Peek (skipping dead entries) to honour `until`.
                while self._queue and self._queue[0].handle.cancelled:
                    heapq.heappop(self._queue)
                if not self._queue:
                    break
                if until is not None and self._queue[0].time > until:
                    self._now = max(self._now, until)
                    break
                self.step()
                fired += 1
                if max_events is not None and fired > max_events:
                    raise SimulationError(f"exceeded max_events={max_events}; runaway simulation?")
        finally:
            self._running = False
        if until is not None:
            self._now = max(self._now, until)
        return self._now

    def reset(self) -> None:
        """Drop all pending events and rewind the clock to zero."""
        self._queue.clear()
        self._now = 0.0
        self._processed = 0
