"""Oozie-lite: the baseline workflow submission path (paper §I, §VII).

Oozie keeps workflow topology to itself and submits each job to Hadoop once
its prerequisites have finished; Hadoop sees only independent jobs.  This
*information separation* is exactly what WOHA removes, so the coordinator
here is deliberately minimal: it never shares plans or priorities with the
JobTracker.

The coordinator registers as a JobTracker listener.  With
``poll_interval == 0`` a ready wjob is submitted on the completion event
itself; otherwise submissions happen on the coordinator's next poll tick,
modelling Oozie's action-materialisation delay.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set

from repro.cluster.job import JobInProgress
from repro.cluster.jobtracker import JobTracker, WorkflowInProgress
from repro.events import Simulator
from repro.workflow.model import Workflow

__all__ = ["OozieCoordinator"]


class OozieCoordinator:
    """Submits each wjob to the JobTracker when its input data is ready."""

    def __init__(self, sim: Simulator, jobtracker: JobTracker, poll_interval: Optional[float] = None) -> None:
        self.sim = sim
        self.jobtracker = jobtracker
        self.poll_interval = (
            jobtracker.config.oozie_poll_interval if poll_interval is None else poll_interval
        )
        self._managed: Set[str] = set()
        self._pending_poll = False
        jobtracker.add_listener(self)

    def submit_workflow(self, workflow: Workflow) -> WorkflowInProgress:
        """Register the workflow and immediately submit its root wjobs."""
        wip = self.jobtracker.submit_workflow(workflow, plan=None, use_submitter=False)
        self._managed.add(workflow.name)
        self._submit_ready(wip)
        return wip

    def _submit_ready(self, wip: WorkflowInProgress) -> None:
        for name in wip.ready_wjobs():
            self.jobtracker.submit_wjob(wip.name, name)

    # -- JobTracker listener hooks -----------------------------------------

    def on_job_completed(self, jip: JobInProgress, now: float) -> None:
        if jip.workflow_name not in self._managed:
            return
        if self.poll_interval <= 0:
            self._submit_ready(self.jobtracker.workflows[jip.workflow_name])
        elif not self._pending_poll:
            self._pending_poll = True
            self.sim.schedule_after(self.poll_interval, self._poll)

    def _poll(self) -> None:
        self._pending_poll = False
        # sorted: set iteration is hash-ordered and would break
        # cross-process reproducibility of submission order.
        for name in sorted(self._managed):
            wip = self.jobtracker.workflows[name]
            if not wip.done:
                self._submit_ready(wip)
