"""The ``workflow-scheduler.xml`` plug-in registry (paper §III-B).

"Users may replace the Scheduling Plan Generator module and the Workflow
Scheduler module in WOHA with their own design and implementation ...
the substitution is as easy as modifying two lines of code in the
workflow-scheduler.xml configuration file."

This module reproduces that contract: a registry of named Workflow
Scheduler factories and Scheduling Plan Generator factories, plus a parser
for the two-line XML file selecting them.  User code registers its own
implementations under new names and points the config at them.

Example config::

    <workflow-scheduler>
      <scheduler>woha-dsl</scheduler>
      <plan-generator>lpf-capped</plan-generator>
    </workflow-scheduler>
"""

from __future__ import annotations

import xml.etree.ElementTree as ET
from typing import Callable, Dict, Optional, Tuple

from repro.core.client import make_planner
from repro.core.scheduler import NaiveWohaScheduler, WohaScheduler
from repro.schedulers.base import WorkflowScheduler
from repro.schedulers.edf import EdfScheduler
from repro.schedulers.fair import FairScheduler
from repro.schedulers.fifo import FifoScheduler

__all__ = [
    "SCHEDULER_REGISTRY",
    "PLAN_GENERATOR_REGISTRY",
    "register_scheduler",
    "register_plan_generator",
    "parse_scheduler_config",
    "ConfigError",
]

SchedulerFactory = Callable[[], WorkflowScheduler]
PlannerFactory = Callable[[], Optional[Callable]]


class ConfigError(ValueError):
    """Raised for malformed or dangling workflow-scheduler.xml configs."""


SCHEDULER_REGISTRY: Dict[str, SchedulerFactory] = {
    "woha-dsl": lambda: WohaScheduler(queue_backend="dsl"),
    "woha-bst": lambda: WohaScheduler(queue_backend="bst"),
    "woha-list": lambda: WohaScheduler(queue_backend="list"),
    "woha-naive": NaiveWohaScheduler,
    "fifo": FifoScheduler,
    "fair": FairScheduler,
    "edf": EdfScheduler,
}

PLAN_GENERATOR_REGISTRY: Dict[str, PlannerFactory] = {
    "none": lambda: None,
    "hlf-capped": lambda: make_planner("hlf"),
    "lpf-capped": lambda: make_planner("lpf"),
    "mpf-capped": lambda: make_planner("mpf"),
    "lpf-uncapped": lambda: make_planner("lpf", cap_search=False),
    "lpf-split": lambda: make_planner("lpf", pool="split"),
}


def register_scheduler(name: str, factory: SchedulerFactory, replace: bool = False) -> None:
    """Register a user Workflow Scheduler under ``name``."""
    if name in SCHEDULER_REGISTRY and not replace:
        raise ConfigError(f"scheduler {name!r} already registered")
    SCHEDULER_REGISTRY[name] = factory


def register_plan_generator(name: str, factory: PlannerFactory, replace: bool = False) -> None:
    """Register a user Scheduling Plan Generator under ``name``."""
    if name in PLAN_GENERATOR_REGISTRY and not replace:
        raise ConfigError(f"plan generator {name!r} already registered")
    PLAN_GENERATOR_REGISTRY[name] = factory


def parse_scheduler_config(text: str) -> Tuple[WorkflowScheduler, Optional[Callable]]:
    """Resolve a workflow-scheduler.xml document to live components.

    Returns ``(scheduler, planner)`` ready to hand to
    :class:`~repro.cluster.simulation.ClusterSimulation`.
    """
    try:
        root = ET.fromstring(text)
    except ET.ParseError as exc:
        raise ConfigError(f"malformed workflow-scheduler.xml: {exc}") from exc
    if root.tag != "workflow-scheduler":
        raise ConfigError(f"root element must be <workflow-scheduler>, got <{root.tag}>")
    sched_elem = root.find("scheduler")
    if sched_elem is None or not (sched_elem.text or "").strip():
        raise ConfigError("missing <scheduler> element")
    plan_elem = root.find("plan-generator")
    scheduler_name = sched_elem.text.strip()
    planner_name = (plan_elem.text or "").strip() if plan_elem is not None else "none"
    try:
        scheduler_factory = SCHEDULER_REGISTRY[scheduler_name]
    except KeyError:
        raise ConfigError(
            f"unknown scheduler {scheduler_name!r}; registered: {sorted(SCHEDULER_REGISTRY)}"
        ) from None
    try:
        planner_factory = PLAN_GENERATOR_REGISTRY[planner_name]
    except KeyError:
        raise ConfigError(
            f"unknown plan generator {planner_name!r}; registered: {sorted(PLAN_GENERATOR_REGISTRY)}"
        ) from None
    return scheduler_factory(), planner_factory()
