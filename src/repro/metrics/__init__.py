"""Measurement: event collection and evaluation-metric reports."""

from repro.metrics.collector import MetricsCollector, SlotSample
from repro.metrics.postmortem import JobSpan, PostMortem
from repro.metrics.report import (
    deadline_miss_ratio,
    max_tardiness,
    total_tardiness,
    format_table,
)

__all__ = [
    "MetricsCollector",
    "SlotSample",
    "JobSpan",
    "PostMortem",
    "deadline_miss_ratio",
    "max_tardiness",
    "total_tardiness",
    "format_table",
]
