"""Post-mortem analysis of a finished simulation.

Once a run completes, the questions a scheduler author asks are *where did
the time go*: which jobs sat queued, which chain of jobs actually gated the
workflow's completion (the **realized critical path** — not the estimated
one), and how far the workflow ran behind its scheduling plan.

:class:`PostMortem` is a JobTracker listener; register it before running
and query it afterwards.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.cluster.job import JobInProgress, SubmitterJob
from repro.cluster.tasks import Task, TaskKind

__all__ = ["JobSpan", "PostMortem"]


@dataclass
class JobSpan:
    """Timing breakdown of one wjob's execution."""

    workflow: str
    name: str
    submit_time: float
    first_launch: Optional[float] = None
    map_phase_end: Optional[float] = None
    finish_time: Optional[float] = None

    @property
    def queue_delay(self) -> Optional[float]:
        """Seconds between master-side submission and the first task launch."""
        if self.first_launch is None:
            return None
        return self.first_launch - self.submit_time

    @property
    def span(self) -> Optional[float]:
        if self.finish_time is None:
            return None
        return self.finish_time - self.submit_time


class PostMortem:
    """Collects per-job timing and reconstructs realized critical paths."""

    def __init__(self) -> None:
        self._spans: Dict[Tuple[str, str], JobSpan] = {}
        self._workflow_defs: Dict[str, object] = {}
        self._workflow_done: Dict[str, float] = {}

    # -- listener hooks ------------------------------------------------------

    def on_workflow_submitted(self, wip, now: float) -> None:
        self._workflow_defs[wip.name] = wip.definition

    def on_wjob_submitted(self, jip: JobInProgress, now: float) -> None:
        if isinstance(jip, SubmitterJob) or jip.workflow_name is None:
            return
        self._spans[(jip.workflow_name, jip.name)] = JobSpan(
            workflow=jip.workflow_name, name=jip.name, submit_time=now
        )

    def on_task_launch(self, task: Task, now: float) -> None:
        if task.kind is TaskKind.SUBMIT or task.workflow_name is None:
            return
        span = self._spans.get((task.workflow_name, task.job.name))
        if span is not None and span.first_launch is None:
            span.first_launch = now

    def on_task_complete(self, task: Task, now: float) -> None:
        if task.kind is not TaskKind.MAP or task.workflow_name is None:
            return
        span = self._spans.get((task.workflow_name, task.job.name))
        if span is not None and task.job.map_phase_done:
            span.map_phase_end = now

    def on_job_completed(self, jip: JobInProgress, now: float) -> None:
        if isinstance(jip, SubmitterJob) or jip.workflow_name is None:
            return
        span = self._spans.get((jip.workflow_name, jip.name))
        if span is not None:
            span.finish_time = now

    def on_workflow_completed(self, wip, now: float) -> None:
        self._workflow_done[wip.name] = now

    # -- queries ----------------------------------------------------------------

    def job_spans(self, workflow: str) -> List[JobSpan]:
        """All recorded job spans of a workflow, in submission order."""
        spans = [span for (wf, _n), span in self._spans.items() if wf == workflow]
        return sorted(spans, key=lambda s: (s.submit_time, s.name))

    def realized_critical_path(self, workflow: str) -> List[str]:
        """The chain of jobs that actually gated completion.

        Walks back from the last-finishing job, at each step following the
        prerequisite that finished last (the one whose completion released
        the current job).  Differs from the *estimated* critical path
        whenever contention or stragglers shifted the bottleneck.
        """
        definition = self._workflow_defs.get(workflow)
        if definition is None:
            raise KeyError(f"unknown workflow {workflow!r}")
        finished = {
            span.name: span.finish_time
            for span in self.job_spans(workflow)
            if span.finish_time is not None
        }
        if not finished:
            return []
        current = max(finished, key=lambda n: (finished[n], n))
        path = [current]
        while True:
            pres = [p for p in definition.prerequisites(current) if p in finished]
            if not pres:
                break
            current = max(pres, key=lambda n: (finished[n], n))
            path.append(current)
        return list(reversed(path))

    def total_queue_delay(self, workflow: str) -> float:
        """Summed submission-to-first-launch delay across the workflow's
        jobs — the contention cost the scheduler imposed on it."""
        return sum(
            span.queue_delay or 0.0
            for span in self.job_spans(workflow)
        )

    def completion_time(self, workflow: str) -> Optional[float]:
        return self._workflow_done.get(workflow)
