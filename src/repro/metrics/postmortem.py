"""Post-mortem analysis of a finished simulation.

Once a run completes, the questions a scheduler author asks are *where did
the time go*: which jobs sat queued, which chain of jobs actually gated the
workflow's completion (the **realized critical path** — not the estimated
one), and how far the workflow ran behind its scheduling plan.

:class:`PostMortem` is a JobTracker listener; register it before running
and query it afterwards.  :func:`explain_miss` answers the complementary
question from a decision trace (:mod:`repro.trace`): *which scheduling
decisions made workflow X miss its deadline* — every ``select_task`` call
in the workflow's danger window is attributed as served / outranked by a
named competitor / nothing-runnable.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional, Tuple

from repro.cluster.job import JobInProgress, SubmitterJob
from repro.cluster.tasks import Task, TaskKind

__all__ = ["JobSpan", "PostMortem", "MissExplanation", "explain_miss"]


@dataclass
class JobSpan:
    """Timing breakdown of one wjob's execution."""

    workflow: str
    name: str
    submit_time: float
    first_launch: Optional[float] = None
    map_phase_end: Optional[float] = None
    finish_time: Optional[float] = None

    @property
    def queue_delay(self) -> Optional[float]:
        """Seconds between master-side submission and the first task launch."""
        if self.first_launch is None:
            return None
        return self.first_launch - self.submit_time

    @property
    def span(self) -> Optional[float]:
        if self.finish_time is None:
            return None
        return self.finish_time - self.submit_time


class PostMortem:
    """Collects per-job timing and reconstructs realized critical paths."""

    def __init__(self) -> None:
        self._spans: Dict[Tuple[str, str], JobSpan] = {}
        self._workflow_defs: Dict[str, object] = {}
        self._workflow_done: Dict[str, float] = {}

    # -- listener hooks ------------------------------------------------------

    def on_workflow_submitted(self, wip, now: float) -> None:
        self._workflow_defs[wip.name] = wip.definition

    def on_wjob_submitted(self, jip: JobInProgress, now: float) -> None:
        if isinstance(jip, SubmitterJob) or jip.workflow_name is None:
            return
        self._spans[(jip.workflow_name, jip.name)] = JobSpan(
            workflow=jip.workflow_name, name=jip.name, submit_time=now
        )

    def on_task_launch(self, task: Task, now: float) -> None:
        if task.kind is TaskKind.SUBMIT or task.workflow_name is None:
            return
        span = self._spans.get((task.workflow_name, task.job.name))
        if span is not None and span.first_launch is None:
            span.first_launch = now

    def on_task_complete(self, task: Task, now: float) -> None:
        if task.kind is not TaskKind.MAP or task.workflow_name is None:
            return
        span = self._spans.get((task.workflow_name, task.job.name))
        if span is not None and task.job.map_phase_done:
            span.map_phase_end = now

    def on_job_completed(self, jip: JobInProgress, now: float) -> None:
        if isinstance(jip, SubmitterJob) or jip.workflow_name is None:
            return
        span = self._spans.get((jip.workflow_name, jip.name))
        if span is not None:
            span.finish_time = now

    def on_workflow_completed(self, wip, now: float) -> None:
        self._workflow_done[wip.name] = now

    # -- queries ----------------------------------------------------------------

    def job_spans(self, workflow: str) -> List[JobSpan]:
        """All recorded job spans of a workflow, in submission order."""
        spans = [span for (wf, _n), span in self._spans.items() if wf == workflow]
        return sorted(spans, key=lambda s: (s.submit_time, s.name))

    def realized_critical_path(self, workflow: str) -> List[str]:
        """The chain of jobs that actually gated completion.

        Walks back from the last-finishing job, at each step following the
        prerequisite that finished last (the one whose completion released
        the current job).  Differs from the *estimated* critical path
        whenever contention or stragglers shifted the bottleneck.
        """
        definition = self._workflow_defs.get(workflow)
        if definition is None:
            raise KeyError(f"unknown workflow {workflow!r}")
        finished = {
            span.name: span.finish_time
            for span in self.job_spans(workflow)
            if span.finish_time is not None
        }
        if not finished:
            return []
        current = max(finished, key=lambda n: (finished[n], n))
        path = [current]
        while True:
            pres = [p for p in definition.prerequisites(current) if p in finished]
            if not pres:
                break
            current = max(pres, key=lambda n: (finished[n], n))
            path.append(current)
        return list(reversed(path))

    def total_queue_delay(self, workflow: str) -> float:
        """Summed submission-to-first-launch delay across the workflow's
        jobs — the contention cost the scheduler imposed on it."""
        return sum(
            span.queue_delay or 0.0
            for span in self.job_spans(workflow)
        )

    def completion_time(self, workflow: str) -> Optional[float]:
        return self._workflow_done.get(workflow)


@dataclass
class MissExplanation:
    """Attribution of a workflow's deadline miss to scheduler decisions.

    Every ``decision`` event inside the workflow's danger window — from its
    submission until its deadline (or completion, whichever came first) —
    falls into exactly one bucket:

    * ``served``: the scheduler picked this workflow;
    * ``not_runnable``: the workflow was examined but had nothing runnable
      of the requested slot kind (it appears in the decision's ``skipped``
      list, or the whole call came up empty);
    * ``outranked``: another workflow won while this one was active and
      not reported as skipped — the contention that cost it the deadline.
      ``lost_to`` names the winners and how often each won.
    """

    workflow: str
    deadline: Optional[float]
    submit_time: Optional[float]
    completion_time: Optional[float]
    served: int = 0
    outranked: int = 0
    not_runnable: int = 0
    lost_to: Dict[str, int] = field(default_factory=dict)
    #: Largest lag ``F_h(ttd) - rho_h`` recorded for the workflow in the
    #: window — how far behind plan it fell at worst.
    max_lag: Optional[float] = None

    @property
    def missed(self) -> Optional[bool]:
        """Whether the workflow missed its deadline (``None`` if unknown)."""
        if self.deadline is None:
            return False
        if self.completion_time is None:
            return None
        return self.completion_time > self.deadline

    @property
    def tardiness(self) -> Optional[float]:
        """``max(0, completion - deadline)``; ``None`` when unknown."""
        if self.deadline is None:
            return 0.0
        if self.completion_time is None:
            return None
        return max(0.0, self.completion_time - self.deadline)

    def summary(self) -> str:
        """A human-readable one-paragraph digest (used by the CLI)."""
        lines = [f"workflow {self.workflow}:"]
        if self.deadline is None:
            lines.append("  best-effort (no deadline)")
        elif self.missed:
            lines.append(
                f"  MISSED deadline {self.deadline:g} "
                f"(finished {self.completion_time:g}, tardiness {self.tardiness:g})"
            )
        elif self.missed is None:
            lines.append(f"  deadline {self.deadline:g}, completion unknown (truncated trace)")
        else:
            lines.append(
                f"  met deadline {self.deadline:g} (finished {self.completion_time:g})"
            )
        lines.append(
            f"  decisions in window: served {self.served}, "
            f"outranked {self.outranked}, not-runnable {self.not_runnable}"
        )
        if self.max_lag is not None:
            lines.append(f"  worst lag behind plan: {self.max_lag:g} tasks")
        if self.lost_to:
            winners = sorted(self.lost_to.items(), key=lambda kv: (-kv[1], kv[0]))
            lines.append(
                "  lost slots to: "
                + ", ".join(f"{name} ({count}x)" for name, count in winners)
            )
        return "\n".join(lines)


def explain_miss(
    events: Iterable[Dict[str, Any]], workflow: str
) -> MissExplanation:
    """Attribute a workflow's deadline miss to the decisions in a trace.

    ``events`` is a decision log — a :class:`~repro.trace.DecisionTracer`
    (iterable of event dicts) or the output of
    :func:`repro.trace.read_jsonl`.  Only decisions inside the workflow's
    danger window (submission to ``min(deadline, completion)``) are
    counted: a slot granted elsewhere after the deadline has already
    passed, or after the workflow finished, did not cause the miss.

    Works on truncated (ring-buffer) traces: missing lifecycle markers
    leave the corresponding window edge open.
    """
    events = list(events)
    deadline: Optional[float] = None
    submit_time: Optional[float] = None
    completion_time: Optional[float] = None
    for event in events:
        if event.get("workflow") != workflow:
            continue
        kind = event.get("event")
        if kind == "workflow_submitted":
            submit_time = event["time"]
            deadline = event.get("deadline")
        elif kind == "workflow_completed":
            completion_time = event["time"]
            if deadline is None:
                deadline = event.get("deadline")

    window_start = submit_time if submit_time is not None else float("-inf")
    window_end = float("inf")
    if deadline is not None:
        window_end = deadline
    if completion_time is not None:
        window_end = min(window_end, completion_time)

    explanation = MissExplanation(
        workflow=workflow,
        deadline=deadline,
        submit_time=submit_time,
        completion_time=completion_time,
    )
    for event in events:
        if event.get("event") == "ct_advance" and event.get("workflow") == workflow:
            lag = event.get("lag")
            if lag is not None and (explanation.max_lag is None or lag > explanation.max_lag):
                explanation.max_lag = lag
        if event.get("event") != "decision":
            continue
        time = event["time"]
        if time < window_start or time > window_end:
            continue
        winner = event.get("workflow")
        skipped = event.get("skipped") or []
        if winner == workflow:
            explanation.served += 1
            lag = event.get("lag")
            if lag is not None and (explanation.max_lag is None or lag > explanation.max_lag):
                explanation.max_lag = lag
        elif workflow in skipped or winner is None:
            # Examined but had nothing runnable of this kind — or the whole
            # call found nothing; either way no competitor took its slot.
            explanation.not_runnable += 1
        else:
            explanation.outranked += 1
            explanation.lost_to[winner] = explanation.lost_to.get(winner, 0) + 1
    return explanation
