"""Event-stream metrics collection.

A :class:`MetricsCollector` is a JobTracker listener that records every task
launch/completion.  From the raw event log it derives:

* per-workflow, per-slot-kind **allocation time series** — the data behind
  the paper's Figs 14-19 (map/reduce slots in use by each workflow over
  time);
* **cluster utilization** (busy slot-seconds over capacity), Fig 12;
* busy-time and task-count counters used in tests;
* **per-scheduler decision counters** aggregated from a
  :class:`~repro.trace.DecisionTracer` (decisions, idle calls, ct
  advances, slot frees, assignment-wait totals).

Collectors from independent runs (the shards of a
:mod:`repro.experiments` sweep) combine via :meth:`MetricsCollector.merge`.
Merging is order-deterministic and purely additive, with one wrinkle:
each constituent run's busy seconds are weighed against *its own*
``slots x window`` capacity, so shards with disjoint — or identically
overlapping — simulated time ranges neither stretch nor double-count the
merged utilization window (see :meth:`MetricsCollector.merge`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, List, Optional, Tuple, Union

from repro.cluster.config import ClusterConfig
from repro.cluster.tasks import Task, TaskKind

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type hints
    from repro.trace import DecisionTracer

__all__ = ["SlotSample", "MetricsCollector"]


@dataclass(frozen=True)
class SlotSample:
    """One step of an allocation series: ``count`` slots in use from ``time``."""

    time: float
    count: int


class MetricsCollector:
    """Records task events and derives evaluation metrics."""

    def __init__(self, config: ClusterConfig) -> None:
        self.config = config
        # (time, workflow_name, uses_map_slot, delta)
        self._deltas: List[Tuple[float, Optional[str], bool, int]] = []
        # (time, workflow_name) for every non-submitter launch: the true
        # progress rho_i as a function of time.
        self._progress_events: List[Tuple[float, Optional[str]]] = []
        self.busy_map_seconds = 0.0
        self.busy_reduce_seconds = 0.0
        self.tasks_launched = 0
        self.tasks_completed = 0
        self.tasks_lost = 0
        self.first_event: Optional[float] = None
        self.last_event: Optional[float] = None
        # {scheduler name: {counter name: value}}, filled by
        # aggregate_counters; accumulates across tracers/runs so sweeps can
        # pool several traced simulations into one table.
        self.scheduler_counters: Dict[str, Dict[str, Union[int, float]]] = {}
        # Merge accounting: once another collector has been folded in, the
        # window/utilization denominators come from these per-shard sums
        # instead of (last_event - first_event) x self.config — a single
        # global span would count each shard's warm-up against every other
        # shard's capacity.  Zero/False until the first merge.
        self._merged = False
        self._window_sum = 0.0
        self._map_capacity_s = 0.0
        self._reduce_capacity_s = 0.0

    # -- JobTracker listener hooks -----------------------------------------

    # repro: budget O(1)
    def on_task_launch(self, task: Task, now: float) -> None:
        # Once per launch on the simulation hot path: identity tests and a
        # direct job attribute read instead of enum/Task property dispatch.
        kind = task.kind
        wf_name = task.job.workflow_name
        self.tasks_launched += 1
        self._deltas.append((now, wf_name, kind is not TaskKind.REDUCE, +1))
        if kind is not TaskKind.SUBMIT and not task.speculative:
            self._progress_events.append((now, wf_name))
        if self.first_event is None:
            self.first_event = now
        self.last_event = now

    # repro: budget O(1)
    def on_task_complete(self, task: Task, now: float) -> None:
        uses_map = task.kind is not TaskKind.REDUCE
        duration = task.duration
        self.tasks_completed += 1
        self._deltas.append((now, task.job.workflow_name, uses_map, -1))
        if uses_map:
            self.busy_map_seconds += duration
        else:
            self.busy_reduce_seconds += duration
        if self.first_event is None:
            self.first_event = now
        self.last_event = now

    def on_task_lost(self, task: Task, now: float) -> None:
        """A tracker failure killed a running attempt; the partial work it
        burned counts as busy slot time (it occupied the slot)."""
        self.tasks_lost += 1
        self._deltas.append((now, task.workflow_name, task.kind.uses_map_slot, -1))
        burned = max(0.0, now - (task.launch_time if task.launch_time is not None else now))
        if task.kind.uses_map_slot:
            self.busy_map_seconds += burned
        else:
            self.busy_reduce_seconds += burned
        self._touch(now)

    def _touch(self, now: float) -> None:
        if self.first_event is None:
            self.first_event = now
        self.last_event = now

    # -- decision-counter aggregation ----------------------------------------

    def aggregate_counters(
        self, tracer: "DecisionTracer"
    ) -> Dict[str, Dict[str, Union[int, float]]]:
        """Fold a tracer's per-scheduler counters into this collector.

        Values *add* to whatever was aggregated before, so calling this for
        several tracers (e.g. one per run of a sweep) pools them into one
        per-scheduler table.  Returns the updated table.
        """
        for scheduler, counters in tracer.counter_table().items():
            bucket = self.scheduler_counters.setdefault(scheduler, {})
            for name, value in counters.items():
                bucket[name] = bucket.get(name, 0) + value
        return self.scheduler_counters

    # -- shard merging --------------------------------------------------------

    def _seal(self) -> None:
        """Freeze this collector's own window into the merge accumulators."""
        if self._merged:
            return
        span = self.window
        self._window_sum = span
        self._map_capacity_s = self.config.total_map_slots * span
        self._reduce_capacity_s = self.config.total_reduce_slots * span
        self._merged = True

    # repro: budget O(n)
    def merge(self, other: "MetricsCollector") -> "MetricsCollector":
        """Fold another run's collector into this one (in place).

        This is the reduction step of the sharded experiment runner
        (:mod:`repro.experiments.runner`): each worker returns its cell's
        collector and the parent merges them in deterministic cell order,
        so a sharded sweep's merged metrics are byte-identical to a
        sequential run of the same grid.

        Counters, busy seconds and the raw event lists add; ``first_event``
        / ``last_event`` take the min/max.  :attr:`window` becomes the
        *sum* of the constituents' windows and :meth:`utilization` weighs
        each constituent's busy seconds against its own ``slots x window``
        capacity — shards are independent simulations (each starting at its
        own t=0), so a single ``max(last) - min(first)`` span would
        double-count overlapping shard warm-ups and dilute disjoint ones.

        Per-workflow derived series (:meth:`allocation_series`,
        :meth:`progress_curve`) remain meaningful only when workflow names
        are unique across the merged runs; aggregate counters and
        utilization are always well-defined.  ``other`` is not modified.
        """
        self._seal()
        self._deltas.extend(other._deltas)
        self._progress_events.extend(other._progress_events)
        self.busy_map_seconds += other.busy_map_seconds
        self.busy_reduce_seconds += other.busy_reduce_seconds
        self.tasks_launched += other.tasks_launched
        self.tasks_completed += other.tasks_completed
        self.tasks_lost += other.tasks_lost
        other_first = other.first_event
        if other_first is not None:
            self.first_event = (
                other_first if self.first_event is None
                else min(self.first_event, other_first)
            )
        other_last = other.last_event
        if other_last is not None:
            self.last_event = (
                other_last if self.last_event is None
                else max(self.last_event, other_last)
            )
        if other._merged:
            self._window_sum += other._window_sum
            self._map_capacity_s += other._map_capacity_s
            self._reduce_capacity_s += other._reduce_capacity_s
        else:
            span = other.window
            config = other.config
            self._window_sum += span
            self._map_capacity_s += config.total_map_slots * span
            self._reduce_capacity_s += config.total_reduce_slots * span
        for scheduler, counters in other.scheduler_counters.items():
            # Merge folds a handful of shard tables once per run, not
            # per-event work; the fresh bucket dict is the output itself.
            bucket = self.scheduler_counters.setdefault(scheduler, {})  # repro: allow[DT401]
            for name, value in counters.items():
                bucket[name] = bucket.get(name, 0) + value
        return self

    # -- derived series -------------------------------------------------------

    @property
    def window(self) -> float:
        """Span between the first and last recorded event.

        After a :meth:`merge` this is the sum of the constituent runs'
        windows (each run spans its own simulated time axis)."""
        if self._merged:
            return self._window_sum
        if self.first_event is None or self.last_event is None:
            return 0.0
        return self.last_event - self.first_event

    def utilization(self, kind: Optional[TaskKind] = None, window: Optional[float] = None) -> float:
        """Busy slot-seconds divided by slot capacity over the window.

        With ``kind=None``, both slot pools are combined (this is the
        cluster utilization of Fig 12).  On a merged collector the
        capacity denominator is the sum of each constituent's own
        ``slots x window`` product (an explicit ``window`` override still
        wins, priced at *this* collector's config).
        """
        if window is None and self._merged:
            if kind is None:
                capacity = self._map_capacity_s + self._reduce_capacity_s
                busy = self.busy_map_seconds + self.busy_reduce_seconds
            elif kind.uses_map_slot:
                capacity = self._map_capacity_s
                busy = self.busy_map_seconds
            else:
                capacity = self._reduce_capacity_s
                busy = self.busy_reduce_seconds
            return busy / capacity if capacity > 0 else 0.0
        span = self.window if window is None else window
        if span <= 0:
            return 0.0
        if kind is None:
            capacity = (self.config.total_map_slots + self.config.total_reduce_slots) * span
            busy = self.busy_map_seconds + self.busy_reduce_seconds
        elif kind.uses_map_slot:
            capacity = self.config.total_map_slots * span
            busy = self.busy_map_seconds
        else:
            capacity = self.config.total_reduce_slots * span
            busy = self.busy_reduce_seconds
        return busy / capacity if capacity > 0 else 0.0

    def allocation_series(
        self, kind: TaskKind, workflow: Optional[str] = None
    ) -> List[SlotSample]:
        """Step series of slots of ``kind`` in use over time.

        With ``workflow`` set, only that workflow's tasks are counted —
        one line of a Fig 14-19 panel.  Events at the same instant are
        coalesced into a single step.
        """
        use_map = kind.uses_map_slot
        samples: List[SlotSample] = []
        count = 0
        for time, wf, is_map, delta in sorted(self._deltas, key=lambda d: d[0]):
            if is_map is not use_map:
                continue
            if workflow is not None and wf != workflow:
                continue
            count += delta
            if samples and samples[-1].time == time:
                samples[-1] = SlotSample(time, count)
            else:
                samples.append(SlotSample(time, count))
        return samples

    def allocation_matrix(
        self, kind: TaskKind, workflows: List[str], step: float
    ) -> Tuple[List[float], Dict[str, List[int]]]:
        """Sample each workflow's allocation series on a regular grid.

        Returns ``(times, {workflow: counts})`` — the exact data a Fig 14-19
        panel plots (one stacked line per workflow, darker = earlier
        release, in the paper's rendering).
        """
        if self.first_event is None:
            return [], {wf: [] for wf in workflows}
        t0, t1 = self.first_event, self.last_event
        times = []
        t = t0
        while t <= t1 + 1e-9:
            times.append(t)
            t += step
        result: Dict[str, List[int]] = {}
        for wf in workflows:
            series = self.allocation_series(kind, wf)
            counts: List[int] = []
            idx = 0
            current = 0
            for t in times:
                while idx < len(series) and series[idx].time <= t:
                    current = series[idx].count
                    idx += 1
                counts.append(current)
            result[wf] = counts
        return times, result

    def peak_allocation(self, kind: TaskKind, workflow: Optional[str] = None) -> int:
        """Maximum simultaneous slots of ``kind`` in use."""
        series = self.allocation_series(kind, workflow)
        return max((s.count for s in series), default=0)

    def progress_curve(self, workflow: str) -> List[Tuple[float, int]]:
        """The true progress ``rho_i(t)``: cumulative wjob task launches.

        Submitter and speculative-backup attempts are excluded, matching
        the scheduler's own accounting.  Plotted against the plan's
        requirement curve this shows how closely a workflow followed its
        scheduling plan — the paper's core intuition.
        """
        times = sorted(t for t, wf in self._progress_events if wf == workflow)
        return [(t, i + 1) for i, t in enumerate(times)]
