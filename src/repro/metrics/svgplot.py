"""Dependency-free SVG charts for the reproduced figures.

The benches print the paper's tables; this module turns the same data into
actual figures (grouped bars, line/step charts, log axes) without any
plotting library — only SVG text.  Used by ``examples/render_figures.py``
to write the reproduction's counterparts of the paper's plots.

The API is deliberately tiny::

    chart = SvgChart(title="Fig 8", xlabel="cluster", ylabel="miss ratio")
    chart.add_line([1, 2, 3], [0.3, 0.2, 0.1], label="FIFO")
    chart.save("fig8.svg")
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

__all__ = ["SvgChart", "GroupedBarChart", "PALETTE"]

#: Colour-blind-safe categorical palette (Okabe-Ito).
PALETTE = [
    "#0072B2",  # blue
    "#D55E00",  # vermillion
    "#009E73",  # green
    "#CC79A7",  # purple
    "#E69F00",  # orange
    "#56B4E9",  # sky
    "#F0E442",  # yellow
    "#000000",  # black
]


def _escape(text: str) -> str:
    return text.replace("&", "&amp;").replace("<", "&lt;").replace(">", "&gt;")


def _ticks(lo: float, hi: float, target: int = 5) -> List[float]:
    """Round tick positions covering [lo, hi]."""
    if hi <= lo:
        hi = lo + 1.0
    span = hi - lo
    raw_step = span / max(target, 1)
    magnitude = 10 ** math.floor(math.log10(raw_step))
    for mult in (1, 2, 2.5, 5, 10):
        step = magnitude * mult
        if span / step <= target + 1:
            break
    first = math.ceil(lo / step) * step
    ticks = []
    value = first
    while value <= hi + 1e-12:
        ticks.append(round(value, 10))
        value += step
    return ticks


def _log_ticks(lo: float, hi: float) -> List[float]:
    ticks = []
    exponent = math.floor(math.log10(max(lo, 1e-12)))
    while 10 ** exponent <= hi * 1.0001:
        if 10 ** exponent >= lo * 0.9999:
            ticks.append(10.0 ** exponent)
        exponent += 1
    return ticks or [lo, hi]


@dataclass
class _Series:
    xs: List[float]
    ys: List[float]
    label: str
    color: str
    step: bool = False
    dashed: bool = False


class SvgChart:
    """A line/step chart with optional logarithmic axes."""

    def __init__(
        self,
        title: str = "",
        xlabel: str = "",
        ylabel: str = "",
        width: int = 640,
        height: int = 400,
        xlog: bool = False,
        ylog: bool = False,
    ) -> None:
        self.title = title
        self.xlabel = xlabel
        self.ylabel = ylabel
        self.width = width
        self.height = height
        self.xlog = xlog
        self.ylog = ylog
        self._series: List[_Series] = []
        self.margin = (56, 16, 44, 64)  # top, right, bottom(+label), left(+label)

    def add_line(
        self,
        xs: Sequence[float],
        ys: Sequence[float],
        label: str = "",
        color: Optional[str] = None,
        dashed: bool = False,
    ) -> None:
        """Add a polyline series."""
        if len(xs) != len(ys):
            raise ValueError("xs and ys must have equal length")
        if not xs:
            raise ValueError("empty series")
        color = color or PALETTE[len(self._series) % len(PALETTE)]
        self._series.append(_Series(list(map(float, xs)), list(map(float, ys)), label, color, dashed=dashed))

    def add_step(
        self,
        xs: Sequence[float],
        ys: Sequence[float],
        label: str = "",
        color: Optional[str] = None,
    ) -> None:
        """Add a step (staircase) series — e.g. a progress-requirement curve."""
        if len(xs) != len(ys):
            raise ValueError("xs and ys must have equal length")
        if not xs:
            raise ValueError("empty series")
        color = color or PALETTE[len(self._series) % len(PALETTE)]
        self._series.append(_Series(list(map(float, xs)), list(map(float, ys)), label, color, step=True))

    # -- rendering -------------------------------------------------------------

    def _bounds(self) -> Tuple[float, float, float, float]:
        xs = [x for s in self._series for x in s.xs]
        ys = [y for s in self._series for y in s.ys]
        x_lo, x_hi = min(xs), max(xs)
        y_lo, y_hi = min(ys), max(ys)
        if not self.ylog:
            y_lo = min(y_lo, 0.0)
            y_hi = y_hi + 0.05 * (y_hi - y_lo or 1.0)
        return x_lo, x_hi, y_lo, y_hi

    def _scale(self, value: float, lo: float, hi: float, pixel_lo: float, pixel_hi: float, log: bool) -> float:
        if log:
            value, lo, hi = math.log10(max(value, 1e-12)), math.log10(max(lo, 1e-12)), math.log10(max(hi, 1e-12))
        if hi == lo:
            return (pixel_lo + pixel_hi) / 2
        frac = (value - lo) / (hi - lo)
        return pixel_lo + frac * (pixel_hi - pixel_lo)

    def render(self) -> str:
        """The chart as an SVG document string."""
        if not self._series:
            raise ValueError("no series added")
        top, right, bottom, left = self.margin
        plot_w = self.width - left - right
        plot_h = self.height - top - bottom
        x_lo, x_hi, y_lo, y_hi = self._bounds()

        def sx(x: float) -> float:
            return self._scale(x, x_lo, x_hi, left, left + plot_w, self.xlog)

        def sy(y: float) -> float:
            return self._scale(y, y_lo, y_hi, top + plot_h, top, self.ylog)

        parts = [
            f'<svg xmlns="http://www.w3.org/2000/svg" width="{self.width}" height="{self.height}" '
            f'viewBox="0 0 {self.width} {self.height}" font-family="sans-serif" font-size="12">',
            f'<rect width="{self.width}" height="{self.height}" fill="white"/>',
            f'<text x="{self.width / 2}" y="22" text-anchor="middle" font-size="14" font-weight="bold">'
            f"{_escape(self.title)}</text>",
        ]
        # Axes frame.
        parts.append(
            f'<rect x="{left}" y="{top}" width="{plot_w}" height="{plot_h}" fill="none" stroke="#444"/>'
        )
        # Ticks and grid.
        x_ticks = _log_ticks(x_lo, x_hi) if self.xlog else _ticks(x_lo, x_hi)
        y_ticks = _log_ticks(y_lo, y_hi) if self.ylog else _ticks(y_lo, y_hi)
        for tick in x_ticks:
            px = sx(tick)
            parts.append(f'<line x1="{px:.1f}" y1="{top}" x2="{px:.1f}" y2="{top + plot_h}" stroke="#ddd"/>')
            label = f"{tick:g}"
            parts.append(
                f'<text x="{px:.1f}" y="{top + plot_h + 16}" text-anchor="middle">{label}</text>'
            )
        for tick in y_ticks:
            py = sy(tick)
            parts.append(f'<line x1="{left}" y1="{py:.1f}" x2="{left + plot_w}" y2="{py:.1f}" stroke="#ddd"/>')
            parts.append(
                f'<text x="{left - 6}" y="{py + 4:.1f}" text-anchor="end">{tick:g}</text>'
            )
        # Axis labels.
        if self.xlabel:
            parts.append(
                f'<text x="{left + plot_w / 2}" y="{self.height - 8}" text-anchor="middle">'
                f"{_escape(self.xlabel)}</text>"
            )
        if self.ylabel:
            parts.append(
                f'<text x="14" y="{top + plot_h / 2}" text-anchor="middle" '
                f'transform="rotate(-90 14 {top + plot_h / 2})">{_escape(self.ylabel)}</text>'
            )
        # Series.
        for series in self._series:
            points: List[Tuple[float, float]] = []
            for i, (x, y) in enumerate(zip(series.xs, series.ys)):
                if series.step and points:
                    points.append((sx(x), points[-1][1]))
                points.append((sx(x), sy(y)))
            path = " ".join(f"{px:.1f},{py:.1f}" for px, py in points)
            dash = ' stroke-dasharray="6,4"' if series.dashed else ""
            parts.append(
                f'<polyline points="{path}" fill="none" stroke="{series.color}" stroke-width="2"{dash}/>'
            )
        # Legend.
        legend_y = top + 8
        for series in self._series:
            if not series.label:
                continue
            parts.append(
                f'<line x1="{left + plot_w - 130}" y1="{legend_y}" x2="{left + plot_w - 106}" '
                f'y2="{legend_y}" stroke="{series.color}" stroke-width="3"/>'
            )
            parts.append(
                f'<text x="{left + plot_w - 100}" y="{legend_y + 4}">{_escape(series.label)}</text>'
            )
            legend_y += 16
        parts.append("</svg>")
        return "\n".join(parts)

    def save(self, path: str) -> None:
        with open(path, "w") as fh:
            fh.write(self.render())


class GroupedBarChart:
    """Grouped vertical bars — the Fig 8-12 shape."""

    def __init__(
        self,
        title: str = "",
        xlabel: str = "",
        ylabel: str = "",
        width: int = 640,
        height: int = 400,
    ) -> None:
        self.title = title
        self.xlabel = xlabel
        self.ylabel = ylabel
        self.width = width
        self.height = height
        self.groups: List[str] = []
        self._series: List[Tuple[str, List[float], str]] = []

    def set_groups(self, groups: Sequence[str]) -> None:
        self.groups = list(groups)

    def add_series(self, label: str, values: Sequence[float], color: Optional[str] = None) -> None:
        if len(values) != len(self.groups):
            raise ValueError(f"expected {len(self.groups)} values, got {len(values)}")
        color = color or PALETTE[len(self._series) % len(PALETTE)]
        self._series.append((label, list(map(float, values)), color))

    def render(self) -> str:
        if not self.groups or not self._series:
            raise ValueError("set_groups and add_series must be called first")
        top, right, bottom, left = 56, 16, 44, 64
        plot_w = self.width - left - right
        plot_h = self.height - top - bottom
        y_hi = max(v for _l, values, _c in self._series for v in values)
        y_hi = y_hi * 1.1 if y_hi > 0 else 1.0

        def sy(y: float) -> float:
            return top + plot_h - (y / y_hi) * plot_h

        parts = [
            f'<svg xmlns="http://www.w3.org/2000/svg" width="{self.width}" height="{self.height}" '
            f'viewBox="0 0 {self.width} {self.height}" font-family="sans-serif" font-size="12">',
            f'<rect width="{self.width}" height="{self.height}" fill="white"/>',
            f'<text x="{self.width / 2}" y="22" text-anchor="middle" font-size="14" font-weight="bold">'
            f"{_escape(self.title)}</text>",
            f'<rect x="{left}" y="{top}" width="{plot_w}" height="{plot_h}" fill="none" stroke="#444"/>',
        ]
        for tick in _ticks(0.0, y_hi):
            py = sy(tick)
            parts.append(f'<line x1="{left}" y1="{py:.1f}" x2="{left + plot_w}" y2="{py:.1f}" stroke="#ddd"/>')
            parts.append(f'<text x="{left - 6}" y="{py + 4:.1f}" text-anchor="end">{tick:g}</text>')
        group_w = plot_w / len(self.groups)
        bar_w = group_w * 0.8 / len(self._series)
        for gi, group in enumerate(self.groups):
            gx = left + gi * group_w
            parts.append(
                f'<text x="{gx + group_w / 2:.1f}" y="{top + plot_h + 16}" text-anchor="middle">'
                f"{_escape(group)}</text>"
            )
            for si, (_label, values, color) in enumerate(self._series):
                bx = gx + group_w * 0.1 + si * bar_w
                by = sy(values[gi])
                parts.append(
                    f'<rect x="{bx:.1f}" y="{by:.1f}" width="{bar_w:.1f}" '
                    f'height="{top + plot_h - by:.1f}" fill="{color}"/>'
                )
        if self.xlabel:
            parts.append(
                f'<text x="{left + plot_w / 2}" y="{self.height - 8}" text-anchor="middle">'
                f"{_escape(self.xlabel)}</text>"
            )
        if self.ylabel:
            parts.append(
                f'<text x="14" y="{top + plot_h / 2}" text-anchor="middle" '
                f'transform="rotate(-90 14 {top + plot_h / 2})">{_escape(self.ylabel)}</text>'
            )
        legend_y = top + 8
        for label, _values, color in self._series:
            parts.append(
                f'<rect x="{left + plot_w - 130}" y="{legend_y - 8}" width="20" height="10" fill="{color}"/>'
            )
            parts.append(f'<text x="{left + plot_w - 104}" y="{legend_y + 1}">{_escape(label)}</text>')
            legend_y += 16
        parts.append("</svg>")
        return "\n".join(parts)

    def save(self, path: str) -> None:
        with open(path, "w") as fh:
            fh.write(self.render())
