"""Evaluation-metric computation and plain-text table formatting.

These helpers turn per-workflow completion stats into the scalar rows the
paper's Figs 8-11 plot: deadline miss ratio, maximum tardiness, total
tardiness, workspans.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Optional, Sequence

__all__ = [
    "deadline_miss_ratio",
    "max_tardiness",
    "total_tardiness",
    "workspans",
    "format_table",
]


def _tardiness_values(stats: Iterable["WorkflowStats"]) -> List[float]:
    values = []
    for s in stats:
        if s.deadline is None:
            continue
        values.append(max(0.0, s.completion_time - s.deadline))
    return values


def deadline_miss_ratio(stats: Iterable["WorkflowStats"]) -> float:
    """Fraction of deadline-carrying workflows that finished late (Fig 8)."""
    with_deadline = [s for s in stats if s.deadline is not None]
    if not with_deadline:
        return 0.0
    misses = sum(1 for s in with_deadline if s.completion_time > s.deadline)
    return misses / len(with_deadline)


def max_tardiness(stats: Iterable["WorkflowStats"]) -> float:
    """Largest lateness over all workflows, 0 if all met (Fig 9)."""
    return max(_tardiness_values(stats), default=0.0)


def total_tardiness(stats: Iterable["WorkflowStats"]) -> float:
    """Summed lateness over all workflows (Fig 10)."""
    return sum(_tardiness_values(stats))


def workspans(stats: Iterable["WorkflowStats"]) -> Dict[str, float]:
    """Per-workflow workspan (completion - submission), the Fig 11 metric."""
    return {s.name: s.workspan for s in stats}


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: Optional[str] = None,
    float_fmt: str = "{:.3f}",
) -> str:
    """Render rows as an aligned monospace table (the bench output format)."""
    rendered: List[List[str]] = []
    for row in rows:
        cells = []
        for value in row:
            if isinstance(value, float):
                cells.append(float_fmt.format(value))
            else:
                cells.append(str(value))
        rendered.append(cells)
    widths = [len(h) for h in headers]
    for cells in rendered:
        for i, cell in enumerate(cells):
            widths[i] = max(widths[i], len(cell))
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)))
    lines.append("  ".join("-" * w for w in widths))
    for cells in rendered:
        lines.append("  ".join(cell.rjust(widths[i]) for i, cell in enumerate(cells)))
    return "\n".join(lines)
