"""WOHA XML workflow configuration files (paper §III-B).

A WOHA user prepares an XML file naming each wjob's jar, main class, input
and output datasets, task counts/durations and the workflow deadline, then
runs ``hadoop dag /path/to/W_i.xml``.  This module parses and emits that
format and — like WOHA's Configuration Validator — infers prerequisite sets
``P_i`` from the input/output paths of the wjobs when ``<after>`` elements
are absent.

Schema (all durations in seconds)::

    <workflow name="ads-pipeline" deadline="3600" submit="0">
      <job name="extract" maps="20" reduces="4" map-duration="30" reduce-duration="120"
           jar="/user/x/extract.jar" main-class="com.x.Extract">
        <input>/logs/2014-03-07</input>
        <output>/stage/extracted</output>
      </job>
      <job name="aggregate" maps="10" reduces="2" map-duration="20" reduce-duration="90">
        <input>/stage/extracted</input>
        <output>/stage/agg</output>
        <after>extract</after>           <!-- optional; else inferred -->
      </job>
    </workflow>
"""

from __future__ import annotations

import xml.etree.ElementTree as ET
from typing import Dict, List, Optional, Set

from repro.workflow.model import WJob, Workflow, WorkflowValidationError

__all__ = ["parse_workflow_xml", "workflow_to_xml", "infer_prerequisites"]


def infer_prerequisites(jobs: List[WJob]) -> List[WJob]:
    """Derive ``P_i`` from dataset paths, as the Configuration Validator does.

    Job B depends on job A iff one of B's inputs is one of A's outputs.
    Jobs that already carry explicit prerequisites keep them (the explicit
    set wins; paths only fill gaps).

    Raises:
        WorkflowValidationError: if two jobs claim the same output path —
            the dependency would be ambiguous.
    """
    producer: Dict[str, str] = {}
    for job in jobs:
        for path in job.outputs:
            if path in producer:
                raise WorkflowValidationError(
                    f"output path {path!r} produced by both {producer[path]!r} and {job.name!r}"
                )
            producer[path] = job.name
    result: List[WJob] = []
    for job in jobs:
        if job.prerequisites:
            result.append(job)
            continue
        inferred: Set[str] = {
            producer[path]
            for path in job.inputs
            if path in producer and producer[path] != job.name
        }
        if inferred:
            result.append(
                WJob(
                    name=job.name,
                    num_maps=job.num_maps,
                    num_reduces=job.num_reduces,
                    map_duration=job.map_duration,
                    reduce_duration=job.reduce_duration,
                    prerequisites=frozenset(inferred),
                    inputs=job.inputs,
                    outputs=job.outputs,
                    jar_path=job.jar_path,
                    main_class=job.main_class,
                )
            )
        else:
            result.append(job)
    return result


def _require_attr(element: ET.Element, attr: str, context: str) -> str:
    value = element.get(attr)
    if value is None:
        raise WorkflowValidationError(f"{context}: missing required attribute {attr!r}")
    return value


def parse_workflow_xml(text: str) -> Workflow:
    """Parse a WOHA workflow configuration document into a :class:`Workflow`."""
    try:
        root = ET.fromstring(text)
    except ET.ParseError as exc:
        raise WorkflowValidationError(f"malformed workflow XML: {exc}") from exc
    if root.tag != "workflow":
        raise WorkflowValidationError(f"root element must be <workflow>, got <{root.tag}>")
    name = _require_attr(root, "name", "<workflow>")
    submit = float(root.get("submit", "0"))
    deadline_attr = root.get("deadline")
    deadline: Optional[float] = None
    if deadline_attr is not None:
        # A plain number is a *relative* deadline (the common case for
        # recurrent workflows); prefix "@" pins an absolute time.
        if deadline_attr.startswith("@"):
            deadline = float(deadline_attr[1:])
        else:
            deadline = submit + float(deadline_attr)

    jobs: List[WJob] = []
    for elem in root.findall("job"):
        job_name = _require_attr(elem, "name", f"workflow {name!r} <job>")
        context = f"workflow {name!r} job {job_name!r}"
        try:
            num_maps = int(_require_attr(elem, "maps", context))
            num_reduces = int(_require_attr(elem, "reduces", context))
            map_duration = float(elem.get("map-duration", "0"))
            reduce_duration = float(elem.get("reduce-duration", "0"))
        except ValueError as exc:
            raise WorkflowValidationError(f"{context}: bad numeric attribute ({exc})") from exc
        jobs.append(
            WJob(
                name=job_name,
                num_maps=num_maps,
                num_reduces=num_reduces,
                map_duration=map_duration,
                reduce_duration=reduce_duration,
                prerequisites=frozenset(e.text.strip() for e in elem.findall("after") if e.text),
                inputs=tuple(e.text.strip() for e in elem.findall("input") if e.text),
                outputs=tuple(e.text.strip() for e in elem.findall("output") if e.text),
                jar_path=elem.get("jar"),
                main_class=elem.get("main-class"),
            )
        )
    if not jobs:
        raise WorkflowValidationError(f"workflow {name!r} declares no jobs")
    jobs = infer_prerequisites(jobs)
    return Workflow(name, jobs, submit_time=submit, deadline=deadline)


def workflow_to_xml(workflow: Workflow) -> str:
    """Serialise a :class:`Workflow` back to the XML configuration format.

    Round-trips with :func:`parse_workflow_xml` (prerequisites are emitted
    explicitly, so path inference is not needed on re-parse).
    """
    root = ET.Element("workflow", {"name": workflow.name, "submit": repr(workflow.submit_time)})
    if workflow.deadline is not None:
        root.set("deadline", "@" + repr(workflow.deadline))
    for job in workflow.jobs:
        attrs = {
            "name": job.name,
            "maps": str(job.num_maps),
            "reduces": str(job.num_reduces),
            "map-duration": repr(job.map_duration),
            "reduce-duration": repr(job.reduce_duration),
        }
        if job.jar_path:
            attrs["jar"] = job.jar_path
        if job.main_class:
            attrs["main-class"] = job.main_class
        elem = ET.SubElement(root, "job", attrs)
        for path in job.inputs:
            ET.SubElement(elem, "input").text = path
        for path in job.outputs:
            ET.SubElement(elem, "output").text = path
        for pre in sorted(job.prerequisites):
            ET.SubElement(elem, "after").text = pre
    return ET.tostring(root, encoding="unicode")
