"""DAG analysis utilities over :class:`~repro.workflow.model.Workflow`.

These are the graph primitives the intra-workflow prioritizers of §V-C
(HLF / LPF / MPF) and the workload generators are built on: level
assignment, longest (critical) paths, ancestor/descendant closures.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Set, Tuple

from repro.workflow.model import Workflow

__all__ = [
    "levels",
    "height",
    "longest_path_weights",
    "critical_path",
    "critical_path_length",
    "ancestors",
    "descendants",
    "is_chain",
    "width_profile",
]


def levels(workflow: Workflow) -> Dict[str, int]:
    """Assign each job its HLF level (paper §V-C).

    Jobs with no dependents are level 0.  A job's level is one more than the
    maximum level of its dependents, so jobs heading long chains get high
    levels.  (This is height measured from the sinks.)
    """
    result: Dict[str, int] = {}
    for name in reversed(workflow.topological_order()):
        deps = workflow.dependents(name)
        result[name] = 0 if not deps else 1 + max(result[d] for d in deps)
    return result


def height(workflow: Workflow) -> int:
    """Number of levels in the workflow (length of the longest job chain)."""
    return 1 + max(levels(workflow).values())


def longest_path_weights(workflow: Workflow) -> Dict[str, float]:
    """For each job, the weight of the heaviest job-chain starting at it.

    The weight of a job is its :attr:`~repro.workflow.model.WJob.serial_length`
    (estimated map time + reduce time), matching LPF's definition of job
    length in §V-C.  The returned value includes the job itself.
    """
    result: Dict[str, float] = {}
    for name in reversed(workflow.topological_order()):
        job = workflow.job(name)
        deps = workflow.dependents(name)
        downstream = max((result[d] for d in deps), default=0.0)
        result[name] = job.serial_length + downstream
    return result


def critical_path(workflow: Workflow) -> Tuple[str, ...]:
    """The job names along the heaviest root-to-sink chain.

    Ties are broken lexicographically so the result is deterministic.
    """
    weights = longest_path_weights(workflow)
    start = min(
        (name for name in workflow.job_names()),
        key=lambda n: (-weights[n], n),
    )
    path: List[str] = [start]
    current = start
    while True:
        deps = workflow.dependents(current)
        if not deps:
            break
        current = min(deps, key=lambda n: (-weights[n], n))
        path.append(current)
    return tuple(path)


def critical_path_length(workflow: Workflow) -> float:
    """Weight of the critical path — a lower bound on any schedule's makespan."""
    weights = longest_path_weights(workflow)
    return max(weights.values())


def ancestors(workflow: Workflow, job_name: str) -> FrozenSet[str]:
    """All transitive prerequisites of ``job_name`` (not including itself)."""
    seen: Set[str] = set()
    frontier = list(workflow.prerequisites(job_name))
    while frontier:
        name = frontier.pop()
        if name in seen:
            continue
        seen.add(name)
        frontier.extend(workflow.prerequisites(name))
    return frozenset(seen)


def descendants(workflow: Workflow, job_name: str) -> FrozenSet[str]:
    """All transitive dependents of ``job_name`` (not including itself)."""
    seen: Set[str] = set()
    frontier = list(workflow.dependents(job_name))
    while frontier:
        name = frontier.pop()
        if name in seen:
            continue
        seen.add(name)
        frontier.extend(workflow.dependents(name))
    return frozenset(seen)


def is_chain(workflow: Workflow) -> bool:
    """True when the workflow is a simple linear sequence of jobs."""
    return all(
        len(workflow.prerequisites(n)) <= 1 and len(workflow.dependents(n)) <= 1
        for n in workflow.job_names()
    ) and len(workflow.roots()) == 1


def width_profile(workflow: Workflow) -> List[int]:
    """Number of jobs at each HLF level, indexed from the deepest level.

    ``width_profile(w)[k]`` is how many jobs sit at level
    ``height(w) - 1 - k``; the list reads top (sources) to bottom (sinks).
    Useful for characterising generated topologies in tests and workload
    summaries.
    """
    lvl = levels(workflow)
    top = max(lvl.values())
    counts = [0] * (top + 1)
    for value in lvl.values():
        counts[top - value] += 1
    return counts
