"""Workflow model (paper §II): DAGs of Map-Reduce jobs with deadlines."""

from repro.workflow.model import WJob, Workflow, WorkflowValidationError
from repro.workflow.builder import WorkflowBuilder
from repro.workflow import dag

__all__ = ["WJob", "Workflow", "WorkflowValidationError", "WorkflowBuilder", "dag"]
