"""The workflow model of paper §II.

A workflow ``W_i = {J_i, P_i, S_i, D_i}`` is a set of Map-Reduce jobs
(*wjobs*) with prerequisite relations, a submission time ``S_i`` and a
deadline ``D_i``.  A wjob ``J_i^j`` has ``m_i^j`` map tasks, each estimated to
take ``M_i^j`` seconds, and ``r_i^j`` reduce tasks, each estimated to take
``R_i^j`` seconds.

:class:`WJob` and :class:`Workflow` are immutable descriptions — runtime state
(how many tasks have been scheduled, which jobs finished) lives in
:mod:`repro.cluster.job` and the schedulers.  Keeping the description frozen
means a single workflow object can be submitted to many simulations (e.g. the
recurrence experiments of Fig 12) without cross-talk.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, List, Mapping, Optional, Sequence, Tuple

__all__ = ["WJob", "Workflow", "WorkflowValidationError"]


class WorkflowValidationError(ValueError):
    """Raised when a workflow description is structurally invalid.

    Covers duplicate job names, dangling prerequisite references, cycles,
    non-positive task counts or durations, and deadline/submit-time
    inconsistencies.
    """


@dataclass(frozen=True)
class WJob:
    """One Map-Reduce job inside a workflow (a *wjob*).

    Attributes:
        name: unique name within the workflow.
        num_maps: ``m_i^j`` — number of map tasks (>= 0; a map-only job has
            ``num_reduces == 0``, a reduce-only job ``num_maps == 0``; at
            least one phase must be non-empty).
        num_reduces: ``r_i^j`` — number of reduce tasks.
        map_duration: ``M_i^j`` — estimated seconds per map task.
        reduce_duration: ``R_i^j`` — estimated seconds per reduce task.
        prerequisites: names of wjobs in ``P_i^j`` that must finish first.
        inputs / outputs: HDFS paths; used by the configuration validator to
            infer prerequisites when they are not given explicitly.
        jar_path / main_class: recorded for config fidelity (the simulator
            does not execute user code).
    """

    name: str
    num_maps: int
    num_reduces: int
    map_duration: float
    reduce_duration: float
    prerequisites: FrozenSet[str] = frozenset()
    inputs: Tuple[str, ...] = ()
    outputs: Tuple[str, ...] = ()
    jar_path: Optional[str] = None
    main_class: Optional[str] = None

    def __post_init__(self) -> None:
        if not self.name:
            raise WorkflowValidationError("wjob name must be non-empty")
        if self.num_maps < 0 or self.num_reduces < 0:
            raise WorkflowValidationError(f"{self.name}: negative task count")
        if self.num_maps == 0 and self.num_reduces == 0:
            raise WorkflowValidationError(f"{self.name}: job has no tasks")
        if self.num_maps > 0 and self.map_duration <= 0:
            raise WorkflowValidationError(f"{self.name}: non-positive map duration")
        if self.num_reduces > 0 and self.reduce_duration <= 0:
            raise WorkflowValidationError(f"{self.name}: non-positive reduce duration")
        if self.name in self.prerequisites:
            raise WorkflowValidationError(f"{self.name}: job depends on itself")
        # Normalise collection types so hashing/equality behave.
        object.__setattr__(self, "prerequisites", frozenset(self.prerequisites))
        object.__setattr__(self, "inputs", tuple(self.inputs))
        object.__setattr__(self, "outputs", tuple(self.outputs))

    @property
    def total_tasks(self) -> int:
        """``m_i^j + r_i^j``."""
        return self.num_maps + self.num_reduces

    @property
    def serial_length(self) -> float:
        """Estimated map-phase + reduce-phase latency with unlimited slots.

        This is the *job length* used by Longest Path First (paper §V-C):
        the sum of the estimated map task execution time and the estimated
        reduce task execution time.
        """
        length = 0.0
        if self.num_maps > 0:
            length += self.map_duration
        if self.num_reduces > 0:
            length += self.reduce_duration
        return length

    @property
    def total_work(self) -> float:
        """Total slot-seconds the job needs."""
        return self.num_maps * self.map_duration + self.num_reduces * self.reduce_duration


class Workflow:
    """An immutable DAG of :class:`WJob` with a submit time and a deadline.

    Args:
        name: workflow identifier.
        jobs: the wjobs; names must be unique.
        submit_time: ``S_i`` in simulated seconds.
        deadline: absolute deadline ``D_i``; ``None`` means best-effort
            (no deadline — used by throughput-style experiments).

    Raises:
        WorkflowValidationError: on duplicate names, dangling prerequisites
            or dependency cycles.
    """

    def __init__(
        self,
        name: str,
        jobs: Iterable[WJob],
        submit_time: float = 0.0,
        deadline: Optional[float] = None,
    ) -> None:
        self.name = name
        self.jobs: Tuple[WJob, ...] = tuple(jobs)
        self.submit_time = float(submit_time)
        self.deadline = None if deadline is None else float(deadline)
        if not self.name:
            raise WorkflowValidationError("workflow name must be non-empty")
        if not self.jobs:
            raise WorkflowValidationError(f"{name}: workflow has no jobs")
        if self.deadline is not None and self.deadline < self.submit_time:
            raise WorkflowValidationError(
                f"{name}: deadline {self.deadline} precedes submit time {self.submit_time}"
            )
        self._by_name: Dict[str, WJob] = {}
        for job in self.jobs:
            if job.name in self._by_name:
                raise WorkflowValidationError(f"{name}: duplicate job name {job.name!r}")
            self._by_name[job.name] = job
        for job in self.jobs:
            # Sorted so *which* missing prerequisite gets reported does not
            # depend on set order — errors are part of the observable output.
            for pre in sorted(job.prerequisites):
                if pre not in self._by_name:
                    raise WorkflowValidationError(
                        f"{name}: job {job.name!r} requires unknown job {pre!r}"
                    )
        self._dependents: Dict[str, FrozenSet[str]] = self._compute_dependents()
        self._topo_order: Tuple[str, ...] = self._toposort()

    # -- structure -----------------------------------------------------

    def _compute_dependents(self) -> Dict[str, FrozenSet[str]]:
        """Invert prerequisites into the dependent sets ``D_i^j`` of §IV-A."""
        dependents: Dict[str, set] = {job.name: set() for job in self.jobs}
        for job in self.jobs:
            for pre in sorted(job.prerequisites):
                dependents[pre].add(job.name)
        return {name: frozenset(deps) for name, deps in dependents.items()}

    def _toposort(self) -> Tuple[str, ...]:
        """Kahn's algorithm; deterministic (insertion-ordered) tie-break."""
        indegree = {job.name: len(job.prerequisites) for job in self.jobs}
        ready = [job.name for job in self.jobs if indegree[job.name] == 0]
        order: List[str] = []
        head = 0
        while head < len(ready):
            name = ready[head]
            head += 1
            order.append(name)
            for dep in sorted(self._dependents[name]):
                indegree[dep] -= 1
                if indegree[dep] == 0:
                    ready.append(dep)
        if len(order) != len(self.jobs):
            cyclic = sorted(n for n, d in indegree.items() if d > 0)
            raise WorkflowValidationError(f"{self.name}: dependency cycle among {cyclic}")
        return tuple(order)

    # -- accessors -----------------------------------------------------

    def __len__(self) -> int:
        return len(self.jobs)

    def __contains__(self, job_name: str) -> bool:
        return job_name in self._by_name

    def __iter__(self):
        return iter(self.jobs)

    def job(self, name: str) -> WJob:
        """Look a wjob up by name."""
        return self._by_name[name]

    def job_names(self) -> Tuple[str, ...]:
        return tuple(job.name for job in self.jobs)

    def dependents(self, job_name: str) -> FrozenSet[str]:
        """``D_i^j``: jobs that list ``job_name`` as a prerequisite."""
        return self._dependents[job_name]

    def prerequisites(self, job_name: str) -> FrozenSet[str]:
        """``P_i^j``."""
        return self._by_name[job_name].prerequisites

    def topological_order(self) -> Tuple[str, ...]:
        """Job names in a deterministic topological order."""
        return self._topo_order

    def roots(self) -> Tuple[str, ...]:
        """Jobs with no prerequisites — runnable at submission."""
        return tuple(job.name for job in self.jobs if not job.prerequisites)

    def sinks(self) -> Tuple[str, ...]:
        """Jobs nothing depends on."""
        return tuple(job.name for job in self.jobs if not self._dependents[job.name])

    @property
    def total_tasks(self) -> int:
        """Total number of map+reduce tasks across all wjobs."""
        return sum(job.total_tasks for job in self.jobs)

    @property
    def total_work(self) -> float:
        """Total slot-seconds across all wjobs."""
        return sum(job.total_work for job in self.jobs)

    @property
    def relative_deadline(self) -> Optional[float]:
        """``D_i - S_i``, or ``None`` for best-effort workflows."""
        if self.deadline is None:
            return None
        return self.deadline - self.submit_time

    def with_timing(self, submit_time: float, deadline: Optional[float]) -> "Workflow":
        """A copy of this workflow with new ``S_i`` / ``D_i``.

        Used for recurrent submissions (Fig 12) where the same topology is
        released repeatedly with shifted timing.
        """
        return Workflow(self.name, self.jobs, submit_time=submit_time, deadline=deadline)

    def renamed(self, name: str) -> "Workflow":
        """A copy with a different workflow name (recurrence instances)."""
        return Workflow(name, self.jobs, submit_time=self.submit_time, deadline=self.deadline)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        dl = "best-effort" if self.deadline is None else f"D={self.deadline:g}"
        return f"Workflow({self.name!r}, jobs={len(self.jobs)}, S={self.submit_time:g}, {dl})"
