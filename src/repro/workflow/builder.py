"""Fluent construction of workflows.

:class:`WorkflowBuilder` is the programmatic path to a
:class:`~repro.workflow.model.Workflow`; the XML path (what a WOHA user would
actually write) lives in :mod:`repro.workflow.xmlconfig` and delegates here.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence

from repro.workflow.model import WJob, Workflow, WorkflowValidationError

__all__ = ["WorkflowBuilder"]


class WorkflowBuilder:
    """Incrementally assemble a :class:`Workflow`.

    Example::

        wf = (
            WorkflowBuilder("etl")
            .job("extract", maps=20, reduces=4, map_s=30, reduce_s=120)
            .job("clean", maps=10, reduces=2, map_s=20, reduce_s=60, after=["extract"])
            .job("load", maps=4, reduces=1, map_s=15, reduce_s=90, after=["clean"])
            .deadline(3600)
            .build()
        )
    """

    def __init__(self, name: str) -> None:
        self._name = name
        self._jobs: List[WJob] = []
        self._names: set = set()
        self._submit_time = 0.0
        self._deadline: Optional[float] = None

    def job(
        self,
        name: str,
        maps: int,
        reduces: int,
        map_s: float,
        reduce_s: float = 0.0,
        after: Iterable[str] = (),
        inputs: Sequence[str] = (),
        outputs: Sequence[str] = (),
        jar_path: Optional[str] = None,
        main_class: Optional[str] = None,
    ) -> "WorkflowBuilder":
        """Add a wjob.  ``after`` names jobs already added to this builder."""
        after = tuple(after)
        for pre in after:
            if pre not in self._names:
                raise WorkflowValidationError(
                    f"{self._name}: job {name!r} placed after unknown job {pre!r} "
                    "(add prerequisites before dependents)"
                )
        wjob = WJob(
            name=name,
            num_maps=maps,
            num_reduces=reduces,
            map_duration=map_s,
            reduce_duration=reduce_s,
            prerequisites=frozenset(after),
            inputs=tuple(inputs),
            outputs=tuple(outputs),
            jar_path=jar_path,
            main_class=main_class,
        )
        if name in self._names:
            raise WorkflowValidationError(f"{self._name}: duplicate job name {name!r}")
        self._jobs.append(wjob)
        self._names.add(name)
        return self

    def chain(
        self,
        names: Sequence[str],
        maps: int,
        reduces: int,
        map_s: float,
        reduce_s: float = 0.0,
        after: Iterable[str] = (),
    ) -> "WorkflowBuilder":
        """Add a linear chain of identically-sized jobs.

        The first job in the chain depends on ``after``; each subsequent job
        depends on its predecessor in the chain.
        """
        previous = tuple(after)
        for name in names:
            self.job(name, maps=maps, reduces=reduces, map_s=map_s, reduce_s=reduce_s, after=previous)
            previous = (name,)
        return self

    def submit_at(self, time: float) -> "WorkflowBuilder":
        """Set the workflow submission time ``S_i``."""
        self._submit_time = float(time)
        return self

    def deadline(self, absolute: Optional[float] = None, relative: Optional[float] = None) -> "WorkflowBuilder":
        """Set the deadline ``D_i``, absolute or relative to the submit time."""
        if (absolute is None) == (relative is None):
            raise WorkflowValidationError("specify exactly one of absolute / relative deadline")
        self._deadline = absolute if absolute is not None else self._submit_time + relative
        return self

    def build(self) -> Workflow:
        """Validate and freeze the workflow."""
        return Workflow(
            self._name,
            self._jobs,
            submit_time=self._submit_time,
            deadline=self._deadline,
        )
