"""Deadline assignment for generated workflow sets.

The paper does not state how deadlines were attached to the WebScope
workflows (they are user-supplied in production).  Following the common
methodology in deadline-scheduling evaluations, we assign each workflow a
*stretch* of its best-case makespan:

    ``D_i = S_i + stretch_i * T_i(reference_slots)``

where ``T_i`` is the Algorithm 1 simulated makespan when the workflow owns
``reference_slots`` pooled slots, and ``stretch_i`` is drawn per workflow
from a seeded uniform range.  Using one fixed reference slot count keeps
deadlines identical across the Fig 8-10 cluster-size sweep, so the sweep
varies only the resource supply — the paper's experimental design.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.core.plangen import simulate_makespan
from repro.workflow.model import Workflow

__all__ = ["stretch_deadline", "assign_deadlines"]


def stretch_deadline(
    workflow: Workflow,
    reference_slots: int,
    stretch: float,
) -> Workflow:
    """A copy of ``workflow`` with ``D = S + stretch * T(reference_slots)``."""
    if stretch <= 0:
        raise ValueError("stretch must be positive")
    makespan = simulate_makespan(workflow, reference_slots)
    return workflow.with_timing(
        submit_time=workflow.submit_time,
        deadline=workflow.submit_time + stretch * makespan,
    )


def assign_deadlines(
    workflows: Sequence[Workflow],
    reference_slots: int,
    stretch_range: Tuple[float, float] = (1.2, 3.0),
    seed: int = 0,
) -> List[Workflow]:
    """Assign stretched deadlines to every workflow, deterministically.

    Args:
        workflows: the generated set (submit times already assigned).
        reference_slots: pooled slot count the best-case makespan assumes.
        stretch_range: uniform range the per-workflow stretch is drawn from.
        seed: RNG seed.
    """
    lo, hi = stretch_range
    if not (0 < lo <= hi):
        raise ValueError(f"bad stretch range {stretch_range!r}")
    rng = np.random.default_rng(seed)
    result = []
    for workflow in workflows:
        stretch = float(rng.uniform(lo, hi))
        result.append(stretch_deadline(workflow, reference_slots, stretch))
    return result
