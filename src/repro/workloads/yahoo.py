"""The Yahoo!-like trace and workflow-set generators.

The paper's trace experiments (Figs 8-10, 13b and the Fig 3 histogram) use
Yahoo! WebScope data we cannot redistribute: 4 000+ jobs for the marginal
statistics and "180 jobs arranged into 61 workflows, among which 15 contain
only a single job; the largest workflow contains only 12 jobs".  This module
generates synthetic equivalents:

* :func:`generate_job_trace` — N independent job shapes drawn from the
  fitted marginals (Figs 5-6);
* :func:`generate_yahoo_workflows` — a workflow set matching the published
  composition exactly (61 workflows / 180 jobs / 15 singletons / max 12),
  with random layered DAG topologies, Poisson-ish staggered submissions
  and stretch-assigned deadlines.

Everything is seeded; the same config reproduces the same set.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.workflow.model import Workflow
from repro.workloads.deadlines import assign_deadlines
from repro.workloads.distributions import JobShape, TraceDistributions
from repro.workloads.topologies import random_dag_workflow

__all__ = ["YahooTraceConfig", "generate_yahoo_workflows", "generate_job_trace", "partition_jobs"]


@dataclass(frozen=True)
class YahooTraceConfig:
    """Knobs of the Yahoo!-like workflow set.

    Defaults reproduce the paper's published composition.  ``task_scale``
    shrinks per-job task counts uniformly so the set saturates a
    200-280-slot cluster the way the original saturated Yahoo!'s (the raw
    marginals describe a 42 000-node deployment; unscaled they would bury
    any small simulated cluster by orders of magnitude, hiding every
    scheduling effect the experiment is about).
    """

    num_workflows: int = 61
    total_jobs: int = 180
    num_single_job: int = 15
    max_workflow_size: int = 12
    seed: int = 2014
    task_scale: float = 0.80
    submission_window: float = 600.0  # seconds over which workflows arrive
    stretch_range: Tuple[float, float] = (1.2, 3.0)
    reference_slots: int = 64  # slot share the deadline's makespan assumes
    drop_single_job: bool = False  # the paper removes singletons in Fig 8-10
    # Per-job task-count caps for *workflow* jobs.  The Fig 5/6 marginals
    # describe the full 4000-job trace of a 42 000-node cluster; feeding its
    # heaviest tail into 180 workflow jobs on a few-hundred-slot simulated
    # cluster makes a handful of giant workflows dominate every experiment.
    # The caps keep workflow sizes within the spread the experiment design
    # implies (see EXPERIMENTS.md, "workload calibration").
    max_maps_per_job: int = 100
    max_reduces_per_job: int = 20


def partition_jobs(config: YahooTraceConfig, rng: np.random.Generator) -> List[int]:
    """Split ``total_jobs`` into ``num_workflows`` sizes matching the
    published composition: ``num_single_job`` ones, the rest in
    [2, max_workflow_size], summing exactly to ``total_jobs``."""
    remaining_workflows = config.num_workflows - config.num_single_job
    remaining_jobs = config.total_jobs - config.num_single_job
    if remaining_workflows <= 0 or remaining_jobs < 2 * remaining_workflows:
        raise ValueError("infeasible trace composition")
    if remaining_jobs > config.max_workflow_size * remaining_workflows:
        raise ValueError("total_jobs too large for max_workflow_size")
    # Start everyone at 2 jobs, then sprinkle the surplus uniformly.
    sizes = [2] * remaining_workflows
    surplus = remaining_jobs - 2 * remaining_workflows
    while surplus > 0:
        idx = int(rng.integers(0, remaining_workflows))
        if sizes[idx] < config.max_workflow_size:
            sizes[idx] += 1
            surplus -= 1
    sizes = [1] * config.num_single_job + sizes
    # Deterministic shuffle so singletons are interleaved with the rest.
    order = rng.permutation(len(sizes))
    return [sizes[i] for i in order]


def generate_yahoo_workflows(config: Optional[YahooTraceConfig] = None) -> List[Workflow]:
    """The 61-workflow / 180-job Yahoo!-like set with deadlines.

    Workflows are named ``yw00`` .. ``yw60``; submission times are uniform
    over the submission window (sorted, so earlier names submit earlier);
    deadlines are stretch-assigned against ``reference_slots``.
    With ``drop_single_job`` the 15 singletons are removed after
    generation — matching the paper's Fig 8-10 filtering — leaving the
    other workflows byte-identical to the unfiltered set.
    """
    config = config or YahooTraceConfig()
    rng = np.random.default_rng(config.seed)
    distributions = TraceDistributions(
        seed=config.seed + 1,
        max_maps=config.max_maps_per_job,
        max_reduces=config.max_reduces_per_job,
    )
    sizes = partition_jobs(config, rng)
    submit_times = np.sort(rng.uniform(0.0, config.submission_window, size=len(sizes)))
    workflows: List[Workflow] = []
    for i, (size, submit) in enumerate(zip(sizes, submit_times)):
        workflow = random_dag_workflow(
            name=f"yw{i:02d}",
            num_jobs=size,
            rng=rng,
            distributions=distributions,
            edge_prob=0.55,
            max_parents=2,
            task_scale=config.task_scale,
        )
        workflows.append(workflow.with_timing(submit_time=float(submit), deadline=None))
    workflows = assign_deadlines(
        workflows,
        reference_slots=config.reference_slots,
        stretch_range=config.stretch_range,
        seed=config.seed + 2,
    )
    if config.drop_single_job:
        workflows = [w for w in workflows if len(w) > 1]
    return workflows


def generate_job_trace(
    num_jobs: int = 4000, seed: int = 7, scale: float = 1.0
) -> List[JobShape]:
    """N independent job shapes — the stand-in for the 4 000-job WebScope
    trace behind Figs 5-6."""
    distributions = TraceDistributions(seed=seed)
    return distributions.sample_jobs(num_jobs, scale=scale)
