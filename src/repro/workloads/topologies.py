"""Workflow topology constructors.

Includes the 33-job demonstration topology standing in for the paper's
Fig 7, plus the parametric families (chains, fan-outs, diamonds, random
layered DAGs) used by the Yahoo!-like trace generator and the tests.

The published Fig 7 drawing is not machine-readable; the stand-in below has
its salient features — 33 jobs, a single entry stage, several parallel
chains of unequal length, mid-workflow forks, and staged joins into one
sink — so the scheduler dynamics the paper demonstrates with it (a workflow
that periodically needs few slots to unlock large fan-outs) are present.
The substitution is recorded in DESIGN.md.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.workflow.builder import WorkflowBuilder
from repro.workflow.model import WJob, Workflow
from repro.workloads.distributions import JobShape, TraceDistributions

__all__ = [
    "fig7_topology",
    "fig11_workflows",
    "FIG11_DURATION_SCALE",
    "chain_workflow",
    "fanout_workflow",
    "diamond_workflow",
    "random_dag_workflow",
]

#: Duration scale calibrating the Fig 11 experiment on the 32-slave cluster
#: (2 map + 1 reduce slot per slave) into the paper's contention regime:
#: WOHA-* meet all three deadlines while FIFO and Fair miss.  Chosen by the
#: sweep recorded in EXPERIMENTS.md.
FIG11_DURATION_SCALE = 2.25


def _default_shape(index: int) -> JobShape:
    """Deterministic mid-size job shapes for hand-built topologies."""
    # A small rotation of shapes keeps jobs heterogeneous without RNG.
    table = (
        JobShape(num_maps=24, num_reduces=4, map_duration=30.0, reduce_duration=120.0),
        JobShape(num_maps=40, num_reduces=6, map_duration=25.0, reduce_duration=150.0),
        JobShape(num_maps=12, num_reduces=2, map_duration=45.0, reduce_duration=90.0),
        JobShape(num_maps=60, num_reduces=8, map_duration=20.0, reduce_duration=180.0),
        JobShape(num_maps=8, num_reduces=1, map_duration=35.0, reduce_duration=60.0),
    )
    return table[index % len(table)]


# Per-role shapes for the Fig 7 stand-in.  Chain jobs are short and thin
# (they gate the critical path but need few slots); fork and side jobs carry
# the bulk of the parallel map work.  The mix keeps the reduce pool (half
# the map pool on the paper's testbed) from becoming the lone bottleneck:
# reduce work is ~1/5 of map work.
_FIG7_ROLE_SHAPES: Dict[str, JobShape] = {
    "chain": JobShape(num_maps=16, num_reduces=2, map_duration=25.0, reduce_duration=50.0),
    "fork": JobShape(num_maps=80, num_reduces=8, map_duration=30.0, reduce_duration=90.0),
    "join": JobShape(num_maps=24, num_reduces=4, map_duration=20.0, reduce_duration=60.0),
    "side": JobShape(num_maps=60, num_reduces=4, map_duration=30.0, reduce_duration=80.0),
    "sink": JobShape(num_maps=16, num_reduces=2, map_duration=20.0, reduce_duration=60.0),
}


def fig7_topology(
    name: str = "fig7",
    submit_time: float = 0.0,
    relative_deadline: Optional[float] = None,
    shapes: Optional[Sequence[JobShape]] = None,
    duration_scale: float = 1.0,
) -> Workflow:
    """The 33-job demonstration workflow (stand-in for the paper's Fig 7).

    Structure (job count in parentheses):

    * ``src`` (1) — the entry job;
    * ``prep1, prep2`` (2) — a serial preparation chain;
    * four parallel branches ``b{i}_1..b{i}_3`` (12) — chains of three;
    * each branch forks into ``f{i}_a, f{i}_b`` (8);
    * per-branch joins ``join{i}`` (4);
    * three side aggregations ``side{i}`` off the prep chain (3);
    * two merges ``m1, m2`` (2) and a final ``sink`` (1).

    Total: 1+2+12+8+4+3+2+1 = 33 jobs.

    Args:
        shapes: optional per-job :class:`JobShape` overrides, indexed by
            creation order; defaults to a deterministic rotation.
        duration_scale: multiply all task durations (tune cluster pressure).
    """
    builder = WorkflowBuilder(name).submit_at(submit_time)
    if relative_deadline is not None:
        builder.deadline(relative=relative_deadline)
    counter = [0]

    def add(job_name: str, role: str, after: Sequence[str] = ()) -> str:
        idx = counter[0]
        counter[0] += 1
        shape = shapes[idx] if shapes is not None else _FIG7_ROLE_SHAPES[role]
        builder.job(
            job_name,
            maps=shape.num_maps,
            reduces=shape.num_reduces,
            map_s=shape.map_duration * duration_scale,
            reduce_s=(shape.reduce_duration * duration_scale) if shape.num_reduces else 0.0,
            after=after,
        )
        return job_name

    add("src", "chain")
    add("prep1", "chain", after=["src"])
    add("prep2", "chain", after=["prep1"])
    joins: List[str] = []
    for i in range(4):
        previous = "prep2"
        for step in range(1, 4):
            previous = add(f"b{i}_{step}", "chain", after=[previous])
        fork_a = add(f"f{i}_a", "fork", after=[previous])
        fork_b = add(f"f{i}_b", "fork", after=[previous])
        joins.append(add(f"join{i}", "join", after=[fork_a, fork_b]))
    sides = [add(f"side{i}", "side", after=["prep1"]) for i in range(3)]
    m1 = add("m1", "join", after=[joins[0], joins[1]])
    m2 = add("m2", "join", after=[joins[2], joins[3]])
    add("sink", "sink", after=[m1, m2] + sides)
    workflow = builder.build()
    assert len(workflow) == 33, f"fig7 stand-in has {len(workflow)} jobs, expected 33"
    return workflow


def fig11_workflows(duration_scale: float = FIG11_DURATION_SCALE) -> List[Workflow]:
    """The Fig 11 / Fig 14-19 experiment input.

    Three workflows with the Fig 7 topology, submitted 5 minutes apart with
    relative deadlines of 80, 70 and 60 minutes — later releases get
    *earlier* relative deadlines, exactly the paper's §VI-A setup.
    """
    releases = (0.0, 300.0, 600.0)
    deadlines = (4800.0, 4200.0, 3600.0)
    return [
        fig7_topology(
            f"W-{i + 1}",
            submit_time=releases[i],
            relative_deadline=deadlines[i],
            duration_scale=duration_scale,
        )
        for i in range(3)
    ]


def chain_workflow(
    name: str,
    length: int,
    shape: Optional[JobShape] = None,
    submit_time: float = 0.0,
    deadline: Optional[float] = None,
) -> Workflow:
    """A linear chain of ``length`` identical jobs."""
    if length < 1:
        raise ValueError("chain length must be >= 1")
    shape = shape or _default_shape(0)
    builder = WorkflowBuilder(name).submit_at(submit_time)
    previous: Tuple[str, ...] = ()
    for i in range(length):
        builder.job(
            f"j{i}",
            maps=shape.num_maps,
            reduces=shape.num_reduces,
            map_s=shape.map_duration,
            reduce_s=shape.reduce_duration,
            after=previous,
        )
        previous = (f"j{i}",)
    if deadline is not None:
        builder.deadline(absolute=deadline)
    return builder.build()


def fanout_workflow(
    name: str,
    width: int,
    shape: Optional[JobShape] = None,
    submit_time: float = 0.0,
    deadline: Optional[float] = None,
) -> Workflow:
    """One source fanning out to ``width`` leaves joined by one sink."""
    if width < 1:
        raise ValueError("fan-out width must be >= 1")
    shape = shape or _default_shape(0)
    builder = WorkflowBuilder(name).submit_at(submit_time)

    def add(job_name: str, after: Sequence[str] = ()) -> None:
        builder.job(
            job_name,
            maps=shape.num_maps,
            reduces=shape.num_reduces,
            map_s=shape.map_duration,
            reduce_s=shape.reduce_duration,
            after=after,
        )

    add("src")
    for i in range(width):
        add(f"leaf{i}", after=["src"])
    add("sink", after=[f"leaf{i}" for i in range(width)])
    if deadline is not None:
        builder.deadline(absolute=deadline)
    return builder.build()


def diamond_workflow(
    name: str = "diamond",
    shape: Optional[JobShape] = None,
    submit_time: float = 0.0,
    deadline: Optional[float] = None,
) -> Workflow:
    """The four-job diamond: src -> {left, right} -> sink."""
    shape = shape or _default_shape(0)
    builder = WorkflowBuilder(name).submit_at(submit_time)
    for job_name, after in (("src", ()), ("left", ("src",)), ("right", ("src",)), ("sink", ("left", "right"))):
        builder.job(
            job_name,
            maps=shape.num_maps,
            reduces=shape.num_reduces,
            map_s=shape.map_duration,
            reduce_s=shape.reduce_duration,
            after=after,
        )
    if deadline is not None:
        builder.deadline(absolute=deadline)
    return builder.build()


def random_dag_workflow(
    name: str,
    num_jobs: int,
    rng: np.random.Generator,
    distributions: Optional[TraceDistributions] = None,
    edge_prob: float = 0.5,
    max_parents: int = 2,
    task_scale: float = 1.0,
) -> Workflow:
    """A random layered DAG: each job may depend on a few earlier jobs.

    Job ``k`` picks up to ``max_parents`` parents uniformly from jobs
    ``0..k-1`` with probability ``edge_prob`` each try; parentless jobs are
    roots.  Shapes come from ``distributions`` when given (the Yahoo!-like
    trace path) or the deterministic rotation otherwise.
    """
    if num_jobs < 1:
        raise ValueError("num_jobs must be >= 1")
    builder = WorkflowBuilder(name)
    for k in range(num_jobs):
        if distributions is not None:
            shape = distributions.sample_job(scale=task_scale)
        else:
            shape = _default_shape(k)
        parents: List[str] = []
        if k > 0:
            for _ in range(max_parents):
                if rng.random() < edge_prob:
                    parent = int(rng.integers(0, k))
                    if f"j{parent}" not in parents:
                        parents.append(f"j{parent}")
        builder.job(
            f"j{k}",
            maps=shape.num_maps,
            reduces=shape.num_reduces,
            map_s=shape.map_duration,
            reduce_s=shape.reduce_duration,
            after=parents,
        )
    return builder.build()
