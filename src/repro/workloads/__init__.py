"""Workload generation: the paper's synthetic and Yahoo!-like inputs."""

from repro.workloads.distributions import TraceDistributions, JobShape, cdf_points
from repro.workloads.topologies import (
    FIG11_DURATION_SCALE,
    fig7_topology,
    fig11_workflows,
    chain_workflow,
    fanout_workflow,
    diamond_workflow,
    random_dag_workflow,
)
from repro.workloads.yahoo import YahooTraceConfig, generate_yahoo_workflows, generate_job_trace
from repro.workloads.deadlines import assign_deadlines, stretch_deadline

__all__ = [
    "TraceDistributions",
    "JobShape",
    "cdf_points",
    "fig7_topology",
    "fig11_workflows",
    "FIG11_DURATION_SCALE",
    "chain_workflow",
    "fanout_workflow",
    "diamond_workflow",
    "random_dag_workflow",
    "YahooTraceConfig",
    "generate_yahoo_workflows",
    "generate_job_trace",
    "assign_deadlines",
    "stretch_deadline",
]
