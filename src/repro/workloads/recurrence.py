"""Recurrent workflow submission.

Production workflows are mostly periodic — Oozie's coordinator model and
the paper's Fig 12 ("with 3 recurrence") both assume the same topology is
released over and over with shifted timing.  :func:`expand_recurrences`
turns one workflow definition into its dated instances; the instances are
independent workflows (the scheduler treats each release separately, as
both Oozie and WOHA do).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.workflow.model import Workflow

__all__ = ["Recurrence", "expand_recurrences"]


@dataclass(frozen=True)
class Recurrence:
    """A periodic release rule.

    Attributes:
        period: seconds between releases.
        count: number of instances.
        relative_deadline: deadline of each instance, relative to its own
            release; ``None`` keeps the template's relative deadline (or
            best-effort if the template has none).
        start: release time of the first instance.
    """

    period: float
    count: int
    relative_deadline: Optional[float] = None
    start: float = 0.0

    def __post_init__(self) -> None:
        if self.period <= 0:
            raise ValueError("period must be positive")
        if self.count < 1:
            raise ValueError("count must be >= 1")
        if self.relative_deadline is not None and self.relative_deadline <= 0:
            raise ValueError("relative_deadline must be positive")


def expand_recurrences(template: Workflow, recurrence: Recurrence) -> List[Workflow]:
    """Materialise the dated instances of a recurrent workflow.

    Instances are named ``<template>@<k>`` and submitted at
    ``start + k * period``.  Deadlines shift with the release, exactly as
    an Oozie coordinator materialises dated actions.
    """
    relative = recurrence.relative_deadline
    if relative is None:
        relative = template.relative_deadline  # may still be None (best effort)
    instances: List[Workflow] = []
    for k in range(recurrence.count):
        release = recurrence.start + k * recurrence.period
        deadline = None if relative is None else release + relative
        instances.append(
            template.renamed(f"{template.name}@{k}").with_timing(
                submit_time=release, deadline=deadline
            )
        )
    return instances
