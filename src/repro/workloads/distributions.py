"""Task-count and task-duration distributions fitted to the paper's trace.

The Yahoo! WebScope trace itself is proprietary; the paper publishes its
marginals (Figs 5-6) and we fit lognormal families to them:

* **map duration** — "most mappers finish between 10s and 100s";
* **reduce duration** — "more than half of the reducers take more than
  100s and about 10% even take more than 1000s";
* **map count** — "about 30% of jobs have more than 100 mappers";
* **reduce count** — "more than 60% of jobs have less than 10 reducers";
* ratios — "mappers usually outnumber reducers, while reducers take much
  longer to finish" (Figs 5b / 6b).

The fitted parameters below reproduce those check-points (asserted in
``tests/workloads/test_distributions.py``); the Fig 5/6 benches print the
full CDFs next to the paper's anchors.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np

__all__ = ["JobShape", "TraceDistributions", "cdf_points"]


@dataclass(frozen=True)
class JobShape:
    """Sampled shape of one Map-Reduce job."""

    num_maps: int
    num_reduces: int
    map_duration: float
    reduce_duration: float


def _lognormal(rng: np.random.Generator, median: float, sigma: float) -> float:
    return float(median * np.exp(sigma * rng.standard_normal()))


class TraceDistributions:
    """Seeded sampler for job shapes matching the published marginals.

    Args:
        seed: RNG seed; the same seed reproduces the same trace.

    Fit notes (lognormal medians/sigmas):
        map duration    median 32 s,  sigma 0.85 → ~76% in [10s, 100s]
        reduce duration median 130 s, sigma 1.20 → P(>100s)≈0.59, P(>1000s)≈0.09
        map count       median 40,    sigma 1.75 → P(>100)≈0.30
        reduce count    median 6,     sigma 1.30 → P(<10)≈0.65
    """

    MAP_DURATION_MEDIAN = 32.0
    MAP_DURATION_SIGMA = 0.85
    REDUCE_DURATION_MEDIAN = 130.0
    REDUCE_DURATION_SIGMA = 1.20
    MAP_COUNT_MEDIAN = 40.0
    MAP_COUNT_SIGMA = 1.75
    REDUCE_COUNT_MEDIAN = 6.0
    REDUCE_COUNT_SIGMA = 1.30

    def __init__(self, seed: int = 0, max_maps: int = 3000, max_reduces: int = 500) -> None:
        self._rng = np.random.default_rng(seed)
        self.max_maps = max_maps
        self.max_reduces = max_reduces

    def sample_map_duration(self) -> float:
        """Seconds per map task, clipped to [3 s, 1 h]."""
        return float(np.clip(
            _lognormal(self._rng, self.MAP_DURATION_MEDIAN, self.MAP_DURATION_SIGMA), 3.0, 3600.0
        ))

    def sample_reduce_duration(self) -> float:
        """Seconds per reduce task, clipped to [5 s, 4 h]."""
        return float(np.clip(
            _lognormal(self._rng, self.REDUCE_DURATION_MEDIAN, self.REDUCE_DURATION_SIGMA),
            5.0,
            4 * 3600.0,
        ))

    def sample_map_count(self) -> int:
        """Mappers per job, clipped to [1, max_maps] (default 3000)."""
        return int(np.clip(
            round(_lognormal(self._rng, self.MAP_COUNT_MEDIAN, self.MAP_COUNT_SIGMA)), 1, self.max_maps
        ))

    def sample_reduce_count(self) -> int:
        """Reducers per job, clipped to [0, max_reduces] (default 500);
        ~7% of jobs are map-only."""
        if self._rng.random() < 0.07:
            return 0
        return int(np.clip(
            round(_lognormal(self._rng, self.REDUCE_COUNT_MEDIAN, self.REDUCE_COUNT_SIGMA)),
            1,
            self.max_reduces,
        ))

    def sample_job(self, scale: float = 1.0) -> JobShape:
        """One job shape; ``scale`` shrinks task counts for small-cluster
        experiments without touching the duration marginals."""
        num_maps = max(1, int(round(self.sample_map_count() * scale)))
        reduces = self.sample_reduce_count()
        num_reduces = 0 if reduces == 0 else max(1, int(round(reduces * scale)))
        if num_maps == 0 and num_reduces == 0:
            num_maps = 1
        return JobShape(
            num_maps=num_maps,
            num_reduces=num_reduces,
            map_duration=self.sample_map_duration(),
            reduce_duration=self.sample_reduce_duration() if num_reduces else 0.0,
        )

    def sample_jobs(self, count: int, scale: float = 1.0) -> List[JobShape]:
        return [self.sample_job(scale) for _ in range(count)]


def cdf_points(values: Sequence[float], points: Sequence[float]) -> List[Tuple[float, float]]:
    """Empirical CDF evaluated at ``points`` — the Fig 5/6 output format."""
    data = np.sort(np.asarray(values, dtype=float))
    result = []
    for p in points:
        frac = float(np.searchsorted(data, p, side="right")) / max(len(data), 1)
        result.append((p, frac))
    return result
