"""Workflow-set (de)serialization.

Single workflows have the WOHA XML format (:mod:`repro.workflow.xmlconfig`);
whole experiment inputs — many workflows with submit times and deadlines —
are stored as JSON documents so traces can be generated once and replayed
by the CLI and benches.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Sequence

from repro.workflow.model import WJob, Workflow

__all__ = ["workflows_to_json", "workflows_from_json", "save_workflows", "load_workflows"]

_FORMAT_VERSION = 1


def _job_to_dict(job: WJob) -> Dict[str, Any]:
    data: Dict[str, Any] = {
        "name": job.name,
        "maps": job.num_maps,
        "reduces": job.num_reduces,
        "map_duration": job.map_duration,
        "reduce_duration": job.reduce_duration,
        "after": sorted(job.prerequisites),
    }
    if job.inputs:
        data["inputs"] = list(job.inputs)
    if job.outputs:
        data["outputs"] = list(job.outputs)
    if job.jar_path:
        data["jar"] = job.jar_path
    if job.main_class:
        data["main_class"] = job.main_class
    return data


def _job_from_dict(data: Dict[str, Any]) -> WJob:
    return WJob(
        name=data["name"],
        num_maps=int(data["maps"]),
        num_reduces=int(data["reduces"]),
        map_duration=float(data["map_duration"]),
        reduce_duration=float(data["reduce_duration"]),
        prerequisites=frozenset(data.get("after", ())),
        inputs=tuple(data.get("inputs", ())),
        outputs=tuple(data.get("outputs", ())),
        jar_path=data.get("jar"),
        main_class=data.get("main_class"),
    )


def workflows_to_json(workflows: Sequence[Workflow]) -> str:
    """Serialise a workflow set to a JSON document."""
    doc = {
        "format": "repro-workflows",
        "version": _FORMAT_VERSION,
        "workflows": [
            {
                "name": w.name,
                "submit": w.submit_time,
                "deadline": w.deadline,
                "jobs": [_job_to_dict(j) for j in w.jobs],
            }
            for w in workflows
        ],
    }
    return json.dumps(doc, indent=2, sort_keys=False)


def workflows_from_json(text: str) -> List[Workflow]:
    """Parse a workflow-set document (validates structure on load)."""
    doc = json.loads(text)
    if doc.get("format") != "repro-workflows":
        raise ValueError("not a repro workflow-set document")
    if doc.get("version") != _FORMAT_VERSION:
        raise ValueError(f"unsupported workflow-set version {doc.get('version')!r}")
    return [
        Workflow(
            entry["name"],
            [_job_from_dict(j) for j in entry["jobs"]],
            submit_time=float(entry.get("submit", 0.0)),
            deadline=entry.get("deadline"),
        )
        for entry in doc["workflows"]
    ]


def save_workflows(path: str, workflows: Sequence[Workflow]) -> None:
    with open(path, "w") as fh:
        fh.write(workflows_to_json(workflows) + "\n")


def load_workflows(path: str) -> List[Workflow]:
    with open(path) as fh:
        return workflows_from_json(fh.read())
