"""Runtime contract checks for the scheduler stack (zero-cost when off).

The lint rules in :mod:`repro.analysis.rules` catch determinism hazards
*statically*; this module asserts the dynamic invariants the paper's
correctness argument leans on, at the moments they can break:

* **DSL cross-link consistency** (§IV-B): both constituent lists hold
  exactly the registered entries, each keyed by the entry's *current*
  ``ct_key``/``priority_key``.  A stale key — e.g. a ``ct`` mutated without
  repositioning — silently corrupts every subsequent head walk.
* **Skip-list level monotonicity**: every level-``l`` node sits on a tower
  (``node.down.key == node.key``), every level's keys are strictly
  ascending and a subset of the level below.  This is what makes the
  O(log n) walk of §IV sound.
* **Plan monotonicity** (Algorithm 1): ``F_i`` entries strictly descending
  in ``ttd`` and strictly ascending in ``cum_req``, ending at
  ``total_tasks`` — equivalently, the client simulation's batches were
  sorted by instant.
* **Prerequisite-respecting dispatch** (§III): no task of a wjob launches
  while the wjob still has unfinished prerequisites.

Checkers follow the :mod:`repro.trace` tracer pattern: schedulers and the
DSL hold :data:`NULL_CONTRACTS` until a real :class:`ContractChecker` is
attached, so the hot path pays one ``enabled`` attribute read per guarded
block.  Every evaluated assertion is counted, and — observability parity
with decision tracing — the counters mirror into an attached tracer under
the ``contracts`` scope, so ``MetricsCollector.aggregate_counters`` reports
how many contract assertions a run evaluated.

Contract checking must never *change* a decision: checks only read state
and raise :class:`ContractViolation` on breakage
(``tests/integration/test_contract_invariance.py`` asserts the launch
sequence is identical with and without contracts enabled).
"""

from __future__ import annotations

from collections import Counter
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

from repro.trace import NULL_TRACER, DecisionTracer, NullTracer

__all__ = [
    "ContractViolation",
    "NullContractChecker",
    "NULL_CONTRACTS",
    "ContractChecker",
    "ContractMonitor",
]


class ContractViolation(AssertionError):
    """A runtime invariant of the scheduler stack does not hold."""


class NullContractChecker:
    """The disabled checker: every operation is a no-op.

    Held as the default by the DSL and schedulers, exactly like
    :class:`repro.trace.NullTracer`; code guards calls with
    ``checker.enabled`` so the disabled path is one attribute read.
    """

    enabled = False

    def attach_tracer(self, tracer: Union[DecisionTracer, NullTracer]) -> None:
        """Discard (no counters exist to mirror)."""

    def check_dsl(self, dsl: Any) -> None:
        """No-op."""

    def check_skiplist(self, skiplist: Any) -> None:
        """No-op."""

    def check_plan(self, plan: Any) -> None:
        """No-op."""

    def check_batches(self, batches: Sequence[Tuple[float, int]]) -> None:
        """No-op."""

    def check_dispatch(self, wip: Any, task: Any) -> None:
        """No-op."""

    def counter_table(self) -> Dict[str, Dict[str, Union[int, float]]]:
        return {}


NULL_CONTRACTS = NullContractChecker()


class ContractChecker:
    """Evaluates the runtime contracts and counts every assertion.

    Args:
        tracer: optional decision tracer to mirror counters into (under
            scope :data:`COUNTER_SCOPE`), giving contract observability in
            the same counter table as scheduling decisions.

    The checker exposes ``counter_table()`` in the shape
    ``MetricsCollector.aggregate_counters`` duck-types, so a run can report
    its assertion counts even without a tracer.
    """

    enabled = True

    #: Scope name used in counter tables and mirrored tracer counters.
    COUNTER_SCOPE = "contracts"

    def __init__(self, tracer: Union[DecisionTracer, NullTracer] = NULL_TRACER) -> None:
        self.counters: "Counter[str]" = Counter()
        self.tracer = tracer

    def attach_tracer(self, tracer: Union[DecisionTracer, NullTracer]) -> None:
        """Start mirroring counter increments into ``tracer``."""
        self.tracer = tracer

    # -- accounting ---------------------------------------------------------

    def _count(self, name: str, amount: int = 1) -> None:
        self.counters[name] += amount
        if self.tracer.enabled:
            self.tracer.incr(self.COUNTER_SCOPE, name, amount)

    def _require(self, condition: bool, message: str) -> None:
        """One contract assertion: counted, raising on failure."""
        self._count("assertions")
        if not condition:
            self._count("violations")
            raise ContractViolation(message)

    def counter_table(self) -> Dict[str, Dict[str, Union[int, float]]]:
        """Counters in ``{scope: {name: value}}`` shape (collector-ready)."""
        return {self.COUNTER_SCOPE: {name: value for name, value in sorted(self.counters.items())}}

    # -- structure contracts -------------------------------------------------

    def check_dsl(self, dsl: Any) -> None:
        """Cross-link consistency of a :class:`~repro.structures.dsl.DoubleSkipList`.

        Both lists must contain exactly the registered entries; every key
        under which an entry is filed must equal the entry's *current*
        derived key (the cross-link: one shared ``DoubleEntry`` per item).
        """
        self._count("dsl_checks")
        entries = dsl._entries
        ct_list, priority_list = dsl._ct_list, dsl._priority_list
        self._require(
            len(ct_list) == len(entries),
            f"ct list holds {len(ct_list)} items but {len(entries)} entries registered",
        )
        self._require(
            len(priority_list) == len(entries),
            f"priority list holds {len(priority_list)} items but {len(entries)} entries registered",
        )
        for key, entry in ct_list.items():
            self._require(
                key == entry.ct_key,
                f"ct list files {entry.item_id!r} under {key!r} but its ct_key is {entry.ct_key!r}",
            )
            self._require(
                entries.get(entry.item_id) is entry,
                f"ct list entry {entry.item_id!r} is not the registered DoubleEntry",
            )
        for key, entry in priority_list.items():
            self._require(
                key == entry.priority_key,
                f"priority list files {entry.item_id!r} under {key!r} "
                f"but its priority_key is {entry.priority_key!r}",
            )
            self._require(
                entries.get(entry.item_id) is entry,
                f"priority list entry {entry.item_id!r} is not the registered DoubleEntry",
            )
        self.check_skiplist(ct_list)
        self.check_skiplist(priority_list)

    def check_skiplist(self, skiplist: Any) -> None:
        """Level monotonicity of a deterministic skip list.

        Checks: per-level strictly ascending keys; every upper-level node
        tops a tower (``down`` points to a same-keyed node); every level's
        key set is contained in the level below.  Non-skip-list backends
        (AVL, sorted list) fall back to their own ``check_invariants``,
        re-raised as :class:`ContractViolation`.
        """
        heads = getattr(skiplist, "_heads", None)
        tail = getattr(skiplist, "_tail", None)
        if heads is None or tail is None:
            check = getattr(skiplist, "check_invariants", None)
            if check is not None:
                self._count("assertions")
                try:
                    check()
                except AssertionError as exc:
                    self._count("violations")
                    raise ContractViolation(f"ordered-map invariants broken: {exc}") from exc
            return
        self._count("skiplist_checks")
        below: Optional[List[Any]] = None
        for level, head in enumerate(heads):
            keys: List[Any] = []
            node = head.right
            while node is not tail:
                if level > 0:
                    down = node.down
                    self._require(
                        down is not None and down.key == node.key,
                        f"tower broken at level {level}: node {node.key!r} "
                        f"sits on {getattr(down, 'key', None)!r}",
                    )
                keys.append(node.key)
                node = node.right
            for a, b in zip(keys, keys[1:]):
                self._require(
                    a < b, f"level {level} keys not strictly ascending: {a!r} then {b!r}"
                )
            if level > 0:
                below_set = set(below)  # membership only; never iterated
                for key in keys:
                    self._require(
                        key in below_set,
                        f"level {level} key {key!r} missing from level {level - 1}",
                    )
            below = keys

    # -- plan contracts (Algorithm 1) ----------------------------------------

    def check_plan(self, plan: Any) -> None:
        """Monotonicity of a :class:`~repro.core.progress.ProgressPlan`.

        ``F_i`` must be strictly descending in ``ttd`` and strictly
        ascending in ``cum_req``, end at ``total_tasks``, and carry a
        duplicate-free job order (duplicates would corrupt the scheduler's
        rank map).
        """
        self._count("plan_checks")
        entries = plan.entries
        for a, b in zip(entries, entries[1:]):
            self._require(
                a.ttd > b.ttd,
                f"plan ttd not strictly descending: {a.ttd} then {b.ttd}",
            )
            self._require(
                a.cum_req < b.cum_req,
                f"plan cum_req not strictly ascending: {a.cum_req} then {b.cum_req}",
            )
        if entries:
            self._require(
                entries[-1].cum_req == plan.total_tasks,
                f"plan requires {entries[-1].cum_req} tasks but workflow has {plan.total_tasks}",
            )
            self._require(
                entries[0].cum_req > 0,
                f"plan starts at a non-positive requirement {entries[0].cum_req}",
            )
        self._require(
            len(set(plan.job_order)) == len(plan.job_order),
            "plan job_order contains duplicate job names",
        )

    def check_batches(self, batches: Sequence[Tuple[float, int]]) -> None:
        """Scheduling batches must be sorted by instant with positive counts."""
        self._count("batch_checks")
        previous: Optional[float] = None
        for time, count in batches:
            self._require(count > 0, f"batch at t={time} has non-positive count {count}")
            self._require(
                previous is None or time >= previous,
                f"batches not sorted by instant: t={previous} then t={time}",
            )
            previous = time

    # -- dispatch contracts (§III prerequisite order) -------------------------

    def check_dispatch(self, wip: Any, task: Any) -> None:
        """A launching task's wjob must have no unfinished prerequisites.

        SUBMIT tasks carry the wjob they are about to materialise in
        ``payload``; MAP/REDUCE tasks belong to an already-submitted wjob.
        Either way the wjob's pending-prerequisite set must be empty at
        launch, or dispatch order violates the workflow DAG.
        """
        self._count("dispatch_checks")
        name = task.payload if task.kind.value == "submit" else task.job.name
        pending = wip.pending_prereqs.get(name)
        if pending is None:
            return  # not a wjob of this workflow (e.g. the submitter job itself)
        self._require(
            not pending,
            f"task {task.task_id} of wjob {name!r} launched with unfinished "
            f"prerequisites {sorted(pending)}",
        )


class ContractMonitor:
    """JobTracker listener that applies contract checks at lifecycle points.

    * ``on_workflow_submitted`` — validate the shipped plan's monotonicity;
    * ``on_task_launch`` — validate prerequisite-respecting dispatch and,
      when the scheduler exposes ``check_invariants`` (the WOHA queue), its
      structural invariants after the decision that produced the launch.

    Registered by :class:`~repro.cluster.simulation.ClusterSimulation` when
    run with ``contracts=``; like the tracer it is purely observational.
    """

    def __init__(self, checker: ContractChecker) -> None:
        self.checker = checker
        self._jobtracker: Any = None

    def bind(self, jobtracker: Any) -> None:
        """Called once with the JobTracker whose events will be checked."""
        self._jobtracker = jobtracker

    def on_workflow_submitted(self, wip: Any, now: float) -> None:
        plan = wip.plan
        if plan is not None and hasattr(plan, "entries"):
            self.checker.check_plan(plan)

    def on_task_launch(self, task: Any, now: float) -> None:
        wf_name = task.workflow_name
        if wf_name is not None and self._jobtracker is not None:
            wip = self._jobtracker.workflows.get(wf_name)
            if wip is not None:
                self.checker.check_dispatch(wip, task)
